#include "chaos/engine.h"

#include "sim/random.h"

namespace riptide::chaos {

namespace {

// Interleave a golden run into every 16-spec block: long campaigns keep
// re-proving the knobs-off bit-identity pin between adversarial draws,
// so a determinism regression surfaces from the same campaign that hunts
// logic bugs.
constexpr std::size_t kGoldenEvery = 16;

sim::Time pick_at(sim::Rng& rng, double duration_s) {
  return sim::Time::from_seconds(static_cast<double>(
      rng.uniform_int(3, std::max<std::int64_t>(4, static_cast<std::int64_t>(
                                                       duration_s * 2 / 3)))));
}

// A random WAN pair in [0, pops).
void pick_link(sim::Rng& rng, std::size_t pops, std::size_t& a,
               std::size_t& b) {
  a = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(pops) - 1));
  b = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(pops) - 2));
  if (b >= a) ++b;  // distinct PoPs
}

// One random fault leg. Agent-targeted kinds (crash, drift, corrupt,
// actuator/poll decorators) are only drawn when the policy actually runs
// agents; a world without a Riptide agent has nothing for them to hit.
void add_fault_leg(sim::Rng& rng, faults::FaultPlan& plan, std::size_t pops,
                   int hosts, double duration_s, bool has_agents) {
  const sim::Time at = pick_at(rng, duration_s);
  std::size_t a = 0, b = 0;
  const std::int64_t kind = rng.uniform_int(0, has_agents ? 9 : 4);
  switch (kind) {
    case 0:  // transient partition: down then up 5 s later
      pick_link(rng, pops, a, b);
      plan.link_down(at, a, b);
      plan.link_up(at + sim::Time::seconds(5), a, b);
      break;
    case 1:
      pick_link(rng, pops, a, b);
      plan.link_flap(at, a, b, sim::Time::seconds(2),
                     static_cast<int>(rng.uniform_int(2, 6)));
      break;
    case 2:
      pick_link(rng, pops, a, b);
      plan.loss_burst(at, a, b, rng.uniform(0.01, 0.2),
                      sim::Time::seconds(10));
      break;
    case 3:
      pick_link(rng, pops, a, b);
      plan.rate_factor(at, a, b, rng.uniform(0.25, 0.75),
                       sim::Time::seconds(10));
      break;
    case 4:
      pick_link(rng, pops, a, b);
      plan.extra_delay(at, a, b, rng.uniform(10.0, 50.0),
                       sim::Time::seconds(10));
      break;
    case 5:
      plan.actuator_failures(at, rng.uniform(0.1, 0.5),
                             sim::Time::seconds(15));
      break;
    case 6:
      plan.poll_failures(at, rng.uniform(0.1, 0.5), sim::Time::seconds(15));
      break;
    case 7:
      plan.poll_partial(at, rng.uniform(0.2, 0.8), sim::Time::seconds(15));
      break;
    case 8: {
      const int host = static_cast<int>(rng.uniform_int(
          0, static_cast<std::int64_t>(pops) * hosts - 1));
      const std::int64_t mode = rng.uniform_int(0, 2);
      plan.agent_crash(at, host, sim::Time::seconds(5),
                       /*warm=*/mode != 1, /*flush_routes=*/mode == 2);
      break;
    }
    case 9: {
      const int host = static_cast<int>(rng.uniform_int(
          0, static_cast<std::int64_t>(pops) * hosts - 1));
      plan.route_drift(at, host, rng.uniform(0.0, 0.8),
                       rng.uniform(0.0, 0.8));
      break;
    }
    default:
      break;
  }
}

policy::PolicySpec pick_policy(sim::Rng& rng) {
  policy::PolicySpec spec;
  switch (rng.uniform_int(0, 7)) {
    case 0:
    case 1:
      spec.kind = policy::PolicyKind::kAdaptive;
      break;
    case 2:
    case 3:
      spec.kind = policy::PolicyKind::kAdaptive;
      spec.governed = true;
      break;
    case 4:
      spec.kind = policy::PolicyKind::kAdaptive;
      spec.governed = true;
      spec.prefix_length = 24;
      break;
    case 5:
      spec.kind = policy::PolicyKind::kStaticIw;
      spec.static_iw = 32;
      break;
    case 6:
      spec.kind = policy::PolicyKind::kOracle;
      break;
    default:
      spec.kind = policy::PolicyKind::kDefault;
      break;
  }
  return spec;
}

cdn::HostileConfig pick_hostile(sim::Rng& rng, std::size_t pops) {
  cdn::HostileConfig hostile;
  switch (rng.uniform_int(0, 5)) {
    case 0:
    case 1:
    case 2:
      break;  // none: half the campaign runs clean scenarios
    case 3:
      hostile.kind = cdn::HostileKind::kShallowBuffer;
      hostile.queue_packets = 64;
      break;
    case 4:
      hostile.kind = cdn::HostileKind::kIncast;
      hostile.victim_pop = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pops) - 1));
      hostile.fanin_connections = 4;
      hostile.burst_bytes = 50'000;
      break;
    default:
      hostile.kind = cdn::HostileKind::kFlashCrowd;
      hostile.crowd_at = sim::Time::seconds(10);
      hostile.crowd_connections = 8;
      hostile.crowd_bytes = 100'000;
      hostile.crowd_period = sim::Time::seconds(10);
      break;
  }
  return hostile;
}

}  // namespace

ChaosSpec generate_spec(std::uint64_t campaign_seed, std::size_t index) {
  if (index % kGoldenEvery == kGoldenEvery - 1) {
    ChaosSpec spec = ChaosSpec::golden_spec();
    spec.seed = 42;  // the pinned-CRC seed: arms the fingerprint oracle
    return spec;
  }
  // A fresh base Rng per call makes generation a pure function of
  // (campaign_seed, index) — campaigns can be replayed or sampled at any
  // index without executing the prefix.
  sim::Rng base(campaign_seed);
  sim::Rng rng = base.fork(index);

  ChaosSpec spec;
  spec.pops = static_cast<std::size_t>(rng.uniform_int(2, 4));
  spec.hosts = static_cast<int>(rng.uniform_int(1, 2));
  spec.duration_s = static_cast<double>(20 + 10 * rng.uniform_int(0, 2));
  spec.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1'000'000));
  switch (rng.uniform_int(0, 4)) {
    case 0:
    case 1:
      spec.wan_loss = 0.0;
      break;
    case 2:
      spec.wan_loss = 1e-4;
      break;
    case 3:
      spec.wan_loss = 1e-3;
      break;
    default:
      spec.wan_loss = 5e-3;
      break;
  }
  spec.policy = pick_policy(rng);
  spec.hostile = pick_hostile(rng, spec.pops);

  const bool has_agents = spec.policy.kind == policy::PolicyKind::kAdaptive;
  if (spec.policy.governed && rng.bernoulli(0.5)) {
    spec.budget_override =
        static_cast<std::uint32_t>(60 * rng.uniform_int(1, 4));
  }
  const std::int64_t legs = rng.uniform_int(0, 3);
  for (std::int64_t i = 0; i < legs; ++i) {
    add_fault_leg(rng, spec.faults, spec.pops, spec.hosts, spec.duration_s,
                  has_agents);
  }
  return spec;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  CampaignResult result;
  for (std::size_t index = 0; index < config.runs; ++index) {
    const ChaosSpec spec = generate_spec(config.seed, index);
    if (spec.golden) ++result.golden_runs;
    const RunResult run = run_chaos_spec(spec);
    ++result.runs;
    if (config.on_run) config.on_run(index, spec, run);
    if (run.violations.empty()) continue;

    CampaignFinding finding;
    finding.index = index;
    finding.spec = spec;
    finding.violations = run.violations;
    if (config.shrink) {
      ShrinkResult shrunk = shrink(spec, run.violations.front().oracle,
                                   config.max_shrink_runs);
      finding.minimized = shrunk.spec;
      finding.minimized_violations = std::move(shrunk.violations);
      finding.shrink_runs = shrunk.runs;
      result.shrink_runs += shrunk.runs;
    } else {
      finding.minimized = spec;
      finding.minimized_violations = run.violations;
    }
    result.findings.push_back(std::move(finding));
  }
  return result;
}

}  // namespace riptide::chaos

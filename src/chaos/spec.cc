#include "chaos/spec.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "cdn/pops.h"
#include "faults/harness.h"

namespace riptide::chaos {

namespace {

[[noreturn]] void bad_spec(const std::string& why, const std::string& token,
                           std::size_t offset) {
  throw std::invalid_argument("ChaosSpec::parse: " + why + " at byte " +
                              std::to_string(offset) + ": '" + token + "'");
}

std::uint64_t parse_u64(const std::string& text, std::uint64_t min,
                        std::uint64_t max, std::size_t offset) {
  if (text.empty()) bad_spec("empty number", text, offset);
  for (char c : text) {
    if (c < '0' || c > '9') bad_spec("bad integer", text, offset);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || value < min ||
      value > max) {
    bad_spec("integer out of range", text, offset);
  }
  return value;
}

double parse_double(const std::string& text, double min, double max,
                    std::size_t offset) {
  if (text.empty()) bad_spec("empty number", text, offset);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size() || !(value >= min) ||
      !(value <= max)) {
    bad_spec("number out of range", text, offset);
  }
  return value;
}

// Shortest decimal that round-trips through strtod, so canonical spec
// text stays short and parse(to_string()) is exact.
std::string format_double(double value) {
  char buf[64];
  for (int precision : {6, 9, 15, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

// Rethrows a sub-grammar parse error anchored at the embedding spec's
// value offset, so a campaign log points into the chaos spec file, not
// into a string nobody can see.
[[noreturn]] void bad_sub_spec(const char* key, const std::exception& err,
                               std::size_t value_offset) {
  throw std::invalid_argument("ChaosSpec::parse: " + std::string(key) + ": " +
                              err.what() + " (value starts at byte " +
                              std::to_string(value_offset) + ")");
}

}  // namespace

bool operator==(const ChaosSpec& a, const ChaosSpec& b) {
  return a.pops == b.pops && a.hosts == b.hosts &&
         a.duration_s == b.duration_s && a.seed == b.seed &&
         a.wan_loss == b.wan_loss && a.policy == b.policy &&
         a.hostile == b.hostile && a.faults == b.faults &&
         a.golden == b.golden && a.break_hook == b.break_hook &&
         a.budget_override == b.budget_override;
}

ChaosSpec ChaosSpec::golden_spec() {
  ChaosSpec spec;
  spec.golden = true;
  spec.pops = 4;
  spec.hosts = 1;
  spec.duration_s = 60.0;
  spec.seed = 42;
  spec.wan_loss = 2e-4;
  return spec;
}

bool ChaosSpec::needs_persistence() const {
  for (const auto& event : faults.events()) {
    if (event.kind == faults::FaultKind::kAgentCrash ||
        event.kind == faults::FaultKind::kSnapshotCorrupt) {
      return true;
    }
  }
  return false;
}

ChaosSpec ChaosSpec::parse(const std::string& text) {
  ChaosSpec spec;
  std::set<std::string> seen;
  std::size_t faults_at = 0;
  std::size_t hostile_at = 0;

  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    auto line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string line = text.substr(line_start, line_end - line_start);
    const std::size_t at = line_start;
    line_start = line_end + 1;
    if (line.empty() || line[0] == '#') {
      if (line_end == text.size()) break;
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_spec("expected key=value", line, at);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    const std::size_t value_at = at + eq + 1;
    if (!seen.insert(key).second) bad_spec("duplicate key", key, at);

    if (key == "pops") {
      spec.pops = parse_u64(value, 2, 8, value_at);
    } else if (key == "hosts") {
      spec.hosts = static_cast<int>(parse_u64(value, 1, 8, value_at));
    } else if (key == "duration") {
      spec.duration_s = parse_double(value, 1.0, 600.0, value_at);
    } else if (key == "seed") {
      spec.seed = parse_u64(value, 0, UINT64_MAX, value_at);
    } else if (key == "wan_loss") {
      spec.wan_loss = parse_double(value, 0.0, 0.5, value_at);
    } else if (key == "policy") {
      try {
        spec.policy = policy::parse_policy(value);
      } catch (const std::exception& err) {
        bad_sub_spec("policy", err, value_at);
      }
    } else if (key == "hostile") {
      hostile_at = value_at;
      try {
        spec.hostile = cdn::parse_hostile_spec(value);
      } catch (const std::exception& err) {
        bad_sub_spec("hostile", err, value_at);
      }
    } else if (key == "faults") {
      faults_at = value_at;
      try {
        spec.faults = faults::FaultPlan::parse(value);
      } catch (const std::exception& err) {
        bad_sub_spec("faults", err, value_at);
      }
    } else if (key == "golden") {
      spec.golden = parse_u64(value, 0, 1, value_at) != 0;
    } else if (key == "break") {
      if (!value.empty() && value != "budget") {
        bad_spec("unknown break hook", value, value_at);
      }
      spec.break_hook = value;
    } else if (key == "budget") {
      spec.budget_override =
          static_cast<std::uint32_t>(parse_u64(value, 0, 1'000'000, value_at));
    } else {
      bad_spec("unknown key", key, at);
    }
    if (line_end == text.size()) break;
  }

  // The golden shape is pinned, not configurable: a spec that says
  // golden=1 *is* the determinism-suite world (canonicalized here so the
  // shrinker and hand-edited files can't half-change it).
  if (spec.golden) {
    const std::uint64_t seed = spec.seed;
    spec = golden_spec();
    spec.seed = seed;
    return spec;
  }

  // Semantic cross-checks the sub-grammars can't do alone: every PoP /
  // host a sub-spec names must exist in this spec's world.
  if ((spec.hostile.kind == cdn::HostileKind::kIncast ||
       spec.hostile.kind == cdn::HostileKind::kCombined) &&
      spec.hostile.victim_pop >= spec.pops) {
    bad_spec("hostile victim PoP out of range",
             std::to_string(spec.hostile.victim_pop), hostile_at);
  }
  const int total_hosts = static_cast<int>(spec.pops) * spec.hosts;
  for (const auto& event : spec.faults.events()) {
    switch (event.kind) {
      case faults::FaultKind::kLinkDown:
      case faults::FaultKind::kLinkUp:
      case faults::FaultKind::kLinkFlap:
      case faults::FaultKind::kLossBurst:
      case faults::FaultKind::kRateChange:
      case faults::FaultKind::kDelayChange:
        if (event.pop_a >= spec.pops || event.pop_b >= spec.pops) {
          bad_spec("fault link PoP out of range",
                   std::to_string(event.pop_a) + "-" +
                       std::to_string(event.pop_b),
                   faults_at);
        }
        break;
      case faults::FaultKind::kAgentCrash:
      case faults::FaultKind::kSnapshotCorrupt:
      case faults::FaultKind::kRouteDrift:
        if (event.host_index >= total_hosts) {
          bad_spec("fault host index out of range",
                   std::to_string(event.host_index), faults_at);
        }
        break;
      default:
        break;
    }
  }
  return spec;
}

std::string ChaosSpec::to_string() const {
  std::string out = "# riptide chaos spec v1\n";
  out += "pops=" + std::to_string(pops) + "\n";
  out += "hosts=" + std::to_string(hosts) + "\n";
  out += "duration=" + format_double(duration_s) + "\n";
  out += "seed=" + std::to_string(seed) + "\n";
  out += "wan_loss=" + format_double(wan_loss) + "\n";
  out += "policy=" + policy::to_string(policy) + "\n";
  out += "hostile=" + cdn::to_spec_string(hostile) + "\n";
  out += "faults=" + faults::to_spec_string(faults) + "\n";
  out += "golden=" + std::string(golden ? "1" : "0") + "\n";
  out += "break=" + break_hook + "\n";
  out += "budget=" + std::to_string(budget_override) + "\n";
  return out;
}

cdn::ExperimentConfig ChaosSpec::to_config() const {
  cdn::ExperimentConfig config;
  if (golden) {
    // Bit-for-bit the golden_config() of tests/determinism_test.cc — the
    // fingerprint oracle compares against the suite's pinned CRC, so any
    // divergence here would be indistinguishable from a real regression.
    config.pop_specs = {
        {"lon", cdn::Continent::kEurope, {51.51, -0.13}},
        {"fra", cdn::Continent::kEurope, {50.11, 8.68}},
        {"nyc", cdn::Continent::kNorthAmerica, {40.71, -74.01}},
        {"tyo", cdn::Continent::kAsia, {35.68, 139.69}}};
    config.topology.hosts_per_pop = 1;
    config.topology.wan_loss_probability = 2e-4;
    config.topology.seed = seed;
    config.riptide_enabled = true;
    config.riptide.update_interval = sim::Time::seconds(1);
    config.riptide.c_max = 100;
    config.probe.interval = sim::Time::seconds(5);
    config.probe.idle_close = sim::Time::seconds(10);
    config.duration = sim::Time::seconds(60);
    config.cwnd_sample_interval = sim::Time::seconds(10);
    config.seed = seed;
    return config;
  }

  const auto& all_specs = cdn::default_pop_specs();
  config.pop_specs.assign(
      all_specs.begin(),
      all_specs.begin() + static_cast<std::ptrdiff_t>(pops));
  config.topology.hosts_per_pop = hosts;
  config.topology.wan_loss_probability = wan_loss;
  config.topology.seed = seed;
  config.seed = seed;
  config.duration = sim::Time::from_seconds(duration_s);
  config.riptide.update_interval = sim::Time::seconds(1);
  config.riptide.c_max = 100;
  config.probe.interval = sim::Time::seconds(5);
  config.probe.idle_close = sim::Time::seconds(10);
  config.cwnd_sample_interval = sim::Time::seconds(10);

  policy::apply_policy(config, policy);
  if (config.riptide_enabled) {
    // Reconciliation is always on in chaos runs: the route-consistency
    // oracle judges the table *after* the reconciler had its say, so a
    // drifted route that survives is a real repair failure, not a
    // feature left off.
    config.riptide.reconcile_routes = true;
    if (needs_persistence()) {
      config.riptide.checkpoint_interval = sim::Time::seconds(5);
    }
    if (budget_override > 0) {
      config.riptide.governor_budget_segments = budget_override;
    }
    if (break_hook == "budget") {
      config.riptide.test_skip_budget_enforcement = true;
    }
  }

  config.hostile = hostile;
  cdn::apply_shallow_buffer(hostile, config.topology.wan_queue_packets);

  if (!faults.empty()) {
    faults::FaultHarness::install(config, faults);
  }
  return config;
}

}  // namespace riptide::chaos

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chaos/oracle.h"
#include "chaos/spec.h"

namespace riptide::chaos {

// Outcome of delta-debugging a failing spec.
struct ShrinkResult {
  // The minimized spec: no single candidate reduction still reproduces
  // the violation (1-minimal under the reduction set, or the budget ran
  // out first).
  ChaosSpec spec;
  // Violations of the minimized spec from the final verification run —
  // guaranteed to include the target oracle.
  std::vector<Violation> violations;
  // Candidate executions spent (each is one full chaos run).
  std::size_t runs = 0;
};

// Greedy fixpoint delta-debugger: repeatedly tries ordered reductions —
// drop one fault event, disable the hostile scenario, zero the WAN loss,
// clear the budget override, halve the duration (floor 10 s), drop to
// one host per PoP, remove the last PoP (when nothing references it),
// collapse the policy granularity — accepting a reduction iff the
// reduced spec still violates the SAME named oracle, restarting from the
// accepted spec until no reduction survives or `max_runs` candidate
// executions were spent.
//
// Determinism is what makes this sound: a run is a pure function of its
// spec, so "still fails" is a property of the candidate, not of luck.
// Golden specs are returned unshrunk — every field is pinned, so there
// is nothing to reduce.
ShrinkResult shrink(const ChaosSpec& failing, const std::string& oracle,
                    std::size_t max_runs = 64);

}  // namespace riptide::chaos

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "chaos/oracle.h"
#include "chaos/shrink.h"
#include "chaos/spec.h"

namespace riptide::chaos {

// Campaign parameters. A campaign is a pure function of (seed, runs):
// re-running it reproduces the same specs, the same violations, and the
// same minimized repros.
struct CampaignConfig {
  std::uint64_t seed = 1;
  std::size_t runs = 100;
  // Delta-debug each finding to a minimal repro (costs extra runs).
  bool shrink = true;
  std::size_t max_shrink_runs = 64;
  // Observer invoked after each run completes (progress reporting);
  // observation only — must not influence the campaign.
  std::function<void(std::size_t index, const ChaosSpec& spec,
                     const RunResult& result)>
      on_run;
};

// One spec whose run violated at least one oracle, plus its shrunk form.
struct CampaignFinding {
  std::size_t index = 0;
  ChaosSpec spec;
  std::vector<Violation> violations;
  // Minimized against the first violation's oracle; equals `spec` when
  // shrinking was disabled.
  ChaosSpec minimized;
  std::vector<Violation> minimized_violations;
  std::size_t shrink_runs = 0;
};

struct CampaignResult {
  std::size_t runs = 0;
  std::size_t golden_runs = 0;
  std::size_t shrink_runs = 0;
  std::vector<CampaignFinding> findings;
};

// The spec executed at `index` of a campaign seeded `campaign_seed`:
// a deterministic draw over the cross product of world shapes, the
// policy zoo, hostile scenarios, and fault-plan legs. Every 16th index
// is the golden determinism spec, so long campaigns keep re-checking the
// bit-identity pin alongside the adversarial draws.
ChaosSpec generate_spec(std::uint64_t campaign_seed, std::size_t index);

// Runs the campaign: generate, execute against the oracles, and shrink
// each finding. Deterministic for a given config (modulo on_run, which
// only observes).
CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace riptide::chaos

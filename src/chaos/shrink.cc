#include "chaos/shrink.h"

#include <algorithm>

namespace riptide::chaos {

namespace {

bool violates(const RunResult& result, const std::string& oracle) {
  return std::any_of(result.violations.begin(), result.violations.end(),
                     [&](const Violation& v) { return v.oracle == oracle; });
}

// Whether every agent-targeted fault names a host that exists in a world
// of `pops` PoPs x `hosts` hosts each. Candidate reductions that shrink
// the world must keep the plan's targets resolvable, or the reduced spec
// is invalid rather than smaller.
bool agent_faults_fit(const faults::FaultPlan& plan, std::size_t pops,
                      int hosts) {
  const int total = static_cast<int>(pops) * hosts;
  for (const auto& event : plan.events()) {
    switch (event.kind) {
      case faults::FaultKind::kAgentCrash:
      case faults::FaultKind::kSnapshotCorrupt:
      case faults::FaultKind::kRouteDrift:
        if (event.host_index >= total) return false;
        break;
      default:
        break;
    }
  }
  return true;
}

// Whether the spec still makes sense with its last PoP removed: nothing
// may reference PoP index pops-1 (or a host on it).
bool can_drop_last_pop(const ChaosSpec& spec) {
  if (spec.pops <= 2) return false;
  const std::size_t last = spec.pops - 1;
  if ((spec.hostile.kind == cdn::HostileKind::kIncast ||
       spec.hostile.kind == cdn::HostileKind::kCombined) &&
      spec.hostile.victim_pop >= last) {
    return false;
  }
  for (const auto& event : spec.faults.events()) {
    switch (event.kind) {
      case faults::FaultKind::kLinkDown:
      case faults::FaultKind::kLinkUp:
      case faults::FaultKind::kLinkFlap:
      case faults::FaultKind::kLossBurst:
      case faults::FaultKind::kRateChange:
      case faults::FaultKind::kDelayChange:
        if (event.pop_a >= last || event.pop_b >= last) return false;
        break;
      default:
        break;
    }
  }
  return agent_faults_fit(spec.faults, last, spec.hosts);
}

// Ordered candidate reductions of `spec`. Cheap structural cuts (whole
// fault events, whole scenarios) come before parameter reductions so the
// big wins land within small run budgets.
std::vector<ChaosSpec> candidates(const ChaosSpec& spec) {
  std::vector<ChaosSpec> out;
  for (std::size_t drop = 0; drop < spec.faults.size(); ++drop) {
    ChaosSpec c = spec;
    faults::FaultPlan reduced;
    for (std::size_t i = 0; i < spec.faults.size(); ++i) {
      if (i != drop) reduced.add(spec.faults.events()[i]);
    }
    c.faults = reduced;
    out.push_back(std::move(c));
  }
  if (spec.hostile.kind != cdn::HostileKind::kNone) {
    ChaosSpec c = spec;
    c.hostile = cdn::HostileConfig{};
    out.push_back(std::move(c));
  }
  if (spec.wan_loss > 0.0) {
    ChaosSpec c = spec;
    c.wan_loss = 0.0;
    out.push_back(std::move(c));
  }
  if (spec.budget_override > 0) {
    ChaosSpec c = spec;
    c.budget_override = 0;
    out.push_back(std::move(c));
  }
  if (spec.duration_s > 10.0) {
    ChaosSpec c = spec;
    c.duration_s = std::max(10.0, spec.duration_s / 2.0);
    out.push_back(std::move(c));
  }
  if (spec.hosts > 1 && agent_faults_fit(spec.faults, spec.pops, 1)) {
    ChaosSpec c = spec;
    c.hosts = 1;
    out.push_back(std::move(c));
  }
  if (can_drop_last_pop(spec)) {
    ChaosSpec c = spec;
    c.pops = spec.pops - 1;
    out.push_back(std::move(c));
  }
  if (spec.policy.prefix_length != 32) {
    ChaosSpec c = spec;
    c.policy.prefix_length = 32;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const ChaosSpec& failing, const std::string& oracle,
                    std::size_t max_runs) {
  ShrinkResult result;
  result.spec = failing;
  if (!failing.golden) {
    bool progress = true;
    while (progress && result.runs < max_runs) {
      progress = false;
      for (const ChaosSpec& candidate : candidates(result.spec)) {
        if (result.runs >= max_runs) break;
        ++result.runs;
        if (violates(run_chaos_spec(candidate), oracle)) {
          result.spec = candidate;
          progress = true;
          break;  // restart the reduction list from the smaller spec
        }
      }
    }
  }
  // Final verification run: the reported violations are the minimized
  // spec's own, so a repro file replays to exactly these.
  result.violations = run_chaos_spec(result.spec).violations;
  return result;
}

}  // namespace riptide::chaos

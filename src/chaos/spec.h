#pragma once

#include <cstdint>
#include <string>

#include "cdn/experiment.h"
#include "cdn/hostile.h"
#include "faults/fault_plan.h"
#include "policy/policy.h"

namespace riptide::chaos {

// One fully-described chaos run: a point in the cross product of the
// repo's scenario grammars (fault plan x hostile scenario x policy zoo)
// plus the world-shape knobs the generators perturb. A spec is the unit
// of everything in src/chaos — generation, execution, violation
// reporting, delta-debugging — because it is (a) deterministic (the run
// is a pure function of the spec) and (b) serializable (a violation ships
// as a replayable text file, and the shrinker edits that text's parse).
struct ChaosSpec {
  // World shape. `pops` takes the first N of cdn::default_pop_specs().
  std::size_t pops = 4;
  int hosts = 1;
  double duration_s = 30.0;
  std::uint64_t seed = 1;
  double wan_loss = 0.0;

  // Scenario grammars, one sub-spec each (canonical string forms embed in
  // the spec file and round-trip through the sub-grammar parsers).
  policy::PolicySpec policy{};
  cdn::HostileConfig hostile{};
  faults::FaultPlan faults{};

  // Pin the run to the golden-determinism shape of
  // tests/determinism_test.cc: the exact 4-PoP world whose knobs-off
  // fingerprint is the repo's golden CRC. When set, the world-shape
  // fields above are forced to the golden values at parse/generation time
  // and the fingerprint oracle arms (for seed 42).
  bool golden = false;

  // Intentional-regression hooks, so campaigns can prove the oracles
  // detect what they claim to. "" = none; "budget" = run with the
  // governor's budget enforcement silently skipped
  // (core::RiptideConfig::test_skip_budget_enforcement).
  std::string break_hook;

  // Override the governor budget (segments) after policy application;
  // 0 keeps the policy's value. Small budgets make the budget oracle's
  // job non-vacuous in short runs.
  std::uint32_t budget_override = 0;

  // The golden-determinism spec (seed 42, knobs off, fingerprint armed).
  static ChaosSpec golden_spec();

  // Parses the line-based `key=value` form produced by to_string().
  // Unknown keys, duplicate keys, out-of-range values, and semantic
  // inconsistencies (a fault naming a PoP the world doesn't have) throw
  // std::invalid_argument naming the offending token and its byte offset.
  // Blank lines and `#` comments are ignored.
  static ChaosSpec parse(const std::string& text);

  // Canonical serialization: fixed key order, every key emitted,
  // sub-grammars in their canonical string forms.
  // parse(to_string()) == *this for every valid spec.
  std::string to_string() const;

  // The complete experiment configuration for this spec: world shape,
  // policy, hostile scenario (including the shallow-buffer queue shrink),
  // fault harness installation, checkpointing when the plan crashes or
  // corrupts snapshots, and the break hook. Agents always reconcile
  // routes so the route-consistency oracle has its subject.
  cdn::ExperimentConfig to_config() const;

  // Whether any fault event needs persistence (crash / snapshot-corrupt):
  // to_config() arms checkpointing exactly then.
  bool needs_persistence() const;
};

bool operator==(const ChaosSpec& a, const ChaosSpec& b);
inline bool operator!=(const ChaosSpec& a, const ChaosSpec& b) {
  return !(a == b);
}

}  // namespace riptide::chaos

#include "chaos/oracle.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <string>

#include "cdn/experiment.h"
#include "core/agent.h"
#include "persist/crc32.h"
#include "tcp/segment_pool.h"

namespace riptide::chaos {

namespace {

// The determinism suite's pinned golden CRC (tests/determinism_test.cc).
// Duplicated by design: the chaos fingerprint oracle must fail loudly if
// either copy drifts, because "the golden moved" is exactly the class of
// regression this subsystem hunts.
constexpr std::uint32_t kGoldenCrc = 0x1B61F592;

// Bit-exact replica of tests/determinism_test.cc serialize_metrics():
// every observable output of a run, in the same field order and the same
// formats. Any edit here must be mirrored there (and vice versa) or the
// golden oracle diverges from the golden test.
std::string serialize_metrics(const cdn::Experiment& exp) {
  std::string out;
  out.reserve(1 << 16);
  char line[256];
  for (const auto& f : exp.metrics().flows()) {
    std::snprintf(line, sizeof line,
                  "F,%d,%d,%" PRIu64 ",%" PRId64 ",%" PRId64 ",%d,%.17g\n",
                  f.src_pop, f.dst_pop, f.object_bytes, f.started.ns(),
                  f.duration.ns(), f.fresh ? 1 : 0, f.base_rtt_ms);
    out += line;
  }
  for (const auto& s : exp.metrics().cwnd_samples()) {
    std::snprintf(line, sizeof line, "W,%d,%u,%" PRId64 "\n", s.pop,
                  s.cwnd_segments, s.at.ns());
    out += line;
  }
  for (const auto& agent : exp.agents()) {
    const auto& st = agent->stats();
    std::snprintf(line, sizeof line,
                  "A,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                  st.polls, st.connections_observed, st.routes_set,
                  st.routes_expired);
    out += line;
  }
  std::snprintf(line, sizeof line, "S,%" PRId64 "\n",
                exp.simulator().now().ns());
  out += line;
  return out;
}

// Collects violations with one witness per (oracle, subject): a broken
// invariant re-fires every poll, and repeating it thousands of times
// buries the signal without adding shrinkable information.
class ViolationSink {
 public:
  explicit ViolationSink(std::vector<Violation>& out) : out_(out) {}

  void emit(const char* oracle, const std::string& subject,
            const std::string& detail) {
    if (!seen_.insert(std::string(oracle) + "|" + subject).second) return;
    out_.push_back({oracle, subject + ": " + detail});
  }

 private:
  std::vector<Violation>& out_;
  std::set<std::string> seen_;
};

// Per-poll oracles, run inside the poll's event callback so nothing can
// interleave between the poll body and the judgment. Gated on how the
// poll actually ended (core::PollOutcome): a poll that bailed early on
// cooldown or a failed snapshot never ran budget enforcement or the
// reconciler, so those invariants are not judged on it.
void check_poll(core::RiptideAgent& agent, const core::PollOutcome& outcome,
                ViolationSink& sink) {
  if (!outcome.completed) return;
  const std::string who = agent.host().name();
  const auto now_s = agent.host().simulator().now().to_seconds();

  // (a) Host-wide governor budget. Slack of one segment per installed
  // route absorbs proportional-scale rounding (each lround can round up
  // by half a segment) and the floor-at-1 of tiny budgets. Skipped while
  // actuator retries are pending: a failed scale-down legitimately
  // leaves the old (larger) window installed until the retry lands.
  const std::uint32_t budget = agent.config().governor_budget_segments;
  if (budget > 0 && agent.pending_actuator_ops() == 0) {
    std::uint64_t total = 0;
    for (const auto& [prefix, metrics] : agent.installed_routes()) {
      total += metrics.initcwnd_segments;
    }
    const std::uint64_t slack = agent.installed_routes().size();
    if (total > budget + slack) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "installed initcwnd sum %" PRIu64
                    " > budget %u (+%" PRIu64 " slack) at t=%.3fs",
                    total, budget, slack, now_s);
      sink.emit(kOracleBudget, who, buf);
    }
  }

  // (b) Route consistency after reconciliation: every learned-looking
  // route in the live table is one the agent believes it installed, with
  // the metrics it installed; every installed route is live with those
  // metrics. Destinations with a pending actuator retry are excluded —
  // the agent knows they are inconsistent and is already fixing them.
  if (outcome.reconciled) {
    const auto& table = agent.host().routing_table();
    const auto& installed = agent.installed_routes();
    for (const auto& entry : table.learned_routes()) {
      if (agent.has_pending_op(entry.prefix)) continue;
      const auto it = installed.find(entry.prefix);
      if (it == installed.end()) {
        // Mirror the reconciler's deferral: a learned route the agent
        // doesn't own but whose destination the observed table still
        // wants is re-programmed by the next poll, not withdrawn — only
        // an ownerless *and* unwanted route is an orphan.
        if (agent.learned(entry.prefix) != nullptr) continue;
        sink.emit(kOracleRoute, who,
                  "orphan route " + entry.prefix.to_string() +
                      " survived reconciliation at t=" +
                      std::to_string(now_s) + "s");
      } else if (!(it->second == entry.metrics)) {
        sink.emit(kOracleRoute, who,
                  "mangled route " + entry.prefix.to_string() +
                      " survived reconciliation (live initcwnd " +
                      std::to_string(entry.metrics.initcwnd_segments) +
                      " != installed " +
                      std::to_string(it->second.initcwnd_segments) + ")");
      }
    }
    for (const auto& [prefix, metrics] : installed) {
      if (agent.has_pending_op(prefix)) continue;
      const auto* live = table.find_route(prefix);
      if (live == nullptr || !(live->metrics == metrics)) {
        sink.emit(kOracleRoute, who,
                  "installed route " + prefix.to_string() +
                      " missing or diverged in the live table after "
                      "reconciliation");
      }
      // (c) No window outside TTL control: an installed route must have
      // a learned table entry backing it. A checkpoint restore that
      // resurrects a withdrawn route without re-adopting it into the
      // table would park a boosted window here forever.
      if (agent.learned(prefix) == nullptr) {
        sink.emit(kOracleZombie, who,
                  "installed route " + prefix.to_string() +
                      " has no learned table entry (window outside TTL "
                      "control)");
      }
    }
  }
}

void check_teardown(cdn::Experiment& exp, ViolationSink& sink) {
  // (d) Liveness: data in flight at teardown is fine (the clock simply
  // stopped), but only if loss recovery can still drive it — in-flight
  // bytes with no RTO armed can never complete nor be accounted to a
  // drop reason.
  for (host::Host* h : exp.topology().all_hosts()) {
    for (const auto& info : h->socket_stats()) {
      if (info.bytes_in_flight == 0) continue;
      auto* conn = h->find_connection(info.tuple);
      if (conn == nullptr || !conn->rto_armed()) {
        sink.emit(kOracleStall, h->name(),
                  std::to_string(info.bytes_in_flight) +
                      " bytes in flight with no RTO armed");
      }
    }
  }
  // Probe accounting identity: every probe launched ends as completed,
  // failed, or visibly in flight; none may be stranded on a dead
  // connection the client never noticed.
  std::size_t index = 0;
  for (const auto& client : exp.probe_clients()) {
    const std::string who = "probe-client-" + std::to_string(index++);
    const std::uint64_t accounted = client->probes_completed() +
                                    client->probes_failed() +
                                    client->probes_in_flight();
    if (client->probes_issued() != accounted) {
      sink.emit(kOracleProbes, who,
                "issued " + std::to_string(client->probes_issued()) +
                    " != completed+failed+in-flight " +
                    std::to_string(accounted));
    }
    if (client->stalled_probes() != 0) {
      sink.emit(kOracleProbes, who,
                std::to_string(client->stalled_probes()) +
                    " probes stalled on dead connections");
    }
  }
}

}  // namespace

bool operator==(const Violation& a, const Violation& b) {
  return a.oracle == b.oracle && a.detail == b.detail;
}

RunResult run_chaos_spec(const ChaosSpec& spec) {
  RunResult result;
  ViolationSink sink(result.violations);
  const std::size_t live_before = tcp::SegmentPool::local().live();
  {
    cdn::ExperimentConfig config = spec.to_config();
    cdn::Experiment exp(config);
    for (const auto& agent : exp.agents()) {
      agent->set_post_poll_hook(
          [&sink](core::RiptideAgent& a, const core::PollOutcome& outcome) {
            check_poll(a, outcome, sink);
          });
    }
    exp.run();
    check_teardown(exp, sink);
    result.fingerprint = persist::crc32(serialize_metrics(exp));
    // (f) Knobs-off determinism: the golden spec at the golden seed must
    // still produce the suite's pinned fingerprint.
    if (spec.golden && spec.seed == 42 && result.fingerprint != kGoldenCrc) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "fingerprint 0x%08X != golden 0x%08X", result.fingerprint,
                    kGoldenCrc);
      sink.emit(kOracleGolden, "golden-run", buf);
    }
  }
  // (e) SegmentPool balance, judged after the experiment is destroyed:
  // every segment checked out during the run must have been returned.
  const std::size_t live_after = tcp::SegmentPool::local().live();
  if (live_after != live_before) {
    sink.emit(kOracleLeak, "segment-pool",
              std::to_string(live_after) + " live segments after teardown "
              "(was " + std::to_string(live_before) + " before the run)");
  }
  return result;
}

}  // namespace riptide::chaos

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/spec.h"

namespace riptide::chaos {

// One invariant breach observed while executing a spec. `oracle` is the
// stable name the shrinker keys on (a minimized repro must fail the SAME
// oracle, not merely fail); `detail` is human-facing context.
struct Violation {
  std::string oracle;
  std::string detail;
};

bool operator==(const Violation& a, const Violation& b);

// Everything a chaos run reports. The fingerprint is the CRC-32 of the
// determinism suite's exact metrics serialization, computed for every
// run: campaign determinism checks compare it run-to-run, and for golden
// specs (seed 42) it is judged against the pinned golden CRC.
struct RunResult {
  std::vector<Violation> violations;
  std::uint32_t fingerprint = 0;
};

// Stable oracle names (see DESIGN.md "Chaos search & invariant oracles").
//   kOracleBudget       governor budget exceeded after a completed poll
//   kOracleRoute        live learned route inconsistent with the agent's
//                       installed view after reconciliation
//   kOracleZombie       installed route with no learned table entry — a
//                       window outside TTL control (also what a
//                       checkpoint restore resurrecting a withdrawn
//                       route produces)
//   kOracleStall        connection with bytes in flight and no RTO armed
//                       at teardown — data that can never complete
//   kOracleProbes       probe accounting identity broken (issued !=
//                       completed + failed + in-flight, or a stalled
//                       probe whose connection died unnoticed)
//   kOracleLeak         SegmentPool live count changed across the run
//   kOracleGolden       golden spec fingerprint != the pinned CRC
inline constexpr const char* kOracleBudget = "governor-budget";
inline constexpr const char* kOracleRoute = "route-consistency";
inline constexpr const char* kOracleZombie = "zombie-route";
inline constexpr const char* kOracleStall = "stalled-connection";
inline constexpr const char* kOracleProbes = "probe-accounting";
inline constexpr const char* kOracleLeak = "segment-leak";
inline constexpr const char* kOracleGolden = "golden-fingerprint";

// Builds the spec's experiment, arms the per-poll oracles on every agent
// (post-poll hooks run atomically inside the poll's event callback), runs
// it, then applies the teardown oracles (stall, probe accounting, golden
// fingerprint) and, after the experiment is destroyed, the segment-leak
// check. Deterministic: equal specs produce equal RunResults.
//
// Violations are deduplicated per (oracle, agent) — a budget regression
// violates every subsequent poll, and one witness per agent is what the
// shrinker needs.
RunResult run_chaos_spec(const ChaosSpec& spec);

}  // namespace riptide::chaos

#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace riptide::stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (buckets == 0) throw std::invalid_argument("Histogram: buckets == 0");
  counts_.assign(buckets, 0);
}

void Histogram::add(double sample) {
  ++total_;
  if (sample < lo_) {
    ++underflow_;
    return;
  }
  if (sample >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((sample - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard against FP edge at hi_
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::size_t Histogram::mode_bucket() const {
  if (total_ == 0) throw std::logic_error("Histogram::mode_bucket on empty");
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render(std::size_t max_width) const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(peak) * static_cast<double>(max_width)));
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

}  // namespace riptide::stats

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace riptide::stats {

// Fixed-width linear histogram over [lo, hi). Samples outside the range land
// in dedicated underflow/overflow buckets so no observation is silently lost.
class Histogram {
 public:
  // Precondition: lo < hi, buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double sample);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  // Index of the most populated bucket (ties resolve to the lowest index).
  // Precondition: total() > 0.
  std::size_t mode_bucket() const;

  // ASCII rendering for bench/debug output.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace riptide::stats

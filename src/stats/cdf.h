#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace riptide::stats {

// Empirical distribution over double-valued samples. Samples are accumulated
// unsorted and sorted lazily on first query, so insertion stays O(1).
//
// Used throughout the benches to regenerate the paper's CDF figures (file
// sizes, RTTs, congestion windows, completion times).
class Cdf {
 public:
  void add(double sample);
  void add_all(const std::vector<double>& samples);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Quantile in [0, 1]; linear interpolation between order statistics.
  // Precondition: !empty() and 0 <= q <= 1.
  double quantile(double q) const;

  // Convenience: quantile(p / 100).
  double percentile(double p) const { return quantile(p / 100.0); }

  // Fraction of samples <= x (the empirical CDF evaluated at x).
  double fraction_at_or_below(double x) const;

  double min() const;
  double max() const;
  double mean() const;

  // Evenly spaced (quantile, value) points, e.g. for printing a CDF curve.
  // Returns `points` pairs covering q in [0, 1].
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

  // Renders "p10=.. p25=.. p50=.. p75=.. p90=.. p99=.." for logs.
  std::string summary_string() const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace riptide::stats

#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace riptide::stats {

void Summary::add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double Summary::mean() const {
  if (empty()) throw std::logic_error("Summary::mean on empty");
  return mean_;
}

double Summary::variance() const {
  if (empty()) throw std::logic_error("Summary::variance on empty");
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  if (empty()) throw std::logic_error("Summary::min on empty");
  return min_;
}

double Summary::max() const {
  if (empty()) throw std::logic_error("Summary::max on empty");
  return max_;
}

std::string Summary::to_string() const {
  if (empty()) return "(empty)";
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

}  // namespace riptide::stats

#include "stats/perf.h"

#include <algorithm>
#include <cstdio>

namespace riptide::perf {

Counters& local() {
  thread_local Counters counters;
  return counters;
}

Counters Counters::delta_since(const Counters& before) const {
  Counters d;
  d.segments_allocated = segments_allocated - before.segments_allocated;
  d.segments_recycled = segments_recycled - before.segments_recycled;
  d.segment_heap_allocs = segment_heap_allocs - before.segment_heap_allocs;
  d.sack_heap_spills = sack_heap_spills - before.sack_heap_spills;
  d.segment_pool_live = segment_pool_live;
  d.segment_pool_high_water = segment_pool_high_water;
  d.segment_pool_free = segment_pool_free;
  d.events_dispatched = events_dispatched - before.events_dispatched;
  d.events_cascaded = events_cascaded - before.events_cascaded;
  d.overflow_promotions = overflow_promotions - before.overflow_promotions;
  d.timer_buckets_dispatched =
      timer_buckets_dispatched - before.timer_buckets_dispatched;
  d.packets_queued = packets_queued - before.packets_queued;
  d.bytes_queued = bytes_queued - before.bytes_queued;
  d.shard_windows = shard_windows - before.shard_windows;
  d.shard_wire_packets = shard_wire_packets - before.shard_wire_packets;
  d.flow_level_flows = flow_level_flows - before.flow_level_flows;
  return d;
}

void Counters::accumulate(const Counters& other) {
  segments_allocated += other.segments_allocated;
  segments_recycled += other.segments_recycled;
  segment_heap_allocs += other.segment_heap_allocs;
  sack_heap_spills += other.sack_heap_spills;
  segment_pool_live = std::max(segment_pool_live, other.segment_pool_live);
  segment_pool_high_water =
      std::max(segment_pool_high_water, other.segment_pool_high_water);
  segment_pool_free = std::max(segment_pool_free, other.segment_pool_free);
  events_dispatched += other.events_dispatched;
  events_cascaded += other.events_cascaded;
  overflow_promotions += other.overflow_promotions;
  timer_buckets_dispatched += other.timer_buckets_dispatched;
  packets_queued += other.packets_queued;
  bytes_queued += other.bytes_queued;
  shard_windows += other.shard_windows;
  shard_wire_packets += other.shard_wire_packets;
  flow_level_flows += other.flow_level_flows;
}

std::string to_json(const Counters& c) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"segments_allocated\":%llu,\"segments_recycled\":%llu,"
      "\"segment_heap_allocs\":%llu,\"sack_heap_spills\":%llu,"
      "\"segment_pool_live\":%llu,\"segment_pool_high_water\":%llu,"
      "\"segment_pool_free\":%llu,\"events_dispatched\":%llu,"
      "\"events_cascaded\":%llu,\"overflow_promotions\":%llu,"
      "\"timer_buckets_dispatched\":%llu,"
      "\"packets_queued\":%llu,\"bytes_queued\":%llu,"
      "\"shard_windows\":%llu,\"shard_wire_packets\":%llu,"
      "\"flow_level_flows\":%llu}",
      static_cast<unsigned long long>(c.segments_allocated),
      static_cast<unsigned long long>(c.segments_recycled),
      static_cast<unsigned long long>(c.segment_heap_allocs),
      static_cast<unsigned long long>(c.sack_heap_spills),
      static_cast<unsigned long long>(c.segment_pool_live),
      static_cast<unsigned long long>(c.segment_pool_high_water),
      static_cast<unsigned long long>(c.segment_pool_free),
      static_cast<unsigned long long>(c.events_dispatched),
      static_cast<unsigned long long>(c.events_cascaded),
      static_cast<unsigned long long>(c.overflow_promotions),
      static_cast<unsigned long long>(c.timer_buckets_dispatched),
      static_cast<unsigned long long>(c.packets_queued),
      static_cast<unsigned long long>(c.bytes_queued),
      static_cast<unsigned long long>(c.shard_windows),
      static_cast<unsigned long long>(c.shard_wire_packets),
      static_cast<unsigned long long>(c.flow_level_flows));
  return buf;
}

std::string to_run_json(const Counters& c) {
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "{\"segments_allocated\":%llu,\"segments_recycled\":%llu,"
      "\"sack_heap_spills\":%llu,\"events_dispatched\":%llu,"
      "\"events_cascaded\":%llu,\"overflow_promotions\":%llu,"
      "\"timer_buckets_dispatched\":%llu,"
      "\"packets_queued\":%llu,\"bytes_queued\":%llu,"
      "\"shard_windows\":%llu,\"shard_wire_packets\":%llu,"
      "\"flow_level_flows\":%llu}",
      static_cast<unsigned long long>(c.segments_allocated),
      static_cast<unsigned long long>(c.segments_recycled),
      static_cast<unsigned long long>(c.sack_heap_spills),
      static_cast<unsigned long long>(c.events_dispatched),
      static_cast<unsigned long long>(c.events_cascaded),
      static_cast<unsigned long long>(c.overflow_promotions),
      static_cast<unsigned long long>(c.timer_buckets_dispatched),
      static_cast<unsigned long long>(c.packets_queued),
      static_cast<unsigned long long>(c.bytes_queued),
      static_cast<unsigned long long>(c.shard_windows),
      static_cast<unsigned long long>(c.shard_wire_packets),
      static_cast<unsigned long long>(c.flow_level_flows));
  return buf;
}

}  // namespace riptide::perf

#pragma once

#include <cstdint>
#include <string>

namespace riptide::stats {

// Streaming summary statistics (Welford's online algorithm), O(1) memory.
// Suitable for long simulations where storing every sample is wasteful.
class Summary {
 public:
  void add(double sample);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Preconditions: !empty() (variance/stddev additionally need count >= 2,
  // and return 0 for a single sample).
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  std::string to_string() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace riptide::stats

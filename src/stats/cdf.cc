#include "stats/cdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace riptide::stats {

void Cdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = samples_.size() <= 1;
}

void Cdf::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = samples_.size() <= 1;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) {
    throw std::logic_error("Cdf::quantile on empty distribution");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Cdf::quantile: q outside [0, 1]");
  }
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::min() const {
  ensure_sorted();
  if (samples_.empty()) throw std::logic_error("Cdf::min on empty");
  return samples_.front();
}

double Cdf::max() const {
  ensure_sorted();
  if (samples_.empty()) throw std::logic_error("Cdf::max on empty");
  return samples_.back();
}

double Cdf::mean() const {
  if (samples_.empty()) throw std::logic_error("Cdf::mean on empty");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = points == 1
                         ? 0.5
                         : static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(q, quantile(q));
  }
  return out;
}

std::string Cdf::summary_string() const {
  if (samples_.empty()) return "(empty)";
  std::ostringstream os;
  os << "n=" << count();
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    os << " p" << static_cast<int>(p) << "=" << percentile(p);
  }
  return os.str();
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

}  // namespace riptide::stats

#pragma once

#include <cstdint>
#include <string>

namespace riptide::perf {

// Hot-path performance counters: allocator traffic on the segment path,
// simulator dispatch volume, and link queueing totals. The layer exists so
// perf PRs can *prove* their wins — every bench surfaces a counter delta in
// its JSON output, and tools/bench_diff.py turns two such files into a
// percent-delta table.
//
// Counters are monotone event counts except the `segment_pool_*` gauges,
// which report the pool's current/extreme occupancy. None of this feeds
// back into simulation behavior: counter reads and writes must never
// change event order, RNG draws, or metrics (the golden-determinism test
// pins that down).
struct Counters {
  // -- segment memory --
  std::uint64_t segments_allocated = 0;   // segments handed out (pool or heap)
  std::uint64_t segments_recycled = 0;    // segments returned to a free list
  std::uint64_t segment_heap_allocs = 0;  // operator-new hits on the segment
                                          // path (per-segment pre-pool; one
                                          // per slab refill with the pool)
  std::uint64_t sack_heap_spills = 0;     // SACK block sets past the inline
                                          // capacity (pathological reordering)

  // -- segment pool gauges (absolute values, not deltas) --
  std::uint64_t segment_pool_live = 0;        // checked out right now
  std::uint64_t segment_pool_high_water = 0;  // max simultaneously live
  std::uint64_t segment_pool_free = 0;        // recycled, awaiting reuse

  // -- dispatch --
  std::uint64_t events_dispatched = 0;  // simulator callbacks executed
  std::uint64_t packets_queued = 0;     // packets admitted to link queues
  std::uint64_t bytes_queued = 0;       // bytes admitted to link queues

  // -- timer-wheel scheduler (sim/simulator.h) --
  // These replace the retired compaction gauge: wheel cancellation unlinks
  // eagerly, so there is nothing left to compact. All three are functions
  // of the event schedule alone (never of wall time or thread count), so
  // they are safe to include in byte-identical multi-thread bench output.
  std::uint64_t events_cascaded = 0;        // events redistributed to a lower
                                            // wheel level as the cursor turned
  std::uint64_t overflow_promotions = 0;    // far-future events pulled from
                                            // the overflow heap into the wheel
  std::uint64_t timer_buckets_dispatched = 0;  // level-0 buckets detached and
                                               // run as batched run-lists

  // -- sharded execution (sim/shard.h, net/wire.h) --
  std::uint64_t shard_windows = 0;       // conservative windows executed
  std::uint64_t shard_wire_packets = 0;  // packets cloned across a shard
                                         // mailbox (never SegmentRefs)

  // -- hybrid fidelity (src/flow) --
  std::uint64_t flow_level_flows = 0;  // cross-traffic flows simulated at
                                       // flow level (no packet events)

  // Counts subtract `before`; gauges keep this (the "after") value — a
  // high-water mark is not meaningfully differenced.
  Counters delta_since(const Counters& before) const;

  // Folds another run's delta into this one for sweep-level summaries:
  // counts add, gauges take the maximum (summed high-water marks mean
  // nothing).
  void accumulate(const Counters& other);
};

// This thread's counters. Thread-local by design: a simulation (and every
// segment it allocates) is confined to one thread, including experiments
// fanned out through runner::ParallelRunner, so per-run deltas taken around
// thread-confined work are exact without atomics on the hot path.
Counters& local();

// One JSON object, fixed key order, e.g. {"segments_allocated":12,...}.
std::string to_json(const Counters& c);

// JSON with only the simulation-determined counts — what multi-threaded
// benches may emit per run. Excluded: `segment_heap_allocs` and the pool
// gauges, which depend on how warm the worker's thread-local SegmentPool
// already is and therefore on run-to-worker assignment; including them
// would break the "--threads N output is byte-identical" contract every
// bench honors. bench_micro (single-threaded by construction) reports the
// full set.
std::string to_run_json(const Counters& c);

}  // namespace riptide::perf

#pragma once

#include <optional>

namespace riptide::stats {

// Exponentially weighted moving average as used by Riptide's history
// combination step (paper §III-B): `final = alpha * history + (1 - alpha) *
// observation`. `alpha` is the weight applied to the *historical* value, so
// alpha = 0 ignores history entirely and alpha -> 1 freezes the estimate.
class Ewma {
 public:
  // Precondition: 0 <= alpha <= 1.
  explicit Ewma(double alpha) : alpha_(alpha) {}

  // Folds one observation into the average. The first observation seeds the
  // history directly (there is nothing to weight against yet).
  double update(double observation) {
    if (value_) {
      value_ = alpha_ * *value_ + (1.0 - alpha_) * observation;
    } else {
      value_ = observation;
    }
    return *value_;
  }

  bool has_value() const { return value_.has_value(); }
  double value() const { return value_.value(); }
  double alpha() const { return alpha_; }
  void reset() { value_.reset(); }

 private:
  double alpha_;
  std::optional<double> value_;
};

}  // namespace riptide::stats

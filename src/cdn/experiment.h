#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cdn/metrics.h"
#include "cdn/pops.h"
#include "cdn/probe.h"
#include "cdn/topology.h"
#include "cdn/traffic.h"
#include "core/agent.h"
#include "core/config.h"
#include "sim/simulator.h"
#include "stats/cdf.h"
#include "trace/sink.h"

namespace riptide::cdn {

class Experiment;

// A complete closed-loop scenario: the simulated CDN, probe mesh, optional
// organic traffic, optional Riptide agents on every host, and the periodic
// `ss` window sampler of §IV-B1. Running the same config with
// riptide_enabled on/off produces the treatment/control pairs behind
// Figures 10-16.
struct ExperimentConfig {
  std::vector<PopSpec> pop_specs = default_pop_specs();
  TopologyConfig topology{};

  bool riptide_enabled = true;
  core::RiptideConfig riptide{};

  ProbeClientConfig probe{};
  // PoPs whose hosts issue probes; empty = all PoPs (the paper's mesh).
  std::vector<std::size_t> probe_source_pops{};

  // PoPs that additionally generate organic back-office traffic (Fig 11's
  // "full traffic" PoP).
  std::vector<std::size_t> organic_source_pops{};
  OrganicSourceConfig organic{};

  sim::Time duration = sim::Time::minutes(3);

  // §IV-B1: windows of established connections sampled periodically (the
  // paper samples each minute over 12 h; scaled-down runs sample faster).
  sim::Time cwnd_sample_interval = sim::Time::seconds(15);
  // Only connections that have actually moved data are sampled — parked
  // request-only connections would otherwise swamp the distribution.
  std::uint64_t min_bytes_for_cwnd_sample = 5000;

  std::uint64_t seed = 1;

  // Decision-audit tracing (src/trace). Off by default; when off, the run
  // is bit-identical to a build without the feature. When enabled the
  // experiment owns a TraceSink that is installed on the running thread
  // for exactly the duration of run(), and exported to
  // trace.export_path (JSONL) afterwards if one is set.
  trace::TraceConfig trace{};

  // Dependency-injection seams for fault harnesses and instrumented tests.
  // When set, build() asks the factory for each agent's actuator / `ss`
  // surface instead of the host-backed defaults. Factories must be pure
  // functions of their arguments (configs are copied across sweep workers).
  std::function<std::unique_ptr<core::RouteProgrammer>(Experiment&,
                                                       host::Host&)>
      route_programmer_factory;
  std::function<std::unique_ptr<core::SocketStatsSource>(Experiment&,
                                                         host::Host&)>
      socket_stats_factory;
  // Called once at the end of build(), after agents exist and started; the
  // result is retained for the experiment's lifetime (see extension()).
  std::function<std::shared_ptr<void>(Experiment&)> extension_factory;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  // Runs the scenario for config.duration of simulated time.
  void run();

  const MetricsCollector& metrics() const { return metrics_; }
  Topology& topology() { return *topology_; }
  const Topology& topology() const { return *topology_; }
  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }
  const ExperimentConfig& config() const { return config_; }
  const std::vector<std::unique_ptr<core::RiptideAgent>>& agents() const {
    return agents_;
  }

  // Whatever extension_factory attached (e.g. a faults::FaultHarness);
  // null when no factory was configured.
  const std::shared_ptr<void>& extension() const { return extension_; }

  // The decision-audit sink, or null when config.trace.enabled is false.
  // Populated only while/after run() executes on this experiment.
  trace::TraceSink* trace_sink() { return trace_sink_.get(); }
  const trace::TraceSink* trace_sink() const { return trace_sink_.get(); }

  // Completion-time CDF (ms) for probes of `object_bytes` from `src_pop`,
  // optionally restricted to one destination PoP (dst_pop >= 0) and/or
  // fresh connections only.
  stats::Cdf probe_cdf(int src_pop, std::uint64_t object_bytes,
                       int dst_pop = -1, bool fresh_only = false) const;

 private:
  void build();

  ExperimentConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Rng> rng_;
  std::unique_ptr<Topology> topology_;
  MetricsCollector metrics_;
  std::vector<std::unique_ptr<ProbeServer>> probe_servers_;
  std::vector<std::unique_ptr<SinkServer>> sink_servers_;
  std::vector<std::unique_ptr<ProbeClient>> probe_clients_;
  std::vector<std::unique_ptr<OrganicSource>> organic_sources_;
  std::vector<std::unique_ptr<core::RiptideAgent>> agents_;
  std::shared_ptr<void> extension_;
  std::unique_ptr<trace::TraceSink> trace_sink_;
};

// Percentile-by-percentile improvement of `treatment` over `baseline`
// (paper Figs 15/16): for each percentile p in {step, 2*step, ...,
// 100-step}, gain = (baseline_p - treatment_p) / baseline_p.
struct PercentileGain {
  double percentile = 0.0;
  double gain_fraction = 0.0;
};

std::vector<PercentileGain> percentile_gains(const stats::Cdf& baseline,
                                             const stats::Cdf& treatment,
                                             double step = 5.0);

}  // namespace riptide::cdn

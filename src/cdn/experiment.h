#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cdn/hostile.h"
#include "cdn/metrics.h"
#include "cdn/pops.h"
#include "cdn/probe.h"
#include "cdn/topology.h"
#include "cdn/traffic.h"
#include "core/agent.h"
#include "core/config.h"
#include "flow/flow_traffic.h"
#include "net/wire.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "stats/cdf.h"
#include "trace/sink.h"

#include <deque>

namespace riptide::cdn {

class Experiment;

// Opt-in sharded (parallel discrete-event) execution. When enabled, the
// experiment is built one simulation cell per PoP and run under the
// conservative window protocol of sim::ShardSet, with `shards` worker
// threads. The default (disabled) path is byte-identical to previous
// releases; the sharded fingerprint is its own golden value, invariant
// under `shards` (see tests/determinism_test.cc).
struct ShardingConfig {
  bool enabled = false;
  // Worker threads the per-PoP cells round-robin onto. Must be in
  // [1, pop count].
  std::size_t shards = 1;
};

// Hybrid-fidelity cross-traffic: fluid (flow-level) background load on WAN
// links while probe/organic traffic stays packet-level. One
// flow::FlowLevelLoad per outgoing WAN link of each source PoP.
struct FlowCrossTrafficConfig {
  bool enabled = false;
  // PoPs whose outgoing WAN links carry the fluid aggregate; empty = all.
  std::vector<std::size_t> source_pops{};
  flow::FlowTrafficConfig model{};
};

// A complete closed-loop scenario: the simulated CDN, probe mesh, optional
// organic traffic, optional Riptide agents on every host, and the periodic
// `ss` window sampler of §IV-B1. Running the same config with
// riptide_enabled on/off produces the treatment/control pairs behind
// Figures 10-16.
struct ExperimentConfig {
  std::vector<PopSpec> pop_specs = default_pop_specs();
  TopologyConfig topology{};

  bool riptide_enabled = true;
  core::RiptideConfig riptide{};

  ProbeClientConfig probe{};
  // PoPs whose hosts issue probes; empty = all PoPs (the paper's mesh).
  std::vector<std::size_t> probe_source_pops{};

  // PoPs that additionally generate organic back-office traffic (Fig 11's
  // "full traffic" PoP).
  std::vector<std::size_t> organic_source_pops{};
  OrganicSourceConfig organic{};

  sim::Time duration = sim::Time::minutes(3);

  ShardingConfig sharding{};
  FlowCrossTrafficConfig flow_traffic{};

  // Adversarial scenario (src/cdn/hostile.h). kNone (the default) adds
  // nothing and is bit-identical to previous releases; the shallow-buffer
  // variants also shrink topology.wan_queue_packets (see apply_hostile in
  // riptide_sim / bench_policy_zoo, which mutate the topology before
  // construction). Not supported with sharding.
  HostileConfig hostile{};

  // §IV-B1: windows of established connections sampled periodically (the
  // paper samples each minute over 12 h; scaled-down runs sample faster).
  sim::Time cwnd_sample_interval = sim::Time::seconds(15);
  // Only connections that have actually moved data are sampled — parked
  // request-only connections would otherwise swamp the distribution.
  std::uint64_t min_bytes_for_cwnd_sample = 5000;

  std::uint64_t seed = 1;

  // Decision-audit tracing (src/trace). Off by default; when off, the run
  // is bit-identical to a build without the feature. When enabled the
  // experiment owns a TraceSink that is installed on the running thread
  // for exactly the duration of run(), and exported to
  // trace.export_path (JSONL) afterwards if one is set.
  trace::TraceConfig trace{};

  // Dependency-injection seams for fault harnesses and instrumented tests.
  // When set, build() asks the factory for each agent's actuator / `ss`
  // surface instead of the host-backed defaults. Factories must be pure
  // functions of their arguments (configs are copied across sweep workers).
  std::function<std::unique_ptr<core::RouteProgrammer>(Experiment&,
                                                       host::Host&)>
      route_programmer_factory;
  std::function<std::unique_ptr<core::SocketStatsSource>(Experiment&,
                                                         host::Host&)>
      socket_stats_factory;
  // Called once at the end of build(), after agents exist and started; the
  // result is retained for the experiment's lifetime (see extension()).
  std::function<std::shared_ptr<void>(Experiment&)> extension_factory;
  // Additional extensions, run after extension_factory in vector order.
  // Unlike the single slot above — which faults::FaultHarness::install
  // claims for itself — these compose: policy installers (src/policy) and
  // a fault harness can ride the same experiment. Results are retained
  // for the experiment's lifetime (see extensions()).
  std::vector<std::function<std::shared_ptr<void>(Experiment&)>>
      extension_factories;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  // Runs the scenario for config.duration of simulated time. A sharded
  // experiment (config.sharding.enabled) can run at most once: its cells
  // drain their pending events on the worker threads before they exit.
  void run();

  bool sharded() const { return shards_ != nullptr; }
  // Sharded runs only; null otherwise.
  sim::ShardSet* shard_set() { return shards_.get(); }
  const std::vector<std::unique_ptr<flow::FlowLevelLoad>>& flow_loads()
      const {
    return flow_loads_;
  }
  const std::vector<std::unique_ptr<OrganicSource>>& organic_sources() const {
    return organic_sources_;
  }
  const std::vector<std::unique_ptr<IncastSource>>& incast_sources() const {
    return incast_sources_;
  }
  const std::vector<std::unique_ptr<FlashCrowdSource>>& flash_crowd_sources()
      const {
    return flash_crowd_sources_;
  }
  // The probe mesh's clients (one per probing host), for accounting checks
  // (src/chaos) and instrumented tests.
  const std::vector<std::unique_ptr<ProbeClient>>& probe_clients() const {
    return probe_clients_;
  }

  const MetricsCollector& metrics() const { return metrics_; }
  Topology& topology() { return *topology_; }
  const Topology& topology() const { return *topology_; }
  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }
  const ExperimentConfig& config() const { return config_; }
  const std::vector<std::unique_ptr<core::RiptideAgent>>& agents() const {
    return agents_;
  }

  // Whatever extension_factory attached (e.g. a faults::FaultHarness);
  // null when no factory was configured.
  const std::shared_ptr<void>& extension() const { return extension_; }
  // Results of extension_factories, in factory order.
  const std::vector<std::shared_ptr<void>>& extensions() const {
    return extensions_;
  }

  // The decision-audit sink, or null when config.trace.enabled is false.
  // Populated only while/after run() executes on this experiment.
  trace::TraceSink* trace_sink() { return trace_sink_.get(); }
  const trace::TraceSink* trace_sink() const { return trace_sink_.get(); }

  // Completion-time CDF (ms) for probes of `object_bytes` from `src_pop`,
  // optionally restricted to one destination PoP (dst_pop >= 0) and/or
  // fresh connections only.
  stats::Cdf probe_cdf(int src_pop, std::uint64_t object_bytes,
                       int dst_pop = -1, bool fresh_only = false) const;

 private:
  void build();
  void build_hostile();
  void build_sharded();
  void run_sharded();

  ExperimentConfig config_;
  // Monolithic event loop; in sharded mode it stays idle during the run
  // and is advanced to config.duration afterwards so simulator().now() is
  // meaningful either way.
  sim::Simulator sim_;
  std::unique_ptr<sim::Rng> rng_;
  // Sharded engine state. Declared before topology_/clients/agents so it
  // is destroyed after everything that references the cells.
  std::unique_ptr<sim::ShardSet> shards_;
  std::unique_ptr<net::WireFabric> fabric_;
  std::deque<sim::Rng> cell_rngs_;            // traffic streams, per cell
  std::deque<MetricsCollector> cell_metrics_;  // recorded per cell, merged
  std::unique_ptr<Topology> topology_;
  MetricsCollector metrics_;
  std::vector<std::unique_ptr<ProbeServer>> probe_servers_;
  std::vector<std::unique_ptr<SinkServer>> sink_servers_;
  std::vector<std::unique_ptr<ProbeClient>> probe_clients_;
  std::vector<std::unique_ptr<OrganicSource>> organic_sources_;
  std::vector<std::unique_ptr<IncastSource>> incast_sources_;
  std::vector<std::unique_ptr<FlashCrowdSource>> flash_crowd_sources_;
  std::vector<std::unique_ptr<flow::FlowLevelLoad>> flow_loads_;
  std::vector<std::unique_ptr<core::RiptideAgent>> agents_;
  std::shared_ptr<void> extension_;
  std::vector<std::shared_ptr<void>> extensions_;
  std::unique_ptr<trace::TraceSink> trace_sink_;
  std::vector<std::unique_ptr<trace::TraceSink>> cell_trace_;
  bool ran_sharded_ = false;
};

// Percentile-by-percentile improvement of `treatment` over `baseline`
// (paper Figs 15/16): for each percentile p in {step, 2*step, ...,
// 100-step}, gain = (baseline_p - treatment_p) / baseline_p.
struct PercentileGain {
  double percentile = 0.0;
  double gain_fraction = 0.0;
};

std::vector<PercentileGain> percentile_gains(const stats::Cdf& baseline,
                                             const stats::Cdf& treatment,
                                             double step = 5.0);

}  // namespace riptide::cdn

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cdn/pops.h"
#include "host/host.h"
#include "net/link.h"
#include "net/router.h"
#include "net/wire.h"
#include "sim/random.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "tcp/config.h"

namespace riptide::cdn {

struct TopologyConfig {
  int hosts_per_pop = 2;

  // WAN paths between PoP routers: one logical pipe per directed PoP pair.
  double wan_rate_bps = 10e9;
  std::size_t wan_queue_packets = 4096;
  // Residual random loss standing in for cross-traffic on shared segments.
  double wan_loss_probability = 5e-5;
  // Calibrated so the all-pairs RTT median lands above 125 ms (paper Fig 5).
  double path_inflation = 1.5;

  // Intra-PoP fabric ("evenly distributed interconnect", §III-B).
  double lan_rate_bps = 10e9;
  sim::Time lan_delay = sim::Time::microseconds(50);
  std::size_t lan_queue_packets = 4096;

  std::uint64_t seed = 1;
  tcp::TcpConfig host_tcp{};
};

// Builds the simulated CDN: one router per PoP, `hosts_per_pop` servers
// behind it, and a full mesh of WAN links whose propagation delays come
// from PoP geography. Addressing gives PoP i the prefix 10.i.0.0/16 — the
// even-prefix layout that makes the paper's per-prefix route granularity
// (§III-B "Destinations as Routes") meaningful.
class Topology {
 public:
  struct Pop {
    PopSpec spec;
    net::Prefix prefix;
    net::Router* router = nullptr;
    std::vector<host::Host*> hosts;
  };

  Topology(sim::Simulator& sim, TopologyConfig config,
           std::vector<PopSpec> specs = default_pop_specs());

  // Sharded variant: PoP i's router, hosts, LAN links, and outgoing WAN
  // links are built against `shards.cell(i)` (requires shards.cells() ==
  // specs.size()), each cell drawing from its own Rng forked from
  // config.seed in ascending cell order. Every WAN link becomes a shard
  // boundary: it serializes on its source cell and delivers through
  // fabric.channel(src, dst), whose sink is set to the destination PoP's
  // router. `shards` and `fabric` must outlive the topology.
  Topology(sim::ShardSet& shards, net::WireFabric& fabric,
           TopologyConfig config,
           std::vector<PopSpec> specs = default_pop_specs());

  bool sharded() const { return fabric_ != nullptr; }
  // Simulation cell owning PoP `pop`'s objects (the mono simulator when
  // not sharded).
  sim::Simulator& cell_sim(std::size_t pop);
  // Per-cell deterministic stream (the shared topology rng when not
  // sharded).
  sim::Rng& cell_rng(std::size_t pop);

  const std::vector<Pop>& pops() const { return pops_; }
  std::size_t pop_count() const { return pops_.size(); }
  host::Host& host(std::size_t pop, std::size_t index);
  const host::Host& host(std::size_t pop, std::size_t index) const;
  std::vector<host::Host*> all_hosts();

  // Index of the PoP owning `addr`, or -1.
  int pop_of(net::Ipv4Address addr) const;

  // Minimum (uncongested) round-trip time between hosts of two PoPs.
  sim::Time base_rtt(std::size_t pop_a, std::size_t pop_b) const;

  // The directed WAN link between two PoP routers (for fault injection and
  // queue inspection in tests). Precondition: from != to.
  net::Link& wan_link(std::size_t from, std::size_t to);

  // Per-reason drop totals across every link and router in the topology,
  // so fault runs are explainable from counters alone.
  struct DropTotals {
    std::uint64_t queue_full = 0;
    std::uint64_t random_loss = 0;
    std::uint64_t link_down = 0;
    std::uint64_t no_route = 0;
  };
  DropTotals drop_totals() const;

  // Loss-recovery activity summed over every host (live + closed
  // connections) — the safety metric of the fault benches.
  std::uint64_t total_retransmissions() const;
  std::uint64_t total_timeouts() const;

  sim::Simulator& simulator() { return sim_; }
  sim::Rng& rng() { return rng_; }
  const TopologyConfig& config() const { return config_; }

 private:
  void build(const std::vector<PopSpec>& specs);

  sim::Simulator& sim_;  // mono simulator; cell 0 when sharded
  TopologyConfig config_;
  sim::Rng rng_;  // mono link stream; master for cell forks when sharded
  sim::ShardSet* shards_ = nullptr;
  net::WireFabric* fabric_ = nullptr;
  std::deque<sim::Rng> cell_rngs_;  // sharded only; deque: stable addresses
  std::vector<Pop> pops_;
  std::vector<std::unique_ptr<net::Router>> routers_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  // wan_links_[from * pop_count + to]; nullptr on the diagonal.
  std::vector<net::Link*> wan_matrix_;
};

}  // namespace riptide::cdn

#include "cdn/cache_fill.h"

#include <algorithm>

namespace riptide::cdn {

CacheFillWorkload::CacheFillWorkload(sim::Simulator& sim, host::Host& edge,
                                     int edge_pop, host::Host& origin,
                                     int origin_pop, double base_rtt_ms,
                                     CacheFillConfig config,
                                     MetricsCollector& metrics, sim::Rng& rng)
    : sim_(sim),
      edge_(edge),
      edge_pop_(edge_pop),
      origin_(origin),
      origin_pop_(origin_pop),
      base_rtt_ms_(base_rtt_ms),
      config_(config),
      metrics_(metrics),
      rng_(rng),
      popularity_(config.catalog_size, config.zipf_exponent),
      cache_(config.cache_capacity_bytes) {}

std::uint64_t CacheFillWorkload::object_bytes(std::uint64_t id) const {
  // Deterministic per-id size: each object's size is a fixed draw from the
  // catalog distribution, independent of request order and run seed.
  sim::Rng id_rng(id * 0x9e3779b97f4a7c15ULL + 12345);
  const std::uint64_t raw = config_.sizes.sample(id_rng);
  // The fetch protocol encodes size / scale in the request length, so
  // round up to the scale (>= one unit).
  const std::uint64_t units =
      std::max<std::uint64_t>(1, (raw + config_.size_scale - 1) /
                                     config_.size_scale);
  // Cap at what one request segment can name.
  return std::min<std::uint64_t>(units, 1400) * config_.size_scale;
}

void CacheFillWorkload::start() {
  if (started_) return;
  started_ = true;
  schedule_next_request();
}

void CacheFillWorkload::schedule_next_request() {
  const auto delay = sim::Time::from_seconds(
      rng_.exponential(config_.mean_interarrival_seconds));
  sim_.schedule(delay, [this] {
    on_request();
    schedule_next_request();
  });
}

bool CacheFillWorkload::fetch_in_flight(std::uint64_t id) const {
  for (const auto& fetch : fetches_) {
    if (!fetch->done && fetch->id == id) return true;
  }
  return false;
}

void CacheFillWorkload::on_request() {
  ++requests_;
  const std::uint64_t id = popularity_.sample(rng_);
  if (cache_.lookup(id)) return;           // hit: served from the edge
  if (fetch_in_flight(id)) return;         // request coalescing
  start_fetch(id);
}

tcp::TcpConnection::Callbacks CacheFillWorkload::callbacks_for(
    std::shared_ptr<ConnCtx> ctx) {
  tcp::TcpConnection::Callbacks cbs;
  cbs.on_established = [this, ctx] {
    if (ctx->dead || ctx->owner == nullptr) return;
    ctx->conn->send(ctx->owner->bytes / config_.size_scale);
  };
  cbs.on_data = [this, ctx](std::uint64_t bytes) {
    if (ctx->dead || ctx->owner == nullptr) return;
    Fetch& fetch = *ctx->owner;
    fetch.received += bytes;
    if (fetch.received >= fetch.bytes) finish_fetch(fetch);
  };
  cbs.on_closed = [this, ctx](bool /*reset*/) {
    ctx->dead = true;
    ctx->conn = nullptr;
    if (ctx->owner != nullptr) {
      ctx->owner->done = true;  // fetch lost; a future request retries
      ctx->owner = nullptr;
    }
    if (pooled_ == ctx) pooled_.reset();
  };
  return cbs;
}

void CacheFillWorkload::start_fetch(std::uint64_t id) {
  auto fetch = std::make_unique<Fetch>();
  fetch->id = id;
  fetch->bytes = object_bytes(id);
  fetch->started = sim_.now();
  ++fetches_started_;

  const bool can_reuse = pooled_ != nullptr && !pooled_->dead &&
                         pooled_->conn != nullptr &&
                         pooled_->conn->established() &&
                         !pooled_->conn->close_requested() &&
                         pooled_->owner == nullptr;
  if (can_reuse) {
    fetch->ctx = pooled_;
    pooled_.reset();
    fetch->ctx->owner = fetch.get();
    fetch->fresh = false;
    fetch->ctx->conn->send(fetch->bytes / config_.size_scale);
  } else {
    auto ctx = std::make_shared<ConnCtx>();
    ctx->owner = fetch.get();
    fetch->ctx = ctx;
    fetch->fresh = true;
    ctx->conn = &edge_.connect(origin_.address(), config_.origin_port,
                               callbacks_for(ctx));
  }
  fetches_.push_back(std::move(fetch));

  // Bound the bookkeeping: drop completed records from the front.
  while (fetches_.size() > 256 && fetches_.front()->done) {
    fetches_.pop_front();
  }
}

void CacheFillWorkload::finish_fetch(Fetch& fetch) {
  fetch.done = true;
  ++fetches_completed_;
  cache_.insert(fetch.id, fetch.bytes);

  FlowRecord record;
  record.src_pop = edge_pop_;
  record.dst_pop = origin_pop_;
  record.object_bytes = fetch.bytes;
  record.started = fetch.started;
  record.duration = sim_.now() - fetch.started;
  record.fresh = fetch.fresh;
  record.base_rtt_ms = base_rtt_ms_;
  metrics_.record_flow(record);

  auto ctx = fetch.ctx;
  fetch.ctx.reset();
  if (ctx) {
    ctx->owner = nullptr;
    if (ctx->dead || ctx->conn == nullptr) return;
    if (pooled_ == nullptr) {
      pooled_ = ctx;  // keep one warm origin connection
    } else {
      ctx->conn->close();
    }
  }
}

}  // namespace riptide::cdn

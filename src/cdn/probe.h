#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cdn/metrics.h"
#include "host/host.h"
#include "net/ipv4.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace riptide::cdn {

// One probe flavour: a fixed-size object. The paper runs 10, 50 and 100 KB
// probes simultaneously (§IV-A).
struct ProbeSpec {
  std::uint64_t object_bytes = 0;
};

// The paper's 10/50/100 KB probe set.
std::vector<ProbeSpec> default_probe_specs();

// Serves probe objects on one port. The protocol mirrors an HTTP GET whose
// URL names the object: the request's byte-length encodes the object size
// (object = request_bytes * scale). Requests are never pipelined by the
// client, so each in-order delivery is one request.
//
// The sender side of the response is where Riptide's learned initcwnd does
// its work.
class ProbeServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 9000;
  static constexpr std::uint32_t kDefaultScale = 1000;

  ProbeServer(host::Host& host, std::uint16_t port = kDefaultPort,
              std::uint32_t scale = kDefaultScale);

  void start();

  std::uint64_t objects_served() const { return objects_served_; }
  std::uint64_t bytes_served() const { return bytes_served_; }

 private:
  host::Host& host_;
  std::uint16_t port_;
  std::uint32_t scale_;
  std::uint64_t objects_served_ = 0;
  std::uint64_t bytes_served_ = 0;
  bool started_ = false;
};

// A probe target: one remote host serving the probe port.
struct ProbeTarget {
  net::Ipv4Address address;
  int pop = -1;
  double base_rtt_ms = 0.0;
};

struct ProbeClientConfig {
  std::vector<ProbeSpec> specs = default_probe_specs();
  std::uint16_t server_port = ProbeServer::kDefaultPort;
  std::uint32_t size_scale = ProbeServer::kDefaultScale;

  // Mean period between probes of one (target, flavour) pair, with
  // +-interval_jitter uniform jitter per round so the three flavours race
  // for the shared idle connection in varying order (as in production,
  // where whichever probe fires first reuses the idle connection).
  sim::Time interval = sim::Time::seconds(10);
  double interval_jitter = 0.25;

  // Keep-alive timeout: a pooled idle connection is closed after this long
  // without a probe.
  sim::Time idle_close = sim::Time::seconds(30);

  // Fresh connections that don't fit in the pool stay open (idle) this
  // long before closing — the paper's "connections that were opened but
  // not used again", which is what the 1 s `ss` poll actually observes and
  // what produces the Fig 10 modes at each connection's initial window.
  sim::Time extra_linger = sim::Time::seconds(20);
};

// Issues probes from one host to a set of targets, mirroring the paper's
// diagnostic mesh (§IV-A): every round, for every (target, flavour) pair,
// it reuses the target's idle pooled connection when one exists — the pool
// holds at most ONE connection per target, the paper's "an existing and
// idle connection" — and opens a fresh one otherwise. Fresh connections
// are returned to the pool after the probe (or closed if the slot is
// taken). Completion time (request out -> last byte in, including the
// handshake for fresh connections) lands in the collector.
class ProbeClient {
 public:
  ProbeClient(sim::Simulator& sim, host::Host& host, int src_pop,
              std::vector<ProbeTarget> targets, ProbeClientConfig config,
              MetricsCollector& metrics, sim::Rng& rng);

  void start();

  std::uint64_t probes_completed() const { return completed_; }
  std::uint64_t probes_failed() const { return failed_; }
  std::uint64_t probes_skipped_busy() const { return skipped_busy_; }
  std::uint64_t fresh_connections_opened() const { return fresh_opened_; }
  std::uint64_t reuses() const { return reused_; }

  // Accounting surface for the chaos liveness oracle: every probe launched
  // must end up completed, failed, or still visibly in flight —
  //   probes_issued() == probes_completed() + probes_failed() + in_flight()
  // holds at all times, and an in-flight probe whose connection has died
  // without the client noticing shows up in stalled_probes().
  std::uint64_t probes_issued() const { return issued_; }
  std::size_t probes_in_flight() const;
  std::size_t stalled_probes() const;

 private:
  struct Task;

  // One live connection, shared between the task currently using it and
  // the per-target idle pool.
  struct ConnState {
    tcp::TcpConnection* conn = nullptr;
    net::Ipv4Address target;
    Task* owner = nullptr;  // task currently being served, if any
    bool dead = false;
    sim::EventHandle idle_timer;
  };

  struct Task {
    ProbeTarget target;
    ProbeSpec spec;
    bool busy = false;
    std::uint64_t received = 0;
    sim::Time started;
    bool fresh = false;
    std::shared_ptr<ConnState> active;
  };

  // All of one target's probe flavours fire together each round (the paper
  // issues the three sizes simultaneously): exactly one can claim the
  // pooled idle connection; the rest open fresh ones. The within-round
  // order is shuffled so every flavour gets its share of reuses.
  struct Round {
    std::vector<Task*> tasks;
  };

  void schedule_next(Round& round);
  void fire_round(Round& round);
  void fire(Task& task);
  void open_fresh(Task& task);
  tcp::TcpConnection::Callbacks callbacks_for(std::shared_ptr<ConnState> st);
  void complete(Task& task);
  void release_to_pool(std::shared_ptr<ConnState> st);
  std::uint32_t request_bytes_for(const ProbeSpec& spec) const;

  sim::Simulator& sim_;
  host::Host& host_;
  int src_pop_;
  ProbeClientConfig config_;
  MetricsCollector& metrics_;
  sim::Rng& rng_;
  std::deque<Task> tasks_;  // deque: stable addresses for callback capture
  std::deque<Round> rounds_;  // one per target
  // Idle slot per target (capacity 1, per the paper's reuse policy).
  std::map<std::uint32_t, std::shared_ptr<ConnState>> pool_;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t skipped_busy_ = 0;
  std::uint64_t fresh_opened_ = 0;
  std::uint64_t reused_ = 0;
  bool started_ = false;
};

}  // namespace riptide::cdn

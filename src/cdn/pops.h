#pragma once

#include <string>
#include <vector>

#include "cdn/geo.h"

namespace riptide::cdn {

enum class Continent {
  kEurope,
  kNorthAmerica,
  kSouthAmerica,
  kAsia,
  kOceania,
};

const char* to_string(Continent continent);

struct PopSpec {
  std::string name;
  Continent continent;
  GeoPoint location;
};

// The 34-PoP roster matching Table II of the paper: 10 Europe, 11 North
// America, 1 South America, 9 Asia, 3 Oceania. City placements are
// representative of a global CDN footprint; the paper's map (Fig 9) is
// approximate as well, and only the RTT *distribution* (Fig 5) matters to
// the evaluation.
const std::vector<PopSpec>& default_pop_specs();

// Continent -> PoP count for a spec list (regenerates Table II).
std::vector<std::pair<Continent, int>> continent_summary(
    const std::vector<PopSpec>& specs);

}  // namespace riptide::cdn

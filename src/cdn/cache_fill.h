#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "cdn/file_size_dist.h"
#include "cdn/lru_cache.h"
#include "cdn/metrics.h"
#include "cdn/zipf.h"
#include "host/host.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace riptide::cdn {

struct CacheFillConfig {
  // User-request arrival process at the edge.
  double mean_interarrival_seconds = 0.05;

  // Object catalog: Zipf-popular ids with sizes drawn (deterministically
  // per id) from the Fig 2 distribution, rounded to the probe protocol's
  // 1 KB granularity.
  std::size_t catalog_size = 5'000;
  double zipf_exponent = 0.9;
  FileSizeDistribution sizes{};

  std::uint64_t cache_capacity_bytes = 64ull * 1024 * 1024;

  // Origin fetch connections: one persistent connection, plus fresh ones
  // when misses overlap — the connection-churn pattern Riptide targets.
  std::uint16_t origin_port = 9000;  // a ProbeServer on the origin host
  std::uint32_t size_scale = 1000;
};

// The paper's motivating back-office workload: an edge PoP serving user
// requests from an LRU cache, fetching misses from an origin PoP over the
// WAN. Cache hits are free; every miss is a fresh-ish TCP transfer whose
// completion time Riptide's learned initial windows cut down.
class CacheFillWorkload {
 public:
  CacheFillWorkload(sim::Simulator& sim, host::Host& edge, int edge_pop,
                    host::Host& origin, int origin_pop, double base_rtt_ms,
                    CacheFillConfig config, MetricsCollector& metrics,
                    sim::Rng& rng);

  void start();

  const LruCache& cache() const { return cache_; }
  std::uint64_t requests() const { return requests_; }
  std::uint64_t fetches_started() const { return fetches_started_; }
  std::uint64_t fetches_completed() const { return fetches_completed_; }

  // Size (bytes) of catalog object `id`, deterministic across runs.
  std::uint64_t object_bytes(std::uint64_t id) const;

 private:
  struct Fetch;

  // One origin connection, shared between the fetch currently using it and
  // the single-slot idle pool (same ownership discipline as ProbeClient).
  struct ConnCtx {
    tcp::TcpConnection* conn = nullptr;
    Fetch* owner = nullptr;
    bool dead = false;
  };

  struct Fetch {
    std::uint64_t id = 0;
    std::uint64_t bytes = 0;
    std::uint64_t received = 0;
    sim::Time started;
    bool fresh = false;
    bool done = false;
    std::shared_ptr<ConnCtx> ctx;
  };

  void schedule_next_request();
  void on_request();
  void start_fetch(std::uint64_t id);
  void finish_fetch(Fetch& fetch);
  tcp::TcpConnection::Callbacks callbacks_for(std::shared_ptr<ConnCtx> ctx);
  bool fetch_in_flight(std::uint64_t id) const;

  sim::Simulator& sim_;
  host::Host& edge_;
  int edge_pop_;
  host::Host& origin_;
  int origin_pop_;
  double base_rtt_ms_;
  CacheFillConfig config_;
  MetricsCollector& metrics_;
  sim::Rng& rng_;
  ZipfDistribution popularity_;
  LruCache cache_;

  // Idle origin connection (capacity 1); overlapping misses open fresh
  // connections.
  std::shared_ptr<ConnCtx> pooled_;
  std::deque<std::unique_ptr<Fetch>> fetches_;

  std::uint64_t requests_ = 0;
  std::uint64_t fetches_started_ = 0;
  std::uint64_t fetches_completed_ = 0;
  bool started_ = false;
};

}  // namespace riptide::cdn

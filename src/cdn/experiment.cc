#include "cdn/experiment.h"

#include <algorithm>
#include <stdexcept>

namespace riptide::cdn {

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  build();
}

void Experiment::build() {
  rng_ = std::make_unique<sim::Rng>(config_.seed);
  topology_ = std::make_unique<Topology>(sim_, config_.topology,
                                         config_.pop_specs);
  Topology& topo = *topology_;
  const std::size_t n = topo.pop_count();

  // Probe + sink servers on every host: any PoP can be asked for an object.
  for (host::Host* host : topo.all_hosts()) {
    probe_servers_.push_back(std::make_unique<ProbeServer>(
        *host, config_.probe.server_port, config_.probe.size_scale));
    probe_servers_.back()->start();
    sink_servers_.push_back(
        std::make_unique<SinkServer>(*host, config_.organic.sink_port));
    sink_servers_.back()->start();
  }

  // Probe clients on the configured source PoPs (default: all).
  std::vector<std::size_t> sources = config_.probe_source_pops;
  if (sources.empty()) {
    sources.resize(n);
    for (std::size_t i = 0; i < n; ++i) sources[i] = i;
  }
  const int hosts_per_pop = config_.topology.hosts_per_pop;
  for (std::size_t src : sources) {
    if (src >= n) throw std::invalid_argument("Experiment: bad source pop");
    for (int h = 0; h < hosts_per_pop; ++h) {
      std::vector<ProbeTarget> targets;
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src) continue;
        // Spread load across the destination PoP's hosts.
        const int target_host = h % hosts_per_pop;
        targets.push_back(ProbeTarget{
            topo.host(dst, static_cast<std::size_t>(target_host)).address(),
            static_cast<int>(dst),
            topo.base_rtt(src, dst).to_milliseconds()});
      }
      probe_clients_.push_back(std::make_unique<ProbeClient>(
          sim_, topo.host(src, static_cast<std::size_t>(h)),
          static_cast<int>(src), std::move(targets), config_.probe, metrics_,
          *rng_));
      probe_clients_.back()->start();
    }
  }

  // Organic traffic from the designated busy PoPs toward everyone else.
  for (std::size_t src : config_.organic_source_pops) {
    if (src >= n) throw std::invalid_argument("Experiment: bad organic pop");
    for (int h = 0; h < hosts_per_pop; ++h) {
      std::vector<net::Ipv4Address> targets;
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src) continue;
        targets.push_back(
            topo.host(dst, static_cast<std::size_t>(h % hosts_per_pop))
                .address());
      }
      organic_sources_.push_back(std::make_unique<OrganicSource>(
          sim_, topo.host(src, static_cast<std::size_t>(h)),
          std::move(targets), config_.organic, *rng_));
      organic_sources_.back()->start();
    }
  }

  // One Riptide agent per host — fully distributed, no coordination.
  if (config_.riptide_enabled) {
    for (host::Host* host : topo.all_hosts()) {
      std::unique_ptr<core::RouteProgrammer> programmer;
      if (config_.route_programmer_factory) {
        programmer = config_.route_programmer_factory(*this, *host);
      }
      std::unique_ptr<core::SocketStatsSource> stats_source;
      if (config_.socket_stats_factory) {
        stats_source = config_.socket_stats_factory(*this, *host);
      }
      agents_.push_back(std::make_unique<core::RiptideAgent>(
          sim_, *host, config_.riptide, std::move(programmer),
          std::move(stats_source), rng_.get()));
      agents_.back()->start();
    }
  }

  // The `ss` window sampler (§IV-B1). All connections observed here were
  // created after Riptide started (the agents start at t=0).
  sim_.schedule_periodic(
      config_.cwnd_sample_interval, config_.cwnd_sample_interval, [this] {
        for (host::Host* host : topology_->all_hosts()) {
          const int pop = topology_->pop_of(host->address());
          for (const auto& info : host->socket_stats()) {
            if (info.state != tcp::TcpState::kEstablished) continue;
            if (info.bytes_acked < config_.min_bytes_for_cwnd_sample) continue;
            metrics_.record_cwnd(
                CwndSample{pop, info.cwnd_segments, sim_.now()});
          }
        }
      });

  if (config_.extension_factory) {
    extension_ = config_.extension_factory(*this);
  }
}

void Experiment::run() {
  // The sink is created lazily here (not in build()) so a never-run
  // experiment owns nothing, and installed only for the span of the event
  // loop: every emit site in tcp/core/net/faults/persist sees it through
  // the thread-local slot, including on a ParallelRunner worker thread.
  if (config_.trace.enabled && trace_sink_ == nullptr) {
    trace_sink_ = std::make_unique<trace::TraceSink>(config_.trace);
  }
  trace::ScopedSink scoped(trace_sink_.get());
  sim_.run_until(config_.duration);
  if (trace_sink_ != nullptr && !config_.trace.export_path.empty()) {
    trace_sink_->write_jsonl(config_.trace.export_path);
  }
}

stats::Cdf Experiment::probe_cdf(int src_pop, std::uint64_t object_bytes,
                                 int dst_pop, bool fresh_only) const {
  return metrics_.completion_cdf([=](const FlowRecord& flow) {
    if (flow.src_pop != src_pop) return false;
    if (flow.object_bytes != object_bytes) return false;
    if (dst_pop >= 0 && flow.dst_pop != dst_pop) return false;
    if (fresh_only && !flow.fresh) return false;
    return true;
  });
}

std::vector<PercentileGain> percentile_gains(const stats::Cdf& baseline,
                                             const stats::Cdf& treatment,
                                             double step) {
  std::vector<PercentileGain> gains;
  if (baseline.empty() || treatment.empty() || step <= 0.0) return gains;
  for (double p = step; p < 100.0 - 1e-9; p += step) {
    const double base = baseline.percentile(p);
    const double treat = treatment.percentile(p);
    const double gain = base > 0.0 ? (base - treat) / base : 0.0;
    gains.push_back(PercentileGain{p, gain});
  }
  return gains;
}

}  // namespace riptide::cdn

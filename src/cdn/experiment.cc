#include "cdn/experiment.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "cdn/partition.h"

namespace riptide::cdn {

namespace {

// Per-cell trace export path: "{cell}" in the configured path is replaced
// with the cell index; without the placeholder a ".cell<i>" suffix is
// appended so sharded runs never overwrite each other's files.
std::string cell_trace_path(const std::string& base, std::size_t cell) {
  std::string out = base;
  const std::string token = "{cell}";
  const auto pos = out.find(token);
  if (pos != std::string::npos) {
    out.replace(pos, token.size(), std::to_string(cell));
    return out;
  }
  return out + ".cell" + std::to_string(cell);
}

}  // namespace

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  if (config_.sharding.enabled) {
    build_sharded();
  } else {
    build();
  }
}

void Experiment::build() {
  rng_ = std::make_unique<sim::Rng>(config_.seed);
  topology_ = std::make_unique<Topology>(sim_, config_.topology,
                                         config_.pop_specs);
  Topology& topo = *topology_;
  const std::size_t n = topo.pop_count();

  // Probe + sink servers on every host: any PoP can be asked for an object.
  for (host::Host* host : topo.all_hosts()) {
    probe_servers_.push_back(std::make_unique<ProbeServer>(
        *host, config_.probe.server_port, config_.probe.size_scale));
    probe_servers_.back()->start();
    sink_servers_.push_back(
        std::make_unique<SinkServer>(*host, config_.organic.sink_port));
    sink_servers_.back()->start();
  }

  // Probe clients on the configured source PoPs (default: all).
  std::vector<std::size_t> sources = config_.probe_source_pops;
  if (sources.empty()) {
    sources.resize(n);
    for (std::size_t i = 0; i < n; ++i) sources[i] = i;
  }
  const int hosts_per_pop = config_.topology.hosts_per_pop;
  for (std::size_t src : sources) {
    if (src >= n) throw std::invalid_argument("Experiment: bad source pop");
    for (int h = 0; h < hosts_per_pop; ++h) {
      std::vector<ProbeTarget> targets;
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src) continue;
        // Spread load across the destination PoP's hosts.
        const int target_host = h % hosts_per_pop;
        targets.push_back(ProbeTarget{
            topo.host(dst, static_cast<std::size_t>(target_host)).address(),
            static_cast<int>(dst),
            topo.base_rtt(src, dst).to_milliseconds()});
      }
      probe_clients_.push_back(std::make_unique<ProbeClient>(
          sim_, topo.host(src, static_cast<std::size_t>(h)),
          static_cast<int>(src), std::move(targets), config_.probe, metrics_,
          *rng_));
      probe_clients_.back()->start();
    }
  }

  // Organic traffic from the designated busy PoPs toward everyone else.
  for (std::size_t src : config_.organic_source_pops) {
    if (src >= n) throw std::invalid_argument("Experiment: bad organic pop");
    for (int h = 0; h < hosts_per_pop; ++h) {
      std::vector<net::Ipv4Address> targets;
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src) continue;
        targets.push_back(
            topo.host(dst, static_cast<std::size_t>(h % hosts_per_pop))
                .address());
      }
      organic_sources_.push_back(std::make_unique<OrganicSource>(
          sim_, topo.host(src, static_cast<std::size_t>(h)),
          std::move(targets), config_.organic, *rng_));
      organic_sources_.back()->start();
    }
  }

  // Adversarial traffic sources (incast fan-in, flash crowds). Gated so
  // a kNone config is bit-identical to previous releases.
  if (config_.hostile.kind != HostileKind::kNone) build_hostile();

  // Fluid cross-traffic on the WAN links of the designated source PoPs
  // (hybrid fidelity; see flow/flow_traffic.h). Gated so a disabled config
  // is bit-identical to previous releases.
  if (config_.flow_traffic.enabled) {
    std::vector<std::size_t> flow_sources = config_.flow_traffic.source_pops;
    if (flow_sources.empty()) {
      flow_sources.resize(n);
      for (std::size_t i = 0; i < n; ++i) flow_sources[i] = i;
    }
    for (std::size_t src : flow_sources) {
      if (src >= n) throw std::invalid_argument("Experiment: bad flow pop");
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src) continue;
        flow_loads_.push_back(std::make_unique<flow::FlowLevelLoad>(
            sim_, topo.wan_link(src, dst), config_.flow_traffic.model,
            *rng_));
        flow_loads_.back()->start();
      }
    }
  }

  // One Riptide agent per host — fully distributed, no coordination.
  if (config_.riptide_enabled) {
    for (host::Host* host : topo.all_hosts()) {
      std::unique_ptr<core::RouteProgrammer> programmer;
      if (config_.route_programmer_factory) {
        programmer = config_.route_programmer_factory(*this, *host);
      }
      std::unique_ptr<core::SocketStatsSource> stats_source;
      if (config_.socket_stats_factory) {
        stats_source = config_.socket_stats_factory(*this, *host);
      }
      agents_.push_back(std::make_unique<core::RiptideAgent>(
          sim_, *host, config_.riptide, std::move(programmer),
          std::move(stats_source), rng_.get()));
      agents_.back()->start();
    }
  }

  // The `ss` window sampler (§IV-B1). All connections observed here were
  // created after Riptide started (the agents start at t=0).
  sim_.schedule_periodic(
      config_.cwnd_sample_interval, config_.cwnd_sample_interval, [this] {
        for (host::Host* host : topology_->all_hosts()) {
          const int pop = topology_->pop_of(host->address());
          for (const auto& info : host->socket_stats()) {
            if (info.state != tcp::TcpState::kEstablished) continue;
            if (info.bytes_acked < config_.min_bytes_for_cwnd_sample) continue;
            metrics_.record_cwnd(
                CwndSample{pop, info.cwnd_segments, sim_.now()});
          }
        }
      });

  if (config_.extension_factory) {
    extension_ = config_.extension_factory(*this);
  }
  for (const auto& factory : config_.extension_factories) {
    if (factory) extensions_.push_back(factory(*this));
  }
}

// Hostile traffic shapes (src/cdn/hostile.h). The shallow-buffer half of
// kShallowBuffer/kCombined lives in the topology config (apply at
// config-construction time by shrinking wan_queue_packets); this builds
// the traffic half.
void Experiment::build_hostile() {
  Topology& topo = *topology_;
  const std::size_t n = topo.pop_count();
  const HostileConfig& hostile = config_.hostile;
  const int hosts_per_pop = config_.topology.hosts_per_pop;

  const bool incast = hostile.kind == HostileKind::kIncast ||
                      hostile.kind == HostileKind::kCombined;
  const bool crowd = hostile.kind == HostileKind::kFlashCrowd ||
                     hostile.kind == HostileKind::kCombined;

  if (incast) {
    if (hostile.victim_pop >= n) {
      throw std::invalid_argument("Experiment: hostile victim_pop out of range");
    }
    std::vector<net::Ipv4Address> victims;
    for (int h = 0; h < hosts_per_pop; ++h) {
      victims.push_back(
          topo.host(hostile.victim_pop, static_cast<std::size_t>(h))
              .address());
    }
    for (std::size_t pop = 0; pop < n; ++pop) {
      if (pop == hostile.victim_pop) continue;
      for (int h = 0; h < hosts_per_pop; ++h) {
        incast_sources_.push_back(std::make_unique<IncastSource>(
            sim_, topo.host(pop, static_cast<std::size_t>(h)), victims,
            config_.organic.sink_port, hostile));
        incast_sources_.back()->start();
      }
    }
  }

  if (crowd) {
    for (std::size_t pop = 0; pop < n; ++pop) {
      for (int h = 0; h < hosts_per_pop; ++h) {
        std::vector<net::Ipv4Address> targets;
        for (std::size_t dst = 0; dst < n; ++dst) {
          if (dst == pop) continue;
          targets.push_back(
              topo.host(dst, static_cast<std::size_t>(h % hosts_per_pop))
                  .address());
        }
        flash_crowd_sources_.push_back(std::make_unique<FlashCrowdSource>(
            sim_, topo.host(pop, static_cast<std::size_t>(h)),
            std::move(targets), config_.organic.sink_port, hostile));
        flash_crowd_sources_.back()->start();
      }
    }
  }
}

// Sharded twin of build(): the same construction loops in the same order,
// but every PoP-owned object is created against its cell's simulator and
// the per-cell deterministic streams. Kept as a separate function (rather
// than threading cell lookups through build()) so the monolithic path
// stays textually untouched — its fixed-seed fingerprint is a golden
// value.
void Experiment::build_sharded() {
  const std::size_t n = config_.pop_specs.size();
  const std::size_t workers = config_.sharding.shards;
  if (workers < 1 || workers > n) {
    throw std::invalid_argument(
        "Experiment: sharding.shards must be in [1, pop count]");
  }
  if (config_.route_programmer_factory || config_.socket_stats_factory ||
      config_.extension_factory || !config_.extension_factories.empty()) {
    // The factories hand out objects bound to "the" simulator and are used
    // by fault/persistence harnesses that mutate state from outside the
    // cells; neither has a sound meaning across shard boundaries.
    throw std::invalid_argument(
        "Experiment: dependency-injection factories are not supported with "
        "sharding");
  }
  if (config_.hostile.kind != HostileKind::kNone) {
    // A synchronized wave crossing every shard boundary in the same
    // instant is exactly what the conservative window cannot express.
    throw std::invalid_argument(
        "Experiment: hostile scenarios are not supported with sharding");
  }

  const ShardPartition part = partition_pops(
      config_.pop_specs, config_.topology.path_inflation, workers);
  fabric_ = std::make_unique<net::WireFabric>(n);
  shards_ = std::make_unique<sim::ShardSet>(n, workers, part.lookahead);
  shards_->set_flush_hook([this](std::size_t cell, sim::Simulator& sim) {
    fabric_->flush_to(cell, sim);
  });
  // Install the cell's trace sink (if any) around every slice of cell work
  // so emit sites see the right sink through the thread-local slot no
  // matter which worker hosts the cell. cell_trace_ stays empty when
  // tracing is off; installing null is free.
  shards_->set_cell_scope(
      [this](std::size_t cell, const std::function<void()>& body) {
        trace::ScopedSink scoped(cell < cell_trace_.size()
                                     ? cell_trace_[cell].get()
                                     : nullptr);
        body();
      });

  // Per-cell traffic streams, forked in ascending cell order from the
  // master seed (the topology forks its own link streams the same way).
  rng_ = std::make_unique<sim::Rng>(config_.seed);
  for (std::size_t i = 0; i < n; ++i) {
    cell_rngs_.push_back(rng_->fork(0x10000 + i));
  }
  cell_metrics_.resize(n);

  topology_ = std::make_unique<Topology>(*shards_, *fabric_,
                                         config_.topology, config_.pop_specs);
  Topology& topo = *topology_;

  for (host::Host* host : topo.all_hosts()) {
    probe_servers_.push_back(std::make_unique<ProbeServer>(
        *host, config_.probe.server_port, config_.probe.size_scale));
    probe_servers_.back()->start();
    sink_servers_.push_back(
        std::make_unique<SinkServer>(*host, config_.organic.sink_port));
    sink_servers_.back()->start();
  }

  std::vector<std::size_t> sources = config_.probe_source_pops;
  if (sources.empty()) {
    sources.resize(n);
    for (std::size_t i = 0; i < n; ++i) sources[i] = i;
  }
  const int hosts_per_pop = config_.topology.hosts_per_pop;
  for (std::size_t src : sources) {
    if (src >= n) throw std::invalid_argument("Experiment: bad source pop");
    for (int h = 0; h < hosts_per_pop; ++h) {
      std::vector<ProbeTarget> targets;
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src) continue;
        const int target_host = h % hosts_per_pop;
        targets.push_back(ProbeTarget{
            topo.host(dst, static_cast<std::size_t>(target_host)).address(),
            static_cast<int>(dst),
            topo.base_rtt(src, dst).to_milliseconds()});
      }
      probe_clients_.push_back(std::make_unique<ProbeClient>(
          shards_->cell(src), topo.host(src, static_cast<std::size_t>(h)),
          static_cast<int>(src), std::move(targets), config_.probe,
          cell_metrics_[src], cell_rngs_[src]));
      probe_clients_.back()->start();
    }
  }

  for (std::size_t src : config_.organic_source_pops) {
    if (src >= n) throw std::invalid_argument("Experiment: bad organic pop");
    for (int h = 0; h < hosts_per_pop; ++h) {
      std::vector<net::Ipv4Address> targets;
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src) continue;
        targets.push_back(
            topo.host(dst, static_cast<std::size_t>(h % hosts_per_pop))
                .address());
      }
      organic_sources_.push_back(std::make_unique<OrganicSource>(
          shards_->cell(src), topo.host(src, static_cast<std::size_t>(h)),
          std::move(targets), config_.organic, cell_rngs_[src]));
      organic_sources_.back()->start();
    }
  }

  if (config_.flow_traffic.enabled) {
    std::vector<std::size_t> flow_sources = config_.flow_traffic.source_pops;
    if (flow_sources.empty()) {
      flow_sources.resize(n);
      for (std::size_t i = 0; i < n; ++i) flow_sources[i] = i;
    }
    for (std::size_t src : flow_sources) {
      if (src >= n) throw std::invalid_argument("Experiment: bad flow pop");
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src) continue;
        // A WAN link serializes on its source cell, so the fluid model
        // driving it lives there too.
        flow_loads_.push_back(std::make_unique<flow::FlowLevelLoad>(
            shards_->cell(src), topo.wan_link(src, dst),
            config_.flow_traffic.model, cell_rngs_[src]));
        flow_loads_.back()->start();
      }
    }
  }

  if (config_.riptide_enabled) {
    for (host::Host* host : topo.all_hosts()) {
      const auto pop = static_cast<std::size_t>(topo.pop_of(host->address()));
      agents_.push_back(std::make_unique<core::RiptideAgent>(
          shards_->cell(pop), *host, config_.riptide, nullptr, nullptr,
          &cell_rngs_[pop]));
      agents_.back()->start();
    }
  }

  // Per-cell `ss` window sampler: each cell samples only its own PoP's
  // hosts into its own collector, so sampling never crosses a cell
  // boundary and the merged sample stream is worker-count-invariant.
  for (std::size_t i = 0; i < n; ++i) {
    sim::Simulator* cell = &shards_->cell(i);
    MetricsCollector* cm = &cell_metrics_[i];  // deque: stable address
    cell->schedule_periodic(
        config_.cwnd_sample_interval, config_.cwnd_sample_interval,
        [this, i, cell, cm] {
          for (host::Host* host : topology_->pops()[i].hosts) {
            for (const auto& info : host->socket_stats()) {
              if (info.state != tcp::TcpState::kEstablished) continue;
              if (info.bytes_acked < config_.min_bytes_for_cwnd_sample) {
                continue;
              }
              cm->record_cwnd(CwndSample{static_cast<int>(i),
                                         info.cwnd_segments, cell->now()});
            }
          }
        });
  }
}

void Experiment::run() {
  if (shards_ != nullptr) {
    run_sharded();
    return;
  }
  // The sink is created lazily here (not in build()) so a never-run
  // experiment owns nothing, and installed only for the span of the event
  // loop: every emit site in tcp/core/net/faults/persist sees it through
  // the thread-local slot, including on a ParallelRunner worker thread.
  if (config_.trace.enabled && trace_sink_ == nullptr) {
    trace_sink_ = std::make_unique<trace::TraceSink>(config_.trace);
  }
  trace::ScopedSink scoped(trace_sink_.get());
  sim_.run_until(config_.duration);
  if (trace_sink_ != nullptr && !config_.trace.export_path.empty()) {
    trace_sink_->write_jsonl(config_.trace.export_path);
  }
}

void Experiment::run_sharded() {
  if (ran_sharded_) {
    // The cells drained their event queues on the worker threads at the
    // end of the first run; a second run would silently do nothing.
    throw std::logic_error("Experiment: sharded run() may only run once");
  }
  ran_sharded_ = true;

  if (config_.trace.enabled && cell_trace_.empty()) {
    for (std::size_t i = 0; i < shards_->cells(); ++i) {
      cell_trace_.push_back(
          std::make_unique<trace::TraceSink>(config_.trace));
    }
  }

  shards_->run_until(config_.duration);

  // Merge per-cell records in ascending cell order — fixed, so the merged
  // stream (and the fingerprint computed from it) is invariant under the
  // worker count.
  for (const MetricsCollector& cm : cell_metrics_) {
    metrics_.merge_from(cm);
  }

  if (config_.trace.enabled && !config_.trace.export_path.empty()) {
    for (std::size_t i = 0; i < cell_trace_.size(); ++i) {
      cell_trace_[i]->write_jsonl(
          cell_trace_path(config_.trace.export_path, i));
    }
  }

  // Keep the monolithic facade's clock meaningful: simulator().now() ==
  // duration after a run, same as the unsharded path.
  sim_.run_until(config_.duration);
}

stats::Cdf Experiment::probe_cdf(int src_pop, std::uint64_t object_bytes,
                                 int dst_pop, bool fresh_only) const {
  return metrics_.completion_cdf([=](const FlowRecord& flow) {
    if (flow.src_pop != src_pop) return false;
    if (flow.object_bytes != object_bytes) return false;
    if (dst_pop >= 0 && flow.dst_pop != dst_pop) return false;
    if (fresh_only && !flow.fresh) return false;
    return true;
  });
}

std::vector<PercentileGain> percentile_gains(const stats::Cdf& baseline,
                                             const stats::Cdf& treatment,
                                             double step) {
  std::vector<PercentileGain> gains;
  if (baseline.empty() || treatment.empty() || step <= 0.0) return gains;
  for (double p = step; p < 100.0 - 1e-9; p += step) {
    const double base = baseline.percentile(p);
    const double treat = treatment.percentile(p);
    const double gain = base > 0.0 ? (base - treat) / base : 0.0;
    gains.push_back(PercentileGain{p, gain});
  }
  return gains;
}

}  // namespace riptide::cdn

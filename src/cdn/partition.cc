#include "cdn/partition.h"

#include <algorithm>
#include <stdexcept>

#include "cdn/geo.h"

namespace riptide::cdn {

std::vector<std::size_t> ShardPartition::cells_of_worker(
    std::size_t w) const {
  std::vector<std::size_t> out;
  for (std::size_t c = w; c < cells; c += workers) out.push_back(c);
  return out;
}

ShardPartition partition_pops(const std::vector<PopSpec>& specs,
                              double path_inflation, std::size_t workers) {
  if (specs.empty()) {
    throw std::invalid_argument("partition_pops: no PoPs");
  }
  if (workers == 0 || workers > specs.size()) {
    throw std::invalid_argument(
        "partition_pops: workers must be in [1, pops]");
  }

  ShardPartition part;
  part.cells = specs.size();
  part.workers = workers;
  part.cell_of_pop.resize(part.cells);
  part.worker_of_cell.resize(part.cells);
  for (std::size_t i = 0; i < part.cells; ++i) {
    part.cell_of_pop[i] = i;
    part.worker_of_cell[i] = i % workers;
  }

  // Minimum over all *directed* pairs; propagation_delay is symmetric, but
  // scanning both directions keeps the invariant literal.
  sim::Time min_delay = sim::Time::hours(24);
  for (std::size_t i = 0; i < part.cells; ++i) {
    for (std::size_t j = 0; j < part.cells; ++j) {
      if (i == j) continue;
      min_delay = std::min(
          min_delay, propagation_delay(specs[i].location, specs[j].location,
                                       path_inflation));
    }
  }
  if (part.cells > 1 && min_delay <= sim::Time::zero()) {
    throw std::invalid_argument(
        "partition_pops: co-located PoPs leave no lookahead");
  }
  // Degenerate one-PoP world: nothing ever crosses a cell boundary, any
  // positive window works; one millisecond keeps the barrier count sane.
  part.lookahead =
      part.cells == 1 ? sim::Time::milliseconds(1) : min_delay;
  return part;
}

}  // namespace riptide::cdn

#include "cdn/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace riptide::cdn {

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent)
    : exponent_(exponent) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n == 0");
  if (exponent < 0.0) {
    throw std::invalid_argument("ZipfDistribution: negative exponent");
  }
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -exponent);
    cdf_[k - 1] = acc;
  }
  for (auto& v : cdf_) v /= acc;  // normalize
  cdf_.back() = 1.0;              // guard against FP residue
}

std::size_t ZipfDistribution::sample(sim::Rng& rng) const {
  const double u = rng.uniform(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::probability(std::size_t rank) const {
  if (rank < 1 || rank > cdf_.size()) return 0.0;
  return rank == 1 ? cdf_[0] : cdf_[rank - 1] - cdf_[rank - 2];
}

}  // namespace riptide::cdn

#include "cdn/file_size_dist.h"

#include <algorithm>
#include <cmath>

namespace riptide::cdn {

namespace {
// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
}  // namespace

std::uint64_t FileSizeDistribution::sample(sim::Rng& rng) const {
  const bool small = rng.bernoulli(params_.weight_small);
  const double value = small
                           ? rng.lognormal(params_.mu_small, params_.sigma_small)
                           : rng.lognormal(params_.mu_large, params_.sigma_large);
  const auto bytes = static_cast<std::uint64_t>(value);
  return std::clamp(bytes, params_.min_bytes, params_.max_bytes);
}

double FileSizeDistribution::cdf(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  const double log_b = std::log(bytes);
  const double c_small =
      phi((log_b - params_.mu_small) / params_.sigma_small);
  const double c_large =
      phi((log_b - params_.mu_large) / params_.sigma_large);
  return params_.weight_small * c_small +
         (1.0 - params_.weight_small) * c_large;
}

}  // namespace riptide::cdn

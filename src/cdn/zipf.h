#pragma once

#include <cstddef>
#include <vector>

#include "sim/random.h"

namespace riptide::cdn {

// Zipf(s) popularity over ranks 1..n — the canonical model for CDN object
// popularity. P(rank = k) ∝ k^-s. Sampling is inverse-CDF with binary
// search over a precomputed table: O(n) setup, O(log n) per draw.
class ZipfDistribution {
 public:
  // Preconditions: n >= 1, exponent >= 0 (0 = uniform).
  ZipfDistribution(std::size_t n, double exponent);

  // Rank in [1, n]; rank 1 is the most popular object.
  std::size_t sample(sim::Rng& rng) const;

  double probability(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

}  // namespace riptide::cdn

#include "cdn/hostile.h"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "tcp/connection.h"

namespace riptide::cdn {

const char* to_string(HostileKind kind) {
  switch (kind) {
    case HostileKind::kNone: return "none";
    case HostileKind::kShallowBuffer: return "shallow-buffer";
    case HostileKind::kIncast: return "incast";
    case HostileKind::kFlashCrowd: return "flash-crowd";
    case HostileKind::kCombined: return "combined";
  }
  return "?";
}

namespace {

[[noreturn]] void bad_spec(const std::string& why) {
  throw std::invalid_argument("parse_hostile_spec: " + why);
}

// Full-match numeric parsing: trailing garbage after the number is an
// error, not silently ignored — this grammar is a fuzz surface and every
// malformed input must land on the same typed exception.
std::uint64_t parse_u64(const std::string& text, std::uint64_t max) {
  if (text.empty()) bad_spec("empty numeric value");
  for (char c : text) {
    if (c < '0' || c > '9') bad_spec("bad integer '" + text + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || value > max) {
    bad_spec("integer out of range '" + text + "'");
  }
  return value;
}

sim::Time parse_time_seconds(const std::string& text) {
  if (text.empty()) bad_spec("empty time value");
  errno = 0;
  char* end = nullptr;
  const double seconds = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size() ||
      !std::isfinite(seconds) || seconds < 0.0 || seconds > 1e6) {
    bad_spec("bad time '" + text + "'");
  }
  return sim::Time::from_seconds(seconds);
}

}  // namespace

HostileConfig parse_hostile_spec(const std::string& spec) {
  HostileConfig config;
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  if (name == "none") {
    config.kind = HostileKind::kNone;
  } else if (name == "shallow-buffer") {
    config.kind = HostileKind::kShallowBuffer;
  } else if (name == "incast") {
    config.kind = HostileKind::kIncast;
  } else if (name == "flash-crowd") {
    config.kind = HostileKind::kFlashCrowd;
  } else if (name == "combined") {
    config.kind = HostileKind::kCombined;
  } else {
    bad_spec("unknown scenario '" + name + "'");
  }
  if (colon == std::string::npos) return config;

  std::string rest = spec.substr(colon + 1);
  if (rest.empty()) bad_spec("empty option list");
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string pair = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_spec("expected key=value, got '" + pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "queue") {
      config.queue_packets = parse_u64(value, 1u << 20);
      if (config.queue_packets == 0) bad_spec("queue must be >= 1");
    } else if (key == "victim") {
      config.victim_pop = parse_u64(value, 1023);
    } else if (key == "fanin") {
      config.fanin_connections = static_cast<int>(parse_u64(value, 10'000));
      if (config.fanin_connections == 0) bad_spec("fanin must be >= 1");
    } else if (key == "burst") {
      config.burst_bytes = parse_u64(value, 1'000'000'000'000ull);
    } else if (key == "start") {
      config.incast_start = parse_time_seconds(value);
    } else if (key == "interval") {
      config.incast_interval = parse_time_seconds(value);
      if (config.incast_interval <= sim::Time::zero()) {
        bad_spec("interval must be > 0");
      }
    } else if (key == "at") {
      config.crowd_at = parse_time_seconds(value);
    } else if (key == "conns") {
      config.crowd_connections = static_cast<int>(parse_u64(value, 10'000));
      if (config.crowd_connections == 0) bad_spec("conns must be >= 1");
    } else if (key == "bytes") {
      config.crowd_bytes = parse_u64(value, 1'000'000'000'000ull);
    } else if (key == "repeats") {
      config.crowd_repeats = static_cast<int>(parse_u64(value, 1'000));
      if (config.crowd_repeats == 0) bad_spec("repeats must be >= 1");
    } else if (key == "period") {
      config.crowd_period = parse_time_seconds(value);
      if (config.crowd_period <= sim::Time::zero()) {
        bad_spec("period must be > 0");
      }
    } else {
      bad_spec("unknown option '" + key + "'");
    }
  }
  return config;
}

namespace {

// Open one fresh connection, push `bytes` once established, then close.
// Fresh-per-burst is the whole scenario: every connection reads the
// route's initcwnd at SYN time. The holder keeps the connection pointer
// alive for the callback without a use-after-free if establishment loses
// to teardown (the host owns the connection either way).
void launch_burst(host::Host& host, net::Ipv4Address target,
                  std::uint16_t port, std::uint64_t bytes) {
  auto holder = std::make_shared<tcp::TcpConnection*>(nullptr);
  tcp::TcpConnection::Callbacks cbs;
  cbs.on_established = [holder, bytes] {
    if (*holder == nullptr) return;
    (*holder)->send(bytes);
    (*holder)->close();
  };
  cbs.on_closed = [holder](bool /*reset*/) { *holder = nullptr; };
  *holder = &host.connect(target, port, std::move(cbs));
}

}  // namespace

IncastSource::IncastSource(sim::Simulator& sim, host::Host& host,
                           std::vector<net::Ipv4Address> victims,
                           std::uint16_t sink_port,
                           const HostileConfig& config)
    : sim_(sim),
      host_(host),
      victims_(std::move(victims)),
      sink_port_(sink_port),
      config_(config) {}

void IncastSource::start() {
  if (started_ || victims_.empty()) return;
  started_ = true;
  // Absolute phase: every IncastSource computes the same schedule, so the
  // waves from every source host land at the victim in the same instant.
  const sim::Time delay = config_.incast_start > sim_.now()
                              ? config_.incast_start - sim_.now()
                              : sim::Time::zero();
  sim_.schedule(delay, [this] { fire_wave(); });
}

void IncastSource::fire_wave() {
  ++waves_;
  for (int i = 0; i < config_.fanin_connections; ++i) {
    launch(victims_[next_victim_], config_.burst_bytes);
    next_victim_ = (next_victim_ + 1) % victims_.size();
  }
  sim_.schedule(config_.incast_interval, [this] { fire_wave(); });
}

void IncastSource::launch(net::Ipv4Address target, std::uint64_t bytes) {
  ++connections_;
  bytes_queued_ += bytes;
  launch_burst(host_, target, sink_port_, bytes);
}

FlashCrowdSource::FlashCrowdSource(sim::Simulator& sim, host::Host& host,
                                   std::vector<net::Ipv4Address> targets,
                                   std::uint16_t sink_port,
                                   const HostileConfig& config)
    : sim_(sim),
      host_(host),
      targets_(std::move(targets)),
      sink_port_(sink_port),
      config_(config) {}

void FlashCrowdSource::start() {
  if (started_ || targets_.empty()) return;
  started_ = true;
  const sim::Time delay = config_.crowd_at > sim_.now()
                              ? config_.crowd_at - sim_.now()
                              : sim::Time::zero();
  sim_.schedule(delay, [this] { fire_wave(); });
}

void FlashCrowdSource::fire_wave() {
  ++waves_;
  for (int i = 0; i < config_.crowd_connections; ++i) {
    launch(targets_[next_target_], config_.crowd_bytes);
    next_target_ = (next_target_ + 1) % targets_.size();
  }
  if (waves_ < static_cast<std::uint64_t>(config_.crowd_repeats)) {
    sim_.schedule(config_.crowd_period, [this] { fire_wave(); });
  }
}

void FlashCrowdSource::launch(net::Ipv4Address target, std::uint64_t bytes) {
  ++connections_;
  bytes_queued_ += bytes;
  launch_burst(host_, target, sink_port_, bytes);
}

}  // namespace riptide::cdn

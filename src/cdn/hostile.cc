#include "cdn/hostile.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "tcp/connection.h"

namespace riptide::cdn {

const char* to_string(HostileKind kind) {
  switch (kind) {
    case HostileKind::kNone: return "none";
    case HostileKind::kShallowBuffer: return "shallow-buffer";
    case HostileKind::kIncast: return "incast";
    case HostileKind::kFlashCrowd: return "flash-crowd";
    case HostileKind::kCombined: return "combined";
  }
  return "?";
}

bool operator==(const HostileConfig& a, const HostileConfig& b) {
  return a.kind == b.kind && a.queue_packets == b.queue_packets &&
         a.victim_pop == b.victim_pop &&
         a.fanin_connections == b.fanin_connections &&
         a.burst_bytes == b.burst_bytes && a.incast_start == b.incast_start &&
         a.incast_interval == b.incast_interval && a.crowd_at == b.crowd_at &&
         a.crowd_connections == b.crowd_connections &&
         a.crowd_bytes == b.crowd_bytes &&
         a.crowd_repeats == b.crowd_repeats &&
         a.crowd_period == b.crowd_period;
}

namespace {

[[noreturn]] void bad_spec(const std::string& why, const std::string& token,
                           std::size_t offset) {
  throw std::invalid_argument("parse_hostile_spec: " + why + " at byte " +
                              std::to_string(offset) + ": '" + token + "'");
}

// Full-match numeric parsing: trailing garbage after the number is an
// error, not silently ignored — this grammar is a fuzz surface and every
// malformed input must land on the same typed exception.
std::uint64_t parse_u64(const std::string& text, std::uint64_t max,
                        std::size_t offset) {
  if (text.empty()) bad_spec("empty numeric value", text, offset);
  for (char c : text) {
    if (c < '0' || c > '9') bad_spec("bad integer", text, offset);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || value > max) {
    bad_spec("integer out of range", text, offset);
  }
  return value;
}

sim::Time parse_time_seconds(const std::string& text, std::size_t offset) {
  if (text.empty()) bad_spec("empty time value", text, offset);
  errno = 0;
  char* end = nullptr;
  const double seconds = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size() ||
      !std::isfinite(seconds) || seconds < 0.0 || seconds > 1e6) {
    bad_spec("bad time", text, offset);
  }
  return sim::Time::from_seconds(seconds);
}

// Shortest decimal seconds that round-trip through parse_time_seconds.
std::string format_seconds(sim::Time t) {
  const double value = t.to_seconds();
  char buf[64];
  for (int precision : {6, 9, 15, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace

HostileConfig parse_hostile_spec(const std::string& spec) {
  HostileConfig config;
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  if (name == "none") {
    config.kind = HostileKind::kNone;
  } else if (name == "shallow-buffer") {
    config.kind = HostileKind::kShallowBuffer;
  } else if (name == "incast") {
    config.kind = HostileKind::kIncast;
  } else if (name == "flash-crowd") {
    config.kind = HostileKind::kFlashCrowd;
  } else if (name == "combined") {
    config.kind = HostileKind::kCombined;
  } else {
    bad_spec("unknown scenario", name, 0);
  }
  if (colon == std::string::npos) return config;

  std::size_t pos = colon + 1;  // byte offset of the current key=value pair
  if (pos >= spec.size()) bad_spec("empty option list", "", pos);
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string pair = spec.substr(pos, comma - pos);
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_spec("expected key=value", pair, pos);
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    const std::size_t value_at = pos + eq + 1;
    if (key == "queue") {
      config.queue_packets = parse_u64(value, 1u << 20, value_at);
      if (config.queue_packets == 0) {
        bad_spec("queue must be >= 1", value, value_at);
      }
    } else if (key == "victim") {
      config.victim_pop = parse_u64(value, 1023, value_at);
    } else if (key == "fanin") {
      config.fanin_connections =
          static_cast<int>(parse_u64(value, 10'000, value_at));
      if (config.fanin_connections == 0) {
        bad_spec("fanin must be >= 1", value, value_at);
      }
    } else if (key == "burst") {
      config.burst_bytes = parse_u64(value, 1'000'000'000'000ull, value_at);
    } else if (key == "start") {
      config.incast_start = parse_time_seconds(value, value_at);
    } else if (key == "interval") {
      config.incast_interval = parse_time_seconds(value, value_at);
      if (config.incast_interval <= sim::Time::zero()) {
        bad_spec("interval must be > 0", value, value_at);
      }
    } else if (key == "at") {
      config.crowd_at = parse_time_seconds(value, value_at);
    } else if (key == "conns") {
      config.crowd_connections =
          static_cast<int>(parse_u64(value, 10'000, value_at));
      if (config.crowd_connections == 0) {
        bad_spec("conns must be >= 1", value, value_at);
      }
    } else if (key == "bytes") {
      config.crowd_bytes = parse_u64(value, 1'000'000'000'000ull, value_at);
    } else if (key == "repeats") {
      config.crowd_repeats =
          static_cast<int>(parse_u64(value, 1'000, value_at));
      if (config.crowd_repeats == 0) {
        bad_spec("repeats must be >= 1", value, value_at);
      }
    } else if (key == "period") {
      config.crowd_period = parse_time_seconds(value, value_at);
      if (config.crowd_period <= sim::Time::zero()) {
        bad_spec("period must be > 0", value, value_at);
      }
    } else {
      bad_spec("unknown option", key, pos);
    }
    pos = comma == spec.size() ? spec.size() : comma + 1;
  }
  return config;
}

std::string to_spec_string(const HostileConfig& config) {
  std::string out = to_string(config.kind);
  const HostileConfig defaults;
  std::string opts;
  const auto add = [&](const char* key, const std::string& value) {
    if (!opts.empty()) opts += ",";
    opts += std::string(key) + "=" + value;
  };
  if (config.queue_packets != defaults.queue_packets) {
    add("queue", std::to_string(config.queue_packets));
  }
  if (config.victim_pop != defaults.victim_pop) {
    add("victim", std::to_string(config.victim_pop));
  }
  if (config.fanin_connections != defaults.fanin_connections) {
    add("fanin", std::to_string(config.fanin_connections));
  }
  if (config.burst_bytes != defaults.burst_bytes) {
    add("burst", std::to_string(config.burst_bytes));
  }
  if (config.incast_start != defaults.incast_start) {
    add("start", format_seconds(config.incast_start));
  }
  if (config.incast_interval != defaults.incast_interval) {
    add("interval", format_seconds(config.incast_interval));
  }
  if (config.crowd_at != defaults.crowd_at) {
    add("at", format_seconds(config.crowd_at));
  }
  if (config.crowd_connections != defaults.crowd_connections) {
    add("conns", std::to_string(config.crowd_connections));
  }
  if (config.crowd_bytes != defaults.crowd_bytes) {
    add("bytes", std::to_string(config.crowd_bytes));
  }
  if (config.crowd_repeats != defaults.crowd_repeats) {
    add("repeats", std::to_string(config.crowd_repeats));
  }
  if (config.crowd_period != defaults.crowd_period) {
    add("period", format_seconds(config.crowd_period));
  }
  if (!opts.empty()) out += ":" + opts;
  return out;
}

bool apply_shallow_buffer(const HostileConfig& config,
                          std::size_t& wan_queue_packets) {
  if (config.kind != HostileKind::kShallowBuffer &&
      config.kind != HostileKind::kCombined) {
    return false;
  }
  wan_queue_packets = config.queue_packets;
  return true;
}

namespace {

// Open one fresh connection, push `bytes` once established, then close.
// Fresh-per-burst is the whole scenario: every connection reads the
// route's initcwnd at SYN time. The holder keeps the connection pointer
// alive for the callback without a use-after-free if establishment loses
// to teardown (the host owns the connection either way).
void launch_burst(host::Host& host, net::Ipv4Address target,
                  std::uint16_t port, std::uint64_t bytes) {
  auto holder = std::make_shared<tcp::TcpConnection*>(nullptr);
  tcp::TcpConnection::Callbacks cbs;
  cbs.on_established = [holder, bytes] {
    if (*holder == nullptr) return;
    (*holder)->send(bytes);
    (*holder)->close();
  };
  cbs.on_closed = [holder](bool /*reset*/) { *holder = nullptr; };
  *holder = &host.connect(target, port, std::move(cbs));
}

}  // namespace

IncastSource::IncastSource(sim::Simulator& sim, host::Host& host,
                           std::vector<net::Ipv4Address> victims,
                           std::uint16_t sink_port,
                           const HostileConfig& config)
    : sim_(sim),
      host_(host),
      victims_(std::move(victims)),
      sink_port_(sink_port),
      config_(config) {}

void IncastSource::start() {
  if (started_ || victims_.empty()) return;
  started_ = true;
  // Absolute phase: every IncastSource computes the same schedule, so the
  // waves from every source host land at the victim in the same instant.
  const sim::Time delay = config_.incast_start > sim_.now()
                              ? config_.incast_start - sim_.now()
                              : sim::Time::zero();
  sim_.schedule(delay, [this] { fire_wave(); });
}

void IncastSource::fire_wave() {
  ++waves_;
  for (int i = 0; i < config_.fanin_connections; ++i) {
    launch(victims_[next_victim_], config_.burst_bytes);
    next_victim_ = (next_victim_ + 1) % victims_.size();
  }
  sim_.schedule(config_.incast_interval, [this] { fire_wave(); });
}

void IncastSource::launch(net::Ipv4Address target, std::uint64_t bytes) {
  ++connections_;
  bytes_queued_ += bytes;
  launch_burst(host_, target, sink_port_, bytes);
}

FlashCrowdSource::FlashCrowdSource(sim::Simulator& sim, host::Host& host,
                                   std::vector<net::Ipv4Address> targets,
                                   std::uint16_t sink_port,
                                   const HostileConfig& config)
    : sim_(sim),
      host_(host),
      targets_(std::move(targets)),
      sink_port_(sink_port),
      config_(config) {}

void FlashCrowdSource::start() {
  if (started_ || targets_.empty()) return;
  started_ = true;
  const sim::Time delay = config_.crowd_at > sim_.now()
                              ? config_.crowd_at - sim_.now()
                              : sim::Time::zero();
  sim_.schedule(delay, [this] { fire_wave(); });
}

void FlashCrowdSource::fire_wave() {
  ++waves_;
  for (int i = 0; i < config_.crowd_connections; ++i) {
    launch(targets_[next_target_], config_.crowd_bytes);
    next_target_ = (next_target_ + 1) % targets_.size();
  }
  if (waves_ < static_cast<std::uint64_t>(config_.crowd_repeats)) {
    sim_.schedule(config_.crowd_period, [this] { fire_wave(); });
  }
}

void FlashCrowdSource::launch(net::Ipv4Address target, std::uint64_t bytes) {
  ++connections_;
  bytes_queued_ += bytes;
  launch_burst(host_, target, sink_port_, bytes);
}

}  // namespace riptide::cdn

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cdn/file_size_dist.h"
#include "host/host.h"
#include "net/ipv4.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace riptide::cdn {

// Accepts and discards whatever is sent to it — the receiving end of
// organic back-office transfers (cache fills, log shipping, coordination
// payloads).
class SinkServer {
 public:
  SinkServer(host::Host& host, std::uint16_t port);
  void start();

  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t connections_accepted() const { return accepted_; }

 private:
  host::Host& host_;
  std::uint16_t port_;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t accepted_ = 0;
  bool started_ = false;
};

struct OrganicSourceConfig {
  // Poisson arrivals of outbound transfers.
  double mean_interarrival_seconds = 0.2;
  FileSizeDistribution sizes{};
  std::uint16_t sink_port = 9900;
  // Per-transfer probability that the connection is closed afterwards,
  // modelling the application errors / restarts of §II-A that force fresh
  // connections.
  double close_probability = 0.05;
};

// Generates "organic" PoP-to-PoP traffic from one host: size-distributed
// objects pushed to random targets over a per-destination connection pool.
// This is what separates the paper's busy PoP from the probe-only PoP in
// Fig 11: organic transfers drive congestion windows far higher than the
// fixed-size probes do.
class OrganicSource {
 public:
  OrganicSource(sim::Simulator& sim, host::Host& host,
                std::vector<net::Ipv4Address> targets,
                OrganicSourceConfig config, sim::Rng& rng);

  void start();

  std::uint64_t transfers_started() const { return transfers_; }
  std::uint64_t bytes_queued() const { return bytes_queued_; }

 private:
  struct Pool {
    net::Ipv4Address target;
    tcp::TcpConnection* conn = nullptr;
    // Bumped whenever the pool disowns a connection, so callbacks of a
    // superseded connection can't clobber a newer one's state.
    std::uint64_t generation = 0;
    std::uint64_t backlog = 0;  // bytes to send once established
    bool close_after_drain = false;
  };

  void schedule_next();
  void transfer_once();
  void ensure_connection(Pool& pool);

  sim::Simulator& sim_;
  host::Host& host_;
  OrganicSourceConfig config_;
  sim::Rng& rng_;
  std::deque<Pool> pools_;  // stable addresses for callback capture
  std::uint64_t transfers_ = 0;
  std::uint64_t bytes_queued_ = 0;
  bool started_ = false;
};

}  // namespace riptide::cdn

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "sim/time.h"
#include "stats/cdf.h"

namespace riptide::cdn {

// Destination-distance buckets used by the paper's Figures 12-14.
enum class RttBucket {
  kClose,    // < 50 ms
  kMedium,   // 50-100 ms
  kFar,      // 100-150 ms
  kVeryFar,  // > 150 ms
};

RttBucket bucket_for(double rtt_ms);
const char* to_string(RttBucket bucket);

// One completed probe/object transfer.
struct FlowRecord {
  int src_pop = -1;  // the requester's PoP
  int dst_pop = -1;  // the PoP that served the object
  std::uint64_t object_bytes = 0;
  sim::Time started;
  sim::Time duration;
  bool fresh = false;  // a new connection was opened for this transfer
  double base_rtt_ms = 0.0;  // uncongested path RTT (for bucketing)
};

// One `ss` cwnd sample (paper §IV-B1: per-minute sampling of established
// connections).
struct CwndSample {
  int pop = -1;  // PoP of the host whose connection was sampled
  std::uint32_t cwnd_segments = 0;
  sim::Time at;
};

// Accumulates flow completions and window samples across an experiment and
// slices them into the CDFs the paper's figures plot.
class MetricsCollector {
 public:
  void record_flow(const FlowRecord& record) { flows_.push_back(record); }
  void record_cwnd(const CwndSample& sample) { cwnd_samples_.push_back(sample); }

  const std::vector<FlowRecord>& flows() const { return flows_; }
  const std::vector<CwndSample>& cwnd_samples() const { return cwnd_samples_; }

  // Completion-time CDF (milliseconds) over flows matching `predicate`.
  stats::Cdf completion_cdf(
      const std::function<bool(const FlowRecord&)>& predicate) const;

  // Window CDF (segments); `pop` < 0 means all PoPs.
  stats::Cdf cwnd_cdf(int pop = -1) const;

  std::size_t flow_count() const { return flows_.size(); }

  // Appends another collector's records to this one, preserving their
  // internal order. Sharded runs keep one collector per cell (so recording
  // never crosses threads) and merge them in ascending cell order after
  // the run — a fixed order, so the merged fingerprint does not depend on
  // the worker count.
  void merge_from(const MetricsCollector& other) {
    flows_.insert(flows_.end(), other.flows_.begin(), other.flows_.end());
    cwnd_samples_.insert(cwnd_samples_.end(), other.cwnd_samples_.begin(),
                         other.cwnd_samples_.end());
  }

  // Plot-ready CSV exports (header + one row per record).
  void write_flows_csv(std::ostream& os) const;
  void write_cwnd_csv(std::ostream& os) const;

 private:
  std::vector<FlowRecord> flows_;
  std::vector<CwndSample> cwnd_samples_;
};

}  // namespace riptide::cdn

#include "cdn/traffic.h"

namespace riptide::cdn {

SinkServer::SinkServer(host::Host& host, std::uint16_t port)
    : host_(host), port_(port) {}

void SinkServer::start() {
  if (started_) return;
  started_ = true;
  host_.listen(port_, [this](tcp::TcpConnection& conn) {
    ++accepted_;
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_data = [this](std::uint64_t bytes) { bytes_received_ += bytes; };
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });
}

OrganicSource::OrganicSource(sim::Simulator& sim, host::Host& host,
                             std::vector<net::Ipv4Address> targets,
                             OrganicSourceConfig config, sim::Rng& rng)
    : sim_(sim), host_(host), config_(config), rng_(rng) {
  for (const auto& target : targets) {
    Pool pool;
    pool.target = target;
    pools_.push_back(pool);
  }
}

void OrganicSource::start() {
  if (started_ || pools_.empty()) return;
  started_ = true;
  schedule_next();
}

void OrganicSource::schedule_next() {
  const auto delay = sim::Time::from_seconds(
      rng_.exponential(config_.mean_interarrival_seconds));
  sim_.schedule(delay, [this] {
    transfer_once();
    schedule_next();
  });
}

void OrganicSource::ensure_connection(Pool& pool) {
  if (pool.conn != nullptr) return;
  const std::uint64_t gen = pool.generation;
  tcp::TcpConnection::Callbacks cbs;
  cbs.on_established = [this, &pool, gen] {
    if (gen != pool.generation) return;
    if (pool.backlog > 0) {
      pool.conn->send(pool.backlog);
      pool.backlog = 0;
      if (pool.close_after_drain) {
        pool.conn->close();
        pool.close_after_drain = false;
      }
    }
  };
  cbs.on_closed = [&pool, gen](bool /*reset*/) {
    if (gen != pool.generation) return;
    pool.conn = nullptr;
    pool.backlog = 0;
    pool.close_after_drain = false;
  };
  pool.conn = &host_.connect(pool.target, config_.sink_port, std::move(cbs));
}

void OrganicSource::transfer_once() {
  auto& pool = pools_[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(pools_.size()) - 1))];
  const std::uint64_t size = config_.sizes.sample(rng_);
  ++transfers_;
  bytes_queued_ += size;

  const bool close_after = rng_.bernoulli(config_.close_probability);
  const bool usable = pool.conn != nullptr && pool.conn->established() &&
                      !pool.conn->close_requested();
  if (usable) {
    pool.conn->send(size);
    if (close_after) pool.conn->close();
    return;
  }
  if (pool.conn != nullptr) {
    if (!pool.conn->close_requested() && !pool.conn->closed()) {
      // Still handshaking: fold this transfer into the pending backlog.
      pool.backlog += size;
      return;
    }
    // Draining toward close: disown it and start a fresh connection (its
    // callbacks are invalidated by the generation bump).
    ++pool.generation;
    pool.conn = nullptr;
    pool.backlog = 0;
  }
  pool.backlog += size;
  pool.close_after_drain = close_after;
  ensure_connection(pool);
}

}  // namespace riptide::cdn

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace riptide::cdn {

// Byte-capacity LRU cache over object ids. lookup() promotes; insert()
// evicts least-recently-used entries until the new object fits. Objects
// larger than the whole cache are rejected (never cached), as real CDN
// caches do with size admission.
class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  // True on hit (and the entry becomes most-recently-used).
  bool lookup(std::uint64_t id) {
    const auto it = index_.find(id);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return true;
  }

  // Inserts (or refreshes) an object. Returns false when the object cannot
  // be admitted (larger than capacity).
  bool insert(std::uint64_t id, std::uint64_t bytes) {
    if (bytes > capacity_bytes_) return false;
    const auto it = index_.find(id);
    if (it != index_.end()) {
      size_bytes_ -= it->second->bytes;
      it->second->bytes = bytes;
      size_bytes_ += bytes;
      order_.splice(order_.begin(), order_, it->second);
      evict_to_fit();
      return true;
    }
    order_.push_front(Entry{id, bytes});
    index_[id] = order_.begin();
    size_bytes_ += bytes;
    evict_to_fit();
    return true;
  }

  bool contains(std::uint64_t id) const { return index_.contains(id); }

  std::uint64_t size_bytes() const { return size_bytes_; }
  std::size_t entries() const { return order_.size(); }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  double hit_ratio() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t bytes;
  };

  void evict_to_fit() {
    while (size_bytes_ > capacity_bytes_ && !order_.empty()) {
      const Entry& victim = order_.back();
      size_bytes_ -= victim.bytes;
      index_.erase(victim.id);
      order_.pop_back();
      ++evictions_;
    }
  }

  std::uint64_t capacity_bytes_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t size_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace riptide::cdn

#include "cdn/pops.h"

#include <map>

namespace riptide::cdn {

const char* to_string(Continent continent) {
  switch (continent) {
    case Continent::kEurope: return "Europe";
    case Continent::kNorthAmerica: return "North America";
    case Continent::kSouthAmerica: return "South America";
    case Continent::kAsia: return "Asia";
    case Continent::kOceania: return "Oceania";
  }
  return "?";
}

const std::vector<PopSpec>& default_pop_specs() {
  static const std::vector<PopSpec> specs = {
      // Europe (10)
      {"lon", Continent::kEurope, {51.51, -0.13}},     // London
      {"par", Continent::kEurope, {48.86, 2.35}},      // Paris
      {"fra", Continent::kEurope, {50.11, 8.68}},      // Frankfurt
      {"ams", Continent::kEurope, {52.37, 4.90}},      // Amsterdam
      {"mad", Continent::kEurope, {40.42, -3.70}},     // Madrid
      {"mil", Continent::kEurope, {45.46, 9.19}},      // Milan
      {"sto", Continent::kEurope, {59.33, 18.07}},     // Stockholm
      {"war", Continent::kEurope, {52.23, 21.01}},     // Warsaw
      {"vie", Continent::kEurope, {48.21, 16.37}},     // Vienna
      {"dub", Continent::kEurope, {53.35, -6.26}},     // Dublin
      // North America (11)
      {"nyc", Continent::kNorthAmerica, {40.71, -74.01}},   // New York
      {"lax", Continent::kNorthAmerica, {34.05, -118.24}},  // Los Angeles
      {"chi", Continent::kNorthAmerica, {41.88, -87.63}},   // Chicago
      {"dal", Continent::kNorthAmerica, {32.78, -96.80}},   // Dallas
      {"mia", Continent::kNorthAmerica, {25.76, -80.19}},   // Miami
      {"sea", Continent::kNorthAmerica, {47.61, -122.33}},  // Seattle
      {"sjc", Continent::kNorthAmerica, {37.34, -121.89}},  // San Jose
      {"atl", Continent::kNorthAmerica, {33.75, -84.39}},   // Atlanta
      {"tor", Continent::kNorthAmerica, {43.65, -79.38}},   // Toronto
      {"den", Continent::kNorthAmerica, {39.74, -104.99}},  // Denver
      {"iad", Continent::kNorthAmerica, {38.90, -77.04}},   // Washington DC
      // South America (1)
      {"sao", Continent::kSouthAmerica, {-23.55, -46.63}},  // Sao Paulo
      // Asia (9)
      {"tyo", Continent::kAsia, {35.68, 139.69}},   // Tokyo
      {"sin", Continent::kAsia, {1.35, 103.82}},    // Singapore
      {"hkg", Continent::kAsia, {22.32, 114.17}},   // Hong Kong
      {"sel", Continent::kAsia, {37.57, 126.98}},   // Seoul
      {"bom", Continent::kAsia, {19.08, 72.88}},    // Mumbai
      {"osa", Continent::kAsia, {34.69, 135.50}},   // Osaka
      {"tpe", Continent::kAsia, {25.03, 121.57}},   // Taipei
      {"bkk", Continent::kAsia, {13.76, 100.50}},   // Bangkok
      {"del", Continent::kAsia, {28.61, 77.21}},    // Delhi
      // Oceania (3)
      {"syd", Continent::kOceania, {-33.87, 151.21}},  // Sydney
      {"mel", Continent::kOceania, {-37.81, 144.96}},  // Melbourne
      {"akl", Continent::kOceania, {-36.85, 174.76}},  // Auckland
  };
  return specs;
}

std::vector<std::pair<Continent, int>> continent_summary(
    const std::vector<PopSpec>& specs) {
  std::map<Continent, int> counts;
  for (const auto& spec : specs) ++counts[spec.continent];
  return {counts.begin(), counts.end()};
}

}  // namespace riptide::cdn

#include "cdn/probe.h"

#include <stdexcept>
#include <utility>

namespace riptide::cdn {

std::vector<ProbeSpec> default_probe_specs() {
  return {ProbeSpec{10 * 1000}, ProbeSpec{50 * 1000}, ProbeSpec{100 * 1000}};
}

// ---------------------------------------------------------------- server

ProbeServer::ProbeServer(host::Host& host, std::uint16_t port,
                         std::uint32_t scale)
    : host_(host), port_(port), scale_(scale) {
  if (scale_ == 0) throw std::invalid_argument("ProbeServer: scale == 0");
}

void ProbeServer::start() {
  if (started_) return;
  started_ = true;
  host_.listen(port_, [this](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    // Clients never pipeline, so every in-order delivery is one request
    // whose length names the object size.
    cbs.on_data = [this, &conn](std::uint64_t bytes) {
      ++objects_served_;
      const std::uint64_t object = bytes * scale_;
      bytes_served_ += object;
      conn.send(object);
    };
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });
}

// ---------------------------------------------------------------- client

ProbeClient::ProbeClient(sim::Simulator& sim, host::Host& host, int src_pop,
                         std::vector<ProbeTarget> targets,
                         ProbeClientConfig config, MetricsCollector& metrics,
                         sim::Rng& rng)
    : sim_(sim),
      host_(host),
      src_pop_(src_pop),
      config_(std::move(config)),
      metrics_(metrics),
      rng_(rng) {
  if (config_.interval_jitter < 0.0 || config_.interval_jitter >= 1.0) {
    throw std::invalid_argument("ProbeClient: interval_jitter outside [0,1)");
  }
  for (const auto& target : targets) {
    Round round;
    for (const auto& spec : config_.specs) {
      Task task;
      task.target = target;
      task.spec = spec;
      tasks_.push_back(std::move(task));
      round.tasks.push_back(&tasks_.back());
    }
    rounds_.push_back(std::move(round));
  }
}

std::uint32_t ProbeClient::request_bytes_for(const ProbeSpec& spec) const {
  const std::uint64_t bytes = spec.object_bytes / config_.size_scale;
  if (bytes == 0 || bytes > 1400) {
    throw std::logic_error(
        "ProbeClient: object size not encodable in a one-segment request");
  }
  return static_cast<std::uint32_t>(bytes);
}

void ProbeClient::start() {
  if (started_) return;
  started_ = true;
  for (auto& round : rounds_) {
    // Stagger the mesh so different targets' rounds don't synchronize.
    const auto offset = sim::Time::from_seconds(
        rng_.uniform(0.0, config_.interval.to_seconds()));
    sim_.schedule(offset, [this, &round] {
      fire_round(round);
      schedule_next(round);
    });
  }
}

void ProbeClient::schedule_next(Round& round) {
  const double jitter =
      rng_.uniform(1.0 - config_.interval_jitter,
                   1.0 + config_.interval_jitter);
  sim_.schedule(
      sim::Time::from_seconds(config_.interval.to_seconds() * jitter),
      [this, &round] {
        fire_round(round);
        schedule_next(round);
      });
}

void ProbeClient::fire_round(Round& round) {
  // Fisher-Yates shuffle of the firing order: whichever flavour goes first
  // claims the idle pooled connection this round.
  std::vector<Task*> order = round.tasks;
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  for (Task* task : order) fire(*task);
}

tcp::TcpConnection::Callbacks ProbeClient::callbacks_for(
    std::shared_ptr<ConnState> st) {
  tcp::TcpConnection::Callbacks cbs;
  cbs.on_established = [this, st] {
    if (st->dead || st->owner == nullptr) return;
    st->conn->send(request_bytes_for(st->owner->spec));
  };
  cbs.on_data = [this, st](std::uint64_t bytes) {
    if (st->dead || st->owner == nullptr) return;
    Task& task = *st->owner;
    task.received += bytes;
    if (task.received >= task.spec.object_bytes) complete(task);
  };
  cbs.on_closed = [this, st](bool /*reset*/) {
    st->dead = true;
    st->conn = nullptr;
    st->idle_timer.cancel();
    if (st->owner != nullptr) {
      // Connection died mid-probe: the probe is lost, free the task.
      Task& task = *st->owner;
      st->owner = nullptr;
      task.active.reset();
      task.busy = false;
      ++failed_;
    }
    const auto it = pool_.find(st->target.value());
    if (it != pool_.end() && it->second == st) pool_.erase(it);
  };
  return cbs;
}

void ProbeClient::fire(Task& task) {
  if (task.busy) {
    // Previous probe still in flight (severe congestion); skip this round
    // rather than pipeline probes.
    ++skipped_busy_;
    return;
  }
  task.busy = true;
  task.received = 0;
  task.started = sim_.now();
  ++issued_;

  // Reuse the target's idle pooled connection when it is healthy and idle.
  const auto it = pool_.find(task.target.address.value());
  if (it != pool_.end()) {
    auto st = it->second;
    if (!st->dead && st->conn != nullptr && st->conn->established() &&
        !st->conn->close_requested() && st->conn->bytes_in_flight() == 0 &&
        st->owner == nullptr) {
      pool_.erase(it);
      st->idle_timer.cancel();
      st->owner = &task;
      task.active = st;
      task.fresh = false;
      ++reused_;
      st->conn->send(request_bytes_for(task.spec));
      return;
    }
    // Unhealthy slot: drop it from the pool and let it die on its own.
    pool_.erase(it);
  }
  open_fresh(task);
}

void ProbeClient::open_fresh(Task& task) {
  auto st = std::make_shared<ConnState>();
  st->target = task.target.address;
  st->owner = &task;
  task.active = st;
  task.fresh = true;
  ++fresh_opened_;
  st->conn = &host_.connect(task.target.address, config_.server_port,
                            callbacks_for(st));
}

void ProbeClient::complete(Task& task) {
  FlowRecord record;
  record.src_pop = src_pop_;
  record.dst_pop = task.target.pop;
  record.object_bytes = task.spec.object_bytes;
  record.started = task.started;
  record.duration = sim_.now() - task.started;
  record.fresh = task.fresh;
  record.base_rtt_ms = task.target.base_rtt_ms;
  metrics_.record_flow(record);
  ++completed_;

  auto st = task.active;
  task.active.reset();
  task.busy = false;
  task.received = 0;
  if (st) {
    st->owner = nullptr;
    release_to_pool(std::move(st));
  }
}

std::size_t ProbeClient::probes_in_flight() const {
  std::size_t busy = 0;
  for (const auto& task : tasks_) {
    if (task.busy) ++busy;
  }
  return busy;
}

std::size_t ProbeClient::stalled_probes() const {
  // A busy task whose connection is gone (or known dead) will never see
  // on_data or on_closed again: the probe is silently wedged. on_closed
  // frees the task on every teardown path, so any nonzero count here is a
  // lost-callback bug.
  std::size_t stalled = 0;
  for (const auto& task : tasks_) {
    if (!task.busy) continue;
    if (task.active == nullptr || task.active->dead ||
        task.active->conn == nullptr) {
      ++stalled;
    }
  }
  return stalled;
}

void ProbeClient::release_to_pool(std::shared_ptr<ConnState> st) {
  if (st->dead || st->conn == nullptr) return;
  auto& slot = pool_[st->target.value()];
  if (slot != nullptr && slot != st && !slot->dead) {
    // Pool already holds an idle connection for this target (capacity 1,
    // as in the paper): park the extra one idle — observable by the `ss`
    // poller at its grown window — until its keep-alive lapses.
    st->idle_timer.cancel();
    st->idle_timer = sim_.schedule(config_.extra_linger, [st] {
      if (!st->dead && st->owner == nullptr && st->conn != nullptr) {
        st->conn->close();
      }
    });
    return;
  }
  slot = st;
  // Keep-alive: close the pooled connection if no probe claims it in time.
  st->idle_timer.cancel();
  st->idle_timer = sim_.schedule(config_.idle_close, [st] {
    if (!st->dead && st->owner == nullptr && st->conn != nullptr) {
      st->conn->close();
    }
  });
}

}  // namespace riptide::cdn

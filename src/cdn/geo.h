#pragma once

#include "sim/time.h"

namespace riptide::cdn {

struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

// Great-circle distance in kilometres.
double haversine_km(const GeoPoint& a, const GeoPoint& b);

// One-way propagation delay between two points: great-circle distance,
// inflated by `path_inflation` (real WAN routes are not geodesics; ~1.4 is
// a common empirical factor), at the speed of light in fibre (~2e5 km/s).
sim::Time propagation_delay(const GeoPoint& a, const GeoPoint& b,
                            double path_inflation = 1.4);

}  // namespace riptide::cdn

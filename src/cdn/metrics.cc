#include "cdn/metrics.h"

#include <ostream>

namespace riptide::cdn {

RttBucket bucket_for(double rtt_ms) {
  if (rtt_ms < 50.0) return RttBucket::kClose;
  if (rtt_ms < 100.0) return RttBucket::kMedium;
  if (rtt_ms < 150.0) return RttBucket::kFar;
  return RttBucket::kVeryFar;
}

const char* to_string(RttBucket bucket) {
  switch (bucket) {
    case RttBucket::kClose: return "<50ms";
    case RttBucket::kMedium: return "50-100ms";
    case RttBucket::kFar: return "100-150ms";
    case RttBucket::kVeryFar: return ">150ms";
  }
  return "?";
}

stats::Cdf MetricsCollector::completion_cdf(
    const std::function<bool(const FlowRecord&)>& predicate) const {
  stats::Cdf cdf;
  for (const auto& flow : flows_) {
    if (predicate(flow)) cdf.add(flow.duration.to_milliseconds());
  }
  return cdf;
}

void MetricsCollector::write_flows_csv(std::ostream& os) const {
  os << "started_ms,duration_ms,src_pop,dst_pop,object_bytes,fresh,"
        "base_rtt_ms\n";
  for (const auto& f : flows_) {
    os << f.started.to_milliseconds() << ',' << f.duration.to_milliseconds()
       << ',' << f.src_pop << ',' << f.dst_pop << ',' << f.object_bytes
       << ',' << (f.fresh ? 1 : 0) << ',' << f.base_rtt_ms << '\n';
  }
}

void MetricsCollector::write_cwnd_csv(std::ostream& os) const {
  os << "at_ms,pop,cwnd_segments\n";
  for (const auto& s : cwnd_samples_) {
    os << s.at.to_milliseconds() << ',' << s.pop << ',' << s.cwnd_segments
       << '\n';
  }
}

stats::Cdf MetricsCollector::cwnd_cdf(int pop) const {
  stats::Cdf cdf;
  for (const auto& sample : cwnd_samples_) {
    if (pop < 0 || sample.pop == pop) {
      cdf.add(static_cast<double>(sample.cwnd_segments));
    }
  }
  return cdf;
}

}  // namespace riptide::cdn

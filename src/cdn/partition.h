#pragma once

#include <cstddef>
#include <vector>

#include "cdn/pops.h"
#include "sim/time.h"

namespace riptide::cdn {

// Static placement of one topology onto the sharded simulation engine
// (sim::ShardSet) — computed once up front so it can be validated, tested,
// and reported independently of the run.
//
// The unit of partitioning is the PoP: every PoP becomes exactly one
// simulation cell (its router, hosts, LAN links, and the transmitter ends
// of its outgoing WAN links), and cells round-robin onto worker threads.
// Fixing the cell set independently of the worker count — rather than
// carving the topology into `workers` super-cells — is what makes the
// fixed-seed fingerprint invariant under --shards: each cell's event
// stream, sequence numbers, and Rng draws are the same whether its worker
// runs one cell or eight.
struct ShardPartition {
  std::size_t cells = 0;    // == number of PoPs
  std::size_t workers = 0;  // threads the cells are mapped onto

  // cell_of_pop[i] == i by construction; kept explicit so tests assert the
  // exhaustive-and-disjoint property rather than assuming it.
  std::vector<std::size_t> cell_of_pop;
  // worker_of_cell[c] == c % workers.
  std::vector<std::size_t> worker_of_cell;

  // Conservative synchronization window: the minimum WAN propagation delay
  // over all directed PoP pairs. Any packet crossing cells is in flight at
  // least this long (serialization only adds), so windows of this length
  // never deliver into a cell's past. Deliberately the inter-*cell*
  // minimum, not the inter-*worker* minimum: a worker-dependent window
  // would move the barrier timestamps when --shards changes and break
  // fingerprint invariance.
  sim::Time lookahead;

  // Cells owned by worker `w` (ascending).
  std::vector<std::size_t> cells_of_worker(std::size_t w) const;
};

// Builds the placement for `specs` onto `workers` threads. Preconditions:
// specs non-empty, 1 <= workers <= specs.size(), and no two PoPs are
// co-located (lookahead must be positive for the window protocol to make
// progress). `path_inflation` must match TopologyConfig::path_inflation so
// the lookahead agrees with the delays the topology actually builds.
ShardPartition partition_pops(const std::vector<PopSpec>& specs,
                              double path_inflation, std::size_t workers);

}  // namespace riptide::cdn

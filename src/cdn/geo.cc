#include "cdn/geo.h"

#include <cmath>

namespace riptide::cdn {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kFibreKmPerSecond = 2.0e5;  // ~2/3 c
constexpr double kPi = 3.14159265358979323846;

double radians(double deg) { return deg * kPi / 180.0; }
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = radians(a.latitude_deg);
  const double lat2 = radians(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = radians(b.longitude_deg - a.longitude_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

sim::Time propagation_delay(const GeoPoint& a, const GeoPoint& b,
                            double path_inflation) {
  const double km = haversine_km(a, b) * path_inflation;
  return sim::Time::from_seconds(km / kFibreKmPerSecond);
}

}  // namespace riptide::cdn

#pragma once

#include <cstdint>

#include "sim/random.h"

namespace riptide::cdn {

// Synthetic stand-in for the production CDN file-size distribution of
// paper Fig 2. A two-component log-normal mixture calibrated so that ~54 %
// of files exceed the 15 KB that fit in the default initial window of 10
// segments (the paper's headline statistic for Fig 2), with a web-asset
// body and a heavy media tail but few multi-megabyte objects (Fig 2 shows
// large files "do not dominate the distribution").
class FileSizeDistribution {
 public:
  struct Params {
    // Component 1: small web assets.
    double weight_small = 0.35;
    double mu_small = 8.006;    // ln(3000 B)
    double sigma_small = 1.0;
    // Component 2: larger objects (images, segments of video, ...).
    double mu_large = 11.002;   // ln(60000 B)
    double sigma_large = 1.5;
    std::uint64_t min_bytes = 200;
    std::uint64_t max_bytes = 100ull * 1024 * 1024;
  };

  FileSizeDistribution() : FileSizeDistribution(Params{}) {}
  explicit FileSizeDistribution(Params params) : params_(params) {}

  std::uint64_t sample(sim::Rng& rng) const;

  // Analytic CDF of the (unclamped) mixture: P(size <= bytes).
  double cdf(double bytes) const;
  double fraction_above(double bytes) const { return 1.0 - cdf(bytes); }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace riptide::cdn

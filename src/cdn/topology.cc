#include "cdn/topology.h"

#include <stdexcept>
#include <string>

namespace riptide::cdn {

Topology::Topology(sim::Simulator& sim, TopologyConfig config,
                   std::vector<PopSpec> specs)
    : sim_(sim), config_(config), rng_(config.seed) {
  build(specs);
}

Topology::Topology(sim::ShardSet& shards, net::WireFabric& fabric,
                   TopologyConfig config, std::vector<PopSpec> specs)
    : sim_(shards.cell(0)),
      config_(config),
      rng_(config.seed),
      shards_(&shards),
      fabric_(&fabric) {
  if (shards.cells() != specs.size()) {
    throw std::invalid_argument("Topology: shards.cells() != pop count");
  }
  if (fabric.cells() != specs.size()) {
    throw std::invalid_argument("Topology: fabric.cells() != pop count");
  }
  // Fork order (ascending cell) is part of the deterministic fingerprint.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    cell_rngs_.push_back(rng_.fork(i));
  }
  build(specs);
}

sim::Simulator& Topology::cell_sim(std::size_t pop) {
  if (shards_ == nullptr) return sim_;
  return shards_->cell(pop);
}

sim::Rng& Topology::cell_rng(std::size_t pop) {
  if (shards_ == nullptr) return rng_;
  return cell_rngs_.at(pop);
}

void Topology::build(const std::vector<PopSpec>& specs) {
  if (specs.empty()) throw std::invalid_argument("Topology: no PoPs");
  if (specs.size() > 200) throw std::invalid_argument("Topology: too many PoPs");
  if (config_.hosts_per_pop < 1 || config_.hosts_per_pop > 250) {
    throw std::invalid_argument("Topology: hosts_per_pop out of range");
  }

  const std::size_t n = specs.size();
  pops_.reserve(n);
  routers_.reserve(n);

  // PoP routers and hosts.
  for (std::size_t i = 0; i < n; ++i) {
    routers_.push_back(std::make_unique<net::Router>(specs[i].name + "-rtr"));
    Pop pop;
    pop.spec = specs[i];
    pop.prefix = net::Prefix(
        net::Ipv4Address(10, static_cast<std::uint8_t>(i), 0, 0), 16);
    pop.router = routers_.back().get();
    pops_.push_back(std::move(pop));
  }

  const net::Link::Config lan_up_cfg{
      config_.lan_rate_bps, config_.lan_delay, config_.lan_queue_packets,
      0.0, "lan"};

  for (std::size_t i = 0; i < n; ++i) {
    auto& pop = pops_[i];
    sim::Simulator& psim = cell_sim(i);
    sim::Rng& prng = cell_rng(i);
    for (int h = 0; h < config_.hosts_per_pop; ++h) {
      const net::Ipv4Address addr(10, static_cast<std::uint8_t>(i), 0,
                                  static_cast<std::uint8_t>(h + 1));
      hosts_.push_back(std::make_unique<host::Host>(
          psim, pop.spec.name + "-" + std::to_string(h + 1), addr,
          config_.host_tcp));
      host::Host& host = *hosts_.back();

      // Downlink router -> host.
      auto down_cfg = lan_up_cfg;
      down_cfg.name = pop.spec.name + "-down-" + std::to_string(h + 1);
      links_.push_back(
          std::make_unique<net::Link>(psim, down_cfg, host, &prng));
      pop.router->add_route(net::Prefix::host(addr), *links_.back());

      // Uplink host -> router.
      auto up_cfg = lan_up_cfg;
      up_cfg.name = pop.spec.name + "-up-" + std::to_string(h + 1);
      links_.push_back(
          std::make_unique<net::Link>(psim, up_cfg, *pop.router, &prng));
      host.attach_uplink(*links_.back());

      pop.hosts.push_back(&host);
    }
  }

  // Full mesh of WAN links between PoP routers. A WAN link belongs to its
  // *source* cell: admission, loss draws, and serialization happen where
  // the transmitter lives. In sharded mode delivery crosses to the
  // destination cell through the wire fabric instead of a local event.
  wan_matrix_.assign(n * n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      net::Link::Config cfg;
      cfg.rate_bps = config_.wan_rate_bps;
      cfg.propagation_delay = propagation_delay(
          pops_[i].spec.location, pops_[j].spec.location,
          config_.path_inflation);
      cfg.queue_packets = config_.wan_queue_packets;
      cfg.loss_probability = config_.wan_loss_probability;
      cfg.name = pops_[i].spec.name + "->" + pops_[j].spec.name;
      links_.push_back(std::make_unique<net::Link>(
          cell_sim(i), cfg, *pops_[j].router, &cell_rng(i)));
      wan_matrix_[i * n + j] = links_.back().get();
      pops_[i].router->add_route(pops_[j].prefix, *links_.back());
      if (fabric_ != nullptr) {
        fabric_->channel(i, j).set_sink(pops_[j].router);
        links_.back()->set_remote_delivery(&fabric_->channel(i, j));
      }
    }
  }
}

host::Host& Topology::host(std::size_t pop, std::size_t index) {
  return *pops_.at(pop).hosts.at(index);
}

const host::Host& Topology::host(std::size_t pop, std::size_t index) const {
  return *pops_.at(pop).hosts.at(index);
}

std::vector<host::Host*> Topology::all_hosts() {
  std::vector<host::Host*> out;
  out.reserve(hosts_.size());
  for (auto& h : hosts_) out.push_back(h.get());
  return out;
}

int Topology::pop_of(net::Ipv4Address addr) const {
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    if (pops_[i].prefix.contains(addr)) return static_cast<int>(i);
  }
  return -1;
}

sim::Time Topology::base_rtt(std::size_t pop_a, std::size_t pop_b) const {
  const sim::Time one_way =
      propagation_delay(pops_.at(pop_a).spec.location,
                        pops_.at(pop_b).spec.location,
                        config_.path_inflation) +
      2 * config_.lan_delay;
  return 2 * one_way;
}

net::Link& Topology::wan_link(std::size_t from, std::size_t to) {
  if (from == to) throw std::invalid_argument("Topology::wan_link: from == to");
  net::Link* link = wan_matrix_.at(from * pop_count() + to);
  if (link == nullptr) throw std::logic_error("Topology::wan_link: missing");
  return *link;
}

Topology::DropTotals Topology::drop_totals() const {
  DropTotals totals;
  for (const auto& link : links_) {
    const net::LinkStats& s = link->stats();
    totals.queue_full += s.drops_queue_full;
    totals.random_loss += s.drops_random_loss;
    totals.link_down += s.drops_link_down;
  }
  for (const auto& router : routers_) {
    totals.no_route += router->no_route_drops();
  }
  return totals;
}

std::uint64_t Topology::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& host : hosts_) total += host->total_retransmissions();
  return total;
}

std::uint64_t Topology::total_timeouts() const {
  std::uint64_t total = 0;
  for (const auto& host : hosts_) total += host->total_timeouts();
  return total;
}

}  // namespace riptide::cdn

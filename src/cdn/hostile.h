#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "host/host.h"
#include "net/ipv4.h"
#include "sim/simulator.h"

namespace riptide::cdn {

// Adversarial traffic/topology shapes for the "when is jump-starting
// safe?" suite (ROADMAP item 3). Each scenario is the paper's blind spot:
// conditions where a large initial window *hurts*, stressing the
// SafetyGovernor instead of showcasing the latency win.
enum class HostileKind : std::uint8_t {
  kNone,
  // Bottleneck queues far shallower than the learned windows: a single
  // jump-started burst overflows the queue it used to fill gradually.
  kShallowBuffer,
  // Synchronized periodic fan-in at one victim PoP: many sources open
  // fresh connections to the same destination in the same instant, so
  // their (possibly boosted) initial bursts collide at the victim's
  // ingress queue.
  kIncast,
  // Flash crowd: every PoP opens a wave of fresh connections at once —
  // hundreds of jump-starts land inside one RTT across the whole mesh.
  kFlashCrowd,
  // Shallow buffers + incast + flash crowd together, the worst case the
  // staged governor ladder is built for.
  kCombined,
};
const char* to_string(HostileKind kind);

struct HostileConfig {
  HostileKind kind = HostileKind::kNone;

  // shallow-buffer / combined: WAN bottleneck queue depth, in packets
  // (the clean topology default is 4096).
  std::size_t queue_packets = 32;

  // incast / combined
  std::size_t victim_pop = 0;
  int fanin_connections = 8;  // fresh connections per source host per wave
  std::uint64_t burst_bytes = 100'000;
  sim::Time incast_start = sim::Time::seconds(5);
  sim::Time incast_interval = sim::Time::seconds(10);

  // flash-crowd / combined
  sim::Time crowd_at = sim::Time::seconds(30);
  int crowd_connections = 20;  // fresh connections per host per wave
  std::uint64_t crowd_bytes = 200'000;
  int crowd_repeats = 2;
  sim::Time crowd_period = sim::Time::seconds(30);
};

// Field-wise equality, for spec round-trip checks and the chaos shrinker.
bool operator==(const HostileConfig& a, const HostileConfig& b);

// Parses "name" or "name:key=val,key=val,...". Names: none,
// shallow-buffer, incast, flash-crowd, combined. Keys: queue, victim,
// fanin, burst, start, interval, at, conns, bytes, repeats, period
// (times in seconds, fractional allowed). Throws std::invalid_argument
// naming the offending token and its byte offset on anything else — this
// grammar is a fuzz surface.
HostileConfig parse_hostile_spec(const std::string& spec);

// Canonical spec string: the scenario name plus every key whose value
// differs from the default, in fixed key order.
// parse_hostile_spec(to_spec_string(config)) == config for every parsed
// config.
std::string to_spec_string(const HostileConfig& config);

// The shallow-buffer scenarios shrink the WAN bottleneck before the world
// is built (a topology property, not a traffic source). Callers mutate
// their TopologyConfig with this before constructing the Experiment;
// returns true when a shrink was applied.
bool apply_shallow_buffer(const HostileConfig& config,
                          std::size_t& wan_queue_packets);

// One host's side of the synchronized fan-in: at incast_start +
// k*incast_interval (absolute simulation times, so every source across
// every PoP fires in the same instant), open `fanin_connections` fresh
// connections to the victim PoP's hosts and push burst_bytes down each.
// Fresh connections are the point: each one reads the route's initcwnd
// at SYN time, so a Riptide-boosted route turns the wave into
// synchronized line-rate bursts.
class IncastSource {
 public:
  IncastSource(sim::Simulator& sim, host::Host& host,
               std::vector<net::Ipv4Address> victims, std::uint16_t sink_port,
               const HostileConfig& config);

  void start();

  std::uint64_t waves_fired() const { return waves_; }
  std::uint64_t connections_opened() const { return connections_; }
  std::uint64_t bytes_queued() const { return bytes_queued_; }

 private:
  void fire_wave();
  void launch(net::Ipv4Address target, std::uint64_t bytes);

  sim::Simulator& sim_;
  host::Host& host_;
  std::vector<net::Ipv4Address> victims_;
  std::uint16_t sink_port_;
  HostileConfig config_;
  std::size_t next_victim_ = 0;
  std::uint64_t waves_ = 0;
  std::uint64_t connections_ = 0;
  std::uint64_t bytes_queued_ = 0;
  bool started_ = false;
};

// One host's side of the flash crowd: at crowd_at + k*crowd_period for
// k < crowd_repeats, open `crowd_connections` fresh connections spread
// round-robin over every other PoP and push crowd_bytes down each.
class FlashCrowdSource {
 public:
  FlashCrowdSource(sim::Simulator& sim, host::Host& host,
                   std::vector<net::Ipv4Address> targets,
                   std::uint16_t sink_port, const HostileConfig& config);

  void start();

  std::uint64_t waves_fired() const { return waves_; }
  std::uint64_t connections_opened() const { return connections_; }
  std::uint64_t bytes_queued() const { return bytes_queued_; }

 private:
  void fire_wave();
  void launch(net::Ipv4Address target, std::uint64_t bytes);

  sim::Simulator& sim_;
  host::Host& host_;
  std::vector<net::Ipv4Address> targets_;
  std::uint16_t sink_port_;
  HostileConfig config_;
  std::size_t next_target_ = 0;
  std::uint64_t waves_ = 0;
  std::uint64_t connections_ = 0;
  std::uint64_t bytes_queued_ = 0;
  bool started_ = false;
};

}  // namespace riptide::cdn

#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>

#include "core/config.h"

namespace riptide::core {

// One polled connection toward a destination group.
struct Observation {
  double cwnd_segments = 0.0;
  std::uint64_t bytes_acked = 0;  // lifetime bytes carried (from `ss`)
};

// Collapses the observations of one destination group into a single window
// estimate in segments (§III-B "Combination Algorithm").
//
// Takes a span rather than a vector: the agent's poll loop keeps all
// observations of a cycle in one flat buffer and hands each destination's
// contiguous run to the combiner, so the per-destination vectors (one heap
// allocation per destination per poll) are gone.
class Combiner {
 public:
  virtual ~Combiner() = default;
  // Precondition: observations is non-empty.
  virtual double combine(std::span<const Observation> observations) const = 0;
  // Convenience for tests/call sites with literal observation lists.
  double combine(std::initializer_list<Observation> observations) const {
    return combine(
        std::span<const Observation>(observations.begin(), observations.size()));
  }
  virtual const char* name() const = 0;
};

// Paper default: plain mean of the current windows.
class AverageCombiner : public Combiner {
 public:
  using Combiner::combine;
  double combine(std::span<const Observation> observations) const override;
  const char* name() const override { return "average"; }
};

// Aggressive variant: the maximum observed window — "the most the link is
// capable of handling".
class MaxCombiner : public Combiner {
 public:
  using Combiner::combine;
  double combine(std::span<const Observation> observations) const override;
  const char* name() const override { return "max"; }
};

// Conservative variant: windows weighted by the traffic each connection has
// carried, so barely-used connections (still parked at their initial
// window) don't dominate the estimate.
class TrafficWeightedCombiner : public Combiner {
 public:
  using Combiner::combine;
  double combine(std::span<const Observation> observations) const override;
  const char* name() const override { return "traffic-weighted"; }
};

std::unique_ptr<Combiner> make_combiner(CombinerKind kind);

}  // namespace riptide::core

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"

namespace riptide::core {

// One polled connection toward a destination group.
struct Observation {
  double cwnd_segments = 0.0;
  std::uint64_t bytes_acked = 0;  // lifetime bytes carried (from `ss`)
};

// Collapses the observations of one destination group into a single window
// estimate in segments (§III-B "Combination Algorithm").
class Combiner {
 public:
  virtual ~Combiner() = default;
  // Precondition: observations is non-empty.
  virtual double combine(const std::vector<Observation>& observations) const = 0;
  virtual const char* name() const = 0;
};

// Paper default: plain mean of the current windows.
class AverageCombiner : public Combiner {
 public:
  double combine(const std::vector<Observation>& observations) const override;
  const char* name() const override { return "average"; }
};

// Aggressive variant: the maximum observed window — "the most the link is
// capable of handling".
class MaxCombiner : public Combiner {
 public:
  double combine(const std::vector<Observation>& observations) const override;
  const char* name() const override { return "max"; }
};

// Conservative variant: windows weighted by the traffic each connection has
// carried, so barely-used connections (still parked at their initial
// window) don't dominate the estimate.
class TrafficWeightedCombiner : public Combiner {
 public:
  double combine(const std::vector<Observation>& observations) const override;
  const char* name() const override { return "traffic-weighted"; }
};

std::unique_ptr<Combiner> make_combiner(CombinerKind kind);

}  // namespace riptide::core

#include "core/combiner.h"

#include <algorithm>
#include <stdexcept>

namespace riptide::core {

double AverageCombiner::combine(
    std::span<const Observation> observations) const {
  if (observations.empty()) {
    throw std::invalid_argument("AverageCombiner: empty observations");
  }
  double sum = 0.0;
  for (const auto& obs : observations) sum += obs.cwnd_segments;
  return sum / static_cast<double>(observations.size());
}

double MaxCombiner::combine(std::span<const Observation> observations) const {
  if (observations.empty()) {
    throw std::invalid_argument("MaxCombiner: empty observations");
  }
  double best = observations.front().cwnd_segments;
  for (const auto& obs : observations) best = std::max(best, obs.cwnd_segments);
  return best;
}

double TrafficWeightedCombiner::combine(
    std::span<const Observation> observations) const {
  if (observations.empty()) {
    throw std::invalid_argument("TrafficWeightedCombiner: empty observations");
  }
  double weighted = 0.0;
  double total_weight = 0.0;
  for (const auto& obs : observations) {
    // +1 keeps idle connections from having zero weight (and avoids a
    // zero-division when nothing has transferred yet).
    const double w = static_cast<double>(obs.bytes_acked) + 1.0;
    weighted += obs.cwnd_segments * w;
    total_weight += w;
  }
  return weighted / total_weight;
}

std::unique_ptr<Combiner> make_combiner(CombinerKind kind) {
  switch (kind) {
    case CombinerKind::kAverage:
      return std::make_unique<AverageCombiner>();
    case CombinerKind::kMax:
      return std::make_unique<MaxCombiner>();
    case CombinerKind::kTrafficWeighted:
      return std::make_unique<TrafficWeightedCombiner>();
  }
  return std::make_unique<AverageCombiner>();
}

}  // namespace riptide::core

#include "core/route_programmer.h"

#include <stdexcept>

namespace riptide::core {

void HostRouteProgrammer::set_initial_windows(const net::Prefix& dst,
                                              std::uint32_t initcwnd_segments,
                                              std::uint32_t initrwnd_segments,
                                              tcp::RouteCc cc) {
  if (dst.length() == 0) {
    // Refuse to rewrite the default route: the misconfiguration §III-C
    // warns about (machines becoming unreachable).
    throw std::invalid_argument(
        "HostRouteProgrammer: refusing to replace the default route");
  }
  // Resolve the egress from the underlying route, not from a previously
  // installed Riptide route for the same destination — otherwise a path
  // change (e.g. failover of the default route) would never propagate.
  const host::RouteEntry* covering =
      host_.routing_table().lookup_excluding(dst.address(), dst);
  if (covering == nullptr || covering->device == nullptr) {
    throw std::logic_error("HostRouteProgrammer: no covering route for " +
                           dst.to_string());
  }
  host_.routing_table().add_or_replace(
      dst, *covering->device,
      host::RouteMetrics{initcwnd_segments, initrwnd_segments, cc});
  ++routes_programmed_;
}

void HostRouteProgrammer::clear(const net::Prefix& dst) {
  if (host_.routing_table().remove(dst)) ++routes_cleared_;
}

}  // namespace riptide::core

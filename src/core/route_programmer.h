#pragma once

#include <cstdint>

#include "host/host.h"
#include "net/ipv4.h"

namespace riptide::core {

// The agent's actuator: installs or withdraws per-destination initial
// windows. In the paper this is the `ip route replace ... initcwnd N`
// command of Fig 8; here it writes the host routing-table metrics the TCP
// stack consults at connect time. Abstracted so tests can intercept
// programming decisions.
class RouteProgrammer {
 public:
  virtual ~RouteProgrammer() = default;

  // Installs `initcwnd` (and, when nonzero, `initrwnd`) toward `dst`.
  // `cc` optionally pins a congestion-control regime on the same route
  // (kUnset leaves the host default in force), mirroring
  // `ip route ... congctl <name>`.
  virtual void set_initial_windows(
      const net::Prefix& dst, std::uint32_t initcwnd_segments,
      std::uint32_t initrwnd_segments,
      tcp::RouteCc cc = tcp::RouteCc::kUnset) = 0;

  // Withdraws the route, restoring default windows (TTL expiry path).
  virtual void clear(const net::Prefix& dst) = 0;
};

// Programs a simulated host's routing table, preserving the egress device
// of the route that currently covers the destination — the paper's "set a
// route which otherwise reflects identical settings to the default route"
// (§III-C).
class HostRouteProgrammer : public RouteProgrammer {
 public:
  explicit HostRouteProgrammer(host::Host& host) : host_(host) {}

  void set_initial_windows(const net::Prefix& dst,
                           std::uint32_t initcwnd_segments,
                           std::uint32_t initrwnd_segments,
                           tcp::RouteCc cc = tcp::RouteCc::kUnset) override;
  void clear(const net::Prefix& dst) override;

  std::uint64_t routes_programmed() const { return routes_programmed_; }
  std::uint64_t routes_cleared() const { return routes_cleared_; }

 private:
  host::Host& host_;
  std::uint64_t routes_programmed_ = 0;
  std::uint64_t routes_cleared_ = 0;
};

}  // namespace riptide::core

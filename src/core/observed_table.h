#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/ipv4.h"
#include "sim/time.h"

namespace riptide::core {

// Per-destination learned state: the smoothed window and when it was last
// refreshed. The stored value is the *final* (clamped) window of the
// previous round — Algorithm 1 feeds it back as the history term.
struct DestinationState {
  double final_window_segments = 0.0;
  sim::Time last_updated;
  std::uint64_t updates = 0;

  friend bool operator==(const DestinationState&,
                         const DestinationState&) = default;
};

// Riptide's "observed table" (§III-B): destination group -> learned window.
// Ordered by prefix for deterministic iteration in logs and tests.
class ObservedTable {
 public:
  // Folds one fresh combined observation into the entry, returning the new
  // final value: alpha * previous_final + (1 - alpha) * observed, seeded
  // with the observation itself on first contact. Clamping is the caller's
  // job (the clamped result is what gets stored, via `store_final`).
  double fold(const net::Prefix& destination, double observed, double alpha,
              sim::Time now);

  // Overwrites the stored final value (after clamping).
  void store_final(const net::Prefix& destination, double final_value,
                   sim::Time now);

  // Installs a complete entry verbatim (snapshot restore); replaces any
  // existing entry for the destination.
  void put(const net::Prefix& destination, const DestinationState& state);

  bool contains(const net::Prefix& destination) const;
  const DestinationState* find(const net::Prefix& destination) const;

  // Removes entries whose last update is older than `ttl` and returns them
  // (so the agent can withdraw the corresponding routes).
  std::vector<net::Prefix> expire(sim::Time now, sim::Time ttl);

  // Drops one entry (staleness-guard withdrawal); false when absent.
  bool erase(const net::Prefix& destination);

  const std::map<net::Prefix, DestinationState, net::PrefixOrder>& entries()
      const {
    return entries_;
  }
  std::size_t size() const { return entries_.size(); }

  friend bool operator==(const ObservedTable&, const ObservedTable&) = default;

 private:
  // Keyed by the explicit PrefixOrder: iteration order determines both
  // snapshot record order and route-programming order, so it must be the
  // same on every platform and in every process generation.
  std::map<net::Prefix, DestinationState, net::PrefixOrder> entries_;
};

}  // namespace riptide::core

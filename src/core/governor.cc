#include "core/governor.h"

#include <algorithm>
#include <cstdlib>

namespace riptide::core {

bool SafetyGovernor::should_rollback(std::uint64_t retrans_delta,
                                     std::uint64_t packets_delta,
                                     sim::Time now) {
  if (!rollback_enabled()) return false;
  if (in_cooldown(now)) return false;
  if (packets_delta < config_.min_packets) return false;
  return static_cast<double>(retrans_delta) >=
         config_.rollback_retrans_fraction *
             static_cast<double>(packets_delta);
}

void SafetyGovernor::arm_cooldown(sim::Time now) {
  state_ = State::kCooldown;
  cooldown_until_ = now + config_.cooldown;
}

bool SafetyGovernor::in_cooldown(sim::Time now) {
  if (state_ != State::kCooldown) return false;
  if (now >= cooldown_until_) {
    state_ = State::kNormal;
    return false;
  }
  return true;
}

double SafetyGovernor::budget_scale(double total_desired_segments) const {
  if (config_.budget_segments == 0) return 1.0;
  if (total_desired_segments <=
      static_cast<double>(config_.budget_segments)) {
    return 1.0;
  }
  return static_cast<double>(config_.budget_segments) /
         total_desired_segments;
}

bool SafetyGovernor::within_hysteresis(std::uint32_t installed_segments,
                                       std::uint32_t desired_segments) const {
  if (config_.hysteresis_segments == 0) return false;
  const std::uint32_t delta = installed_segments > desired_segments
                                  ? installed_segments - desired_segments
                                  : desired_segments - installed_segments;
  return delta <= config_.hysteresis_segments;
}

}  // namespace riptide::core

#include "core/governor.h"

#include <algorithm>

namespace riptide::core {

const char* to_string(GovernorState state) {
  switch (state) {
    case GovernorState::kNormal:
      return "normal";
    case GovernorState::kScaleDown:
      return "scale-down";
    case GovernorState::kSelectiveWithdraw:
      return "selective-withdraw";
    case GovernorState::kCooldown:
      return "cooldown";
  }
  return "unknown";
}

bool SafetyGovernor::over_threshold(std::uint64_t retrans_delta,
                                    std::uint64_t packets_delta) const {
  // A zero-packet poll window is no evidence either way: with
  // min_packets configured to 0 the comparison below would read
  // 0 >= fraction * 0 and trip a spurious rollback on an idle host.
  if (packets_delta == 0) return false;
  if (packets_delta < config_.min_packets) return false;
  return static_cast<double>(retrans_delta) >=
         config_.rollback_retrans_fraction *
             static_cast<double>(packets_delta);
}

bool SafetyGovernor::should_rollback(std::uint64_t retrans_delta,
                                     std::uint64_t packets_delta,
                                     sim::Time now) {
  if (!rollback_enabled()) return false;
  if (in_cooldown(now)) return false;
  return over_threshold(retrans_delta, packets_delta);
}

StagedAction SafetyGovernor::assess(std::uint64_t retrans_delta,
                                    std::uint64_t packets_delta,
                                    sim::Time now) {
  if (!rollback_enabled()) return StagedAction::kNone;
  if (in_cooldown(now)) return StagedAction::kNone;
  if (packets_delta == 0 || packets_delta < config_.min_packets) {
    // No evidence: hold whatever stage we are in rather than either
    // escalating (an idle window is not a loss storm) or celebrating a
    // recovery that never carried traffic.
    return StagedAction::kNone;
  }
  if (!over_threshold(retrans_delta, packets_delta)) {
    // One healthy window clears the ladder entirely: the staged actions
    // already took the pressure off, and lingering in a degraded stage
    // would keep shrinking a host that has stopped hurting.
    state_ = GovernorState::kNormal;
    return StagedAction::kNone;
  }
  switch (state_) {
    case GovernorState::kNormal:
      state_ = GovernorState::kScaleDown;
      return StagedAction::kScaleDown;
    case GovernorState::kScaleDown:
      state_ = GovernorState::kSelectiveWithdraw;
      return StagedAction::kSelectiveWithdraw;
    case GovernorState::kSelectiveWithdraw:
      // The kCooldown transition happens in arm_cooldown, which the agent
      // calls from its rollback sweep (same contract as the legacy path).
      return StagedAction::kRollback;
    case GovernorState::kCooldown:
      return StagedAction::kNone;
  }
  return StagedAction::kNone;
}

bool SafetyGovernor::arm_cooldown(sim::Time now) {
  bool storm = false;
  if (current_cooldown_ == sim::Time::zero()) {
    current_cooldown_ = config_.cooldown;
  }
  if (config_.storm_backoff_factor > 1.0) {
    const bool re_trip =
        cooled_down_once_ &&
        now <= last_cooldown_end_ + config_.storm_memory;
    if (re_trip) {
      current_cooldown_ = std::min(
          config_.max_cooldown,
          sim::Time::from_seconds(current_cooldown_.to_seconds() *
                                  config_.storm_backoff_factor));
      storm = true;
      ++storm_escalations_;
    } else {
      current_cooldown_ = config_.cooldown;
    }
  }
  state_ = GovernorState::kCooldown;
  cooldown_until_ = now + current_cooldown_;
  last_cooldown_end_ = cooldown_until_;
  cooled_down_once_ = true;
  return storm;
}

bool SafetyGovernor::in_cooldown(sim::Time now) {
  if (state_ != GovernorState::kCooldown) return false;
  if (now >= cooldown_until_) {
    state_ = GovernorState::kNormal;
    return false;
  }
  return true;
}

double SafetyGovernor::budget_scale(double total_desired_segments) const {
  if (config_.budget_segments == 0) return 1.0;
  if (total_desired_segments <=
      static_cast<double>(config_.budget_segments)) {
    return 1.0;
  }
  return static_cast<double>(config_.budget_segments) /
         total_desired_segments;
}

bool SafetyGovernor::within_hysteresis(std::uint32_t installed_segments,
                                       std::uint32_t desired_segments) const {
  if (config_.hysteresis_segments == 0) return false;
  const std::uint32_t delta = installed_segments > desired_segments
                                  ? installed_segments - desired_segments
                                  : desired_segments - installed_segments;
  return delta <= config_.hysteresis_segments;
}

}  // namespace riptide::core

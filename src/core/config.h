#pragma once

#include <cstdint>

#include "core/governor.h"
#include "sim/time.h"
#include "tcp/config.h"

namespace riptide::core {

// How per-destination observations are collapsed into one window value
// (paper §III-B "Combination Algorithm").
enum class CombinerKind {
  kAverage,          // paper default: mean of current windows
  kMax,              // aggressive: the most the path has carried
  kTrafficWeighted,  // conservative: weight windows by bytes transferred
};

// The granularity at which destinations are grouped and routes installed
// (paper §III-B "Destinations as Routes").
enum class Granularity {
  kHost,    // one /32 route per destination host
  kPrefix,  // one route per prefix (e.g. per PoP)
};

// Riptide's tunable parameters — Table I of the paper, plus the §III
// design-variation knobs.
struct RiptideConfig {
  // Weight applied to the *historical* value in the moving average; 1-alpha
  // goes to the newest observation. alpha = 0 disables history.
  double alpha = 0.5;

  // i_u: how often open-connection windows are polled. The paper's
  // evaluation uses 1 second.
  sim::Time update_interval = sim::Time::seconds(1);

  // t: entry time-to-live. With no fresh observations for this long, the
  // entry and its route are removed, restoring the default IW10. The
  // paper's deployment uses 90 s.
  sim::Time ttl = sim::Time::seconds(90);

  // c_max / c_min: clamp on the programmed window, in segments. The paper
  // settles on c_max = 100 (Fig 10 knee) and floors at the default of 10.
  std::uint32_t c_max = 100;
  std::uint32_t c_min = 10;

  CombinerKind combiner = CombinerKind::kAverage;

  Granularity granularity = Granularity::kHost;
  // Mask length for kPrefix grouping (e.g. 16 to treat a whole PoP as one
  // destination).
  int prefix_length = 16;

  // Also raise initrwnd on programmed routes so the peer's Riptide-sized
  // bursts fit in our advertised window (§III-C). The value installed is
  // max(c_max, programmed initcwnd).
  bool set_initrwnd = true;

  // Congestion-control regime stamped onto every route the agent programs
  // (consumed by connections at connect time, exactly like the windows).
  // kUnset — the default — leaves the host-wide TcpConfig in force, so the
  // agent's routes carry no CC opinion unless a policy asks for one.
  tcp::RouteCc route_cc = tcp::RouteCc::kUnset;

  // Minimum connections observed toward a destination before programming a
  // route for it.
  std::uint32_t min_samples = 1;

  // §V "Additional Algorithms": trend guard. A sharp fall of the combined
  // observation relative to the stored value — more than
  // `trend_drop_fraction` in one poll — signals a network incident; rather
  // than letting the EWMA glide down over many intervals, the learned
  // window is reset to c_min immediately ("aggressively decrease the
  // initial windows, beyond what is happening to existing connections").
  bool trend_guard = false;
  double trend_drop_fraction = 0.5;

  // Observe connections through the textual `ss` round-trip (format, then
  // parse) instead of the in-memory snapshot. Functionally identical by
  // construction — the paper's tool is exactly such a text-scraping
  // script — and kept as an option to prove the text surface suffices.
  bool via_text_interface = false;

  // ------------------------------------------------------------------
  // Hardening knobs (robustness under network and actuator failures).
  // Defaults are chosen so a fault-free run behaves bit-identically to an
  // agent without any of this machinery: the retry path only activates on
  // actuator failures, adoption only sees routes a crashed predecessor
  // left behind, and the guards/jitter default off.
  // ------------------------------------------------------------------

  // Actuator retry: a failed set_initial_windows/clear is retried with
  // exponential backoff (actuator_backoff, doubling per attempt) up to
  // actuator_max_retries times; ops still failing after that are dropped
  // and counted as dead letters. A later successful poll for the same
  // destination cancels the pending retry (the fresh value supersedes it).
  std::uint32_t actuator_max_retries = 4;
  sim::Time actuator_backoff = sim::Time::milliseconds(100);

  // Staleness guard: a destination whose connections show an elevated
  // retransmit rate while a learned window is installed is on a path that
  // no longer supports that window (path change, loss burst). Each poll
  // where retrans/segments-sent exceeds `staleness_retrans_fraction`
  // (judged only once at least `staleness_min_segments` segments were
  // sent since the previous poll), the learned window is decayed by
  // `staleness_decay`; at or below c_min the route is withdrawn outright,
  // restoring the default initial window.
  bool staleness_guard = false;
  double staleness_retrans_fraction = 0.2;
  std::uint32_t staleness_min_segments = 20;
  double staleness_decay = 0.5;

  // Deterministic per-agent poll phase jitter, as a fraction of
  // update_interval, drawn once at start() from the experiment RNG so
  // co-located agents don't poll and program routes in lockstep. 0 (the
  // default) keeps the exact historical schedule; > 0 requires the agent
  // to be constructed with an Rng.
  double poll_jitter_fraction = 0.0;

  // On start(), adopt routes with a nonzero initcwnd already present in
  // the host routing table into the observed table (aged from now). A
  // fresh host has none, so this is free in normal runs; after a crash it
  // puts the predecessor's leftover routes back under TTL control instead
  // of letting stale windows live forever.
  bool adopt_routes_on_start = true;

  // ------------------------------------------------------------------
  // Durable state and the safety governor. Same contract as the knobs
  // above: every default is "off", and an off-knob run is bit-identical
  // to an agent that doesn't have the machinery at all.
  // ------------------------------------------------------------------

  // How often the agent's learned state is checkpointed to a snapshot
  // store (harnesses read this to decide whether to attach an
  // AgentCheckpointer). Zero disables persistence entirely.
  sim::Time checkpoint_interval = sim::Time::zero();
  // Snapshot generations to retain; ≥ 2 so a corrupted newest snapshot
  // still leaves a fallback.
  std::uint32_t checkpoint_keep = 2;

  // Each poll, diff the host routing table against what this agent
  // believes it installed: repair routes an outside actor deleted or
  // mangled, withdraw learned-looking routes nobody owns.
  bool reconcile_routes = false;

  // Host-wide budget on the sum of installed initcwnds, in segments.
  // When the total the agent wants exceeds it, every programmed window
  // is scaled down proportionally (the learned table keeps the unscaled
  // values). 0 = unlimited.
  std::uint32_t governor_budget_segments = 0;

  // Route-churn damping: skip reprogramming a destination whose desired
  // initcwnd is within this many segments of what is already installed.
  // 0 = program every poll (historical behavior).
  std::uint32_t governor_hysteresis_segments = 0;

  // Emergency rollback: when the host-wide retransmission rate since the
  // previous poll exceeds this fraction of packets sent (judged only
  // once `governor_min_packets` were sent in the window), the governor
  // withdraws every learned route and sits out `governor_cooldown`
  // before re-learning from scratch. 0 disables the rollback path.
  double governor_rollback_retrans_fraction = 0.0;
  std::uint64_t governor_min_packets = 100;
  sim::Time governor_cooldown = sim::Time::seconds(30);

  // Budget enforcement flavor: proportional scale-down (historical
  // default) or newest-first shedding, where senior routes keep their
  // full windows and the freshest ones fall back to the default initial
  // window until the total fits the budget.
  BudgetFairness governor_budget_fairness = BudgetFairness::kProportional;

  // Staged response (see GovernorConfig): instead of the all-or-nothing
  // rollback, escalate scale-down → selective withdraw → rollback, one
  // stage per consecutive over-threshold poll. Off by default; only
  // meaningful with governor_rollback_retrans_fraction > 0.
  bool governor_staged_response = false;
  double governor_stage_scale_factor = 0.5;
  double governor_stage_withdraw_fraction = 0.5;

  // Rollback-storm hysteresis (see GovernorConfig): a backoff factor > 1
  // grows the cooldown multiplicatively when rollbacks re-trip within
  // governor_storm_memory of the previous cooldown's end, capped at
  // governor_max_cooldown. 1.0 keeps every cooldown at governor_cooldown.
  double governor_storm_backoff_factor = 1.0;
  sim::Time governor_max_cooldown = sim::Time::seconds(480);
  sim::Time governor_storm_memory = sim::Time::seconds(120);

  // Test-only fault hook: silently skip the governor's budget enforcement
  // (both the proportional scale-down and the shed-newest admission pass)
  // while leaving the budget configured. Exists so the chaos-search suite
  // (src/chaos) can prove its budget oracle actually detects a governor
  // whose enforcement regressed; never set outside tests.
  bool test_skip_budget_enforcement = false;
};

}  // namespace riptide::core

#pragma once

#include <cstdint>

#include "sim/time.h"

namespace riptide::core {

// How per-destination observations are collapsed into one window value
// (paper §III-B "Combination Algorithm").
enum class CombinerKind {
  kAverage,          // paper default: mean of current windows
  kMax,              // aggressive: the most the path has carried
  kTrafficWeighted,  // conservative: weight windows by bytes transferred
};

// The granularity at which destinations are grouped and routes installed
// (paper §III-B "Destinations as Routes").
enum class Granularity {
  kHost,    // one /32 route per destination host
  kPrefix,  // one route per prefix (e.g. per PoP)
};

// Riptide's tunable parameters — Table I of the paper, plus the §III
// design-variation knobs.
struct RiptideConfig {
  // Weight applied to the *historical* value in the moving average; 1-alpha
  // goes to the newest observation. alpha = 0 disables history.
  double alpha = 0.5;

  // i_u: how often open-connection windows are polled. The paper's
  // evaluation uses 1 second.
  sim::Time update_interval = sim::Time::seconds(1);

  // t: entry time-to-live. With no fresh observations for this long, the
  // entry and its route are removed, restoring the default IW10. The
  // paper's deployment uses 90 s.
  sim::Time ttl = sim::Time::seconds(90);

  // c_max / c_min: clamp on the programmed window, in segments. The paper
  // settles on c_max = 100 (Fig 10 knee) and floors at the default of 10.
  std::uint32_t c_max = 100;
  std::uint32_t c_min = 10;

  CombinerKind combiner = CombinerKind::kAverage;

  Granularity granularity = Granularity::kHost;
  // Mask length for kPrefix grouping (e.g. 16 to treat a whole PoP as one
  // destination).
  int prefix_length = 16;

  // Also raise initrwnd on programmed routes so the peer's Riptide-sized
  // bursts fit in our advertised window (§III-C). The value installed is
  // max(c_max, programmed initcwnd).
  bool set_initrwnd = true;

  // Minimum connections observed toward a destination before programming a
  // route for it.
  std::uint32_t min_samples = 1;

  // §V "Additional Algorithms": trend guard. A sharp fall of the combined
  // observation relative to the stored value — more than
  // `trend_drop_fraction` in one poll — signals a network incident; rather
  // than letting the EWMA glide down over many intervals, the learned
  // window is reset to c_min immediately ("aggressively decrease the
  // initial windows, beyond what is happening to existing connections").
  bool trend_guard = false;
  double trend_drop_fraction = 0.5;

  // Observe connections through the textual `ss` round-trip (format, then
  // parse) instead of the in-memory snapshot. Functionally identical by
  // construction — the paper's tool is exactly such a text-scraping
  // script — and kept as an option to prove the text surface suffices.
  bool via_text_interface = false;
};

}  // namespace riptide::core

#pragma once

#include <stdexcept>
#include <vector>

#include "host/host.h"

namespace riptide::core {

// Thrown by a SocketStatsSource when a poll fails outright (the `ss`
// process dying, a timeout on the netlink socket). The agent treats this
// as "no information", never as "no connections".
class PollError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The agent's observation surface: one snapshot of the host's open
// connections per poll. Abstracted so fault injection can make polls fail
// or return partial snapshots without touching the host, mirroring what a
// wedged `ss` or a truncated pipe does to the real tool.
class SocketStatsSource {
 public:
  virtual ~SocketStatsSource() = default;

  // Returns the current connection snapshot. Throws PollError on failure;
  // may legitimately return an incomplete snapshot (the contract `ss`
  // itself provides under races), which is why the agent's EWMA must be
  // robust to missing observations.
  virtual std::vector<host::SocketInfo> poll() = 0;
};

// Default source: the in-memory `ss` surface of the host.
class HostSocketStatsSource : public SocketStatsSource {
 public:
  explicit HostSocketStatsSource(host::Host& host) : host_(host) {}

  std::vector<host::SocketInfo> poll() override {
    return host_.socket_stats();
  }

 private:
  host::Host& host_;
};

}  // namespace riptide::core

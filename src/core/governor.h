#pragma once

#include <cstdint>

#include "sim/time.h"

namespace riptide::core {

struct GovernorConfig {
  // Host-wide ceiling on the *sum* of programmed initcwnd values across
  // every route this agent owns. When a poll round's desired total
  // exceeds it, every window that round is scaled down proportionally
  // (budget / total) rather than some routes being starved — relative
  // learned ordering between destinations is preserved. 0 = unlimited.
  std::uint32_t budget_segments = 0;
  // Skip reprogramming a route when |desired - installed| is within this
  // band: damps route-churn from windows oscillating by a segment or two
  // around a plateau. 0 = no damping (equal values reprogram every poll).
  std::uint32_t hysteresis_segments = 0;
  // Emergency brake: when retransmits / packets-sent over one poll
  // interval crosses this fraction, the agent withdraws every learned
  // route and enters cooldown. 0 = rollback disabled.
  double rollback_retrans_fraction = 0.0;
  // Rollback needs at least this many packets in the interval before the
  // retransmit fraction is meaningful (a 1-for-2 blip must not trip it).
  std::uint64_t min_packets = 100;
  // How long to stay in kCooldown (not polling, defaults restored)
  // after a rollback before re-learning from live traffic.
  sim::Time cooldown = sim::Time::seconds(30);
};

// Host-wide safety valve over the agent's aggressiveness, pure decision
// logic with no side effects: the agent asks it three questions each poll
// (scale? skip? roll back?) and performs the actions itself. Keeping the
// policy side-effect-free makes the state machine directly testable.
//
// State machine:
//
//   kNormal --(retrans rate over threshold)--> kCooldown
//     the agent withdraws every learned route on this edge
//   kCooldown --(cooldown elapsed)--> kNormal
//     polling resumes; the table re-learns from live traffic
//
// Every knob at its zero default makes each method the identity decision
// (scale 1.0, never skip, never roll back), which is what keeps a
// governor-off run bit-identical to an agent without one.
class SafetyGovernor {
 public:
  SafetyGovernor() = default;
  explicit SafetyGovernor(GovernorConfig config) : config_(config) {}

  bool rollback_enabled() const {
    return config_.rollback_retrans_fraction > 0.0;
  }

  // Should the agent withdraw everything right now? True when rollback is
  // enabled, we are not already cooling down, at least `min_packets` were
  // sent since the previous poll, and the retransmit fraction of that
  // window crossed the threshold.
  bool should_rollback(std::uint64_t retrans_delta,
                       std::uint64_t packets_delta, sim::Time now);

  // Enters kCooldown until now + cooldown (the agent calls this on the
  // rollback edge).
  void arm_cooldown(sim::Time now);

  // True while cooling down; performs the kCooldown -> kNormal transition
  // when the deadline has passed.
  bool in_cooldown(sim::Time now);

  // Multiplier to apply to every programmed window so the host-wide total
  // fits the budget: min(1, budget / total_desired). Exactly 1.0 when no
  // budget is set or the total fits.
  double budget_scale(double total_desired_segments) const;

  // True when reprogramming `desired` over `installed` is churn the
  // hysteresis band says to skip. Always false with the knob at 0 — an
  // equal value is reprogrammed every poll, as the agent always has.
  bool within_hysteresis(std::uint32_t installed_segments,
                         std::uint32_t desired_segments) const;

  const GovernorConfig& config() const { return config_; }

 private:
  enum class State { kNormal, kCooldown };

  GovernorConfig config_;
  State state_ = State::kNormal;
  sim::Time cooldown_until_;
};

}  // namespace riptide::core

#pragma once

#include <cstdint>

#include "sim/time.h"

namespace riptide::core {

// How the host-wide initcwnd budget is enforced when the table wants more
// than the budget admits.
enum class BudgetFairness : std::uint8_t {
  // Every programmed window shrinks by budget/total — relative learned
  // ordering between destinations is preserved, but a flood of new
  // destinations dilutes long-established routes along with the newcomers.
  kProportional,
  // Seniority-ordered admission: destinations with the longest learning
  // history keep their full windows; the newest routes are shed (their
  // boost withdrawn, falling back to the default initial window) until the
  // total fits. Prevents the starvation case where a flash crowd of fresh
  // destinations drags every veteran route toward the floor.
  kShedNewest,
};

// Observable governor state. kScaleDown and kSelectiveWithdraw only occur
// with staged_response enabled; the legacy ladder is kNormal <-> kCooldown.
enum class GovernorState : std::uint8_t {
  kNormal,
  kScaleDown,          // stage 1: installed windows scaled down
  kSelectiveWithdraw,  // stage 2: newest routes withdrawn
  kCooldown,           // stage 3 fired (or legacy rollback): sitting out
};
const char* to_string(GovernorState state);

// What the staged ladder asks the agent to do this poll.
enum class StagedAction : std::uint8_t {
  kNone,
  kScaleDown,
  kSelectiveWithdraw,
  kRollback,
};

struct GovernorConfig {
  // Host-wide ceiling on the *sum* of programmed initcwnd values across
  // every route this agent owns. When a poll round's desired total
  // exceeds it, enforcement follows `budget_fairness`: proportional
  // scale-down (default) or newest-first shedding. 0 = unlimited.
  std::uint32_t budget_segments = 0;
  BudgetFairness budget_fairness = BudgetFairness::kProportional;
  // Skip reprogramming a route when |desired - installed| is within this
  // band: damps route-churn from windows oscillating by a segment or two
  // around a plateau. 0 = no damping (equal values reprogram every poll).
  std::uint32_t hysteresis_segments = 0;
  // Emergency brake: when retransmits / packets-sent over one poll
  // interval crosses this fraction, the agent responds — all-or-nothing
  // rollback by default, or the staged ladder below. 0 = disabled.
  double rollback_retrans_fraction = 0.0;
  // Rollback needs at least this many packets in the interval before the
  // retransmit fraction is meaningful (a 1-for-2 blip must not trip it).
  // A zero-packet interval is never evidence, whatever this is set to.
  std::uint64_t min_packets = 100;
  // How long to stay in kCooldown (not polling, defaults restored)
  // after a rollback before re-learning from live traffic.
  sim::Time cooldown = sim::Time::seconds(30);

  // -- staged response (proportional, per-route degradation) --
  // Instead of the all-or-nothing host rollback, escalate one stage per
  // consecutive over-threshold poll: scale every installed window down
  // (stage 1), withdraw the newest routes (stage 2), then the full
  // rollback + cooldown (stage 3). Any healthy poll de-escalates straight
  // back to kNormal. Off (the default) keeps the historical single-stage
  // behavior bit-identical.
  bool staged_response = false;
  // Stage 1 multiplier applied to every installed initcwnd.
  double stage_scale_factor = 0.5;
  // Stage 2: fraction of installed routes withdrawn, newest first.
  double stage_withdraw_fraction = 0.5;

  // -- rollback-storm hysteresis --
  // > 1 enables it: a rollback re-armed within `storm_memory` of the
  // previous cooldown's end is a storm (synchronized retransmit spikes
  // re-tripping the brake the moment it releases), and each such rollback
  // multiplies the next cooldown by this factor, capped at max_cooldown.
  // A rollback after a quiet period resets to the base cooldown. 1.0 (the
  // default) is the identity: every cooldown is exactly `cooldown`.
  double storm_backoff_factor = 1.0;
  sim::Time max_cooldown = sim::Time::seconds(480);
  sim::Time storm_memory = sim::Time::seconds(120);
};

// Host-wide safety valve over the agent's aggressiveness, pure decision
// logic with no side effects: the agent asks it each poll what to do
// (scale? skip? stage? roll back?) and performs the actions itself.
// Keeping the policy side-effect-free makes the state machine directly
// testable.
//
// Legacy state machine (staged_response off):
//
//   kNormal --(retrans rate over threshold)--> kCooldown
//     the agent withdraws every learned route on this edge
//   kCooldown --(cooldown elapsed)--> kNormal
//     polling resumes; the table re-learns from live traffic
//
// Staged ladder (staged_response on): one escalation per consecutive
// over-threshold poll, immediate de-escalation on a healthy one:
//
//   kNormal -> kScaleDown -> kSelectiveWithdraw -> kCooldown
//      ^___________|________________|                 |
//        (healthy poll)                (cooldown elapsed)
//
// Every knob at its zero default makes each method the identity decision
// (scale 1.0, never skip, never roll back), which is what keeps a
// governor-off run bit-identical to an agent without one.
class SafetyGovernor {
 public:
  SafetyGovernor() = default;
  explicit SafetyGovernor(GovernorConfig config) : config_(config) {}

  bool rollback_enabled() const {
    return config_.rollback_retrans_fraction > 0.0;
  }
  bool staged() const {
    return rollback_enabled() && config_.staged_response;
  }

  // Should the agent withdraw everything right now? True when rollback is
  // enabled, we are not already cooling down, at least `min_packets` were
  // sent since the previous poll, and the retransmit fraction of that
  // window crossed the threshold. A zero-packet window never rolls back,
  // even with min_packets configured to 0 — no traffic is no evidence.
  bool should_rollback(std::uint64_t retrans_delta,
                       std::uint64_t packets_delta, sim::Time now);

  // Staged ladder: one transition per poll. Escalates a stage when the
  // window is over threshold, drops straight back to kNormal on a healthy
  // window, holds state on an empty (no-evidence) window. Returns the
  // action the agent must perform; kRollback leaves the state transition
  // to arm_cooldown (the agent calls it from its rollback sweep).
  StagedAction assess(std::uint64_t retrans_delta,
                      std::uint64_t packets_delta, sim::Time now);

  // Enters kCooldown until now + effective cooldown (the agent calls this
  // on the rollback edge). Returns true when storm hysteresis extended
  // the cooldown beyond its base value (a storm escalation).
  bool arm_cooldown(sim::Time now);

  // True while cooling down; performs the kCooldown -> kNormal transition
  // when the deadline has passed.
  bool in_cooldown(sim::Time now);

  // Multiplier to apply to every programmed window so the host-wide total
  // fits the budget: min(1, budget / total_desired). Exactly 1.0 when no
  // budget is set or the total fits.
  double budget_scale(double total_desired_segments) const;

  // True when reprogramming `desired` over `installed` is churn the
  // hysteresis band says to skip. Always false with the knob at 0 — an
  // equal value is reprogrammed every poll, as the agent always has.
  bool within_hysteresis(std::uint32_t installed_segments,
                         std::uint32_t desired_segments) const;

  // Raw state, with no side effects (in_cooldown() performs the expiry
  // transition; this does not). For tracing and tests.
  GovernorState state() const { return state_; }
  // The cooldown arm_cooldown would use right now (post-storm-backoff).
  sim::Time current_cooldown() const { return current_cooldown_; }
  std::uint64_t storm_escalations() const { return storm_escalations_; }

  const GovernorConfig& config() const { return config_; }

 private:
  bool over_threshold(std::uint64_t retrans_delta,
                      std::uint64_t packets_delta) const;

  GovernorConfig config_;
  GovernorState state_ = GovernorState::kNormal;
  sim::Time cooldown_until_;
  // Storm-hysteresis memory: the effective cooldown (grows by
  // storm_backoff_factor per storm rollback) and when the last cooldown
  // ended (to tell a storm re-trip from an isolated incident).
  sim::Time current_cooldown_;
  sim::Time last_cooldown_end_;
  bool cooled_down_once_ = false;
  std::uint64_t storm_escalations_ = 0;
};

}  // namespace riptide::core

#include "core/observed_table.h"

namespace riptide::core {

double ObservedTable::fold(const net::Prefix& destination, double observed,
                           double alpha, sim::Time now) {
  const auto it = entries_.find(destination);
  if (it == entries_.end()) {
    entries_.emplace(destination,
                     DestinationState{observed, now, /*updates=*/1});
    return observed;
  }
  const double folded =
      alpha * it->second.final_window_segments + (1.0 - alpha) * observed;
  it->second.last_updated = now;
  ++it->second.updates;
  return folded;
}

void ObservedTable::store_final(const net::Prefix& destination,
                                double final_value, sim::Time now) {
  auto& entry = entries_[destination];
  entry.final_window_segments = final_value;
  entry.last_updated = now;
}

void ObservedTable::put(const net::Prefix& destination,
                        const DestinationState& state) {
  entries_[destination] = state;
}

bool ObservedTable::contains(const net::Prefix& destination) const {
  return entries_.contains(destination);
}

const DestinationState* ObservedTable::find(
    const net::Prefix& destination) const {
  const auto it = entries_.find(destination);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ObservedTable::erase(const net::Prefix& destination) {
  return entries_.erase(destination) > 0;
}

std::vector<net::Prefix> ObservedTable::expire(sim::Time now, sim::Time ttl) {
  std::vector<net::Prefix> expired;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_updated > ttl) {
      expired.push_back(it->first);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

}  // namespace riptide::core

#include "core/agent.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "host/ss_format.h"
#include "trace/sink.h"

namespace riptide::core {

RiptideAgent::RiptideAgent(sim::Simulator& sim, host::Host& host,
                           RiptideConfig config,
                           std::unique_ptr<RouteProgrammer> programmer,
                           std::unique_ptr<SocketStatsSource> stats_source,
                           sim::Rng* rng)
    : sim_(sim),
      host_(host),
      config_(config),
      programmer_(programmer ? std::move(programmer)
                             : std::make_unique<HostRouteProgrammer>(host)),
      stats_source_(stats_source
                        ? std::move(stats_source)
                        : std::make_unique<HostSocketStatsSource>(host)),
      combiner_(make_combiner(config.combiner)),
      rng_(rng),
      governor_(governor_config(config)) {
  if (config_.alpha < 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument("RiptideAgent: alpha outside [0, 1]");
  }
  if (config_.c_min == 0 || config_.c_min > config_.c_max) {
    throw std::invalid_argument("RiptideAgent: need 0 < c_min <= c_max");
  }
  if (config_.granularity == Granularity::kPrefix &&
      (config_.prefix_length < 1 || config_.prefix_length > 32)) {
    throw std::invalid_argument("RiptideAgent: bad prefix_length");
  }
  if (config_.poll_jitter_fraction < 0.0 ||
      config_.poll_jitter_fraction > 1.0) {
    throw std::invalid_argument(
        "RiptideAgent: poll_jitter_fraction outside [0, 1]");
  }
  if (config_.poll_jitter_fraction > 0.0 && rng_ == nullptr) {
    throw std::invalid_argument("RiptideAgent: poll jitter requires an Rng");
  }
  if (config_.staleness_decay <= 0.0 || config_.staleness_decay >= 1.0) {
    throw std::invalid_argument(
        "RiptideAgent: staleness_decay outside (0, 1)");
  }
  if (config_.staleness_retrans_fraction <= 0.0 ||
      config_.staleness_retrans_fraction > 1.0) {
    throw std::invalid_argument(
        "RiptideAgent: staleness_retrans_fraction outside (0, 1]");
  }
  if (config_.governor_rollback_retrans_fraction < 0.0 ||
      config_.governor_rollback_retrans_fraction > 1.0) {
    throw std::invalid_argument(
        "RiptideAgent: governor_rollback_retrans_fraction outside [0, 1]");
  }
  if (config_.governor_stage_scale_factor <= 0.0 ||
      config_.governor_stage_scale_factor >= 1.0) {
    throw std::invalid_argument(
        "RiptideAgent: governor_stage_scale_factor outside (0, 1)");
  }
  if (config_.governor_stage_withdraw_fraction <= 0.0 ||
      config_.governor_stage_withdraw_fraction > 1.0) {
    throw std::invalid_argument(
        "RiptideAgent: governor_stage_withdraw_fraction outside (0, 1]");
  }
  if (config_.governor_storm_backoff_factor < 1.0) {
    throw std::invalid_argument(
        "RiptideAgent: governor_storm_backoff_factor below 1");
  }
  if (config_.governor_max_cooldown < config_.governor_cooldown) {
    throw std::invalid_argument(
        "RiptideAgent: governor_max_cooldown below governor_cooldown");
  }
}

GovernorConfig RiptideAgent::governor_config(const RiptideConfig& config) {
  return GovernorConfig{
      .budget_segments = config.governor_budget_segments,
      .budget_fairness = config.governor_budget_fairness,
      .hysteresis_segments = config.governor_hysteresis_segments,
      .rollback_retrans_fraction = config.governor_rollback_retrans_fraction,
      .min_packets = config.governor_min_packets,
      .cooldown = config.governor_cooldown,
      .staged_response = config.governor_staged_response,
      .stage_scale_factor = config.governor_stage_scale_factor,
      .stage_withdraw_fraction = config.governor_stage_withdraw_fraction,
      .storm_backoff_factor = config.governor_storm_backoff_factor,
      .max_cooldown = config.governor_max_cooldown,
      .storm_memory = config.governor_storm_memory,
  };
}

void RiptideAgent::start() {
  if (running_) return;
  running_ = true;
  if (started_once_) ++stats_.restarts;
  started_once_ = true;

  if (config_.adopt_routes_on_start) adopt_existing_routes();

  // Governor deltas measure from process start, not from a predecessor's
  // last poll: whatever retransmissions accumulated while this process
  // wasn't running are not evidence about its routes.
  prev_host_retrans_ = host_.total_retransmissions();
  prev_host_packets_ = host_.stats().packets_sent;

  // Deterministic per-agent phase offset: co-located agents started at the
  // same instant otherwise poll — and program routes — in lockstep.
  sim::Time phase = sim::Time::zero();
  if (config_.poll_jitter_fraction > 0.0) {
    phase = sim::Time::from_seconds(config_.poll_jitter_fraction *
                                    config_.update_interval.to_seconds() *
                                    rng_->uniform(0.0, 1.0));
  }
  poll_timer_ = sim_.schedule_periodic(config_.update_interval + phase,
                                       config_.update_interval,
                                       [this] { poll_once(); });
}

void RiptideAgent::stop() {
  running_ = false;
  poll_timer_.cancel();
  cancel_pending_ops();
}

void RiptideAgent::crash() {
  poll_timer_.cancel();
  running_ = false;
  cancel_pending_ops();
  // The process is gone: in-memory learned state is lost, but routes it
  // installed remain in the host routing table.
  table_ = ObservedTable{};
  seen_counters_.clear();
  installed_.clear();
  governor_ = SafetyGovernor{governor_config(config_)};
  ++stats_.crashes;
}

void RiptideAgent::restore_table(ObservedTable snapshot,
                                 bool reinstall_routes) {
  if (!reinstall_routes) {
    table_ = std::move(snapshot);
    return;
  }
  // Reinstalling means the host routing table did not survive (reboot):
  // re-age every entry from now so the TTL clock restarts with the
  // process, and program the learned windows back immediately rather
  // than waiting a full learning cycle.
  const sim::Time now = sim_.now();
  table_ = ObservedTable{};
  for (const auto& [destination, state] : snapshot.entries()) {
    const double final_window = clamp_window(state.final_window_segments);
    table_.put(destination,
               DestinationState{final_window, now, state.updates});
    const auto initcwnd =
        static_cast<std::uint32_t>(std::lround(final_window));
    const std::uint32_t initrwnd =
        config_.set_initrwnd ? std::max(config_.c_max, initcwnd) : 0;
    program_route(destination, initcwnd, initrwnd);
  }
}

void RiptideAgent::absorb_restored_counters(const AgentStats& restored) {
  stats_.polls = std::max(stats_.polls, restored.polls);
  stats_.connections_observed =
      std::max(stats_.connections_observed, restored.connections_observed);
  stats_.destinations_updated =
      std::max(stats_.destinations_updated, restored.destinations_updated);
  stats_.routes_set = std::max(stats_.routes_set, restored.routes_set);
  stats_.routes_expired =
      std::max(stats_.routes_expired, restored.routes_expired);
}

void RiptideAgent::adopt_existing_routes() {
  // A previous incarnation (before a crash) may have left routes behind.
  // Adopt them, aged from now: they stay effective while fresh traffic
  // confirms them, and TTL expiry withdraws them otherwise — without this
  // a stale oversized window would outlive the process that learned it
  // indefinitely.
  const sim::Time now = sim_.now();
  for (const auto& entry : host_.routing_table().entries()) {
    if (entry.prefix.length() == 0) continue;          // default route
    if (entry.metrics.initcwnd_segments == 0) continue;  // not ours
    if (table_.contains(entry.prefix)) continue;       // warm-restored
    table_.store_final(
        entry.prefix,
        clamp_window(static_cast<double>(entry.metrics.initcwnd_segments)),
        now);
    // Adoption transfers ownership: the route is now this process's to
    // reconcile, withdraw, or roll back.
    installed_[entry.prefix] = entry.metrics;
    ++stats_.routes_adopted;
    trace_route(trace::RouteCause::kAdopted, entry.prefix,
                static_cast<double>(entry.metrics.initcwnd_segments));
  }
}

void RiptideAgent::trace_route(trace::RouteCause cause, const net::Prefix& dst,
                               double window) {
  auto* sink = trace::active();
  if (sink == nullptr) return;
  trace::TraceEvent ev;
  ev.at_ns = sim_.now().ns();
  ev.kind = trace::EventKind::kAgentRoute;
  ev.route = {host_.address().value(), dst.address().value(),
              static_cast<std::uint8_t>(dst.length()), cause, window};
  sink->emit(ev);
}

void RiptideAgent::trace_program(trace::ProgramVerdict verdict,
                                 const net::Prefix& dst, double scale,
                                 std::uint32_t initcwnd,
                                 std::uint32_t initrwnd) {
  auto* sink = trace::active();
  if (sink == nullptr) return;
  trace::TraceEvent ev;
  ev.at_ns = sim_.now().ns();
  ev.kind = trace::EventKind::kAgentProgram;
  ev.program = {host_.address().value(), dst.address().value(),
                static_cast<std::uint8_t>(dst.length()), verdict, scale,
                initcwnd, initrwnd};
  sink->emit(ev);
}

void RiptideAgent::trace_governor_state(GovernorState from, GovernorState to,
                                        trace::GovernorCause cause,
                                        double retrans_fraction,
                                        std::uint32_t routes) {
  auto* sink = trace::active();
  if (sink == nullptr) return;
  trace::TraceEvent ev;
  ev.at_ns = sim_.now().ns();
  ev.kind = trace::EventKind::kGovernorState;
  ev.governor = {host_.address().value(), static_cast<std::uint8_t>(from),
                 static_cast<std::uint8_t>(to), cause, retrans_fraction,
                 routes};
  sink->emit(ev);
}

net::Prefix RiptideAgent::destination_key(net::Ipv4Address peer) const {
  if (config_.granularity == Granularity::kHost) return net::Prefix::host(peer);
  return net::Prefix(peer, config_.prefix_length);
}

double RiptideAgent::clamp_window(double value) const {
  return std::clamp(value, static_cast<double>(config_.c_min),
                    static_cast<double>(config_.c_max));
}

// ------------------------------------------------------------------------
// Actuator path with bounded retry.

void RiptideAgent::program_route(const net::Prefix& dst,
                                 std::uint32_t initcwnd,
                                 std::uint32_t initrwnd) {
  try {
    programmer_->set_initial_windows(dst, initcwnd, initrwnd,
                                     config_.route_cc);
  } catch (const std::exception&) {
    ++stats_.actuator_failures;
    handle_actuator_failure(dst, initcwnd, initrwnd, /*clear=*/false);
    return;
  }
  ++stats_.routes_set;
  // Record the cc too: the reconciler compares installed_ against the live
  // table with operator==, so omitting it would read as a per-poll conflict.
  installed_[dst] = host::RouteMetrics{initcwnd, initrwnd, config_.route_cc};
  if (const auto it = pending_ops_.find(dst); it != pending_ops_.end()) {
    it->second.timer.cancel();
    pending_ops_.erase(it);
  }
}

void RiptideAgent::withdraw_route(const net::Prefix& dst) {
  try {
    programmer_->clear(dst);
  } catch (const std::exception&) {
    ++stats_.actuator_failures;
    handle_actuator_failure(dst, 0, 0, /*clear=*/true);
    return;
  }
  installed_.erase(dst);
  if (const auto it = pending_ops_.find(dst); it != pending_ops_.end()) {
    it->second.timer.cancel();
    pending_ops_.erase(it);
  }
}

void RiptideAgent::handle_actuator_failure(const net::Prefix& dst,
                                           std::uint32_t initcwnd,
                                           std::uint32_t initrwnd,
                                           bool clear) {
  auto& op = pending_ops_[dst];
  op.timer.cancel();
  // A newer decision supersedes whatever was pending, but the attempt
  // count carries over: the actuator has been failing for this
  // destination the whole time.
  op.initcwnd = initcwnd;
  op.initrwnd = initrwnd;
  op.clear = clear;
  ++op.attempts;
  if (op.attempts > config_.actuator_max_retries) {
    ++stats_.actuator_dead_letters;
    pending_ops_.erase(dst);
    return;
  }
  ++stats_.actuator_retries;
  const int shift = static_cast<int>(std::min<std::uint32_t>(
      op.attempts - 1, 16));  // cap the doubling: backoff stays finite
  const sim::Time backoff =
      config_.actuator_backoff * (std::int64_t{1} << shift);
  op.timer = sim_.schedule(backoff, [this, dst] { retry_pending(dst); });
}

void RiptideAgent::retry_pending(const net::Prefix& dst) {
  const auto it = pending_ops_.find(dst);
  if (it == pending_ops_.end()) return;
  const PendingOp op = it->second;  // copy: the map may rehome on failure
  try {
    if (op.clear) {
      programmer_->clear(dst);
    } else {
      programmer_->set_initial_windows(dst, op.initcwnd, op.initrwnd,
                                       config_.route_cc);
    }
  } catch (const std::exception&) {
    ++stats_.actuator_failures;
    handle_actuator_failure(dst, op.initcwnd, op.initrwnd, op.clear);
    return;
  }
  if (op.clear) {
    installed_.erase(dst);
  } else {
    ++stats_.routes_set;
    installed_[dst] =
        host::RouteMetrics{op.initcwnd, op.initrwnd, config_.route_cc};
  }
  pending_ops_.erase(dst);
}

void RiptideAgent::cancel_pending_ops() {
  for (auto& [dst, op] : pending_ops_) op.timer.cancel();
  pending_ops_.clear();
}

// ------------------------------------------------------------------------
// Staleness guard.

std::map<net::Prefix, std::pair<std::uint64_t, std::uint64_t>>
RiptideAgent::retransmit_deltas(
    const std::vector<host::SocketInfo>& snapshot) {
  std::map<net::Prefix, std::pair<std::uint64_t, std::uint64_t>> deltas;
  if (!config_.staleness_guard) return deltas;
  for (auto& [tuple, counters] : seen_counters_) {
    counters.seen_this_poll = false;
  }
  for (const auto& info : snapshot) {
    if (info.state != tcp::TcpState::kEstablished) continue;
    auto& prev = seen_counters_[info.tuple];
    // Counters are cumulative per connection; a tuple reappearing with
    // smaller values is a new connection reusing the tuple.
    const std::uint64_t d_retrans =
        info.retransmissions >= prev.retransmissions
            ? info.retransmissions - prev.retransmissions
            : info.retransmissions;
    const std::uint64_t d_sent = info.segments_sent >= prev.segments_sent
                                     ? info.segments_sent - prev.segments_sent
                                     : info.segments_sent;
    prev = SeenCounters{info.retransmissions, info.segments_sent, true};
    auto& slot = deltas[destination_key(info.tuple.remote_addr)];
    slot.first += d_retrans;
    slot.second += d_sent;
  }
  std::erase_if(seen_counters_,
                [](const auto& kv) { return !kv.second.seen_this_poll; });
  return deltas;
}

void RiptideAgent::apply_staleness_guard(
    const std::map<net::Prefix, std::pair<std::uint64_t, std::uint64_t>>&
        deltas,
    sim::Time now) {
  for (const auto& [dst, delta] : deltas) {
    const auto& [d_retrans, d_sent] = delta;
    if (d_sent < config_.staleness_min_segments) continue;
    if (static_cast<double>(d_retrans) <
        config_.staleness_retrans_fraction * static_cast<double>(d_sent)) {
      continue;
    }
    const DestinationState* state = table_.find(dst);
    if (state == nullptr) continue;
    const double decayed =
        state->final_window_segments * config_.staleness_decay;
    if (decayed <= static_cast<double>(config_.c_min)) {
      // The learned window has decayed to the floor and the path is still
      // hurting: withdraw outright, restoring the default initial window.
      table_.erase(dst);
      trace_route(trace::RouteCause::kStalenessWithdraw, dst, 0.0);
      withdraw_route(dst);
      ++stats_.staleness_withdrawals;
    } else {
      trace_route(trace::RouteCause::kStalenessDecay, dst, decayed);
      table_.store_final(dst, decayed, now);
      const auto initcwnd =
          static_cast<std::uint32_t>(std::lround(decayed));
      const std::uint32_t initrwnd =
          config_.set_initrwnd ? std::max(config_.c_max, initcwnd) : 0;
      program_route(dst, initcwnd, initrwnd);
      ++stats_.staleness_decays;
    }
  }
}

// ------------------------------------------------------------------------

void RiptideAgent::poll_once() {
  const PollOutcome outcome = poll_once_impl();
  // The hook fires inside the poll's own event callback: nothing can run
  // between the poll body and the check, so oracles see the exact state
  // the poll left behind.
  if (post_poll_hook_) post_poll_hook_(*this, outcome);
}

PollOutcome RiptideAgent::poll_once_impl() {
  PollOutcome outcome;
  ++stats_.polls;
  const sim::Time now = sim_.now();

  // 0. Safety governor: host-wide health gates everything else. The
  // retransmit deltas are maintained every poll — including cooldown
  // polls — so the first poll after cooldown judges only the cooldown
  // window, not the incident that triggered the rollback.
  if (governor_.rollback_enabled()) {
    const std::uint64_t host_retrans = host_.total_retransmissions();
    const std::uint64_t host_packets = host_.stats().packets_sent;
    const std::uint64_t d_retrans = host_retrans - prev_host_retrans_;
    const std::uint64_t d_packets = host_packets - prev_host_packets_;
    prev_host_retrans_ = host_retrans;
    prev_host_packets_ = host_packets;
    const double fraction =
        d_packets > 0 ? static_cast<double>(d_retrans) /
                            static_cast<double>(d_packets)
                      : 0.0;
    const GovernorState pre = governor_.state();
    if (governor_.in_cooldown(now)) {
      ++stats_.governor_cooldown_polls;
      return outcome;
    }
    if (pre == GovernorState::kCooldown) {
      // in_cooldown just performed the expiry transition back to normal.
      trace_governor_state(pre, GovernorState::kNormal,
                           trace::GovernorCause::kRecovered, fraction, 0);
    }
    if (governor_.staged()) {
      const GovernorState before = governor_.state();
      switch (governor_.assess(d_retrans, d_packets, now)) {
        case StagedAction::kScaleDown:
          staged_scale_down(before, fraction);
          return outcome;
        case StagedAction::kSelectiveWithdraw:
          staged_selective_withdraw(before, fraction);
          return outcome;
        case StagedAction::kRollback:
          emergency_rollback(now, fraction, trace::GovernorCause::kThreshold);
          return outcome;
        case StagedAction::kNone:
          if (before != governor_.state()) {
            // A healthy window de-escalated the ladder back to normal.
            trace_governor_state(before, governor_.state(),
                                 trace::GovernorCause::kRecovered, fraction,
                                 0);
          }
          break;
      }
    } else if (governor_.should_rollback(d_retrans, d_packets, now)) {
      emergency_rollback(now, fraction, trace::GovernorCause::kThreshold);
      return outcome;
    }
  }

  // 0.5. Reconcile against the live routing table before acting on fresh
  // observations: drift since the last poll (externally deleted or
  // mangled routes, orphans) is detected and counted here, where the
  // programming pass below would otherwise silently paper over it.
  if (config_.reconcile_routes) {
    reconcile_route_table();
    outcome.reconciled = true;
  }

  // 1. Snapshot open connections. A failed poll is "no information", not
  // "no connections": skip folding *and* expiry — withdrawing routes
  // because the observer glitched would churn windows on healthy paths.
  std::vector<host::SocketInfo> snapshot;
  try {
    snapshot = stats_source_->poll();
  } catch (const PollError&) {
    ++stats_.polls_failed;
    return outcome;
  }
  outcome.snapshot_ok = true;

  // 2. Group by destination. Either read the snapshot directly or go
  // through the textual `ss` round-trip, exactly as the paper's
  // user-space script does. Observations are collected into one flat
  // scratch buffer and stably sorted by destination, so each group is a
  // contiguous run handed to the combiner as a span — the former
  // map<Prefix, vector<Observation>> cost a node allocation plus a vector
  // per destination on every poll. The stable sort keeps snapshot order
  // within a destination, so combiner input order (and therefore float
  // summation order) is exactly what the map grouping produced.
  poll_scratch_.clear();
  if (config_.via_text_interface) {
    const std::string text = host::format_socket_stats(snapshot);
    for (const auto& info : host::parse_socket_stats(text)) {
      if (info.state != tcp::TcpState::kEstablished) continue;
      ++stats_.connections_observed;
      poll_scratch_.push_back(
          {destination_key(info.remote_addr),
           Observation{static_cast<double>(info.cwnd_segments),
                       info.bytes_acked}});
    }
  } else {
    for (const auto& info : snapshot) {
      if (info.state != tcp::TcpState::kEstablished) continue;
      ++stats_.connections_observed;
      poll_scratch_.push_back(
          {destination_key(info.tuple.remote_addr),
           Observation{static_cast<double>(info.cwnd_segments),
                       info.bytes_acked}});
    }
  }
  std::stable_sort(poll_scratch_.begin(), poll_scratch_.end(),
                   [](const DestObservation& a, const DestObservation& b) {
                     return a.destination < b.destination;
                   });
  poll_observations_.clear();
  poll_observations_.reserve(poll_scratch_.size());
  for (const auto& d : poll_scratch_) poll_observations_.push_back(d.obs);

  // Retransmit-rate deltas for the staleness guard (empty when disabled).
  // Computed from the snapshot either way: the text format round-trips
  // retrans/segs_out, so both surfaces carry identical information.
  const auto deltas = retransmit_deltas(snapshot);

  // 3-4. Combine, fold history, clamp. Programming is deferred until all
  // destinations have folded so the governor's budget can be judged over
  // the whole table; the program sequence below runs in the same
  // ascending destination order this loop always has.
  std::vector<std::pair<net::Prefix, double>> decisions;
  decisions.reserve(poll_scratch_.size());
  for (std::size_t i = 0; i < poll_scratch_.size();) {
    const net::Prefix destination = poll_scratch_[i].destination;
    std::size_t j = i + 1;
    while (j < poll_scratch_.size() &&
           poll_scratch_[j].destination == destination) {
      ++j;
    }
    const std::span<const Observation> observations(
        poll_observations_.data() + i, j - i);
    i = j;
    if (observations.size() < config_.min_samples) continue;
    const double observed = combiner_->combine(observations);

    // Trend guard (§V): a cliff-drop of the observation signals an
    // incident — reset the learned window instead of gliding down. The
    // fold is hoisted above the branch (it refreshes the TTL either way
    // and does not touch the stored final value of an existing entry).
    const DestinationState* previous = table_.find(destination);
    const double folded =
        table_.fold(destination, observed, config_.alpha, now);
    bool trend_reset = false;
    double final_window;
    if (config_.trend_guard && previous != nullptr &&
        observed < previous->final_window_segments *
                       (1.0 - config_.trend_drop_fraction)) {
      final_window = static_cast<double>(config_.c_min);
      trend_reset = true;
      ++stats_.trend_resets;
    } else {
      final_window = clamp_window(folded);
    }
    // Operator cap (§V): external signals bound how aggressive we may be.
    bool capped = false;
    if (window_cap_segments_ > 0 &&
        final_window > static_cast<double>(window_cap_segments_)) {
      final_window = static_cast<double>(window_cap_segments_);
      capped = true;
    }
    table_.store_final(destination, final_window, now);
    decisions.emplace_back(destination, final_window);
    ++stats_.destinations_updated;
    if (auto* sink = trace::active()) {
      trace::TraceEvent ev;
      ev.at_ns = now.ns();
      ev.kind = trace::EventKind::kAgentDecision;
      ev.decision = {host_.address().value(),
                     destination.address().value(),
                     static_cast<std::uint8_t>(destination.length()),
                     static_cast<std::uint8_t>(trend_reset),
                     static_cast<std::uint8_t>(capped),
                     static_cast<std::uint32_t>(observations.size()),
                     observed,
                     folded,
                     final_window};
      sink->emit(ev);
    }
  }

  // Governor budget: when the whole table wants more total initcwnd than
  // the host is allowed, enforcement follows the configured fairness —
  // proportional (every program this poll shrinks by budget/total) or
  // shed-newest (senior routes keep their windows; the freshest are
  // withdrawn until the total fits). The table keeps the unscaled learned
  // values either way — the budget caps what is *installed*, not what is
  // known.
  double scale = 1.0;
  std::map<net::Prefix, std::uint32_t, net::PrefixOrder> admissions;
  const bool shed_fairness = !config_.test_skip_budget_enforcement &&
                             governor_.config().budget_segments > 0 &&
                             governor_.config().budget_fairness ==
                                 BudgetFairness::kShedNewest;
  if (config_.test_skip_budget_enforcement) {
    // Chaos-search fault hook: the budget stays configured but is not
    // enforced, so the budget oracle can prove it catches the regression.
  } else if (shed_fairness) {
    admissions = budget_shed_admissions();
    if (!admissions.empty()) ++stats_.governor_budget_sheds;
  } else if (governor_.config().budget_segments > 0) {
    double total_desired = 0.0;
    for (const auto& [destination, state] : table_.entries()) {
      total_desired += state.final_window_segments;
    }
    scale = governor_.budget_scale(total_desired);
    if (scale < 1.0) ++stats_.governor_budget_scaledowns;
  }
  const bool shed_active = !admissions.empty();
  std::uint32_t shed_this_poll = 0;

  // 5. Program routes, still in ascending destination order.
  for (const auto& [destination, final_window] : decisions) {
    const double target = scale < 1.0 ? final_window * scale : final_window;
    auto initcwnd = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(target)));
    bool budget_bound = scale < 1.0;
    trace::ProgramVerdict verdict = trace::ProgramVerdict::kProgrammed;
    if (shed_active) {
      const auto ait = admissions.find(destination);
      const std::uint32_t admit = ait != admissions.end() ? ait->second : 0;
      if (admit == 0) {
        // Shed: too junior for the budget. Any installed boost comes out;
        // the destination rides the default initial window until either
        // the budget frees up or its seniority grows.
        if (installed_.contains(destination) ||
            pending_ops_.contains(destination)) {
          trace_route(trace::RouteCause::kBudgetShed, destination, 0.0);
          withdraw_route(destination);
          ++stats_.governor_routes_budget_shed;
          ++shed_this_poll;
        }
        continue;
      }
      if (admit < initcwnd) {
        initcwnd = admit;
        budget_bound = true;
        verdict = trace::ProgramVerdict::kBudgetShrink;
      }
    }
    const std::uint32_t initrwnd =
        config_.set_initrwnd ? std::max(config_.c_max, initcwnd) : 0;
    if (const auto it = installed_.find(destination);
        it != installed_.end() &&
        governor_.within_hysteresis(it->second.initcwnd_segments, initcwnd) &&
        !(budget_bound && initcwnd < it->second.initcwnd_segments)) {
      ++stats_.governor_hysteresis_skips;
      trace_program(trace::ProgramVerdict::kHysteresisSkip, destination, scale,
                    initcwnd, initrwnd);
      continue;
    }
    trace_program(verdict, destination, scale, initcwnd, initrwnd);
    program_route(destination, initcwnd, initrwnd);
  }

  // The budget is host-wide: routes installed by earlier polls, whose
  // destinations saw no fresh samples this poll, must shrink too — the
  // decisions loop above never visits them, so without this sweep the
  // installed sum can stay over budget indefinitely. Shrinking to budget
  // is a safety action, not churn, so hysteresis does not apply. Collect
  // first: program_route mutates installed_.
  if (scale < 1.0) {
    std::vector<std::pair<net::Prefix, std::uint32_t>> shrink;
    for (const auto& [destination, metrics] : installed_) {
      const DestinationState* state = table_.find(destination);
      if (state == nullptr) continue;  // expiry below withdraws it
      const auto target = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 std::lround(state->final_window_segments * scale)));
      if (metrics.initcwnd_segments > target) {
        shrink.emplace_back(destination, target);
      }
    }
    for (const auto& [destination, initcwnd] : shrink) {
      const std::uint32_t initrwnd =
          config_.set_initrwnd ? std::max(config_.c_max, initcwnd) : 0;
      trace_program(trace::ProgramVerdict::kBudgetShrink, destination, scale,
                    initcwnd, initrwnd);
      program_route(destination, initcwnd, initrwnd);
    }
  }

  // Shed-newest is host-wide too: routes installed by earlier polls whose
  // destinations saw no fresh samples still count against the budget, so
  // they are shed or shrunk by the same admission set. Collect first:
  // program_route/withdraw_route mutate installed_.
  if (shed_active) {
    std::vector<net::Prefix> shed;
    std::vector<std::pair<net::Prefix, std::uint32_t>> shrink;
    for (const auto& [destination, metrics] : installed_) {
      const auto ait = admissions.find(destination);
      if (ait == admissions.end()) continue;  // expiry below withdraws it
      if (ait->second == 0) {
        shed.push_back(destination);
      } else if (metrics.initcwnd_segments > ait->second) {
        shrink.emplace_back(destination, ait->second);
      }
    }
    for (const auto& destination : shed) {
      trace_route(trace::RouteCause::kBudgetShed, destination, 0.0);
      withdraw_route(destination);
      ++stats_.governor_routes_budget_shed;
      ++shed_this_poll;
    }
    for (const auto& [destination, initcwnd] : shrink) {
      const std::uint32_t initrwnd =
          config_.set_initrwnd ? std::max(config_.c_max, initcwnd) : 0;
      trace_program(trace::ProgramVerdict::kBudgetShrink, destination, scale,
                    initcwnd, initrwnd);
      program_route(destination, initcwnd, initrwnd);
    }
    // Budget pressure is a governor decision even though the state machine
    // does not move: annotate the timeline so audits see the cause.
    trace_governor_state(governor_.state(), governor_.state(),
                         trace::GovernorCause::kBudget, 0.0, shed_this_poll);
  }

  // §V hardening: destinations retransmitting heavily under a learned
  // window get decayed or withdrawn, even if their current cwnds still
  // look healthy (the damage shows in loss recovery before it shows in
  // the window average).
  apply_staleness_guard(deltas, now);

  // 6. Expire stale destinations, restoring default windows.
  for (const auto& destination : table_.expire(now, config_.ttl)) {
    trace_route(trace::RouteCause::kExpired, destination, 0.0);
    withdraw_route(destination);
    ++stats_.routes_expired;
  }
  outcome.completed = true;
  return outcome;
}

void RiptideAgent::manual_rollback() {
  emergency_rollback(sim_.now(), 0.0, trace::GovernorCause::kManual);
}

// Seniority order for shedding decisions: a destination that has survived
// many poll rounds has earned its window; one first seen a poll or two ago
// has not. The table has no first-seen timestamp (the snapshot codec pins
// the record layout), so the update count is the seniority measure, with
// the last-refresh time and then the prefix order as deterministic
// tie-breaks.
std::map<net::Prefix, std::uint32_t, net::PrefixOrder>
RiptideAgent::budget_shed_admissions() const {
  std::map<net::Prefix, std::uint32_t, net::PrefixOrder> admitted;
  const std::uint32_t budget = governor_.config().budget_segments;
  struct Candidate {
    net::Prefix destination;
    std::uint32_t window;
    std::uint64_t updates;
    sim::Time last_updated;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(table_.size());
  std::uint64_t total = 0;
  for (const auto& [destination, state] : table_.entries()) {
    const auto window = std::max<std::uint32_t>(
        1,
        static_cast<std::uint32_t>(std::lround(state.final_window_segments)));
    candidates.push_back(
        {destination, window, state.updates, state.last_updated});
    total += window;
  }
  if (total <= budget) return admitted;  // empty = no enforcement needed
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.updates != b.updates) return a.updates > b.updates;
              if (a.last_updated != b.last_updated) {
                return a.last_updated < b.last_updated;
              }
              return net::PrefixOrder{}(a.destination, b.destination);
            });
  // Greedy whole-window admission, oldest first. The first window that no
  // longer fits gets whatever is left (a partial boost still beats the
  // default); everything junior to it is shed outright.
  std::uint32_t remaining = budget;
  for (const auto& candidate : candidates) {
    if (candidate.window <= remaining) {
      admitted[candidate.destination] = candidate.window;
      remaining -= candidate.window;
    } else {
      admitted[candidate.destination] = remaining;
      remaining = 0;
    }
  }
  return admitted;
}

void RiptideAgent::staged_scale_down(GovernorState from,
                                     double retrans_fraction) {
  // Stage 1: keep every route but halve (by stage_scale_factor) what it
  // may burst. The learned table keeps the unscaled values: a healthy
  // window next poll reprograms them at full size. Collect first —
  // program_route mutates installed_.
  std::vector<std::pair<net::Prefix, std::uint32_t>> scaled;
  for (const auto& [destination, metrics] : installed_) {
    const auto target = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(metrics.initcwnd_segments *
                           governor_.config().stage_scale_factor)));
    if (target < metrics.initcwnd_segments) {
      scaled.emplace_back(destination, target);
    }
  }
  for (const auto& [destination, initcwnd] : scaled) {
    const std::uint32_t initrwnd =
        config_.set_initrwnd ? std::max(config_.c_max, initcwnd) : 0;
    trace_program(trace::ProgramVerdict::kStageScaleDown, destination,
                  governor_.config().stage_scale_factor, initcwnd, initrwnd);
    program_route(destination, initcwnd, initrwnd);
  }
  ++stats_.governor_stage_scaledowns;
  stats_.governor_routes_stage_scaled += scaled.size();
  trace_governor_state(from, governor_.state(),
                       trace::GovernorCause::kThreshold, retrans_fraction,
                       static_cast<std::uint32_t>(scaled.size()));
}

void RiptideAgent::staged_selective_withdraw(GovernorState from,
                                             double retrans_fraction) {
  // Stage 2: the scale-down was not enough — withdraw the newest
  // stage_withdraw_fraction of installed routes entirely (their learned
  // entries too, so the next poll re-learns instead of instantly
  // reprogramming the same window). Newest first: fresh routes are both
  // the least proven and the likeliest cause of a synchronized burst.
  struct Candidate {
    net::Prefix destination;
    std::uint64_t updates;
    sim::Time last_updated;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(installed_.size());
  for (const auto& [destination, metrics] : installed_) {
    const DestinationState* state = table_.find(destination);
    candidates.push_back({destination, state != nullptr ? state->updates : 0,
                          state != nullptr ? state->last_updated
                                           : sim::Time::zero()});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.updates != b.updates) return a.updates < b.updates;
              if (a.last_updated != b.last_updated) {
                return a.last_updated > b.last_updated;
              }
              return net::PrefixOrder{}(a.destination, b.destination);
            });
  const auto count = std::min<std::size_t>(
      candidates.size(),
      static_cast<std::size_t>(
          std::ceil(static_cast<double>(candidates.size()) *
                    governor_.config().stage_withdraw_fraction)));
  for (std::size_t i = 0; i < count; ++i) {
    const net::Prefix destination = candidates[i].destination;
    table_.erase(destination);
    trace_route(trace::RouteCause::kStageWithdraw, destination, 0.0);
    withdraw_route(destination);
  }
  ++stats_.governor_stage_withdrawals;
  stats_.governor_routes_stage_withdrawn += count;
  trace_governor_state(from, governor_.state(),
                       trace::GovernorCause::kThreshold, retrans_fraction,
                       static_cast<std::uint32_t>(count));
}

void RiptideAgent::emergency_rollback(sim::Time now, double retrans_fraction,
                                      trace::GovernorCause cause) {
  // Withdraw everything this process knows about or may yet act on:
  // learned entries, routes believed installed (the sets differ after
  // adoption, expiry races, or partial failures), and destinations with
  // in-flight retries. Clearing an absent route is a no-op at the host,
  // so the union is safe to sweep.
  std::vector<net::Prefix> targets;
  for (const auto& [destination, state] : table_.entries()) {
    targets.push_back(destination);
  }
  for (const auto& [destination, metrics] : installed_) {
    targets.push_back(destination);
  }
  for (const auto& [destination, op] : pending_ops_) {
    targets.push_back(destination);
  }
  std::sort(targets.begin(), targets.end(), net::PrefixOrder{});
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  for (const auto& destination : targets) {
    trace_route(trace::RouteCause::kRollback, destination, 0.0);
    withdraw_route(destination);
  }

  if (auto* sink = trace::active()) {
    trace::TraceEvent ev;
    ev.at_ns = now.ns();
    ev.kind = trace::EventKind::kAgentRollback;
    ev.rollback = {host_.address().value(),
                   static_cast<std::uint32_t>(targets.size())};
    sink->emit(ev);
  }

  stats_.governor_routes_rolled_back += targets.size();
  ++stats_.governor_rollbacks;
  table_ = ObservedTable{};
  seen_counters_.clear();
  const GovernorState from = governor_.state();
  if (governor_.arm_cooldown(now)) ++stats_.governor_storm_escalations;
  trace_governor_state(from, GovernorState::kCooldown, cause,
                       retrans_fraction,
                       static_cast<std::uint32_t>(targets.size()));
}

void RiptideAgent::reconcile_route_table() {
  // Pass 1: live learned-looking routes vs what we installed. Iterates a
  // snapshot of the table so repairs/withdrawals don't perturb the walk.
  for (const auto& entry : host_.routing_table().learned_routes()) {
    // A pending retry already carries the newest decision for this
    // destination; reconciling underneath it would race the retry timer.
    if (pending_ops_.contains(entry.prefix)) continue;
    const auto it = installed_.find(entry.prefix);
    if (it == installed_.end()) {
      // Not ours. If the table wants this destination, the next poll will
      // program it properly; otherwise it is an orphan — a learned-looking
      // route no running process owns — and stale windows must not
      // outlive their owner.
      if (table_.contains(entry.prefix)) continue;
      ++stats_.reconcile_orphaned;
      trace_route(trace::RouteCause::kReconcileOrphan, entry.prefix, 0.0);
      withdraw_route(entry.prefix);
      continue;
    }
    if (entry.metrics != it->second) {
      // Mangled in place (e.g. an operator's `ip route replace` fat
      // finger): reassert what we installed.
      ++stats_.reconcile_conflicting;
      ++stats_.reconcile_repaired;
      trace_route(trace::RouteCause::kReconcileConflict, entry.prefix,
                  static_cast<double>(it->second.initcwnd_segments));
      program_route(entry.prefix, it->second.initcwnd_segments,
                    it->second.initrwnd_segments);
    }
  }

  // Pass 2: routes we installed that vanished from the live table
  // (externally deleted). Collect first: program_route mutates installed_.
  std::vector<std::pair<net::Prefix, host::RouteMetrics>> missing;
  for (const auto& [destination, metrics] : installed_) {
    if (pending_ops_.contains(destination)) continue;
    if (host_.routing_table().find_route(destination) == nullptr) {
      missing.emplace_back(destination, metrics);
    }
  }
  for (const auto& [destination, metrics] : missing) {
    ++stats_.reconcile_repaired;
    trace_route(trace::RouteCause::kReconcileRepair, destination,
                static_cast<double>(metrics.initcwnd_segments));
    program_route(destination, metrics.initcwnd_segments,
                  metrics.initrwnd_segments);
  }
}

}  // namespace riptide::core

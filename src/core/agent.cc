#include "core/agent.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "host/ss_format.h"

namespace riptide::core {

RiptideAgent::RiptideAgent(sim::Simulator& sim, host::Host& host,
                           RiptideConfig config,
                           std::unique_ptr<RouteProgrammer> programmer)
    : sim_(sim),
      host_(host),
      config_(config),
      programmer_(programmer ? std::move(programmer)
                             : std::make_unique<HostRouteProgrammer>(host)),
      combiner_(make_combiner(config.combiner)) {
  if (config_.alpha < 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument("RiptideAgent: alpha outside [0, 1]");
  }
  if (config_.c_min == 0 || config_.c_min > config_.c_max) {
    throw std::invalid_argument("RiptideAgent: need 0 < c_min <= c_max");
  }
  if (config_.granularity == Granularity::kPrefix &&
      (config_.prefix_length < 1 || config_.prefix_length > 32)) {
    throw std::invalid_argument("RiptideAgent: bad prefix_length");
  }
}

void RiptideAgent::start() {
  if (running_) return;
  running_ = true;
  poll_timer_ = sim_.schedule_periodic(config_.update_interval,
                                       config_.update_interval,
                                       [this] { poll_once(); });
}

void RiptideAgent::stop() {
  running_ = false;
  poll_timer_.cancel();
}

net::Prefix RiptideAgent::destination_key(net::Ipv4Address peer) const {
  if (config_.granularity == Granularity::kHost) return net::Prefix::host(peer);
  return net::Prefix(peer, config_.prefix_length);
}

double RiptideAgent::clamp_window(double value) const {
  return std::clamp(value, static_cast<double>(config_.c_min),
                    static_cast<double>(config_.c_max));
}

void RiptideAgent::poll_once() {
  ++stats_.polls;
  const sim::Time now = sim_.now();

  // 1-2. Snapshot open connections, group by destination. Either read the
  // in-memory table or go through the textual `ss` round-trip, exactly as
  // the paper's user-space script does.
  std::map<net::Prefix, std::vector<Observation>> groups;
  if (config_.via_text_interface) {
    const std::string text =
        host::format_socket_stats(host_.socket_stats());
    for (const auto& info : host::parse_socket_stats(text)) {
      if (info.state != tcp::TcpState::kEstablished) continue;
      ++stats_.connections_observed;
      groups[destination_key(info.remote_addr)].push_back(Observation{
          static_cast<double>(info.cwnd_segments), info.bytes_acked});
    }
  } else {
    for (const auto& info : host_.socket_stats()) {
      if (info.state != tcp::TcpState::kEstablished) continue;
      ++stats_.connections_observed;
      groups[destination_key(info.tuple.remote_addr)].push_back(
          Observation{static_cast<double>(info.cwnd_segments),
                      info.bytes_acked});
    }
  }

  // 3-5. Combine, fold history, clamp, program.
  for (const auto& [destination, observations] : groups) {
    if (observations.size() < config_.min_samples) continue;
    const double observed = combiner_->combine(observations);

    // Trend guard (§V): a cliff-drop of the observation signals an
    // incident — reset the learned window instead of gliding down.
    const DestinationState* previous = table_.find(destination);
    double final_window;
    if (config_.trend_guard && previous != nullptr &&
        observed < previous->final_window_segments *
                       (1.0 - config_.trend_drop_fraction)) {
      final_window = static_cast<double>(config_.c_min);
      table_.fold(destination, observed, config_.alpha, now);  // refresh TTL
      ++stats_.trend_resets;
    } else {
      final_window =
          clamp_window(table_.fold(destination, observed, config_.alpha, now));
    }
    // Operator cap (§V): external signals bound how aggressive we may be.
    if (window_cap_segments_ > 0) {
      final_window = std::min(final_window,
                              static_cast<double>(window_cap_segments_));
    }
    table_.store_final(destination, final_window, now);

    const auto initcwnd =
        static_cast<std::uint32_t>(std::lround(final_window));
    const std::uint32_t initrwnd =
        config_.set_initrwnd ? std::max(config_.c_max, initcwnd) : 0;
    programmer_->set_initial_windows(destination, initcwnd, initrwnd);
    ++stats_.routes_set;
    ++stats_.destinations_updated;
  }

  // 6. Expire stale destinations, restoring default windows.
  for (const auto& destination : table_.expire(now, config_.ttl)) {
    programmer_->clear(destination);
    ++stats_.routes_expired;
  }
}

}  // namespace riptide::core

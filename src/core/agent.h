#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/combiner.h"
#include "core/config.h"
#include "core/observed_table.h"
#include "core/route_programmer.h"
#include "host/host.h"
#include "sim/simulator.h"

namespace riptide::core {

struct AgentStats {
  std::uint64_t polls = 0;
  std::uint64_t connections_observed = 0;
  std::uint64_t destinations_updated = 0;
  std::uint64_t routes_set = 0;
  std::uint64_t routes_expired = 0;
  std::uint64_t trend_resets = 0;  // trend-guard triggered (§V)
};

// The Riptide agent (paper Algorithm 1). Runs on one host, entirely from
// "user space": every `update_interval` it
//   1. snapshots the host's open connections (the `ss` poll),
//   2. groups them by destination at the configured granularity,
//   3. combines each group's congestion windows (average by default),
//   4. folds the result into the per-destination EWMA history,
//   5. clamps to [c_min, c_max] and programs the route's initcwnd
//      (and initrwnd, §III-C),
//   6. expires entries unseen for `ttl` and withdraws their routes,
//      restoring the default initial window.
//
// No coordination with any other node, no kernel changes: the agent only
// reads connection state and writes route metrics, matching the deployment
// constraints of §II-A.
class RiptideAgent {
 public:
  // If `programmer` is null, a HostRouteProgrammer on `host` is used.
  RiptideAgent(sim::Simulator& sim, host::Host& host, RiptideConfig config,
               std::unique_ptr<RouteProgrammer> programmer = nullptr);

  // Begins periodic polling (first poll after one update_interval).
  void start();
  void stop();
  bool running() const { return running_; }

  // One Algorithm-1 iteration. Exposed so tests and tools can step the
  // agent deterministically.
  void poll_once();

  // §V: operator hook for higher-level signals. A nonzero cap bounds every
  // programmed window below `cap_segments` (e.g. a load balancer about to
  // shift traffic onto this node's paths asks for conservative windows to
  // "avoid sudden crowding"). Takes effect from the next poll; 0 clears.
  void set_window_cap(std::uint32_t cap_segments) {
    window_cap_segments_ = cap_segments;
  }
  std::uint32_t window_cap() const { return window_cap_segments_; }

  // Destination key for a peer address at the configured granularity.
  net::Prefix destination_key(net::Ipv4Address peer) const;

  // Currently learned (clamped) window for a destination, if any.
  const DestinationState* learned(const net::Prefix& destination) const {
    return table_.find(destination);
  }
  const ObservedTable& table() const { return table_; }
  const RiptideConfig& config() const { return config_; }
  const AgentStats& stats() const { return stats_; }
  host::Host& host() { return host_; }

 private:
  double clamp_window(double value) const;

  sim::Simulator& sim_;
  host::Host& host_;
  RiptideConfig config_;
  std::unique_ptr<RouteProgrammer> programmer_;
  std::unique_ptr<Combiner> combiner_;
  ObservedTable table_;
  sim::EventHandle poll_timer_;
  bool running_ = false;
  std::uint32_t window_cap_segments_ = 0;
  AgentStats stats_;
};

}  // namespace riptide::core

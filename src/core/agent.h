#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/combiner.h"
#include "core/config.h"
#include "core/governor.h"
#include "core/observed_table.h"
#include "core/route_programmer.h"
#include "core/socket_stats_source.h"
#include "host/host.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "trace/event.h"

namespace riptide::core {

struct AgentStats {
  std::uint64_t polls = 0;
  std::uint64_t connections_observed = 0;
  std::uint64_t destinations_updated = 0;
  std::uint64_t routes_set = 0;
  std::uint64_t routes_expired = 0;
  std::uint64_t trend_resets = 0;  // trend-guard triggered (§V)

  // -- degradation paths (agent hardening) --
  std::uint64_t polls_failed = 0;         // snapshot unavailable, skipped
  std::uint64_t actuator_failures = 0;    // individual failed program/clear
  std::uint64_t actuator_retries = 0;     // backoff retries scheduled
  std::uint64_t actuator_dead_letters = 0;  // ops dropped after max retries
  std::uint64_t staleness_decays = 0;       // learned window decayed
  std::uint64_t staleness_withdrawals = 0;  // learned route withdrawn
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;        // start() calls after the first
  std::uint64_t routes_adopted = 0;  // leftover routes re-aged at start()

  // -- route reconciliation (desired vs live routing table) --
  std::uint64_t reconcile_repaired = 0;     // re-programmed deleted/mangled
  std::uint64_t reconcile_orphaned = 0;     // withdrew learned route not ours
  std::uint64_t reconcile_conflicting = 0;  // live metrics != installed

  // -- safety governor --
  std::uint64_t governor_budget_scaledowns = 0;  // polls scaled to budget
  std::uint64_t governor_hysteresis_skips = 0;   // programs damped away
  std::uint64_t governor_rollbacks = 0;          // emergency rollbacks fired
  std::uint64_t governor_routes_rolled_back = 0;
  std::uint64_t governor_cooldown_polls = 0;     // polls skipped cooling down

  // -- staged response + budget fairness (governor hardening) --
  std::uint64_t governor_stage_scaledowns = 0;   // stage-1 actions fired
  std::uint64_t governor_routes_stage_scaled = 0;
  std::uint64_t governor_stage_withdrawals = 0;  // stage-2 actions fired
  std::uint64_t governor_routes_stage_withdrawn = 0;
  std::uint64_t governor_budget_sheds = 0;       // shed-newest polls enforced
  std::uint64_t governor_routes_budget_shed = 0;
  std::uint64_t governor_storm_escalations = 0;  // cooldowns grown by storms
};

// How one poll_once() iteration ended, handed to the post-poll hook so
// invariant checkers (src/chaos) know which guarantees the poll actually
// established. A poll that bailed early — cooldown, a staged governor
// action, or a failed snapshot — never reached the budget-enforcement and
// expiry passes, so the corresponding invariants must not be judged on it.
struct PollOutcome {
  // Reached the end of the poll body: reconcile, fold, budget enforcement,
  // staleness guard and expiry all ran.
  bool completed = false;
  // reconcile_route_table() ran this poll (requires config.reconcile_routes
  // and no governor early-exit before it).
  bool reconciled = false;
  // The `ss` snapshot succeeded (false on PollError or early exits).
  bool snapshot_ok = false;
};

// The Riptide agent (paper Algorithm 1). Runs on one host, entirely from
// "user space": every `update_interval` it
//   1. snapshots the host's open connections (the `ss` poll),
//   2. groups them by destination at the configured granularity,
//   3. combines each group's congestion windows (average by default),
//   4. folds the result into the per-destination EWMA history,
//   5. clamps to [c_min, c_max] and programs the route's initcwnd
//      (and initrwnd, §III-C),
//   6. expires entries unseen for `ttl` and withdraws their routes,
//      restoring the default initial window.
//
// No coordination with any other node, no kernel changes: the agent only
// reads connection state and writes route metrics, matching the deployment
// constraints of §II-A.
//
// The agent is hardened against its two external dependencies failing:
// a poll that throws PollError is skipped and counted (no fold, no expiry
// — a failed snapshot is "no information", not "no connections"), and a
// failed route program/clear is retried with bounded exponential backoff,
// landing in a dead-letter counter when the actuator stays broken. The
// optional staleness guard withdraws learned windows whose destinations
// retransmit heavily — the Pied-Piper failure mode where a boosted window
// meets a path that can no longer carry it.
class RiptideAgent {
 public:
  // If `programmer` is null, a HostRouteProgrammer on `host` is used; if
  // `stats_source` is null, the host's in-memory `ss` surface is used.
  // `rng` is only required when config.poll_jitter_fraction > 0.
  RiptideAgent(sim::Simulator& sim, host::Host& host, RiptideConfig config,
               std::unique_ptr<RouteProgrammer> programmer = nullptr,
               std::unique_ptr<SocketStatsSource> stats_source = nullptr,
               sim::Rng* rng = nullptr);

  // Begins periodic polling (first poll after one update_interval, plus
  // the configured jitter phase). Adopts leftover Riptide routes from the
  // host routing table when config.adopt_routes_on_start.
  void start();
  void stop();
  bool running() const { return running_; }

  // Simulates the agent process dying: polling stops, pending actuator
  // retries are dropped, and the in-memory ObservedTable is lost. Routes
  // already installed stay behind in the host routing table — exactly the
  // stale-window hazard the fault benches measure.
  void crash();

  // Warm-restart support: a periodically persisted table snapshot can be
  // restored before start() to resume with history instead of re-learning
  // from scratch. With `reinstall_routes` the restored entries are also
  // re-aged from now and programmed into the host routing table
  // immediately — the jump-start for a host whose routes did not survive
  // (reboot rather than mere process death). Without it the table is
  // taken verbatim, timestamps included.
  ObservedTable snapshot_table() const { return table_; }
  void restore_table(ObservedTable snapshot, bool reinstall_routes = false);

  // Folds counters recovered from a persisted snapshot into this agent's
  // stats. Counters are cumulative and monotone, so the restored value is
  // a floor: each counter becomes max(current, restored). A freshly
  // constructed process adopts the snapshot's totals; an agent that
  // already counted past them is left alone.
  void absorb_restored_counters(const AgentStats& restored);

  // One Algorithm-1 iteration. Exposed so tests and tools can step the
  // agent deterministically.
  void poll_once();

  // Observation hook for invariant oracles (src/chaos): invoked at the end
  // of every poll_once() — including early exits — with how the poll
  // ended. The hook runs inside the poll's event callback, so no other
  // simulation event can interleave between the poll body and the check.
  // Null (the default) costs one branch; behavior is otherwise unchanged.
  using PostPollHook = std::function<void(RiptideAgent&, const PollOutcome&)>;
  void set_post_poll_hook(PostPollHook hook) {
    post_poll_hook_ = std::move(hook);
  }

  // §V: operator hook for higher-level signals. A nonzero cap bounds every
  // programmed window below `cap_segments` (e.g. a load balancer about to
  // shift traffic onto this node's paths asks for conservative windows to
  // "avoid sudden crowding"). Takes effect from the next poll; 0 clears.
  void set_window_cap(std::uint32_t cap_segments) {
    window_cap_segments_ = cap_segments;
  }
  std::uint32_t window_cap() const { return window_cap_segments_; }

  // Operator hook: withdraw every learned route and enter cooldown right
  // now, regardless of health signals (e.g. a pre-announced maintenance
  // window where boosted bursts must not land). Traced with cause
  // "manual" so the audit trail distinguishes it from the brake firing.
  void manual_rollback();

  // Read-only view of the safety governor (state machine, effective
  // cooldown) for tests and monitoring.
  const SafetyGovernor& governor() const { return governor_; }

  // Destination key for a peer address at the configured granularity.
  net::Prefix destination_key(net::Ipv4Address peer) const;

  // Currently learned (clamped) window for a destination, if any.
  const DestinationState* learned(const net::Prefix& destination) const {
    return table_.find(destination);
  }
  const ObservedTable& table() const { return table_; }
  const RiptideConfig& config() const { return config_; }
  const AgentStats& stats() const { return stats_; }
  host::Host& host() { return host_; }

  // The actuator / observation surface actually in use (fault harnesses
  // downcast these to reach their injection knobs).
  RouteProgrammer& programmer() { return *programmer_; }
  SocketStatsSource& stats_source() { return *stats_source_; }

  // Route programs/clears awaiting an actuator retry.
  std::size_t pending_actuator_ops() const { return pending_ops_.size(); }
  // Whether a retry is pending for this destination. Oracles exclude such
  // destinations: the agent knows they are inconsistent and is fixing them.
  bool has_pending_op(const net::Prefix& destination) const {
    return pending_ops_.contains(destination);
  }

  // The routes this agent believes it has installed in the host routing
  // table (successful programs minus successful withdrawals) — the "ours"
  // side the reconciler and the chaos oracles diff against the live table.
  const std::map<net::Prefix, host::RouteMetrics, net::PrefixOrder>&
  installed_routes() const {
    return installed_;
  }

 private:
  // One observed connection's loss-recovery counters at the previous
  // poll, for retransmit-rate deltas that survive cumulative counting.
  struct SeenCounters {
    std::uint64_t retransmissions = 0;
    std::uint64_t segments_sent = 0;
    bool seen_this_poll = false;
  };

  // A route program or clear that failed and is waiting to be retried.
  struct PendingOp {
    std::uint32_t initcwnd = 0;
    std::uint32_t initrwnd = 0;
    bool clear = false;
    std::uint32_t attempts = 0;  // failed attempts so far
    sim::EventHandle timer;
  };

  static GovernorConfig governor_config(const RiptideConfig& config);
  PollOutcome poll_once_impl();
  double clamp_window(double value) const;
  // -- decision-audit tracing (src/trace) --
  // Emit one route-lifecycle / program-outcome record; no-ops costing a
  // thread-local load when no sink is installed on this thread.
  void trace_route(trace::RouteCause cause, const net::Prefix& dst,
                   double window);
  void trace_program(trace::ProgramVerdict verdict, const net::Prefix& dst,
                     double scale, std::uint32_t initcwnd,
                     std::uint32_t initrwnd);
  void trace_governor_state(GovernorState from, GovernorState to,
                            trace::GovernorCause cause,
                            double retrans_fraction, std::uint32_t routes);
  void adopt_existing_routes();
  // Governor actions and reconciliation (poll_once helpers).
  void emergency_rollback(sim::Time now, double retrans_fraction,
                          trace::GovernorCause cause);
  void staged_scale_down(GovernorState from, double retrans_fraction);
  void staged_selective_withdraw(GovernorState from, double retrans_fraction);
  // Shed-newest budget enforcement: the per-destination windows admitted
  // this poll (0 = shed entirely), or an empty map when the table fits.
  std::map<net::Prefix, std::uint32_t, net::PrefixOrder>
  budget_shed_admissions() const;
  void reconcile_route_table();
  // Actuator wrappers: perform the op now; on failure, enqueue a retry.
  void program_route(const net::Prefix& dst, std::uint32_t initcwnd,
                     std::uint32_t initrwnd);
  void withdraw_route(const net::Prefix& dst);
  void handle_actuator_failure(const net::Prefix& dst, std::uint32_t initcwnd,
                               std::uint32_t initrwnd, bool clear);
  void retry_pending(const net::Prefix& dst);
  void cancel_pending_ops();
  // Staleness guard: per-destination retransmit deltas since last poll.
  std::map<net::Prefix, std::pair<std::uint64_t, std::uint64_t>>
  retransmit_deltas(const std::vector<host::SocketInfo>& snapshot);
  void apply_staleness_guard(
      const std::map<net::Prefix, std::pair<std::uint64_t, std::uint64_t>>&
          deltas,
      sim::Time now);

  sim::Simulator& sim_;
  host::Host& host_;
  RiptideConfig config_;
  std::unique_ptr<RouteProgrammer> programmer_;
  std::unique_ptr<SocketStatsSource> stats_source_;
  std::unique_ptr<Combiner> combiner_;
  sim::Rng* rng_ = nullptr;
  ObservedTable table_;
  sim::EventHandle poll_timer_;
  PostPollHook post_poll_hook_;
  bool running_ = false;
  bool started_once_ = false;
  std::uint32_t window_cap_segments_ = 0;
  std::map<net::Prefix, PendingOp> pending_ops_;
  std::unordered_map<tcp::FourTuple, SeenCounters, tcp::FourTupleHash>
      seen_counters_;
  // What this agent believes it has installed in the host routing table
  // (successful programs minus successful withdrawals). The reconciler
  // diffs this against the live table; lost with the process on crash().
  std::map<net::Prefix, host::RouteMetrics, net::PrefixOrder> installed_;
  SafetyGovernor governor_;
  // Host-wide counter values at the previous poll, for governor deltas.
  std::uint64_t prev_host_retrans_ = 0;
  std::uint64_t prev_host_packets_ = 0;
  // Poll-loop scratch, reused across polls so steady-state polling does
  // not allocate: observations tagged with their destination, stably
  // sorted so each destination is a contiguous run, plus the flat
  // observation array the combiner spans point into.
  struct DestObservation {
    net::Prefix destination;
    Observation obs;
  };
  std::vector<DestObservation> poll_scratch_;
  std::vector<Observation> poll_observations_;
  AgentStats stats_;
};

}  // namespace riptide::core

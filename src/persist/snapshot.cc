#include "persist/snapshot.h"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "persist/crc32.h"

namespace riptide::persist {

namespace {

constexpr char kMagic[4] = {'R', 'S', 'N', 'P'};
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kCountersBytes = 44;
constexpr std::size_t kRecordBytesV1 = 25;
constexpr std::size_t kRecordBytesV2 = 33;

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Readers index into a bounds-checked view; callers guarantee the size.
std::uint16_t get_u16(std::string_view in, std::size_t at) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(in[at]) |
      (static_cast<unsigned char>(in[at + 1]) << 8));
}

std::uint32_t get_u32(std::string_view in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(in[at + i]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(in[at + i]);
  }
  return v;
}

void append_record(std::string& out, const net::Prefix& prefix,
                   const core::DestinationState& state,
                   std::uint16_t version) {
  const std::size_t body_start = out.size();
  put_u32(out, prefix.address().value());
  out.push_back(static_cast<char>(prefix.length()));
  put_u64(out, std::bit_cast<std::uint64_t>(state.final_window_segments));
  put_u64(out, static_cast<std::uint64_t>(state.last_updated.ns()));
  if (version >= kSnapshotVersion) put_u64(out, state.updates);
  put_u32(out, crc32(out.data() + body_start, out.size() - body_start));
}

}  // namespace

std::string encode_snapshot(const core::ObservedTable& table,
                            const SnapshotCounters& counters,
                            std::uint64_t sequence, std::uint16_t version) {
  if (version != kSnapshotVersionV1 && version != kSnapshotVersion) {
    throw std::invalid_argument("encode_snapshot: unsupported version " +
                                std::to_string(version));
  }
  std::string out;
  const std::size_t record_bytes =
      version == kSnapshotVersionV1 ? kRecordBytesV1 : kRecordBytesV2;
  out.reserve(kHeaderBytes + (version >= kSnapshotVersion ? kCountersBytes : 0) +
              table.size() * record_bytes);

  out.append(kMagic, sizeof(kMagic));
  put_u16(out, version);
  put_u16(out, 0);  // flags, reserved
  put_u64(out, sequence);
  put_u32(out, static_cast<std::uint32_t>(table.size()));
  put_u32(out, crc32(out.data(), out.size()));

  if (version >= kSnapshotVersion) {
    const std::size_t block_start = out.size();
    put_u64(out, counters.polls);
    put_u64(out, counters.connections_observed);
    put_u64(out, counters.destinations_updated);
    put_u64(out, counters.routes_set);
    put_u64(out, counters.routes_expired);
    put_u32(out, crc32(out.data() + block_start, out.size() - block_start));
  }

  for (const auto& [prefix, state] : table.entries()) {
    append_record(out, prefix, state, version);
  }
  return out;
}

DecodeResult decode_snapshot(std::string_view bytes) {
  DecodeResult result;

  // Header: any damage here rejects the snapshot — without a trusted
  // version and framing there is nothing safe to salvage.
  if (bytes.size() < kHeaderBytes) return result;
  if (std::string_view(bytes.data(), 4) !=
      std::string_view(kMagic, sizeof(kMagic))) {
    return result;
  }
  if (get_u32(bytes, kHeaderBytes - 4) !=
      crc32(bytes.data(), kHeaderBytes - 4)) {
    return result;
  }
  const std::uint16_t version = get_u16(bytes, 4);
  if (version != kSnapshotVersionV1 && version != kSnapshotVersion) {
    return result;
  }
  result.valid = true;
  result.stats.version = version;
  result.sequence = get_u64(bytes, 8);

  std::size_t at = kHeaderBytes;
  if (version >= kSnapshotVersion) {
    if (bytes.size() < at + kCountersBytes) {
      // Snapshot torn inside the counter block: table records never made
      // it to storage, so there is nothing further to recover.
      result.stats.truncated_tail = true;
      return result;
    }
    if (get_u32(bytes, at + kCountersBytes - 4) ==
        crc32(bytes.data() + at, kCountersBytes - 4)) {
      result.counters.polls = get_u64(bytes, at);
      result.counters.connections_observed = get_u64(bytes, at + 8);
      result.counters.destinations_updated = get_u64(bytes, at + 16);
      result.counters.routes_set = get_u64(bytes, at + 24);
      result.counters.routes_expired = get_u64(bytes, at + 32);
    } else {
      // Damaged counters don't poison the table: zeroed counters are
      // merely a monitoring discontinuity.
      result.stats.counters_corrupt = true;
    }
    at += kCountersBytes;
  }

  const std::size_t record_bytes =
      version == kSnapshotVersionV1 ? kRecordBytesV1 : kRecordBytesV2;
  while (at < bytes.size()) {
    if (bytes.size() - at < record_bytes) {
      result.stats.truncated_tail = true;
      break;
    }
    const std::string_view body(bytes.data() + at, record_bytes - 4);
    const std::uint32_t stored_crc = get_u32(bytes, at + record_bytes - 4);
    at += record_bytes;
    if (stored_crc != crc32(body)) {
      ++result.stats.records_corrupt;
      continue;
    }
    const std::uint32_t address = get_u32(body, 0);
    const int length = static_cast<unsigned char>(body[4]);
    const double window = std::bit_cast<double>(get_u64(body, 5));
    const auto last_updated =
        sim::Time::nanoseconds(static_cast<std::int64_t>(get_u64(body, 13)));
    const std::uint64_t updates =
        version >= kSnapshotVersion ? get_u64(body, 21) : 0;
    // Semantic validation past the CRC (defense against a checksum that
    // happens to cover garbage): mask length in range, address already
    // canonical for it, a finite non-negative window.
    if (length > 32 || !std::isfinite(window) || window < 0.0) {
      ++result.stats.records_corrupt;
      continue;
    }
    const net::Prefix prefix(net::Ipv4Address(address), length);
    if (prefix.address().value() != address) {
      ++result.stats.records_corrupt;
      continue;
    }
    if (result.table.contains(prefix)) {
      ++result.stats.records_duplicate;
      continue;
    }
    result.table.put(prefix, {window, last_updated, updates});
    ++result.stats.records_ok;
  }
  return result;
}

}  // namespace riptide::persist

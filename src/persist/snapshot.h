#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/observed_table.h"

namespace riptide::persist {

// Versioned, CRC32-checksummed wire format for the agent's learned state,
// so a restarted agent resumes from its last checkpoint instead of paying
// the full cold-start penalty Riptide exists to remove.
//
// Byte layout (all integers little-endian; doubles as IEEE-754 bit
// patterns — the encoding of a given table is byte-stable across
// platforms because ObservedTable iterates in a fixed total order):
//
//   header (24 bytes)
//     magic      "RSNP"                                    4
//     version    u16  (1 or 2; see below)                  2
//     flags      u16  (reserved, 0)                        2
//     sequence   u64  (checkpoint counter)                 8
//     count      u32  (records that follow)                4
//     crc        u32  CRC32 of the 20 bytes above          4
//   counters (v2 only, 44 bytes)
//     polls, connections_observed, destinations_updated,
//     routes_set, routes_expired                           5 x u64
//     crc        u32  CRC32 of the 40 bytes above          4
//   record x count (v2: 33 bytes, v1: 25 bytes)
//     address    u32  (canonical prefix address)           4
//     length     u8   (mask length, 0..32)                 1
//     window     u64  (double bits of final window)        8
//     last_upd   i64  (sim-time ns)                        8
//     updates    u64  (v2 only)                            8
//     crc        u32  CRC32 of the record body             4
//
// Decode is forgiving where it can afford to be and strict where it
// cannot: a damaged header (or an unknown version) rejects the snapshot
// outright; a damaged or semantically invalid record is counted and
// skipped (fixed-size framing means one flipped bit never desyncs the
// rest); a partial record at the end — the torn tail of an interrupted
// write — is counted and discarded. Whatever records survive are exactly
// the bytes that were written: every accepted record passed its CRC.
inline constexpr std::uint16_t kSnapshotVersionV1 = 1;
inline constexpr std::uint16_t kSnapshotVersion = 2;

// Agent counters carried alongside the table so monitoring stays
// continuous across process generations. Version-1 snapshots predate the
// block and decode with all counters zero.
struct SnapshotCounters {
  std::uint64_t polls = 0;
  std::uint64_t connections_observed = 0;
  std::uint64_t destinations_updated = 0;
  std::uint64_t routes_set = 0;
  std::uint64_t routes_expired = 0;

  friend bool operator==(const SnapshotCounters&,
                         const SnapshotCounters&) = default;
};

struct DecodeStats {
  std::uint16_t version = 0;
  std::size_t records_ok = 0;
  std::size_t records_corrupt = 0;    // CRC or field validation failed
  std::size_t records_duplicate = 0;  // prefix seen twice; first kept
  bool truncated_tail = false;        // partial record at the end
  bool counters_corrupt = false;      // v2 counter block failed its CRC
};

struct DecodeResult {
  bool valid = false;  // header intact and version understood
  core::ObservedTable table;
  SnapshotCounters counters;
  std::uint64_t sequence = 0;
  DecodeStats stats;
};

// Encodes `table` + `counters` at the given schema version (1 omits the
// counter block and per-record update counts; useful for version-skew
// tests). Throws std::invalid_argument for an unsupported version.
std::string encode_snapshot(const core::ObservedTable& table,
                            const SnapshotCounters& counters,
                            std::uint64_t sequence,
                            std::uint16_t version = kSnapshotVersion);

// Never throws on malformed input: arbitrary bytes produce either a
// rejected result (valid == false) or a table assembled from the records
// that verified, with the damage itemized in `stats`.
DecodeResult decode_snapshot(std::string_view bytes);

}  // namespace riptide::persist

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace riptide::persist {

// IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320) — the checksum
// zlib's crc32() computes, so snapshots written here verify with stock
// tooling. crc32("123456789") == 0xCBF43926.
//
// `seed` chains incremental computations: crc32(b, crc32(a)) ==
// crc32(a + b).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace riptide::persist

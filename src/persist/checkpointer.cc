#include "persist/checkpointer.h"

#include <utility>

#include "persist/snapshot.h"

namespace riptide::persist {

AgentCheckpointer::AgentCheckpointer(sim::Simulator& sim,
                                     core::RiptideAgent& agent,
                                     SnapshotStore& store,
                                     CheckpointerConfig config)
    : sim_(sim), agent_(agent), store_(store), config_(config) {}

void AgentCheckpointer::start() {
  if (config_.interval <= sim::Time::zero()) return;
  timer_.cancel();
  timer_ = sim_.schedule_periodic(config_.interval, config_.interval, [this] {
    // A crashed agent has no state worth persisting; writing here would
    // overwrite the last good pre-crash snapshot with an empty table.
    if (agent_.running()) checkpoint_now();
  });
}

void AgentCheckpointer::stop() { timer_.cancel(); }

void AgentCheckpointer::checkpoint_now() {
  const core::AgentStats& s = agent_.stats();
  SnapshotCounters counters{
      .polls = s.polls,
      .connections_observed = s.connections_observed,
      .destinations_updated = s.destinations_updated,
      .routes_set = s.routes_set,
      .routes_expired = s.routes_expired,
  };
  const std::string bytes =
      encode_snapshot(agent_.table(), counters, ++sequence_);
  store_.save(bytes);
  ++stats_.checkpoints_written;
  stats_.bytes_written += bytes.size();
}

bool AgentCheckpointer::restore(bool reinstall_routes) {
  for (const std::string& bytes : store_.load_newest_first()) {
    DecodeResult decoded = decode_snapshot(bytes);
    if (!decoded.valid) {
      ++stats_.snapshots_rejected;
      continue;
    }
    // A header that decodes over a body where every claimed record failed
    // its CRC carries no state at all — an older generation with intact
    // records is the better fallback. Only an honestly empty snapshot
    // (zero records claimed, nothing corrupt or torn) restores an empty
    // table.
    if (decoded.stats.records_ok == 0 &&
        (decoded.stats.records_corrupt > 0 || decoded.stats.truncated_tail)) {
      ++stats_.snapshots_rejected;
      continue;
    }
    stats_.records_recovered += decoded.stats.records_ok;
    stats_.records_discarded +=
        decoded.stats.records_corrupt + decoded.stats.records_duplicate;
    if (decoded.stats.truncated_tail) ++stats_.truncated_tails;

    core::AgentStats restored;
    restored.polls = decoded.counters.polls;
    restored.connections_observed = decoded.counters.connections_observed;
    restored.destinations_updated = decoded.counters.destinations_updated;
    restored.routes_set = decoded.counters.routes_set;
    restored.routes_expired = decoded.counters.routes_expired;
    agent_.absorb_restored_counters(restored);
    agent_.restore_table(std::move(decoded.table), reinstall_routes);
    sequence_ = std::max(sequence_, decoded.sequence);
    ++stats_.restores;
    return true;
  }
  return false;
}

}  // namespace riptide::persist

#include "persist/checkpointer.h"

#include <utility>

#include "persist/snapshot.h"
#include "trace/sink.h"

namespace riptide::persist {

AgentCheckpointer::AgentCheckpointer(sim::Simulator& sim,
                                     core::RiptideAgent& agent,
                                     SnapshotStore& store,
                                     CheckpointerConfig config)
    : sim_(sim), agent_(agent), store_(store), config_(config) {}

void AgentCheckpointer::start() {
  if (config_.interval <= sim::Time::zero()) return;
  timer_.cancel();
  timer_ = sim_.schedule_periodic(config_.interval, config_.interval, [this] {
    // A crashed agent has no state worth persisting; writing here would
    // overwrite the last good pre-crash snapshot with an empty table.
    if (agent_.running()) checkpoint_now();
  });
}

void AgentCheckpointer::stop() { timer_.cancel(); }

void AgentCheckpointer::checkpoint_now() {
  const core::AgentStats& s = agent_.stats();
  SnapshotCounters counters{
      .polls = s.polls,
      .connections_observed = s.connections_observed,
      .destinations_updated = s.destinations_updated,
      .routes_set = s.routes_set,
      .routes_expired = s.routes_expired,
  };
  const std::string bytes =
      encode_snapshot(agent_.table(), counters, ++sequence_);
  store_.save(bytes);
  ++stats_.checkpoints_written;
  stats_.bytes_written += bytes.size();
}

bool AgentCheckpointer::restore(bool reinstall_routes) {
  for (const std::string& bytes : store_.load_newest_first()) {
    DecodeResult decoded = decode_snapshot(bytes);
    if (!decoded.valid) {
      ++stats_.snapshots_rejected;
      continue;
    }
    const std::size_t rejected_records =
        decoded.stats.records_corrupt + decoded.stats.records_duplicate;
    // A header that decodes over a body where every claimed record failed
    // its CRC carries no state at all — an older generation with intact
    // records is the better fallback. Only an honestly empty snapshot
    // (zero records claimed, nothing corrupt or torn) restores an empty
    // table.
    if (decoded.stats.records_ok == 0 &&
        (decoded.stats.records_corrupt > 0 || decoded.stats.truncated_tail)) {
      ++stats_.snapshots_rejected;
      continue;
    }
    stats_.records_recovered += decoded.stats.records_ok;
    stats_.records_discarded += rejected_records;
    if (decoded.stats.truncated_tail) ++stats_.truncated_tails;

    core::AgentStats restored;
    restored.polls = decoded.counters.polls;
    restored.connections_observed = decoded.counters.connections_observed;
    restored.destinations_updated = decoded.counters.destinations_updated;
    restored.routes_set = decoded.counters.routes_set;
    restored.routes_expired = decoded.counters.routes_expired;
    agent_.absorb_restored_counters(restored);
    agent_.restore_table(std::move(decoded.table), reinstall_routes);
    sequence_ = std::max(sequence_, decoded.sequence);
    ++stats_.restores;
    // Restore provenance: which generation fed the warm restart, how much
    // of it survived validation, and whether routes were re-programmed.
    if (auto* sink = trace::active()) {
      trace::TraceEvent ev;
      ev.at_ns = sim_.now().ns();
      ev.kind = trace::EventKind::kAgentRestore;
      ev.restore = {agent_.host().address().value(),
                    /*from_checkpoint=*/1,
                    static_cast<std::uint8_t>(reinstall_routes ? 1 : 0),
                    static_cast<std::uint32_t>(decoded.stats.records_ok),
                    static_cast<std::uint32_t>(decoded.sequence),
                    static_cast<std::uint32_t>(rejected_records)};
      sink->emit(ev);
    }
    return true;
  }
  // Every stored snapshot failed to decode (or none existed): record the
  // failed provenance too, so a cold-looking restart is attributable.
  if (auto* sink = trace::active()) {
    trace::TraceEvent ev;
    ev.at_ns = sim_.now().ns();
    ev.kind = trace::EventKind::kAgentRestore;
    ev.restore = {agent_.host().address().value(),
                  /*from_checkpoint=*/1,
                  /*reinstalled=*/0,
                  /*records=*/0,
                  /*generation=*/0,
                  static_cast<std::uint32_t>(stats_.snapshots_rejected)};
    sink->emit(ev);
  }
  return false;
}

}  // namespace riptide::persist

#include "persist/crc32.h"

#include <array>

namespace riptide::persist {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xffu];
  }
  return ~crc;
}

}  // namespace riptide::persist

#include "persist/snapshot_store.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <system_error>

namespace riptide::persist {

namespace {

bool flip_bit(std::string& bytes, std::size_t byte_offset) {
  if (bytes.empty()) return false;
  const std::size_t at = byte_offset % bytes.size();
  bytes[at] = static_cast<char>(static_cast<unsigned char>(bytes[at]) ^
                                (1u << (byte_offset % 8)));
  return true;
}

}  // namespace

void MemorySnapshotStore::save(const std::string& bytes) {
  newest_first_.push_front(bytes);
  while (newest_first_.size() > keep_) newest_first_.pop_back();
  ++saves_;
}

std::vector<std::string> MemorySnapshotStore::load_newest_first() const {
  return {newest_first_.begin(), newest_first_.end()};
}

bool MemorySnapshotStore::corrupt_newest(std::size_t byte_offset) {
  if (newest_first_.empty()) return false;
  return flip_bit(newest_first_.front(), byte_offset);
}

FileSnapshotStore::FileSnapshotStore(std::filesystem::path directory,
                                     std::string basename, std::size_t keep)
    : directory_(std::move(directory)),
      basename_(std::move(basename)),
      keep_(keep) {
  std::filesystem::create_directories(directory_);
  // Resume the sequence past any snapshots a previous generation left
  // behind so rotation never reuses (and clobbers) a live name.
  for (const auto& [sequence, path] : list()) {
    next_sequence_ = std::max(next_sequence_, sequence + 1);
  }
}

void FileSnapshotStore::save(const std::string& bytes) {
  const std::uint64_t sequence = next_sequence_++;
  const auto final_path =
      directory_ / (basename_ + "." + std::to_string(sequence));
  const auto temp_path =
      directory_ / (basename_ + "." + std::to_string(sequence) + ".tmp");
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(temp_path, ignored);
      return;
    }
  }
  // rename() within a directory is atomic: readers see the old set of
  // snapshots or the new one, never a partially written file.
  std::error_code ec;
  std::filesystem::rename(temp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(temp_path, ec);
    return;
  }
  ++saves_;

  auto retained = list();
  for (std::size_t i = keep_; i < retained.size(); ++i) {
    std::error_code ignored;
    std::filesystem::remove(retained[i].second, ignored);
  }
  // Sweep temp files orphaned by an interrupted earlier save.
  std::error_code iter_ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, iter_ec)) {
    const auto name = entry.path().filename().string();
    if (name != temp_path.filename().string() &&
        name.starts_with(basename_ + ".") && name.ends_with(".tmp")) {
      std::error_code ignored;
      std::filesystem::remove(entry.path(), ignored);
    }
  }
}

std::vector<std::string> FileSnapshotStore::load_newest_first() const {
  std::vector<std::string> snapshots;
  for (const auto& [sequence, path] : list()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) continue;
    snapshots.push_back(std::move(bytes));
  }
  return snapshots;
}

bool FileSnapshotStore::corrupt_newest(std::size_t byte_offset) {
  const auto retained = list();
  if (retained.empty()) return false;
  const auto& path = retained.front().second;
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  if (!flip_bit(bytes, byte_offset)) return false;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::vector<std::pair<std::uint64_t, std::filesystem::path>>
FileSnapshotStore::list() const {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> retained;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const auto name = entry.path().filename().string();
    const std::string stem = basename_ + ".";
    if (!name.starts_with(stem) || name.ends_with(".tmp")) continue;
    const std::string suffix = name.substr(stem.size());
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    retained.emplace_back(std::stoull(suffix), entry.path());
  }
  std::sort(retained.begin(), retained.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return retained;
}

}  // namespace riptide::persist

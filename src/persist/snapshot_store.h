#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

namespace riptide::persist {

// Where encoded snapshots live between process generations. Stores retain
// the newest `keep` snapshots so a checkpoint torn or corrupted mid-write
// never destroys the previous good one — restore walks newest-first and
// takes the first snapshot that decodes.
class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  // Durably retains one encoded snapshot. Atomic: a reader (or a crash)
  // never observes a partial write.
  virtual void save(const std::string& bytes) = 0;

  // All retained snapshots, newest first.
  virtual std::vector<std::string> load_newest_first() const = 0;

  // Fault-injection hook: flips one bit of the newest retained snapshot
  // (bit `byte_offset % 8` of byte `byte_offset % size`). Returns false
  // when there is nothing to corrupt. Exists so crash/corruption drills
  // exercise the decoder's recovery paths against real stored bytes.
  virtual bool corrupt_newest(std::size_t byte_offset) = 0;

  virtual std::uint64_t saves() const = 0;
};

// In-memory store for simulations: "durable" relative to the simulated
// agent process (it outlives crash()/start() cycles because the harness
// owns it), with none of the filesystem nondeterminism a sweep of
// parallel experiment workers must avoid.
class MemorySnapshotStore : public SnapshotStore {
 public:
  explicit MemorySnapshotStore(std::size_t keep = 2) : keep_(keep) {}

  void save(const std::string& bytes) override;
  std::vector<std::string> load_newest_first() const override;
  bool corrupt_newest(std::size_t byte_offset) override;
  std::uint64_t saves() const override { return saves_; }

 private:
  std::size_t keep_;
  std::deque<std::string> newest_first_;
  std::uint64_t saves_ = 0;
};

// File-backed store: snapshots land as `<basename>.<seq>` in `directory`
// via temp-then-rename, so the visible file is always complete. Rotation
// keeps the newest `keep` sequence numbers and deletes the rest; stray
// temp files from interrupted writes are ignored by load and cleaned up
// opportunistically by the next save.
class FileSnapshotStore : public SnapshotStore {
 public:
  explicit FileSnapshotStore(std::filesystem::path directory,
                             std::string basename = "riptide.snap",
                             std::size_t keep = 2);

  void save(const std::string& bytes) override;
  std::vector<std::string> load_newest_first() const override;
  bool corrupt_newest(std::size_t byte_offset) override;
  std::uint64_t saves() const override { return saves_; }

  const std::filesystem::path& directory() const { return directory_; }

 private:
  // Retained snapshot files as (sequence, path), newest first.
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> list() const;

  std::filesystem::path directory_;
  std::string basename_;
  std::size_t keep_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t saves_ = 0;
};

}  // namespace riptide::persist

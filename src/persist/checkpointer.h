#pragma once

#include <cstdint>

#include "core/agent.h"
#include "persist/snapshot_store.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace riptide::persist {

struct CheckpointerConfig {
  // How often the agent's state is snapshotted; zero disables the
  // periodic timer (checkpoint_now() still works for tests/tools).
  sim::Time interval;
};

struct CheckpointerStats {
  std::uint64_t checkpoints_written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t restores = 0;            // restore() calls that found state
  std::uint64_t snapshots_rejected = 0;  // stored snapshots that failed decode
  std::uint64_t records_recovered = 0;   // table entries restored
  std::uint64_t records_discarded = 0;   // corrupt/duplicate records skipped
  std::uint64_t truncated_tails = 0;     // restores that hit a torn write
};

// Periodically persists a RiptideAgent's learned state into a
// SnapshotStore, and warm-restarts the agent from the newest snapshot
// that still decodes. The checkpointer sits entirely outside the agent's
// control loop: the agent never knows it is being persisted, and a
// checkpointing agent's simulation outputs are identical to a
// non-checkpointing one's until a restore actually happens.
class AgentCheckpointer {
 public:
  AgentCheckpointer(sim::Simulator& sim, core::RiptideAgent& agent,
                    SnapshotStore& store, CheckpointerConfig config);
  ~AgentCheckpointer() { stop(); }

  AgentCheckpointer(const AgentCheckpointer&) = delete;
  AgentCheckpointer& operator=(const AgentCheckpointer&) = delete;

  // Arms the periodic timer (no-op when interval is zero). Ticks while
  // the agent is crashed are skipped, not cancelled — checkpointing
  // resumes by itself once the agent restarts.
  void start();
  void stop();

  void checkpoint_now();

  // Walks stored snapshots newest-first and restores the agent's table
  // and counters from the first one that decodes; older snapshots are
  // the fallback when the newest was torn or corrupted. Returns false
  // when no stored snapshot yields a usable table. When
  // `reinstall_routes` is set the restored windows are programmed into
  // the host routing table immediately — the warm-reboot jump-start.
  //
  // With tracing active, every restore emits an `agent-restore`
  // provenance event: which snapshot generation was used, how many
  // records it yielded, and how many were rejected — and a failed
  // restore emits one too, so a cold-looking restart is attributable.
  bool restore(bool reinstall_routes = false);

  SnapshotStore& store() { return store_; }
  const CheckpointerStats& stats() const { return stats_; }

 private:
  sim::Simulator& sim_;
  core::RiptideAgent& agent_;
  SnapshotStore& store_;
  CheckpointerConfig config_;
  CheckpointerStats stats_;
  std::uint64_t sequence_ = 0;
  sim::EventHandle timer_;
};

}  // namespace riptide::persist

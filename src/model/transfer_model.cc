#include "model/transfer_model.h"

#include <stdexcept>

namespace riptide::model {

std::uint32_t rtts_for_transfer(std::uint64_t size_bytes,
                                const ModelParams& params) {
  if (params.mss_bytes == 0 || params.initcwnd_segments == 0) {
    throw std::invalid_argument("rtts_for_transfer: zero mss or initcwnd");
  }
  if (size_bytes == 0) return 0;
  const std::uint64_t segments =
      (size_bytes + params.mss_bytes - 1) / params.mss_bytes;

  std::uint64_t window = params.initcwnd_segments;
  std::uint64_t sent = 0;
  std::uint32_t rtts = 0;
  while (sent < segments) {
    sent += window;
    // Double per RTT; cap the doubling once the remaining data fits to
    // avoid pointless overflow on huge inputs.
    if (window < (std::uint64_t{1} << 62)) window *= 2;
    ++rtts;
  }
  return rtts;
}

std::uint64_t max_bytes_in_rtts(std::uint32_t rtts, const ModelParams& params) {
  // Geometric sum: initcwnd * (2^rtts - 1) segments.
  std::uint64_t window = params.initcwnd_segments;
  std::uint64_t total_segments = 0;
  for (std::uint32_t i = 0; i < rtts; ++i) {
    total_segments += window;
    window *= 2;
  }
  return total_segments * params.mss_bytes;
}

sim::Time transfer_time(std::uint64_t size_bytes, const ModelParams& params,
                        sim::Time rtt, bool include_handshake) {
  const std::uint32_t rtts =
      rtts_for_transfer(size_bytes, params) + (include_handshake ? 1 : 0);
  return rtt * static_cast<std::int64_t>(rtts);
}

double rtt_reduction(std::uint64_t size_bytes, std::uint32_t baseline_initcwnd,
                     std::uint32_t new_initcwnd, std::uint32_t mss_bytes) {
  ModelParams base{mss_bytes, baseline_initcwnd};
  ModelParams improved{mss_bytes, new_initcwnd};
  const std::uint32_t rtts_base = rtts_for_transfer(size_bytes, base);
  if (rtts_base == 0) return 0.0;
  const std::uint32_t rtts_new = rtts_for_transfer(size_bytes, improved);
  return static_cast<double>(rtts_base - rtts_new) /
         static_cast<double>(rtts_base);
}

}  // namespace riptide::model

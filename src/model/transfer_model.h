#pragma once

#include <cstdint>

#include "sim/time.h"

namespace riptide::model {

// The idealized transfer-time model of paper §II-B, used for Figures 3, 4
// and 6. Assumptions (the paper's): zero serialization delay, immediate
// ACKs, no loss, no flow-control bottleneck, and slow start that doubles
// the window every RTT. Real transfers are strictly slower, so the model
// bounds the best case for a given initial window.

struct ModelParams {
  std::uint32_t mss_bytes = 1460;
  std::uint32_t initcwnd_segments = 10;
};

// Number of round trips needed to deliver `size_bytes` of application data
// (excluding the connection handshake): the smallest n with
//   sum_{i=0}^{n-1} initcwnd * 2^i  >=  ceil(size / mss)  segments.
// Zero-byte transfers take 0 RTTs.
std::uint32_t rtts_for_transfer(std::uint64_t size_bytes,
                                const ModelParams& params);

// Largest transfer (bytes) that completes within `rtts` round trips.
std::uint64_t max_bytes_in_rtts(std::uint32_t rtts, const ModelParams& params);

// Wall-clock transfer time over a path with the given RTT, optionally
// charging one extra RTT for the TCP handshake of a fresh connection.
sim::Time transfer_time(std::uint64_t size_bytes, const ModelParams& params,
                        sim::Time rtt, bool include_handshake = false);

// Fractional reduction in RTTs relative to a baseline initial window
// (Fig 4): (rtts_base - rtts_new) / rtts_base, in [0, 1). Zero when the
// transfer is empty.
double rtt_reduction(std::uint64_t size_bytes, std::uint32_t baseline_initcwnd,
                     std::uint32_t new_initcwnd, std::uint32_t mss_bytes = 1460);

}  // namespace riptide::model

#pragma once

#include <cstdint>
#include <string>

#include "cdn/experiment.h"
#include "tcp/config.h"

namespace riptide::policy {

// The initial-window policy zoo (ROADMAP item 3). "Demystifying TCP
// Initial Window Configurations of CDNs" (PAPERS.md) measured real CDNs
// shipping static IW10–IW50+ at varied route granularities with no safety
// net; Riptide's adaptive EWMA is one point in that space. Each policy
// here configures a complete experiment so the bench can hold traffic and
// topology fixed while sweeping policy × granularity × hostile scenario.
enum class PolicyKind : std::uint8_t {
  kDefault,   // stock IW10 everywhere; no agent, no routes
  kStaticIw,  // one fixed initcwnd programmed for every destination group
  kAdaptive,  // Riptide's EWMA agent (optionally governed)
  kOracle,    // true path BDP read straight from the topology
};
const char* to_string(PolicyKind kind);

struct PolicySpec {
  PolicyKind kind = PolicyKind::kAdaptive;
  // kStaticIw: the window programmed for every destination group.
  std::uint32_t static_iw = 10;
  // Route granularity: 32 = per-host routes; 24/20/16 aggregate. Applies
  // to every kind that installs or learns routes.
  int prefix_length = 32;
  // kAdaptive only: arm the recommended SafetyGovernor pack (budget with
  // shed-newest fairness, staged response, storm hysteresis).
  bool governed = false;
  // Congestion-control regime, "cc=<name>" in the grammar. For route-
  // installing kinds (static/oracle/adaptive) it is stamped onto every
  // programmed route; for kDefault it rewrites the host-wide TcpConfig so
  // a whole experiment can run under e.g. BBR-lite. kUnset = stock CUBIC.
  tcp::RouteCc cc = tcp::RouteCc::kUnset;
};

// Field-wise equality, for spec round-trip checks and the chaos shrinker.
bool operator==(const PolicySpec& a, const PolicySpec& b);

// Canonical spec name, e.g. "static-iw50@24", "adaptive-governed",
// "oracle@20,cc=bbr", "default". Round-trips through parse_policy.
std::string to_string(const PolicySpec& spec);

// Parses "default" | "static-iwN[@L]" | "adaptive[-governed][@L]" |
// "oracle[@L]", each optionally suffixed ",cc=<name>" with name in
// {reno, cubic, cubic-fast, bbr}; N in [1, 1000] and L in [8, 32]
// (default 32). Throws std::invalid_argument on anything else — fuzz
// surface.
PolicySpec parse_policy(const std::string& text);

// What a policy installer did at build time; retrieve from
// Experiment::extensions() (std::static_pointer_cast<PolicyInstallation>).
struct PolicyInstallation {
  PolicySpec spec;
  std::size_t routes_installed = 0;
};

// Rewrites `config` so the experiment runs under `spec`: flips
// riptide_enabled, sets the agent's granularity/governor knobs, and — for
// the static and oracle policies — appends an extension factory that
// programs one route per destination group on every host at build time.
// Call after the rest of the config (topology, traffic, hostile) is
// final: the oracle reads the topology config it finds here.
void apply_policy(cdn::ExperimentConfig& config, const PolicySpec& spec);

// The governed-adaptive SafetyGovernor pack, exposed so tests and docs
// pin the exact values: budget 300 segments with shed-newest fairness,
// 5% rollback threshold with the staged ladder, and 2x storm backoff
// capped at 8x the 20 s base cooldown.
void arm_recommended_governor(core::RiptideConfig& riptide);

}  // namespace riptide::policy

#include "policy/policy.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>

#include "core/route_programmer.h"

namespace riptide::policy {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kDefault: return "default";
    case PolicyKind::kStaticIw: return "static-iw";
    case PolicyKind::kAdaptive: return "adaptive";
    case PolicyKind::kOracle: return "oracle";
  }
  return "?";
}

std::string to_string(const PolicySpec& spec) {
  std::string out;
  switch (spec.kind) {
    case PolicyKind::kDefault:
      out = "default";
      break;
    case PolicyKind::kStaticIw:
      out = "static-iw" + std::to_string(spec.static_iw);
      break;
    case PolicyKind::kAdaptive:
      out = spec.governed ? "adaptive-governed" : "adaptive";
      break;
    case PolicyKind::kOracle:
      out = "oracle";
      break;
  }
  if (spec.kind != PolicyKind::kDefault && spec.prefix_length != 32) {
    out += "@" + std::to_string(spec.prefix_length);
  }
  if (spec.cc != tcp::RouteCc::kUnset) {
    out += std::string(",cc=") + tcp::to_string(spec.cc);
  }
  return out;
}

bool operator==(const PolicySpec& a, const PolicySpec& b) {
  return a.kind == b.kind && a.static_iw == b.static_iw &&
         a.prefix_length == b.prefix_length && a.governed == b.governed &&
         a.cc == b.cc;
}

namespace {

[[noreturn]] void bad_policy(const std::string& why, const std::string& token,
                             std::size_t offset) {
  throw std::invalid_argument("parse_policy: " + why + " at byte " +
                              std::to_string(offset) + ": '" + token + "'");
}

std::uint64_t parse_number(const std::string& text, std::uint64_t min,
                           std::uint64_t max, std::size_t offset) {
  if (text.empty()) bad_policy("empty number", text, offset);
  for (char c : text) {
    if (c < '0' || c > '9') bad_policy("bad number", text, offset);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || value < min ||
      value > max) {
    bad_policy("number out of range", text, offset);
  }
  return value;
}

}  // namespace

PolicySpec parse_policy(const std::string& full_text) {
  PolicySpec spec;
  // Strip the optional ",cc=<name>" suffix first; the remainder is the
  // historical grammar, untouched.
  std::string text = full_text;
  const auto comma = full_text.find(',');
  if (comma != std::string::npos) {
    const std::string suffix = full_text.substr(comma + 1);
    if (suffix.rfind("cc=", 0) != 0) {
      bad_policy("expected cc=<name> after ','", suffix, comma + 1);
    }
    const std::string name = suffix.substr(3);
    if (!tcp::parse_route_cc(name, spec.cc)) {
      bad_policy("unknown congestion control", name, comma + 4);
    }
    text = full_text.substr(0, comma);
  }
  const auto at = text.find('@');
  std::string base = text;
  if (at != std::string::npos) {
    base = text.substr(0, at);
    spec.prefix_length =
        static_cast<int>(parse_number(text.substr(at + 1), 8, 32, at + 1));
  }
  if (base == "default") {
    if (at != std::string::npos) {
      bad_policy("'default' takes no granularity", text.substr(at), at);
    }
    spec.kind = PolicyKind::kDefault;
  } else if (base == "adaptive") {
    spec.kind = PolicyKind::kAdaptive;
  } else if (base == "adaptive-governed") {
    spec.kind = PolicyKind::kAdaptive;
    spec.governed = true;
  } else if (base == "oracle") {
    spec.kind = PolicyKind::kOracle;
  } else if (base.rfind("static-iw", 0) == 0) {
    spec.kind = PolicyKind::kStaticIw;
    spec.static_iw = static_cast<std::uint32_t>(
        parse_number(base.substr(9), 1, 1000, 9));
  } else {
    bad_policy("unknown policy", base, 0);
  }
  return spec;
}

void arm_recommended_governor(core::RiptideConfig& riptide) {
  riptide.governor_budget_segments = 300;
  riptide.governor_budget_fairness = core::BudgetFairness::kShedNewest;
  riptide.governor_hysteresis_segments = 2;
  riptide.governor_rollback_retrans_fraction = 0.05;
  riptide.governor_min_packets = 200;
  riptide.governor_cooldown = sim::Time::seconds(20);
  riptide.governor_staged_response = true;
  riptide.governor_stage_scale_factor = 0.5;
  riptide.governor_stage_withdraw_fraction = 0.5;
  riptide.governor_storm_backoff_factor = 2.0;
  riptide.governor_max_cooldown = sim::Time::seconds(160);
  riptide.governor_storm_memory = sim::Time::seconds(60);
}

namespace {

// Destination groups for an installing policy: every other host's address
// collapsed to /prefix_length, skipping groups that would cover the
// installing host itself (a route to your own PoP says nothing about the
// WAN and risks shadowing the LAN path with odd metrics).
std::map<net::Prefix, std::vector<net::Ipv4Address>, net::PrefixOrder>
destination_groups(cdn::Topology& topo, host::Host& self, int prefix_length) {
  std::map<net::Prefix, std::vector<net::Ipv4Address>, net::PrefixOrder>
      groups;
  for (host::Host* other : topo.all_hosts()) {
    if (other == &self) continue;
    const net::Prefix group =
        prefix_length == 32 ? net::Prefix::host(other->address())
                            : net::Prefix(other->address(), prefix_length);
    if (group.contains(self.address())) continue;
    groups[group].push_back(other->address());
  }
  return groups;
}

std::size_t install_static(cdn::Experiment& experiment,
                           const PolicySpec& spec) {
  std::size_t installed = 0;
  for (host::Host* host : experiment.topology().all_hosts()) {
    core::HostRouteProgrammer programmer(*host);
    for (const auto& [group, members] :
         destination_groups(experiment.topology(), *host,
                            spec.prefix_length)) {
      programmer.set_initial_windows(group, spec.static_iw, spec.static_iw,
                                     spec.cc);
      ++installed;
    }
  }
  return installed;
}

// The oracle reads what no deployable agent can: the true per-path BDP
// from the topology. Safe burst into an idle path ≈ BDP plus the slack
// half of the bottleneck queue; anything above that is queue overflow on
// the first flight.
std::size_t install_oracle(cdn::Experiment& experiment,
                           const PolicySpec& spec) {
  cdn::Topology& topo = experiment.topology();
  const auto& tconfig = topo.config();
  const double mss = static_cast<double>(tconfig.host_tcp.mss);
  std::size_t installed = 0;
  for (host::Host* host : topo.all_hosts()) {
    const int src_pop = topo.pop_of(host->address());
    core::HostRouteProgrammer programmer(*host);
    for (const auto& [group, members] :
         destination_groups(topo, *host, spec.prefix_length)) {
      // All members of a group share a destination PoP in the 10.i.0.0/16
      // layout; use the first member's PoP for the path.
      const int dst_pop = topo.pop_of(members.front());
      if (dst_pop < 0 || dst_pop == src_pop) continue;
      const double rtt_s =
          topo.base_rtt(static_cast<std::size_t>(src_pop),
                        static_cast<std::size_t>(dst_pop))
              .to_seconds();
      const double bdp_segments = tconfig.wan_rate_bps * rtt_s / 8.0 / mss;
      const double safe =
          bdp_segments +
          static_cast<double>(tconfig.wan_queue_packets) / 2.0;
      const auto window = static_cast<std::uint32_t>(
          std::clamp(std::lround(safe), 10l, 256l));
      programmer.set_initial_windows(group, window, window, spec.cc);
      ++installed;
    }
  }
  return installed;
}

}  // namespace

void apply_policy(cdn::ExperimentConfig& config, const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::kDefault:
      config.riptide_enabled = false;
      // No routes to carry the regime: rewrite the host-wide TcpConfig so
      // "default,cc=bbr" means "the whole fleet runs BBR-lite, no agent".
      tcp::apply_route_cc(spec.cc, config.topology.host_tcp);
      break;
    case PolicyKind::kAdaptive:
      config.riptide_enabled = true;
      if (spec.prefix_length == 32) {
        config.riptide.granularity = core::Granularity::kHost;
      } else {
        config.riptide.granularity = core::Granularity::kPrefix;
        config.riptide.prefix_length = spec.prefix_length;
      }
      if (spec.governed) arm_recommended_governor(config.riptide);
      // The agent stamps the regime onto every route it learns; only
      // destinations Riptide actually programs switch controller.
      config.riptide.route_cc = spec.cc;
      break;
    case PolicyKind::kStaticIw:
    case PolicyKind::kOracle:
      config.riptide_enabled = false;
      config.extension_factories.push_back(
          [spec](cdn::Experiment& experiment) -> std::shared_ptr<void> {
            auto result = std::make_shared<PolicyInstallation>();
            result->spec = spec;
            result->routes_installed =
                spec.kind == PolicyKind::kStaticIw
                    ? install_static(experiment, spec)
                    : install_oracle(experiment, spec);
            return result;
          });
      break;
  }
}

}  // namespace riptide::policy

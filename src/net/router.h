#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/packet.h"

namespace riptide::net {

// Longest-prefix-match forwarder. Routes map prefixes to egress sinks
// (normally Links). No TTL handling: simulated topologies are loop-free by
// construction, and a routing bug surfaces as a drop counter instead.
class Router : public PacketSink {
 public:
  explicit Router(std::string name) : name_(std::move(name)) {}

  // Adds or replaces the route for exactly `prefix`.
  void add_route(const Prefix& prefix, PacketSink& next_hop);
  bool remove_route(const Prefix& prefix);

  // Longest-prefix match; nullptr when no route covers `dst`.
  PacketSink* lookup(Ipv4Address dst) const;

  void receive(const Packet& packet) override;

  const std::string& name() const { return name_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t no_route_drops() const { return no_route_drops_; }
  std::size_t route_count() const { return routes_.size(); }

 private:
  struct Route {
    Prefix prefix;
    PacketSink* next_hop;
  };

  std::string name_;
  // Sorted by descending prefix length so the first containing entry wins.
  std::vector<Route> routes_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t no_route_drops_ = 0;
};

}  // namespace riptide::net

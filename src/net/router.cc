#include "net/router.h"

#include <algorithm>

namespace riptide::net {

void Router::add_route(const Prefix& prefix, PacketSink& next_hop) {
  for (auto& route : routes_) {
    if (route.prefix == prefix) {
      route.next_hop = &next_hop;
      return;
    }
  }
  routes_.push_back(Route{prefix, &next_hop});
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const Route& a, const Route& b) {
                     return a.prefix.length() > b.prefix.length();
                   });
}

bool Router::remove_route(const Prefix& prefix) {
  const auto it = std::find_if(
      routes_.begin(), routes_.end(),
      [&](const Route& r) { return r.prefix == prefix; });
  if (it == routes_.end()) return false;
  routes_.erase(it);
  return true;
}

PacketSink* Router::lookup(Ipv4Address dst) const {
  for (const auto& route : routes_) {
    if (route.prefix.contains(dst)) return route.next_hop;
  }
  return nullptr;
}

void Router::receive(const Packet& packet) {
  PacketSink* next = lookup(packet.dst);
  if (next == nullptr) {
    ++no_route_drops_;
    return;
  }
  ++forwarded_;
  next->receive(packet);
}

}  // namespace riptide::net

#include "net/link.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "net/wire.h"

#include "sim/random.h"
#include "stats/perf.h"
#include "trace/sink.h"

namespace riptide::net {

Link::Link(sim::Simulator& sim, Config config, PacketSink& sink, sim::Rng* rng)
    : sim_(sim), config_(std::move(config)), sink_(sink), rng_(rng) {
  if (config_.rate_bps <= 0.0) {
    throw std::invalid_argument("Link: rate must be positive");
  }
  if (config_.loss_probability > 0.0 && rng_ == nullptr) {
    throw std::invalid_argument("Link: loss requires an Rng");
  }
}

sim::Time Link::transmission_time(std::uint32_t bytes) const {
  double rate = config_.rate_bps;
  if (background_bps_ > 0.0) {
    // Residual capacity under the fluid cross-traffic aggregate, floored
    // so a saturating aggregate slows packet traffic ~100x rather than
    // producing infinite serialization times.
    rate = std::max(rate - background_bps_, rate * 0.01);
  }
  return sim::Time::from_seconds(static_cast<double>(bytes) * 8.0 / rate);
}

void Link::set_background_load(double offered_bps,
                               std::size_t queue_packets) {
  if (offered_bps < 0.0) {
    throw std::invalid_argument("Link::set_background_load: negative rate");
  }
  background_bps_ = offered_bps;
  background_queue_ = queue_packets;
}

void Link::set_rate_bps(double rate_bps) {
  if (rate_bps <= 0.0) {
    throw std::invalid_argument("Link::set_rate_bps: rate must be positive");
  }
  config_.rate_bps = rate_bps;
}

void Link::set_loss_probability(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Link::set_loss_probability: p outside [0,1]");
  }
  if (p > 0.0 && rng_ == nullptr) {
    throw std::invalid_argument("Link::set_loss_probability: loss requires Rng");
  }
  config_.loss_probability = p;
}

void Link::set_propagation_delay(sim::Time delay) {
  config_.propagation_delay = delay;
}

void Link::set_up(bool up) {
  if (up != up_) {
    if (auto* sink = trace::active()) {
      trace::TraceEvent ev;
      ev.at_ns = sim_.now().ns();
      ev.kind = trace::EventKind::kLink;
      ev.link = {};
      std::strncpy(ev.link.name, config_.name.c_str(),
                   sizeof(ev.link.name) - 1);
      ev.link.up = up ? 1 : 0;
      sink->emit(ev);
    }
  }
  up_ = up;
}

void Link::prune_completed() {
  // A slot is freed the instant serialization completes — a completion
  // stamped exactly `now` no longer occupies the buffer, matching the
  // previous event-based scheme where the free ran before any same-time
  // admission attempt.
  const sim::Time now = sim_.now();
  while (!completions_.empty() && completions_.front() <= now) {
    completions_.pop_front();
  }
}

std::size_t Link::queue_depth() const {
  // Count without mutating: completions_ is sorted, so the live entries
  // are the strict upper range above now.
  const sim::Time now = sim_.now();
  return static_cast<std::size_t>(
      std::end(completions_) -
      std::upper_bound(std::begin(completions_), std::end(completions_), now));
}

void Link::receive(const Packet& packet) {
  ++stats_.packets_sent;

  if (!up_) {
    ++stats_.drops_link_down;
    return;
  }

  if (rng_ != nullptr && rng_->bernoulli(config_.loss_probability)) {
    ++stats_.drops_random_loss;
    return;
  }

  prune_completed();
  std::size_t capacity = config_.queue_packets;
  if (background_queue_ > 0) {
    // Fluid cross-traffic occupies part of the buffer; packet traffic
    // contends for the residue (never less than one slot, so the link
    // stays usable even under a standing overload).
    capacity = background_queue_ < capacity ? capacity - background_queue_
                                            : std::size_t{1};
  }
  if (completions_.size() >= capacity) {
    ++stats_.drops_queue_full;
    return;
  }

  const sim::Time start = std::max(sim_.now(), busy_until_);
  const sim::Time done = start + transmission_time(packet.size_bytes);
  busy_until_ = done;
  // The buffer slot is freed once serialization completes; propagation is
  // flight time on the wire and must not consume queue capacity (a long
  // path would otherwise throttle the link far below its rate).
  completions_.push_back(done);
  auto& perf = perf::local();
  ++perf.packets_queued;
  perf.bytes_queued += packet.size_bytes;

  if (remote_ != nullptr) {
    // Shard boundary: delivery happens on another cell, injected at the
    // next window barrier. Delivery is certain once the wire copy is
    // queued, so account it here where the stats live.
    ++stats_.packets_delivered;
    stats_.bytes_delivered += packet.size_bytes;
    remote_->push(done + config_.propagation_delay, packet);
    return;
  }

  // Delivery events are the bulk of a packet-level run's event
  // population, and `done + propagation_delay` is at most milliseconds
  // ahead — inside the scheduler's wide low levels, so these inserts
  // land at their final wheel position (at most one cascade; see the
  // level sizing rationale in sim/simulator.h).
  sim_.schedule_at(done + config_.propagation_delay, [this, packet] {
    ++stats_.packets_delivered;
    stats_.bytes_delivered += packet.size_bytes;
    sink_.receive(packet);
  });
}

}  // namespace riptide::net

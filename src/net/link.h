#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "net/packet.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace riptide::sim {
class Rng;
}

namespace riptide::net {

class WireChannel;

// Counters a link exposes for diagnostics and experiments. Drops are
// attributed to exactly one reason so fault runs are debuggable from the
// counters alone.
struct LinkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t drops_queue_full = 0;
  std::uint64_t drops_random_loss = 0;
  std::uint64_t drops_link_down = 0;
  std::uint64_t bytes_delivered = 0;
};

// Unidirectional point-to-point link: rate, propagation delay, drop-tail
// queue bounded in packets, optional i.i.d. random loss (standing in for
// cross-traffic on shared WAN segments). Rate, delay, loss, and the
// administrative up/down state are runtime-mutable so fault injection can
// degrade or flap a path mid-run; changes apply to packets admitted after
// the change (in-flight packets keep the parameters they were sent under).
//
// Lifetime: a Link schedules delivery events that reference it, so it must
// outlive the simulation run (or at least every packet admitted to it).
// Topologies own their links for the full run; to "replace" a link (e.g.
// degrade a path mid-run), point the routes at a new Link and keep the old
// one alive until its queue drains.
//
// The transmission pipeline is modeled with a single "transmitter busy
// until" timestamp: a packet admitted at time t starts serializing at
// max(t, busy_until) provided the queue has room, and is delivered to the
// sink one propagation delay after serialization finishes.
class Link : public PacketSink {
 public:
  struct Config {
    double rate_bps = 1e9;            // serialization rate
    sim::Time propagation_delay = sim::Time::milliseconds(1);
    std::size_t queue_packets = 256;  // drop-tail capacity beyond in-service
    double loss_probability = 0.0;    // i.i.d. loss applied before queueing
    std::string name = "link";
  };

  // `rng` may be null when loss_probability == 0.
  Link(sim::Simulator& sim_, Config config, PacketSink& sink,
       sim::Rng* rng = nullptr);

  void receive(const Packet& packet) override;

  // Serialization delay for a packet of `bytes` at this link's rate.
  sim::Time transmission_time(std::uint32_t bytes) const;

  const LinkStats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  // Packets admitted but not yet fully serialized as of `now`. Occupancy
  // is tracked as a ring of serialization-completion times pruned lazily,
  // not with a per-packet "free the slot" event: the event-queue traffic
  // this saves is one schedule + one dispatch per packet.
  std::size_t queue_depth() const;

  // -- Runtime mutation (fault injection) --
  // A downed link drops every packet offered to it (counted separately);
  // packets already serializing or in flight still deliver, as on a real
  // interface whose far end goes away after transmission. Actual flips
  // emit a `link` trace event (defined out of line for that reason).
  void set_up(bool up);
  bool is_up() const { return up_; }

  // Precondition: rate > 0.
  void set_rate_bps(double rate_bps);
  // Precondition: p in [0, 1]; p > 0 requires the link to have an Rng.
  void set_loss_probability(double p);
  void set_propagation_delay(sim::Time delay);

  // -- Shard-boundary delivery (sim/shard.h, net/wire.h) --
  // When set, this link's transmitter end lives on one simulation cell and
  // its receiver on another: admission, loss, queueing and serialization
  // all still happen here (on the source cell, with the source cell's
  // clock and Rng), but instead of scheduling a local delivery event the
  // link pushes a by-value wire copy into the channel stamped with the
  // exact delivery timestamp. The destination cell injects it at the next
  // window barrier — timestamps are exact, only the event's queue sequence
  // number is assigned later, which the conservative window protocol makes
  // deterministic. `sink` passed at construction is ignored while a remote
  // channel is set. Delivery stats are accounted at admission (delivery is
  // certain once the wire copy is queued).
  void set_remote_delivery(WireChannel* channel) { remote_ = channel; }
  bool is_shard_boundary() const { return remote_ != nullptr; }

  // -- Flow-level background load (src/flow hybrid fidelity) --
  // A fluid cross-traffic aggregate occupies `offered_bps` of this link's
  // capacity and `queue_packets` of its buffer without per-packet events.
  // Packet-level traffic admitted afterwards serializes at the residual
  // rate (floored at 1% of capacity so a saturating aggregate stalls, not
  // divides by zero) and sees the residual buffer (floored at one slot).
  // Both default to zero, in which case every code path is bit-identical
  // to a build without the feature.
  void set_background_load(double offered_bps, std::size_t queue_packets);
  double background_bps() const { return background_bps_; }
  std::size_t background_queue_packets() const { return background_queue_; }

 private:
  // Drops completion stamps that are in the past; the remainder is the
  // live queue occupancy.
  void prune_completed();

  sim::Simulator& sim_;
  Config config_;
  PacketSink& sink_;
  sim::Rng* rng_;
  WireChannel* remote_ = nullptr;
  double background_bps_ = 0.0;
  std::size_t background_queue_ = 0;
  sim::Time busy_until_;
  // Serialization-completion times of admitted packets, non-decreasing
  // (FIFO service discipline), pruned against sim_.now() on each receive.
  std::deque<sim::Time> completions_;
  bool up_ = true;
  LinkStats stats_;
};

}  // namespace riptide::net

#include "net/wire.h"

#include <stdexcept>
#include <utility>

#include "stats/perf.h"

namespace riptide::net {

void WireChannel::push(sim::Time deliver_at, const Packet& packet) {
  Entry entry;
  entry.deliver_at = deliver_at;
  entry.packet.src = packet.src;
  entry.packet.dst = packet.dst;
  entry.packet.size_bytes = packet.size_bytes;
  if (packet.payload) {
    Payload* clone = packet.payload->wire_clone();
    if (clone == nullptr) {
      throw std::logic_error(
          "WireChannel: payload kind cannot cross a shard boundary");
    }
    entry.packet.payload = PayloadRef(clone);
  }
  entries_.push_back(std::move(entry));
  ++total_pushed_;
  ++perf::local().shard_wire_packets;
}

void WireChannel::flush_into(sim::Simulator& sim) {
  if (entries_.empty()) return;
  PacketSink* sink = sink_;
  for (Entry& entry : entries_) {
    sim.schedule_at(entry.deliver_at,
                    [sink, packet = std::move(entry.packet)] {
                      sink->receive(packet);
                    });
  }
  entries_.clear();
}

WireFabric::WireFabric(std::size_t cells)
    : cells_(cells), channels_(cells * cells) {}

WireChannel& WireFabric::channel(std::size_t src, std::size_t dst) {
  return channels_.at(src * cells_ + dst);
}

const WireChannel& WireFabric::channel(std::size_t src,
                                       std::size_t dst) const {
  return channels_.at(src * cells_ + dst);
}

void WireFabric::flush_to(std::size_t dst, sim::Simulator& sim) {
  for (std::size_t src = 0; src < cells_; ++src) {
    if (src == dst) continue;
    channel(src, dst).flush_into(sim);
  }
}

std::uint64_t WireFabric::total_pushed() const {
  std::uint64_t total = 0;
  for (const WireChannel& ch : channels_) total += ch.total_pushed();
  return total;
}

}  // namespace riptide::net

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace riptide::net {

// Shard-boundary packet transport for the sharded simulator (sim/shard.h).
//
// A WireChannel is the mailbox for one ordered (source cell, destination
// cell) pair. The source cell's boundary Link pushes during its window
// phase; the destination cell drains at the next window barrier. The two
// phases never overlap (the barrier separates them), so the channel needs
// no locking — it is an SPSC queue whose handoff is the barrier itself.
//
// Ownership rule (the determinism/ASan boundary): pooled payloads are
// confined to the thread that allocated them, so push() stores a
// wire_clone() — a heap-owned by-value copy with no pool affiliation — and
// drops the original reference on the sending side. The destination side
// is then free to retire the clone on whichever thread runs its cell.
class WireChannel {
 public:
  struct Entry {
    sim::Time deliver_at;  // absolute delivery timestamp, computed at
                           // admission on the source cell
    Packet packet;         // payload is a wire_clone, never pool-owned
  };

  // Destination of every packet in this channel (the far PoP's router).
  // Set once at topology build time.
  void set_sink(PacketSink* sink) { sink_ = sink; }
  PacketSink* sink() const { return sink_; }

  // Source side, window phase only. Throws if the payload cannot cross a
  // shard boundary (no wire_clone). Null payloads travel as-is.
  void push(sim::Time deliver_at, const Packet& packet);

  // Destination side, barrier phase only: schedules one delivery event per
  // entry onto `sim` (entries keep source-FIFO order; the simulator's
  // timestamp heap re-orders by deliver_at) and empties the channel.
  // Precondition: every deliver_at >= sim.now(), which the conservative
  // window protocol guarantees (window length <= min propagation delay).
  void flush_into(sim::Simulator& sim);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::uint64_t total_pushed() const { return total_pushed_; }

 private:
  PacketSink* sink_ = nullptr;
  std::vector<Entry> entries_;
  std::uint64_t total_pushed_ = 0;
};

// All cell-pair channels of one sharded topology: a dense cells x cells
// matrix (diagonal unused). Flush order is fixed — ascending source cell —
// so the sequence numbers injected events draw from the destination cell's
// queue are identical no matter how cells are mapped onto worker threads.
// That fixed order is what makes the fingerprint shard-count-invariant.
class WireFabric {
 public:
  explicit WireFabric(std::size_t cells);

  std::size_t cells() const { return cells_; }
  WireChannel& channel(std::size_t src, std::size_t dst);
  const WireChannel& channel(std::size_t src, std::size_t dst) const;

  // Barrier phase for destination cell `dst`: drains every channel
  // (*, dst) in ascending source order onto `sim`. Called only by the
  // worker that owns `dst`.
  void flush_to(std::size_t dst, sim::Simulator& sim);

  // Packets ever pushed across any channel (diagnostic; also mirrored in
  // perf::Counters::shard_wire_packets).
  std::uint64_t total_pushed() const;

 private:
  std::size_t cells_;
  std::vector<WireChannel> channels_;  // [src * cells_ + dst]
};

}  // namespace riptide::net

#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "net/ipv4.h"

namespace riptide::net {

// Base class for transport payloads carried inside a Packet. The TCP module
// derives its Segment from this, keeping net below tcp in the layering.
//
// Payloads are intrusively reference-counted: the count lives inside the
// object (no separate control block, no per-payload heap allocation the way
// shared_ptr's make_shared-less path has) and is deliberately NOT atomic —
// a simulation, and every payload it creates, is confined to one thread
// (runner::ParallelRunner gives each experiment its own worker), so atomic
// traffic on every packet copy would be pure cost. When the count drops to
// zero the payload `retire()`s itself: deletion by default, but pooled
// subclasses (tcp::Segment) override it to return to a free list instead.
struct Payload {
  // Open-coded type tag for hot-path downcasts: receive paths run once
  // per delivered packet, and dynamic_cast's RTTI walk is measurable
  // there. Derived classes stamp their tag at construction (tcp::Segment
  // uses kSegmentKind) and demux sites check it before static_cast-ing.
  static constexpr std::uint8_t kOpaqueKind = 0;
  static constexpr std::uint8_t kSegmentKind = 1;

  Payload() = default;
  explicit Payload(std::uint8_t kind) : kind_(kind) {}
  // The count tracks handles to *this object*; copying the payload's data
  // must not copy the count (the tag does travel).
  Payload(const Payload& other) : kind_(other.kind_) {}
  Payload& operator=(const Payload&) { return *this; }
  virtual ~Payload() = default;

  std::uint8_t kind() const { return kind_; }

  // By-value copy for shard-boundary transport (net/wire.h): a fresh
  // heap-owned object carrying the same protocol contents but *no* pool
  // affiliation and a zero refcount — pooled payloads are thread-confined,
  // so the original handle is dropped on the sending shard and only the
  // clone crosses the mailbox. Returns nullptr for payload types that
  // cannot cross a shard boundary (the fabric treats that as a hard
  // configuration error, not a silent drop).
  virtual Payload* wire_clone() const { return nullptr; }

  void ref_add() const { ++refs_; }
  void ref_release() const {
    if (--refs_ == 0) retire();
  }
  std::uint32_t ref_count() const { return refs_; }

 protected:
  // Called when the last Ref drops. `this` may be destroyed (default) or
  // recycled; either way the object must not be touched afterwards.
  virtual void retire() const { delete this; }

 private:
  mutable std::uint32_t refs_ = 0;
  std::uint8_t kind_ = kOpaqueKind;
};

// Intrusive smart handle to a Payload subclass. Copy = refcount bump (no
// allocation, no atomics); destruction of the last handle retires the
// object. `T` may be const-qualified.
template <typename T>
class Ref {
 public:
  Ref() = default;

  // Adopts `p` (which may have live references already) and takes a count.
  explicit Ref(T* p) noexcept : p_(p) {
    if (p_ != nullptr) p_->ref_add();
  }

  Ref(const Ref& other) noexcept : p_(other.p_) {
    if (p_ != nullptr) p_->ref_add();
  }
  Ref(Ref&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }

  // Converting copy/move (Ref<Segment> -> Ref<const Payload>).
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  Ref(const Ref<U>& other) noexcept : p_(other.get()) {
    if (p_ != nullptr) p_->ref_add();
  }
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  Ref(Ref<U>&& other) noexcept : p_(other.release()) {}

  Ref& operator=(const Ref& other) noexcept {
    Ref(other).swap(*this);
    return *this;
  }
  Ref& operator=(Ref&& other) noexcept {
    Ref(std::move(other)).swap(*this);
    return *this;
  }

  ~Ref() {
    if (p_ != nullptr) p_->ref_release();
  }

  void reset() {
    if (p_ != nullptr) p_->ref_release();
    p_ = nullptr;
  }

  // Detaches without releasing; the caller inherits the reference.
  T* release() noexcept {
    T* p = p_;
    p_ = nullptr;
    return p;
  }

  void swap(Ref& other) noexcept { std::swap(p_, other.p_); }

  T* get() const { return p_; }
  T& operator*() const { return *p_; }
  T* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  T* p_ = nullptr;
};

using PayloadRef = Ref<const Payload>;

// A simulated IP datagram. Payload contents are shared (immutable once sent)
// so fan-out through queues never copies segment state.
struct Packet {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint32_t size_bytes = 0;  // full on-wire size incl. headers
  PayloadRef payload;
};

// Anything that can consume packets: routers, host NIC receive paths, sinks.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(const Packet& packet) = 0;
};

}  // namespace riptide::net

#pragma once

#include <cstdint>
#include <memory>

#include "net/ipv4.h"

namespace riptide::net {

// Base class for transport payloads carried inside a Packet. The TCP module
// derives its Segment from this, keeping net below tcp in the layering.
struct Payload {
  virtual ~Payload() = default;
};

// A simulated IP datagram. Payload contents are shared (immutable once sent)
// so fan-out through queues never copies segment state.
struct Packet {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint32_t size_bytes = 0;  // full on-wire size incl. headers
  std::shared_ptr<const Payload> payload;
};

// Anything that can consume packets: routers, host NIC receive paths, sinks.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(const Packet& packet) = 0;
};

}  // namespace riptide::net

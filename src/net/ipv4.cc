#include "net/ipv4.h"

#include <cstdio>
#include <stdexcept>

namespace riptide::net {

Ipv4Address Ipv4Address::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char extra = 0;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("Ipv4Address::parse: bad address '" + text + "'");
  }
  return Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Prefix::Prefix(Ipv4Address address, int length) : length_(length) {
  if (length < 0 || length > 32) {
    throw std::invalid_argument("Prefix: length outside [0, 32]");
  }
  address_ = Ipv4Address(address.value() & mask());
}

Prefix Prefix::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("Prefix::parse: missing '/' in '" + text + "'");
  }
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  const int len = std::stoi(text.substr(slash + 1));
  return Prefix(addr, len);
}

std::uint32_t Prefix::mask() const {
  if (length_ == 0) return 0;
  return ~std::uint32_t{0} << (32 - length_);
}

bool Prefix::contains(Ipv4Address a) const {
  return (a.value() & mask()) == address_.value();
}

bool Prefix::contains(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.address_);
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace riptide::net

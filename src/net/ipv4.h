#pragma once

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace riptide::net {

// IPv4 address as a strong type over the host-order 32-bit value.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  // Parses dotted-quad notation ("10.0.0.1"); throws on malformed input.
  static Ipv4Address parse(const std::string& text);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;
  friend std::ostream& operator<<(std::ostream& os, Ipv4Address a) {
    return os << a.to_string();
  }

 private:
  std::uint32_t value_ = 0;
};

// CIDR prefix: address + mask length. The stored address is canonicalized
// (host bits zeroed) so equal prefixes compare equal.
class Prefix {
 public:
  constexpr Prefix() = default;

  // Precondition: 0 <= length <= 32.
  Prefix(Ipv4Address address, int length);

  // Parses "10.1.0.0/16"; throws on malformed input.
  static Prefix parse(const std::string& text);

  // Convenience for exact-host routes (the /32 granularity of §III-B).
  static Prefix host(Ipv4Address address) { return Prefix(address, 32); }

  Ipv4Address address() const { return address_; }
  int length() const { return length_; }
  std::uint32_t mask() const;

  bool contains(Ipv4Address a) const;
  bool contains(const Prefix& other) const;

  std::string to_string() const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Prefix& p) {
    return os << p.to_string();
  }

 private:
  Ipv4Address address_;
  int length_ = 0;
};

// Explicit total order for containers keyed by Prefix: numeric address
// first, then mask length. Spelled out (rather than relying on the
// defaulted comparison's member order) because persisted snapshots and
// route-programming sequences iterate maps in this order — it is part of
// the on-disk byte contract, not an implementation detail.
struct PrefixOrder {
  bool operator()(const Prefix& a, const Prefix& b) const {
    if (a.address().value() != b.address().value()) {
      return a.address().value() < b.address().value();
    }
    return a.length() < b.length();
  }
};

}  // namespace riptide::net

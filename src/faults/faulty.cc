#include "faults/faulty.h"

#include <string>
#include <utility>

namespace riptide::faults {

void FaultyRouteProgrammer::maybe_fail(const char* op) {
  ++stats_.ops_attempted;
  bool inject = false;
  if (forced_failures_ > 0) {
    --forced_failures_;
    inject = true;
  } else if (failure_probability_ > 0.0 &&
             rng_.bernoulli(failure_probability_)) {
    inject = true;
  }
  if (inject) {
    ++stats_.failures_injected;
    throw ActuatorError(std::string("injected actuator failure: ") + op);
  }
}

void FaultyRouteProgrammer::set_initial_windows(const net::Prefix& dst,
                                               std::uint32_t initcwnd_segments,
                                               std::uint32_t initrwnd_segments,
                                               tcp::RouteCc cc) {
  maybe_fail("set_initial_windows");
  if (delay_ > sim::Time::zero()) {
    ++stats_.ops_delayed;
    // The call "succeeds" (the exec returned 0) but the table write lands
    // late; the raw pointer is safe because the agent owns this decorator
    // and the simulator outlives the agents.
    sim_.schedule(delay_,
                  [this, dst, initcwnd_segments, initrwnd_segments, cc] {
                    inner_->set_initial_windows(dst, initcwnd_segments,
                                                initrwnd_segments, cc);
                  });
    return;
  }
  inner_->set_initial_windows(dst, initcwnd_segments, initrwnd_segments, cc);
}

void FaultyRouteProgrammer::clear(const net::Prefix& dst) {
  maybe_fail("clear");
  if (delay_ > sim::Time::zero()) {
    ++stats_.ops_delayed;
    sim_.schedule(delay_, [this, dst] { inner_->clear(dst); });
    return;
  }
  inner_->clear(dst);
}

std::vector<host::SocketInfo> FaultySocketStatsSource::poll() {
  ++stats_.polls_attempted;
  bool inject = false;
  if (forced_failures_ > 0) {
    --forced_failures_;
    inject = true;
  } else if (failure_probability_ > 0.0 &&
             rng_.bernoulli(failure_probability_)) {
    inject = true;
  }
  if (inject) {
    ++stats_.failures_injected;
    throw core::PollError("injected poll failure");
  }
  auto snapshot = inner_->poll();
  if (partial_fraction_ > 0.0) {
    std::vector<host::SocketInfo> kept;
    kept.reserve(snapshot.size());
    for (auto& info : snapshot) {
      if (rng_.bernoulli(partial_fraction_)) {
        ++stats_.entries_dropped;
      } else {
        kept.push_back(std::move(info));
      }
    }
    snapshot = std::move(kept);
  }
  return snapshot;
}

}  // namespace riptide::faults

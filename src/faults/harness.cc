#include "faults/harness.h"

#include <utility>

namespace riptide::faults {

namespace {

// Distinct fork salts for the two decorator streams on one host.
constexpr std::uint64_t kActuatorSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kPollSalt = 0xc2b2ae3d27d4eb4full;

sim::Rng decorator_rng(const cdn::Experiment& experiment,
                       const host::Host& host, std::uint64_t salt) {
  // Seeded from (config seed, host address, stream salt) only — never from
  // a live Rng — so sweep workers materializing copies of one config get
  // identical, uncorrelated streams regardless of build order.
  sim::Rng base(experiment.config().seed);
  return base.fork(salt ^ static_cast<std::uint64_t>(host.address().value()));
}

}  // namespace

void FaultHarness::install(cdn::ExperimentConfig& config, FaultPlan plan) {
  config.route_programmer_factory = [](cdn::Experiment& e, host::Host& h) {
    return std::make_unique<FaultyRouteProgrammer>(
        e.simulator(), std::make_unique<core::HostRouteProgrammer>(h),
        decorator_rng(e, h, kActuatorSalt));
  };
  config.socket_stats_factory = [](cdn::Experiment& e, host::Host& h) {
    return std::make_unique<FaultySocketStatsSource>(
        std::make_unique<core::HostSocketStatsSource>(h),
        decorator_rng(e, h, kPollSalt));
  };
  config.extension_factory = [plan = std::move(plan)](cdn::Experiment& e) {
    return std::shared_ptr<void>(new FaultHarness(e, plan));
  };
}

FaultHarness* FaultHarness::from(const cdn::Experiment& experiment) {
  return static_cast<FaultHarness*>(experiment.extension().get());
}

FaultHarness::FaultHarness(cdn::Experiment& experiment, FaultPlan plan) {
  injector_ = std::make_unique<FaultInjector>(experiment.simulator(),
                                              experiment.topology(),
                                              std::move(plan));
  const core::RiptideConfig& riptide = experiment.config().riptide;
  const bool persist_state = riptide.checkpoint_interval > sim::Time::zero();
  for (const auto& agent : experiment.agents()) {
    FaultInjector::AgentHooks hooks;
    hooks.agent = agent.get();
    hooks.actuator = dynamic_cast<FaultyRouteProgrammer*>(&agent->programmer());
    hooks.stats_source =
        dynamic_cast<FaultySocketStatsSource*>(&agent->stats_source());
    if (persist_state) {
      // The harness plays the role of durable storage: stores live here,
      // outside the agent, so they survive agent crash()/start() cycles
      // exactly as files on disk survive a process.
      stores_.push_back(std::make_unique<persist::MemorySnapshotStore>(
          riptide.checkpoint_keep));
      checkpointers_.push_back(std::make_unique<persist::AgentCheckpointer>(
          experiment.simulator(), *agent, *stores_.back(),
          persist::CheckpointerConfig{riptide.checkpoint_interval}));
      checkpointers_.back()->start();
      hooks.checkpointer = checkpointers_.back().get();
    }
    injector_->register_agent(hooks);
  }
  injector_->arm();
}

FaultyActuatorStats FaultHarness::actuator_totals() const {
  FaultyActuatorStats total;
  for (const auto& hooks : injector_->hooks()) {
    if (hooks.actuator == nullptr) continue;
    const FaultyActuatorStats& s = hooks.actuator->stats();
    total.ops_attempted += s.ops_attempted;
    total.failures_injected += s.failures_injected;
    total.ops_delayed += s.ops_delayed;
  }
  return total;
}

persist::CheckpointerStats FaultHarness::checkpointer_totals() const {
  persist::CheckpointerStats total;
  for (const auto& checkpointer : checkpointers_) {
    const persist::CheckpointerStats& s = checkpointer->stats();
    total.checkpoints_written += s.checkpoints_written;
    total.bytes_written += s.bytes_written;
    total.restores += s.restores;
    total.snapshots_rejected += s.snapshots_rejected;
    total.records_recovered += s.records_recovered;
    total.records_discarded += s.records_discarded;
    total.truncated_tails += s.truncated_tails;
  }
  return total;
}

FaultyPollStats FaultHarness::poll_totals() const {
  FaultyPollStats total;
  for (const auto& hooks : injector_->hooks()) {
    if (hooks.stats_source == nullptr) continue;
    const FaultyPollStats& s = hooks.stats_source->stats();
    total.polls_attempted += s.polls_attempted;
    total.failures_injected += s.failures_injected;
    total.entries_dropped += s.entries_dropped;
  }
  return total;
}

}  // namespace riptide::faults

#pragma once

#include <cstdint>
#include <vector>

#include "cdn/topology.h"
#include "core/agent.h"
#include "faults/fault_plan.h"
#include "faults/faulty.h"
#include "persist/checkpointer.h"
#include "sim/simulator.h"

namespace riptide::faults {

struct FaultInjectorStats {
  std::uint64_t events_fired = 0;
  std::uint64_t link_transitions = 0;  // down/up applications (flap legs too)
  std::uint64_t bursts_applied = 0;    // loss / rate / delay degradations
  std::uint64_t bursts_restored = 0;
  std::uint64_t actuator_windows = 0;  // actuator-failure windows opened
  std::uint64_t poll_windows = 0;      // poll-failure / partial windows
  std::uint64_t crashes_injected = 0;
  std::uint64_t restarts_scheduled = 0;
  std::uint64_t routes_flushed = 0;       // reboot crashes: routes lost too
  std::uint64_t snapshots_corrupted = 0;  // stored snapshots bit-flipped
  std::uint64_t routes_dropped = 0;       // route-drift deletions
  std::uint64_t routes_mangled = 0;       // route-drift in-place rewrites
};

// Turns a declarative FaultPlan into scheduled simulator events against a
// concrete topology and set of agents. Everything is driven by sim time,
// so a given (plan, topology, seed) triple replays identically.
//
// Link faults hit both directions of the named PoP pair. Bursts capture
// the parameter they overwrite and restore it when the window closes, so
// overlapping windows compose last-writer-wins and still unwind. Agent
// faults fan out to every registered agent (crash can target one host
// index instead).
class FaultInjector {
 public:
  // The per-agent injection surface. `actuator` / `stats_source` may be
  // null when that agent is not wired through the fault decorators (its
  // actuator/poll faults are then skipped).
  struct AgentHooks {
    core::RiptideAgent* agent = nullptr;
    FaultyRouteProgrammer* actuator = nullptr;
    FaultySocketStatsSource* stats_source = nullptr;
    // Non-null when the agent persists state; warm restarts then restore
    // from the snapshot store (exercising the real decode path) instead
    // of from a perfect in-memory copy of the table.
    persist::AgentCheckpointer* checkpointer = nullptr;
  };

  FaultInjector(sim::Simulator& sim, cdn::Topology& topology, FaultPlan plan)
      : sim_(sim), topology_(topology), plan_(std::move(plan)) {}

  // Register before arm(); crash events index into registration order.
  void register_agent(AgentHooks hooks) { hooks_.push_back(hooks); }

  // Validates the plan against the topology/agents and schedules every
  // event at its absolute sim time. Call exactly once, before running.
  void arm();

  const FaultInjectorStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  const std::vector<AgentHooks>& hooks() const { return hooks_; }

 private:
  void validate(const FaultEvent& ev) const;
  void apply(const FaultEvent& ev);
  void set_pair_up(std::size_t a, std::size_t b, bool up);
  void apply_loss_burst(const FaultEvent& ev);
  void apply_rate_change(const FaultEvent& ev);
  void apply_delay_change(const FaultEvent& ev);
  void apply_actuator_window(const FaultEvent& ev);
  void apply_poll_window(const FaultEvent& ev);
  void apply_crash(const FaultEvent& ev);
  void crash_one(AgentHooks hooks, sim::Time downtime, bool warm,
                 bool flush_routes);
  void apply_snapshot_corrupt(const FaultEvent& ev);
  void apply_route_drift(const FaultEvent& ev);
  // Dispatches an agent-targeted event to one hook or all of them.
  template <typename Fn>
  void for_targets(const FaultEvent& ev, Fn&& fn) {
    if (ev.host_index >= 0) {
      fn(hooks_[static_cast<std::size_t>(ev.host_index)]);
      return;
    }
    for (const AgentHooks& hooks : hooks_) fn(hooks);
  }

  sim::Simulator& sim_;
  cdn::Topology& topology_;
  FaultPlan plan_;
  std::vector<AgentHooks> hooks_;
  bool armed_ = false;
  FaultInjectorStats stats_;
};

}  // namespace riptide::faults

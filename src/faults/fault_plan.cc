#include "faults/fault_plan.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace riptide::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kLossBurst: return "loss-burst";
    case FaultKind::kRateChange: return "rate-change";
    case FaultKind::kDelayChange: return "delay-change";
    case FaultKind::kActuatorFail: return "actuator-fail";
    case FaultKind::kPollFail: return "poll-fail";
    case FaultKind::kPollPartial: return "poll-partial";
    case FaultKind::kAgentCrash: return "agent-crash";
    case FaultKind::kSnapshotCorrupt: return "snapshot-corrupt";
    case FaultKind::kRouteDrift: return "route-drift";
  }
  return "unknown";
}

namespace {

FaultEvent event(sim::Time at, FaultKind kind, std::size_t a = 0,
                 std::size_t b = 0) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.pop_a = a;
  ev.pop_b = b;
  return ev;
}

}  // namespace

FaultPlan& FaultPlan::link_down(sim::Time at, std::size_t a, std::size_t b) {
  return add(event(at, FaultKind::kLinkDown, a, b));
}

FaultPlan& FaultPlan::link_up(sim::Time at, std::size_t a, std::size_t b) {
  return add(event(at, FaultKind::kLinkUp, a, b));
}

FaultPlan& FaultPlan::link_flap(sim::Time at, std::size_t a, std::size_t b,
                                sim::Time period, int transitions) {
  FaultEvent ev = event(at, FaultKind::kLinkFlap, a, b);
  ev.duration = period;
  ev.count = transitions;
  return add(ev);
}

FaultPlan& FaultPlan::loss_burst(sim::Time at, std::size_t a, std::size_t b,
                                 double probability, sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kLossBurst, a, b);
  ev.value = probability;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::rate_factor(sim::Time at, std::size_t a, std::size_t b,
                                  double factor, sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kRateChange, a, b);
  ev.value = factor;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::extra_delay(sim::Time at, std::size_t a, std::size_t b,
                                  double extra_ms, sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kDelayChange, a, b);
  ev.value = extra_ms;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::actuator_failures(sim::Time at, double probability,
                                        sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kActuatorFail);
  ev.value = probability;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::poll_failures(sim::Time at, double probability,
                                    sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kPollFail);
  ev.value = probability;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::poll_partial(sim::Time at, double drop_fraction,
                                   sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kPollPartial);
  ev.value = drop_fraction;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::agent_crash(sim::Time at, int host_index,
                                  sim::Time downtime, bool warm,
                                  bool flush_routes) {
  FaultEvent ev = event(at, FaultKind::kAgentCrash);
  ev.host_index = host_index;
  ev.duration = downtime;
  ev.warm = warm;
  ev.flush_routes = flush_routes;
  return add(ev);
}

FaultPlan& FaultPlan::snapshot_corrupt(sim::Time at, int host_index,
                                       std::size_t byte_offset) {
  FaultEvent ev = event(at, FaultKind::kSnapshotCorrupt);
  ev.host_index = host_index;
  ev.value = static_cast<double>(byte_offset);
  return add(ev);
}

FaultPlan& FaultPlan::route_drift(sim::Time at, int host_index,
                                  double delete_fraction,
                                  double mangle_fraction) {
  FaultEvent ev = event(at, FaultKind::kRouteDrift);
  ev.host_index = host_index;
  ev.value = delete_fraction;
  ev.value2 = mangle_fraction;
  return add(ev);
}

bool operator==(const FaultEvent& a, const FaultEvent& b) {
  return a.at == b.at && a.kind == b.kind && a.pop_a == b.pop_a &&
         a.pop_b == b.pop_b && a.value == b.value && a.value2 == b.value2 &&
         a.duration == b.duration && a.count == b.count &&
         a.host_index == b.host_index && a.warm == b.warm &&
         a.flush_routes == b.flush_routes;
}

namespace {

// A token plus its byte offset in the full spec string, so every parse
// error can localize the failure ("at byte N: 'token'") — required by the
// --validate-only surface and by the fuzz harness triage workflow.
struct Token {
  std::string text;
  std::size_t offset = 0;
};

[[noreturn]] void fail(const std::string& what, const Token& tok) {
  throw std::invalid_argument("FaultPlan::parse: " + what + " at byte " +
                              std::to_string(tok.offset) + ": '" + tok.text +
                              "'");
}

double parse_number(const Token& token) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token.text, &consumed);
  } catch (...) {
    fail("bad number", token);
  }
  if (consumed != token.text.size()) fail("bad number", token);
  return value;
}

// "A-B" -> PoP pair.
void parse_link(const Token& token, std::size_t& a, std::size_t& b) {
  const auto dash = token.text.find('-');
  if (dash == std::string::npos || dash == 0 ||
      dash + 1 >= token.text.size()) {
    fail("bad link (want A-B)", token);
  }
  const double da =
      parse_number({token.text.substr(0, dash), token.offset});
  const double db =
      parse_number({token.text.substr(dash + 1), token.offset + dash + 1});
  if (da < 0 || db < 0 || da != static_cast<std::size_t>(da) ||
      db != static_cast<std::size_t>(db)) {
    fail("bad link (want nonnegative integers)", token);
  }
  a = static_cast<std::size_t>(da);
  b = static_cast<std::size_t>(db);
  if (a == b) fail("bad link (identical endpoints)", token);
}

// Shortest decimal form that round-trips through parse_number, so the
// canonical serializer below reproduces the exact double (and therefore
// the exact sim::Time) on re-parse.
std::string format_double(double value) {
  char buf[64];
  for (int precision : {6, 9, 15, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string format_seconds(sim::Time t) {
  return format_double(t.to_seconds());
}

}  // namespace

std::string to_spec_string(const FaultPlan& plan) {
  std::string out;
  for (const FaultEvent& ev : plan.events()) {
    if (!out.empty()) out += "; ";
    out += "@" + format_seconds(ev.at) + " ";
    const std::string link = std::to_string(ev.pop_a) + "-" +
                             std::to_string(ev.pop_b);
    switch (ev.kind) {
      case FaultKind::kLinkDown:
        out += "down " + link;
        break;
      case FaultKind::kLinkUp:
        out += "up " + link;
        break;
      case FaultKind::kLinkFlap:
        out += "flap " + link + " " + format_seconds(ev.duration) + " " +
               std::to_string(ev.count);
        break;
      case FaultKind::kLossBurst:
        out += "loss " + link + " " + format_double(ev.value) + " " +
               format_seconds(ev.duration);
        break;
      case FaultKind::kRateChange:
        out += "rate " + link + " " + format_double(ev.value) + " " +
               format_seconds(ev.duration);
        break;
      case FaultKind::kDelayChange:
        out += "delay " + link + " " + format_double(ev.value) + " " +
               format_seconds(ev.duration);
        break;
      case FaultKind::kActuatorFail:
        out += "actuator-fail " + format_double(ev.value) + " " +
               format_seconds(ev.duration);
        break;
      case FaultKind::kPollFail:
        out += "poll-fail " + format_double(ev.value) + " " +
               format_seconds(ev.duration);
        break;
      case FaultKind::kPollPartial:
        out += "poll-partial " + format_double(ev.value) + " " +
               format_seconds(ev.duration);
        break;
      case FaultKind::kAgentCrash:
        out += "crash " + std::to_string(ev.host_index) + " " +
               format_seconds(ev.duration) + " ";
        if (ev.warm) {
          out += ev.flush_routes ? "reboot-warm" : "warm";
        } else {
          out += ev.flush_routes ? "reboot-cold" : "cold";
        }
        break;
      case FaultKind::kSnapshotCorrupt:
        out += "snap-corrupt " + std::to_string(ev.host_index) + " " +
               std::to_string(static_cast<std::size_t>(ev.value));
        break;
      case FaultKind::kRouteDrift:
        out += "route-drift " + std::to_string(ev.host_index) + " " +
               format_double(ev.value) + " " + format_double(ev.value2);
        break;
    }
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t frag_start = 0;
  while (frag_start <= spec.size()) {
    std::size_t frag_end = spec.find(';', frag_start);
    if (frag_end == std::string::npos) frag_end = spec.size();

    std::vector<Token> tok;
    for (std::size_t i = frag_start; i < frag_end;) {
      while (i < frag_end &&
             std::isspace(static_cast<unsigned char>(spec[i]))) {
        ++i;
      }
      if (i >= frag_end) break;
      std::size_t j = i;
      while (j < frag_end &&
             !std::isspace(static_cast<unsigned char>(spec[j]))) {
        ++j;
      }
      tok.push_back({spec.substr(i, j - i), i});
      i = j;
    }
    const auto advance = [&] {
      if (frag_end == spec.size()) {
        frag_start = spec.size() + 1;  // terminate the outer loop
      } else {
        frag_start = frag_end + 1;
      }
    };
    if (tok.empty()) {  // empty fragment (trailing ';', blank spec)
      advance();
      continue;
    }

    if (tok[0].text.size() < 2 || tok[0].text[0] != '@') {
      fail("expected '@SECONDS' to lead the event", tok[0]);
    }
    const sim::Time at = sim::Time::from_seconds(
        parse_number({tok[0].text.substr(1), tok[0].offset + 1}));
    if (at < sim::Time::zero()) fail("negative event time", tok[0]);
    if (tok.size() < 2) fail("missing action", tok[0]);
    const Token& action = tok[1];
    const auto want = [&](std::size_t n) {
      if (tok.size() != 2 + n) {
        fail("'" + action.text + "' takes " + std::to_string(n) +
                 " argument(s)",
             tok.size() > 2 + n ? tok[2 + n] : action);
      }
    };
    const auto probability = [&](const Token& token) {
      const double p = parse_number(token);
      if (p < 0.0 || p > 1.0) fail("probability outside [0, 1]", token);
      return p;
    };
    const auto seconds = [&](const Token& token) {
      const double s = parse_number(token);
      if (s < 0.0) fail("negative duration", token);
      return sim::Time::from_seconds(s);
    };

    std::size_t a = 0, b = 0;
    if (action.text == "down") {
      want(1);
      parse_link(tok[2], a, b);
      plan.link_down(at, a, b);
    } else if (action.text == "up") {
      want(1);
      parse_link(tok[2], a, b);
      plan.link_up(at, a, b);
    } else if (action.text == "flap") {
      want(3);
      parse_link(tok[2], a, b);
      const sim::Time period = seconds(tok[3]);
      const double count = parse_number(tok[4]);
      if (count < 1 || count != static_cast<int>(count)) {
        fail("flap count must be a positive integer", tok[4]);
      }
      plan.link_flap(at, a, b, period, static_cast<int>(count));
    } else if (action.text == "loss") {
      want(3);
      parse_link(tok[2], a, b);
      plan.loss_burst(at, a, b, probability(tok[3]), seconds(tok[4]));
    } else if (action.text == "rate") {
      want(3);
      parse_link(tok[2], a, b);
      const double factor = parse_number(tok[3]);
      if (factor <= 0.0) fail("rate factor must be positive", tok[3]);
      plan.rate_factor(at, a, b, factor, seconds(tok[4]));
    } else if (action.text == "delay") {
      want(3);
      parse_link(tok[2], a, b);
      const double ms = parse_number(tok[3]);
      if (ms < 0.0) fail("negative extra delay", tok[3]);
      plan.extra_delay(at, a, b, ms, seconds(tok[4]));
    } else if (action.text == "actuator-fail") {
      want(2);
      plan.actuator_failures(at, probability(tok[2]), seconds(tok[3]));
    } else if (action.text == "poll-fail") {
      want(2);
      plan.poll_failures(at, probability(tok[2]), seconds(tok[3]));
    } else if (action.text == "poll-partial") {
      want(2);
      plan.poll_partial(at, probability(tok[2]), seconds(tok[3]));
    } else if (action.text == "crash") {
      want(3);
      const double host = parse_number(tok[2]);
      if (host < -1 || host != static_cast<int>(host)) {
        fail("crash host must be an index or -1 (all)", tok[2]);
      }
      bool warm = false;
      bool flush = false;
      if (tok[4].text == "warm") {
        warm = true;
      } else if (tok[4].text == "reboot-warm") {
        warm = true;
        flush = true;
      } else if (tok[4].text == "reboot-cold") {
        flush = true;
      } else if (tok[4].text != "cold") {
        fail("crash mode must be 'warm', 'cold', 'reboot-warm' or "
             "'reboot-cold'",
             tok[4]);
      }
      plan.agent_crash(at, static_cast<int>(host), seconds(tok[3]), warm,
                       flush);
    } else if (action.text == "snap-corrupt") {
      want(2);
      const double host = parse_number(tok[2]);
      if (host < -1 || host != static_cast<int>(host)) {
        fail("snap-corrupt host must be an index or -1 (all)", tok[2]);
      }
      const double offset = parse_number(tok[3]);
      if (offset < 0 || offset != static_cast<std::size_t>(offset)) {
        fail("snap-corrupt offset must be a nonnegative integer", tok[3]);
      }
      plan.snapshot_corrupt(at, static_cast<int>(host),
                            static_cast<std::size_t>(offset));
    } else if (action.text == "route-drift") {
      want(3);
      const double host = parse_number(tok[2]);
      if (host < -1 || host != static_cast<int>(host)) {
        fail("route-drift host must be an index or -1 (all)", tok[2]);
      }
      plan.route_drift(at, static_cast<int>(host), probability(tok[3]),
                       probability(tok[4]));
    } else {
      fail("unknown action", action);
    }
    advance();
  }
  return plan;
}

}  // namespace riptide::faults

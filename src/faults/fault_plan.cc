#include "faults/fault_plan.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace riptide::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kLossBurst: return "loss-burst";
    case FaultKind::kRateChange: return "rate-change";
    case FaultKind::kDelayChange: return "delay-change";
    case FaultKind::kActuatorFail: return "actuator-fail";
    case FaultKind::kPollFail: return "poll-fail";
    case FaultKind::kPollPartial: return "poll-partial";
    case FaultKind::kAgentCrash: return "agent-crash";
    case FaultKind::kSnapshotCorrupt: return "snapshot-corrupt";
    case FaultKind::kRouteDrift: return "route-drift";
  }
  return "unknown";
}

namespace {

FaultEvent event(sim::Time at, FaultKind kind, std::size_t a = 0,
                 std::size_t b = 0) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.pop_a = a;
  ev.pop_b = b;
  return ev;
}

}  // namespace

FaultPlan& FaultPlan::link_down(sim::Time at, std::size_t a, std::size_t b) {
  return add(event(at, FaultKind::kLinkDown, a, b));
}

FaultPlan& FaultPlan::link_up(sim::Time at, std::size_t a, std::size_t b) {
  return add(event(at, FaultKind::kLinkUp, a, b));
}

FaultPlan& FaultPlan::link_flap(sim::Time at, std::size_t a, std::size_t b,
                                sim::Time period, int transitions) {
  FaultEvent ev = event(at, FaultKind::kLinkFlap, a, b);
  ev.duration = period;
  ev.count = transitions;
  return add(ev);
}

FaultPlan& FaultPlan::loss_burst(sim::Time at, std::size_t a, std::size_t b,
                                 double probability, sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kLossBurst, a, b);
  ev.value = probability;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::rate_factor(sim::Time at, std::size_t a, std::size_t b,
                                  double factor, sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kRateChange, a, b);
  ev.value = factor;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::extra_delay(sim::Time at, std::size_t a, std::size_t b,
                                  double extra_ms, sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kDelayChange, a, b);
  ev.value = extra_ms;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::actuator_failures(sim::Time at, double probability,
                                        sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kActuatorFail);
  ev.value = probability;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::poll_failures(sim::Time at, double probability,
                                    sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kPollFail);
  ev.value = probability;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::poll_partial(sim::Time at, double drop_fraction,
                                   sim::Time duration) {
  FaultEvent ev = event(at, FaultKind::kPollPartial);
  ev.value = drop_fraction;
  ev.duration = duration;
  return add(ev);
}

FaultPlan& FaultPlan::agent_crash(sim::Time at, int host_index,
                                  sim::Time downtime, bool warm,
                                  bool flush_routes) {
  FaultEvent ev = event(at, FaultKind::kAgentCrash);
  ev.host_index = host_index;
  ev.duration = downtime;
  ev.warm = warm;
  ev.flush_routes = flush_routes;
  return add(ev);
}

FaultPlan& FaultPlan::snapshot_corrupt(sim::Time at, int host_index,
                                       std::size_t byte_offset) {
  FaultEvent ev = event(at, FaultKind::kSnapshotCorrupt);
  ev.host_index = host_index;
  ev.value = static_cast<double>(byte_offset);
  return add(ev);
}

FaultPlan& FaultPlan::route_drift(sim::Time at, int host_index,
                                  double delete_fraction,
                                  double mangle_fraction) {
  FaultEvent ev = event(at, FaultKind::kRouteDrift);
  ev.host_index = host_index;
  ev.value = delete_fraction;
  ev.value2 = mangle_fraction;
  return add(ev);
}

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& fragment) {
  throw std::invalid_argument("FaultPlan::parse: " + what + " in \"" +
                              fragment + "\"");
}

double parse_number(const std::string& token, const std::string& fragment) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (...) {
    fail("bad number '" + token + "'", fragment);
  }
  if (consumed != token.size()) fail("bad number '" + token + "'", fragment);
  return value;
}

// "A-B" -> PoP pair.
void parse_link(const std::string& token, const std::string& fragment,
                std::size_t& a, std::size_t& b) {
  const auto dash = token.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= token.size()) {
    fail("bad link '" + token + "' (want A-B)", fragment);
  }
  const double da = parse_number(token.substr(0, dash), fragment);
  const double db = parse_number(token.substr(dash + 1), fragment);
  if (da < 0 || db < 0 || da != static_cast<std::size_t>(da) ||
      db != static_cast<std::size_t>(db)) {
    fail("bad link '" + token + "' (want nonnegative integers)", fragment);
  }
  a = static_cast<std::size_t>(da);
  b = static_cast<std::size_t>(db);
  if (a == b) fail("bad link '" + token + "' (identical endpoints)", fragment);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream events(spec);
  std::string fragment;
  while (std::getline(events, fragment, ';')) {
    std::istringstream fields(fragment);
    std::vector<std::string> tok;
    std::string t;
    while (fields >> t) tok.push_back(t);
    if (tok.empty()) continue;  // empty fragment (trailing ';', blank spec)

    if (tok[0].size() < 2 || tok[0][0] != '@') {
      fail("expected '@SECONDS' to lead the event", fragment);
    }
    const sim::Time at =
        sim::Time::from_seconds(parse_number(tok[0].substr(1), fragment));
    if (at < sim::Time::zero()) fail("negative event time", fragment);
    if (tok.size() < 2) fail("missing action", fragment);
    const std::string& action = tok[1];
    const auto want = [&](std::size_t n) {
      if (tok.size() != 2 + n) {
        fail("'" + action + "' takes " + std::to_string(n) + " argument(s)",
             fragment);
      }
    };
    const auto probability = [&](const std::string& token) {
      const double p = parse_number(token, fragment);
      if (p < 0.0 || p > 1.0) fail("probability outside [0, 1]", fragment);
      return p;
    };
    const auto seconds = [&](const std::string& token) {
      const double s = parse_number(token, fragment);
      if (s < 0.0) fail("negative duration", fragment);
      return sim::Time::from_seconds(s);
    };

    std::size_t a = 0, b = 0;
    if (action == "down") {
      want(1);
      parse_link(tok[2], fragment, a, b);
      plan.link_down(at, a, b);
    } else if (action == "up") {
      want(1);
      parse_link(tok[2], fragment, a, b);
      plan.link_up(at, a, b);
    } else if (action == "flap") {
      want(3);
      parse_link(tok[2], fragment, a, b);
      const sim::Time period = seconds(tok[3]);
      const double count = parse_number(tok[4], fragment);
      if (count < 1 || count != static_cast<int>(count)) {
        fail("flap count must be a positive integer", fragment);
      }
      plan.link_flap(at, a, b, period, static_cast<int>(count));
    } else if (action == "loss") {
      want(3);
      parse_link(tok[2], fragment, a, b);
      plan.loss_burst(at, a, b, probability(tok[3]), seconds(tok[4]));
    } else if (action == "rate") {
      want(3);
      parse_link(tok[2], fragment, a, b);
      const double factor = parse_number(tok[3], fragment);
      if (factor <= 0.0) fail("rate factor must be positive", fragment);
      plan.rate_factor(at, a, b, factor, seconds(tok[4]));
    } else if (action == "delay") {
      want(3);
      parse_link(tok[2], fragment, a, b);
      const double ms = parse_number(tok[3], fragment);
      if (ms < 0.0) fail("negative extra delay", fragment);
      plan.extra_delay(at, a, b, ms, seconds(tok[4]));
    } else if (action == "actuator-fail") {
      want(2);
      plan.actuator_failures(at, probability(tok[2]), seconds(tok[3]));
    } else if (action == "poll-fail") {
      want(2);
      plan.poll_failures(at, probability(tok[2]), seconds(tok[3]));
    } else if (action == "poll-partial") {
      want(2);
      plan.poll_partial(at, probability(tok[2]), seconds(tok[3]));
    } else if (action == "crash") {
      want(3);
      const double host = parse_number(tok[2], fragment);
      if (host < -1 || host != static_cast<int>(host)) {
        fail("crash host must be an index or -1 (all)", fragment);
      }
      bool warm = false;
      bool flush = false;
      if (tok[4] == "warm") {
        warm = true;
      } else if (tok[4] == "reboot-warm") {
        warm = true;
        flush = true;
      } else if (tok[4] == "reboot-cold") {
        flush = true;
      } else if (tok[4] != "cold") {
        fail("crash mode must be 'warm', 'cold', 'reboot-warm' or "
             "'reboot-cold'",
             fragment);
      }
      plan.agent_crash(at, static_cast<int>(host), seconds(tok[3]), warm,
                       flush);
    } else if (action == "snap-corrupt") {
      want(2);
      const double host = parse_number(tok[2], fragment);
      if (host < -1 || host != static_cast<int>(host)) {
        fail("snap-corrupt host must be an index or -1 (all)", fragment);
      }
      const double offset = parse_number(tok[3], fragment);
      if (offset < 0 || offset != static_cast<std::size_t>(offset)) {
        fail("snap-corrupt offset must be a nonnegative integer", fragment);
      }
      plan.snapshot_corrupt(at, static_cast<int>(host),
                            static_cast<std::size_t>(offset));
    } else if (action == "route-drift") {
      want(3);
      const double host = parse_number(tok[2], fragment);
      if (host < -1 || host != static_cast<int>(host)) {
        fail("route-drift host must be an index or -1 (all)", fragment);
      }
      plan.route_drift(at, static_cast<int>(host), probability(tok[3]),
                       probability(tok[4]));
    } else {
      fail("unknown action '" + action + "'", fragment);
    }
  }
  return plan;
}

}  // namespace riptide::faults

#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/route_programmer.h"
#include "core/socket_stats_source.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace riptide::faults {

// Thrown by FaultyRouteProgrammer for an injected actuator failure (the
// `ip route` invocation dying or timing out).
class ActuatorError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultyActuatorStats {
  std::uint64_t ops_attempted = 0;
  std::uint64_t failures_injected = 0;
  std::uint64_t ops_delayed = 0;
};

// Decorator over the agent's actuator: fails calls with a configurable
// probability (or deterministically via fail_next), and/or applies them
// after a delay — the transient `ip route` failures and slow execs the
// agent's retry/backoff path must absorb. Each decorator owns a forked
// Rng so failure sequences are deterministic per agent and independent of
// the traffic workload.
class FaultyRouteProgrammer : public core::RouteProgrammer {
 public:
  FaultyRouteProgrammer(sim::Simulator& sim,
                        std::unique_ptr<core::RouteProgrammer> inner,
                        sim::Rng rng)
      : sim_(sim), inner_(std::move(inner)), rng_(std::move(rng)) {}

  // Probability that any program/clear call throws ActuatorError.
  void set_failure_probability(double p) { failure_probability_ = p; }
  double failure_probability() const { return failure_probability_; }

  // Fails exactly the next `n` calls (before the probability is rolled).
  void fail_next(int n) { forced_failures_ = n; }

  // When nonzero, successful ops take effect only after `delay` (the slow
  // actuator case). Zero restores immediate application.
  void set_delay(sim::Time delay) { delay_ = delay; }

  void set_initial_windows(const net::Prefix& dst,
                           std::uint32_t initcwnd_segments,
                           std::uint32_t initrwnd_segments,
                           tcp::RouteCc cc = tcp::RouteCc::kUnset) override;
  void clear(const net::Prefix& dst) override;

  core::RouteProgrammer& inner() { return *inner_; }
  const FaultyActuatorStats& stats() const { return stats_; }

 private:
  void maybe_fail(const char* op);

  sim::Simulator& sim_;
  std::unique_ptr<core::RouteProgrammer> inner_;
  sim::Rng rng_;
  double failure_probability_ = 0.0;
  int forced_failures_ = 0;
  sim::Time delay_;
  FaultyActuatorStats stats_;
};

struct FaultyPollStats {
  std::uint64_t polls_attempted = 0;
  std::uint64_t failures_injected = 0;
  std::uint64_t entries_dropped = 0;  // partial-snapshot omissions
};

// Decorator over the agent's `ss` surface: polls fail outright with a
// configurable probability (PollError — the tool dying), or silently omit
// each entry with a configurable probability (truncated output, the race
// `ss` itself has against connection churn).
class FaultySocketStatsSource : public core::SocketStatsSource {
 public:
  FaultySocketStatsSource(std::unique_ptr<core::SocketStatsSource> inner,
                          sim::Rng rng)
      : inner_(std::move(inner)), rng_(std::move(rng)) {}

  void set_failure_probability(double p) { failure_probability_ = p; }
  double failure_probability() const { return failure_probability_; }
  void set_partial_fraction(double f) { partial_fraction_ = f; }
  double partial_fraction() const { return partial_fraction_; }

  // Fails exactly the next `n` polls (before the probability is rolled).
  void fail_next(int n) { forced_failures_ = n; }

  std::vector<host::SocketInfo> poll() override;

  const FaultyPollStats& stats() const { return stats_; }

 private:
  std::unique_ptr<core::SocketStatsSource> inner_;
  sim::Rng rng_;
  double failure_probability_ = 0.0;
  double partial_fraction_ = 0.0;
  int forced_failures_ = 0;
  FaultyPollStats stats_;
};

}  // namespace riptide::faults

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace riptide::faults {

// What a scheduled fault does when it fires. Link faults name a PoP pair
// and are applied to both directions of the WAN pipe; agent faults apply
// to every registered agent or to one host index.
enum class FaultKind {
  kLinkDown,      // administratively down: every offered packet dropped
  kLinkUp,        // bring the pair back up
  kLinkFlap,      // `count` alternating down/up transitions, `period` apart
  kLossBurst,     // set i.i.d. loss to `value` for `duration`, then restore
  kRateChange,    // multiply link rate by `value` for `duration`
  kDelayChange,   // add `value` ms of propagation delay for `duration`
  kActuatorFail,  // route program/clear fails with probability `value`
  kPollFail,      // `ss` poll throws with probability `value`
  kPollPartial,   // each snapshot entry dropped with probability `value`
  kAgentCrash,    // crash agent(s), restart after `duration` (warm or cold)
  kSnapshotCorrupt,  // flip one bit of the newest persisted snapshot
  kRouteDrift,    // externally delete/mangle learned routes in place
};

const char* to_string(FaultKind kind);

// One deterministic, sim-time-scheduled fault event. Field use by kind:
//   pop_a/pop_b  link events: the WAN pair (both directions)
//   value        loss/fail probability, partial drop fraction, rate
//                factor, extra delay in ms, snapshot-corrupt byte offset,
//                or route-drift delete fraction
//   value2       route-drift only: fraction of learned routes mangled
//   duration     burst/degradation length, flap period, or crash downtime
//   count        flap transitions (down is first; even count ends up)
//   host_index   agent-target index into registration order; -1 = all
//                (crash, snapshot-corrupt, route-drift)
//   warm         crash only: restore the persisted/memory snapshot on
//                restart
//   flush_routes crash only: the host rebooted, so learned routes are
//                flushed from the routing table at crash time
struct FaultEvent {
  sim::Time at;
  FaultKind kind = FaultKind::kLinkDown;
  std::size_t pop_a = 0;
  std::size_t pop_b = 0;
  double value = 0.0;
  double value2 = 0.0;
  sim::Time duration;
  int count = 0;
  int host_index = -1;
  bool warm = false;
  bool flush_routes = false;
};

// Field-wise equality, for spec round-trip checks and the chaos shrinker.
bool operator==(const FaultEvent& a, const FaultEvent& b);

// A declarative, composable list of fault events. Build in code via the
// fluent adders, or parse from a compact spec string:
//
//   spec    := event (';' event)*
//   event   := '@' SECONDS action
//   action  := 'down' LINK | 'up' LINK | 'flap' LINK PERIOD_S COUNT
//            | 'loss' LINK P DUR_S | 'rate' LINK FACTOR DUR_S
//            | 'delay' LINK EXTRA_MS DUR_S
//            | 'actuator-fail' P DUR_S
//            | 'poll-fail' P DUR_S | 'poll-partial' FRAC DUR_S
//            | 'crash' HOST DOWNTIME_S MODE
//            | 'snap-corrupt' HOST BYTE_OFFSET
//            | 'route-drift' HOST DEL_FRAC MANGLE_FRAC
//   MODE    := 'warm' | 'cold' | 'reboot-warm' | 'reboot-cold'
//   LINK    := POP '-' POP        (PoP indices, e.g. 0-1)
//
// The reboot crash modes also flush learned routes from the host routing
// table (process death keeps kernel routes; a reboot does not). HOST is an
// agent index or -1 for all.
//
// Example: "@5 flap 0-1 2 6; @10 actuator-fail 0.3 30; @20 loss 0-1 0.05 10"
// Whitespace between tokens is free-form; times accept fractions ("@2.5").
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultEvent event) {
    events_.push_back(event);
    return *this;
  }

  FaultPlan& link_down(sim::Time at, std::size_t a, std::size_t b);
  FaultPlan& link_up(sim::Time at, std::size_t a, std::size_t b);
  FaultPlan& link_flap(sim::Time at, std::size_t a, std::size_t b,
                       sim::Time period, int transitions);
  FaultPlan& loss_burst(sim::Time at, std::size_t a, std::size_t b,
                        double probability, sim::Time duration);
  FaultPlan& rate_factor(sim::Time at, std::size_t a, std::size_t b,
                         double factor, sim::Time duration);
  FaultPlan& extra_delay(sim::Time at, std::size_t a, std::size_t b,
                         double extra_ms, sim::Time duration);
  FaultPlan& actuator_failures(sim::Time at, double probability,
                               sim::Time duration);
  FaultPlan& poll_failures(sim::Time at, double probability,
                           sim::Time duration);
  FaultPlan& poll_partial(sim::Time at, double drop_fraction,
                          sim::Time duration);
  FaultPlan& agent_crash(sim::Time at, int host_index, sim::Time downtime,
                         bool warm, bool flush_routes = false);
  FaultPlan& snapshot_corrupt(sim::Time at, int host_index,
                              std::size_t byte_offset);
  FaultPlan& route_drift(sim::Time at, int host_index, double delete_fraction,
                         double mangle_fraction);

  // Throws std::invalid_argument naming the offending token and its byte
  // offset on malformed input. An empty (or all-whitespace) spec yields an
  // empty plan.
  static FaultPlan parse(const std::string& spec);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.events_ == b.events_;
  }

 private:
  std::vector<FaultEvent> events_;
};

// Canonical spec string: parse(to_spec_string(plan)) == plan for every
// plan whose events came from parse or the fluent builders. The shrinker
// (src/chaos) leans on this to re-serialize reduced plans.
std::string to_spec_string(const FaultPlan& plan);

}  // namespace riptide::faults

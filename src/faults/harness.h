#pragma once

#include <memory>
#include <vector>

#include "cdn/experiment.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "faults/faulty.h"
#include "persist/checkpointer.h"
#include "persist/snapshot_store.h"

namespace riptide::faults {

// Glue between a FaultPlan and a cdn::Experiment. install() plants three
// factories on the config: every agent's actuator and `ss` surface get
// wrapped in the fault decorators (each with its own Rng forked from the
// experiment seed and the host address, so injection sequences are
// deterministic per host and independent of the workload), and the
// extension factory builds the harness itself — which discovers the
// decorators on the constructed agents, registers them with a
// FaultInjector, and arms the plan.
//
//   cdn::ExperimentConfig config = ...;
//   faults::FaultHarness::install(config, faults::FaultPlan::parse(spec));
//   cdn::Experiment experiment(config);
//   experiment.run();
//   auto* harness = faults::FaultHarness::from(experiment);
//
// Everything lives on the config by value/std::function, so configs remain
// copyable across sweep workers with no shared mutable state.
class FaultHarness {
 public:
  // Wires the decorators and the plan into `config`. The plan may be
  // empty (decorators installed but inert) — useful for bit-identity
  // comparisons of the no-fault path.
  static void install(cdn::ExperimentConfig& config, FaultPlan plan);

  // The harness attached by install()'s extension factory, or null when
  // the experiment was built without one. The extension slot is assumed
  // to be harness-owned: only call this on experiments configured via
  // install().
  static FaultHarness* from(const cdn::Experiment& experiment);

  FaultInjector& injector() { return *injector_; }
  const FaultInjector& injector() const { return *injector_; }

  // Decorator counters aggregated across every agent.
  FaultyActuatorStats actuator_totals() const;
  FaultyPollStats poll_totals() const;
  // Checkpointer counters aggregated across every agent (all zero when
  // config.riptide.checkpoint_interval was 0 and none were attached).
  persist::CheckpointerStats checkpointer_totals() const;

 private:
  FaultHarness(cdn::Experiment& experiment, FaultPlan plan);

  // When the experiment's RiptideConfig asks for checkpointing, the
  // harness owns one in-memory store + checkpointer per agent (in agent
  // order) and hands raw pointers to the injector's hooks.
  std::vector<std::unique_ptr<persist::MemorySnapshotStore>> stores_;
  std::vector<std::unique_ptr<persist::AgentCheckpointer>> checkpointers_;
  std::unique_ptr<FaultInjector> injector_;
};

}  // namespace riptide::faults

#include "faults/fault_injector.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "trace/sink.h"

namespace riptide::faults {

namespace {

// One `fault` trace record per plan-event application (or burst-window
// restore). The label is the static to_string(FaultKind) literal, so the
// ring entry stays trivially copyable.
void trace_fault(sim::Simulator& sim, const FaultEvent& ev, bool restored) {
  auto* sink = trace::active();
  if (sink == nullptr) return;
  trace::TraceEvent out;
  out.at_ns = sim.now().ns();
  out.kind = trace::EventKind::kFault;
  out.fault = {to_string(ev.kind),
               static_cast<std::uint8_t>(restored ? 1 : 0),
               static_cast<std::uint32_t>(ev.pop_a),
               static_cast<std::uint32_t>(ev.pop_b),
               ev.host_index,
               ev.value,
               ev.duration.ns()};
  sink->emit(out);
}

}  // namespace

void FaultInjector::validate(const FaultEvent& ev) const {
  const std::size_t n = topology_.pop_count();
  switch (ev.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
    case FaultKind::kLinkFlap:
    case FaultKind::kLossBurst:
    case FaultKind::kRateChange:
    case FaultKind::kDelayChange:
      if (ev.pop_a >= n || ev.pop_b >= n || ev.pop_a == ev.pop_b) {
        throw std::invalid_argument(
            std::string("FaultInjector: event '") + to_string(ev.kind) +
            "' names bad PoP pair " + std::to_string(ev.pop_a) + "-" +
            std::to_string(ev.pop_b));
      }
      if (ev.kind == FaultKind::kLinkFlap && ev.count < 1) {
        throw std::invalid_argument("FaultInjector: flap needs >= 1 transition");
      }
      break;
    case FaultKind::kAgentCrash:
    case FaultKind::kSnapshotCorrupt:
    case FaultKind::kRouteDrift:
      if (ev.host_index >= static_cast<int>(hooks_.size())) {
        throw std::invalid_argument(
            std::string("FaultInjector: '") + to_string(ev.kind) +
            "' host index " + std::to_string(ev.host_index) +
            " out of range (have " + std::to_string(hooks_.size()) +
            " agents)");
      }
      if (ev.kind == FaultKind::kRouteDrift &&
          (ev.value < 0.0 || ev.value > 1.0 || ev.value2 < 0.0 ||
           ev.value2 > 1.0)) {
        throw std::invalid_argument(
            "FaultInjector: route-drift fractions outside [0, 1]");
      }
      break;
    case FaultKind::kActuatorFail:
    case FaultKind::kPollFail:
    case FaultKind::kPollPartial:
      break;
  }
  if (ev.value < 0.0) {
    throw std::invalid_argument("FaultInjector: negative event value");
  }
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector::arm called twice");
  armed_ = true;
  for (const FaultEvent& ev : plan_.events()) validate(ev);
  for (const FaultEvent& ev : plan_.events()) {
    sim_.schedule_at(ev.at, [this, ev] {
      ++stats_.events_fired;
      trace_fault(sim_, ev, /*restored=*/false);
      apply(ev);
    });
  }
}

void FaultInjector::apply(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kLinkDown:
      set_pair_up(ev.pop_a, ev.pop_b, false);
      break;
    case FaultKind::kLinkUp:
      set_pair_up(ev.pop_a, ev.pop_b, true);
      break;
    case FaultKind::kLinkFlap:
      // apply() fires at each transition time; leg 0 is the initial down.
      set_pair_up(ev.pop_a, ev.pop_b, false);
      for (int leg = 1; leg < ev.count; ++leg) {
        const bool up = (leg % 2) == 1;
        sim_.schedule(ev.duration * leg, [this, ev, up] {
          ++stats_.events_fired;
          trace_fault(sim_, ev, /*restored=*/up);
          set_pair_up(ev.pop_a, ev.pop_b, up);
        });
      }
      break;
    case FaultKind::kLossBurst:
      apply_loss_burst(ev);
      break;
    case FaultKind::kRateChange:
      apply_rate_change(ev);
      break;
    case FaultKind::kDelayChange:
      apply_delay_change(ev);
      break;
    case FaultKind::kActuatorFail:
      apply_actuator_window(ev);
      break;
    case FaultKind::kPollFail:
    case FaultKind::kPollPartial:
      apply_poll_window(ev);
      break;
    case FaultKind::kAgentCrash:
      apply_crash(ev);
      break;
    case FaultKind::kSnapshotCorrupt:
      apply_snapshot_corrupt(ev);
      break;
    case FaultKind::kRouteDrift:
      apply_route_drift(ev);
      break;
  }
}

void FaultInjector::set_pair_up(std::size_t a, std::size_t b, bool up) {
  topology_.wan_link(a, b).set_up(up);
  topology_.wan_link(b, a).set_up(up);
  ++stats_.link_transitions;
}

void FaultInjector::apply_loss_burst(const FaultEvent& ev) {
  net::Link& ab = topology_.wan_link(ev.pop_a, ev.pop_b);
  net::Link& ba = topology_.wan_link(ev.pop_b, ev.pop_a);
  const double prev_ab = ab.config().loss_probability;
  const double prev_ba = ba.config().loss_probability;
  ab.set_loss_probability(ev.value);
  ba.set_loss_probability(ev.value);
  ++stats_.bursts_applied;
  sim_.schedule(ev.duration, [this, ev, &ab, &ba, prev_ab, prev_ba] {
    ab.set_loss_probability(prev_ab);
    ba.set_loss_probability(prev_ba);
    ++stats_.bursts_restored;
    trace_fault(sim_, ev, /*restored=*/true);
  });
}

void FaultInjector::apply_rate_change(const FaultEvent& ev) {
  net::Link& ab = topology_.wan_link(ev.pop_a, ev.pop_b);
  net::Link& ba = topology_.wan_link(ev.pop_b, ev.pop_a);
  const double prev_ab = ab.config().rate_bps;
  const double prev_ba = ba.config().rate_bps;
  ab.set_rate_bps(prev_ab * ev.value);
  ba.set_rate_bps(prev_ba * ev.value);
  ++stats_.bursts_applied;
  sim_.schedule(ev.duration, [this, ev, &ab, &ba, prev_ab, prev_ba] {
    ab.set_rate_bps(prev_ab);
    ba.set_rate_bps(prev_ba);
    ++stats_.bursts_restored;
    trace_fault(sim_, ev, /*restored=*/true);
  });
}

void FaultInjector::apply_delay_change(const FaultEvent& ev) {
  net::Link& ab = topology_.wan_link(ev.pop_a, ev.pop_b);
  net::Link& ba = topology_.wan_link(ev.pop_b, ev.pop_a);
  const sim::Time prev_ab = ab.config().propagation_delay;
  const sim::Time prev_ba = ba.config().propagation_delay;
  const sim::Time extra = sim::Time::from_seconds(ev.value / 1000.0);
  ab.set_propagation_delay(prev_ab + extra);
  ba.set_propagation_delay(prev_ba + extra);
  ++stats_.bursts_applied;
  sim_.schedule(ev.duration, [this, ev, &ab, &ba, prev_ab, prev_ba] {
    ab.set_propagation_delay(prev_ab);
    ba.set_propagation_delay(prev_ba);
    ++stats_.bursts_restored;
    trace_fault(sim_, ev, /*restored=*/true);
  });
}

void FaultInjector::apply_actuator_window(const FaultEvent& ev) {
  ++stats_.actuator_windows;
  for (const AgentHooks& hooks : hooks_) {
    FaultyRouteProgrammer* actuator = hooks.actuator;
    if (actuator == nullptr) continue;
    const double prev = actuator->failure_probability();
    actuator->set_failure_probability(ev.value);
    sim_.schedule(ev.duration,
                  [actuator, prev] { actuator->set_failure_probability(prev); });
  }
}

void FaultInjector::apply_poll_window(const FaultEvent& ev) {
  ++stats_.poll_windows;
  const bool partial = ev.kind == FaultKind::kPollPartial;
  for (const AgentHooks& hooks : hooks_) {
    FaultySocketStatsSource* source = hooks.stats_source;
    if (source == nullptr) continue;
    if (partial) {
      const double prev = source->partial_fraction();
      source->set_partial_fraction(ev.value);
      sim_.schedule(ev.duration,
                    [source, prev] { source->set_partial_fraction(prev); });
    } else {
      const double prev = source->failure_probability();
      source->set_failure_probability(ev.value);
      sim_.schedule(ev.duration,
                    [source, prev] { source->set_failure_probability(prev); });
    }
  }
}

void FaultInjector::apply_crash(const FaultEvent& ev) {
  for_targets(ev, [&](const AgentHooks& hooks) {
    crash_one(hooks, ev.duration, ev.warm, ev.flush_routes);
  });
}

void FaultInjector::crash_one(AgentHooks hooks, sim::Time downtime, bool warm,
                              bool flush_routes) {
  core::RiptideAgent* agent = hooks.agent;
  if (agent == nullptr || !agent->running()) return;
  persist::AgentCheckpointer* checkpointer = hooks.checkpointer;
  // Warm restart restores persisted state. With a real checkpointer the
  // restore goes through the snapshot store and decoder — torn or
  // corrupted snapshots included; without one, fall back to modeling a
  // perfect checkpoint with an in-memory copy taken at crash time.
  core::ObservedTable memory_snapshot;
  if (warm && checkpointer == nullptr) {
    memory_snapshot = agent->snapshot_table();
  }
  agent->crash();
  ++stats_.crashes_injected;
  if (flush_routes) {
    // The host rebooted, not just the process: learned routes are gone
    // too, which is exactly the window Riptide's jump-start exists for.
    host::RoutingTable& routes = agent->host().routing_table();
    for (const auto& entry : routes.learned_routes()) {
      routes.remove(entry.prefix);
      ++stats_.routes_flushed;
    }
  }
  ++stats_.restarts_scheduled;
  sim_.schedule(downtime, [this, agent, checkpointer, warm, flush_routes,
                           memory_snapshot = std::move(memory_snapshot)] {
    if (warm) {
      if (checkpointer != nullptr) {
        // Restore provenance (the agent-restore trace record) is emitted
        // by the checkpointer, which knows the generation it used.
        checkpointer->restore(/*reinstall_routes=*/flush_routes);
      } else {
        agent->restore_table(memory_snapshot,
                             /*reinstall_routes=*/flush_routes);
        if (auto* sink = trace::active()) {
          trace::TraceEvent out;
          out.at_ns = sim_.now().ns();
          out.kind = trace::EventKind::kAgentRestore;
          out.restore = {agent->host().address().value(),
                         /*from_checkpoint=*/0,
                         static_cast<std::uint8_t>(flush_routes ? 1 : 0),
                         static_cast<std::uint32_t>(memory_snapshot.size()),
                         /*generation=*/0,
                         /*rejected=*/0};
          sink->emit(out);
        }
      }
    }
    agent->start();
  });
}

void FaultInjector::apply_snapshot_corrupt(const FaultEvent& ev) {
  const auto offset = static_cast<std::size_t>(ev.value);
  for_targets(ev, [&](const AgentHooks& hooks) {
    if (hooks.checkpointer == nullptr) return;
    if (hooks.checkpointer->store().corrupt_newest(offset)) {
      ++stats_.snapshots_corrupted;
    }
  });
}

void FaultInjector::apply_route_drift(const FaultEvent& ev) {
  for_targets(ev, [&](const AgentHooks& hooks) {
    if (hooks.agent == nullptr) return;
    host::RoutingTable& routes = hooks.agent->host().routing_table();
    const auto learned = routes.learned_routes();
    const auto total = learned.size();
    const auto to_delete = static_cast<std::size_t>(
        std::llround(ev.value * static_cast<double>(total)));
    const auto to_mangle = static_cast<std::size_t>(
        std::llround(ev.value2 * static_cast<double>(total)));
    // learned_routes() is in PrefixOrder, so which routes get hit is a
    // pure function of (plan, state) — no RNG consumed.
    std::size_t i = 0;
    for (; i < to_delete && i < total; ++i) {
      routes.remove(learned[i].prefix);
      ++stats_.routes_dropped;
    }
    for (std::size_t m = 0; m < to_mangle && i < total; ++m, ++i) {
      const host::RouteEntry& entry = learned[i];
      if (entry.device == nullptr) continue;
      routes.add_or_replace(
          entry.prefix, *entry.device,
          host::RouteMetrics{1, entry.metrics.initrwnd_segments});
      ++stats_.routes_mangled;
    }
  });
}

}  // namespace riptide::faults

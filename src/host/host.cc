#include "host/host.h"

#include <stdexcept>
#include <utility>

#include "tcp/segment_pool.h"

namespace riptide::host {

Host::Host(sim::Simulator& sim, std::string name, net::Ipv4Address address,
           tcp::TcpConfig default_config)
    : sim_(sim),
      name_(std::move(name)),
      address_(address),
      default_config_(default_config) {}

void Host::attach_uplink(net::PacketSink& uplink) {
  uplink_ = &uplink;
  routes_.add_or_replace(net::Prefix(net::Ipv4Address(0), 0), uplink);
}

tcp::TcpConfig Host::effective_config(net::Ipv4Address peer,
                                      const tcp::TcpConfig& base) const {
  tcp::TcpConfig config = base;
  config.initial_cwnd_segments =
      routes_.effective_initcwnd(peer, base.initial_cwnd_segments);
  config.initial_rwnd_segments =
      routes_.effective_initrwnd(peer, base.initial_rwnd_segments);
  // Route-programmed congestion control, consumed once at connect/accept
  // like the windows above (Linux reads the route's congctl the same way).
  tcp::apply_route_cc(routes_.effective_cc(peer), config);
  return config;
}

std::uint16_t Host::allocate_port() {
  // Linux-style ephemeral range; skip ports that are still in use (e.g. a
  // lingering TIME-WAIT with the same peer would be caught at tuple insert).
  const std::uint16_t port = next_ephemeral_port_;
  next_ephemeral_port_ =
      next_ephemeral_port_ >= 60999 ? 32768 : next_ephemeral_port_ + 1;
  return port;
}

tcp::TcpConnection& Host::create_connection(
    const tcp::FourTuple& tuple, const tcp::TcpConfig& config,
    tcp::TcpConnection::Callbacks callbacks) {
  auto conn = std::make_unique<tcp::TcpConnection>(
      sim_, config, tuple, &Host::send_segment_thunk, this,
      std::move(callbacks));
  // Host-owned cleanup; survives any later set_callbacks by the app.
  conn->set_teardown_hook([this, tuple] { schedule_removal(tuple); });
  auto [it, inserted] = connections_.emplace(tuple, std::move(conn));
  if (!inserted) {
    throw std::logic_error("Host::create_connection: tuple already in use: " +
                           tuple.to_string());
  }
  return *it->second;
}

void Host::schedule_removal(const tcp::FourTuple& tuple) {
  // Deferred: the connection object is still on the call stack.
  sim_.schedule(sim::Time::zero(), [this, tuple] {
    const auto it = connections_.find(tuple);
    if (it != connections_.end() && it->second->closed()) {
      closed_retransmissions_ += it->second->stats().retransmissions;
      closed_timeouts_ += it->second->stats().timeouts;
      connections_.erase(it);
    }
  });
}

std::uint64_t Host::total_retransmissions() const {
  std::uint64_t total = closed_retransmissions_;
  for (const auto& [tuple, conn] : connections_) {
    total += conn->stats().retransmissions;
  }
  return total;
}

std::uint64_t Host::total_timeouts() const {
  std::uint64_t total = closed_timeouts_;
  for (const auto& [tuple, conn] : connections_) {
    total += conn->stats().timeouts;
  }
  return total;
}

tcp::TcpConnection& Host::connect(
    net::Ipv4Address dst, std::uint16_t dst_port,
    tcp::TcpConnection::Callbacks callbacks,
    std::optional<tcp::TcpConfig> override_config) {
  const tcp::TcpConfig base = override_config.value_or(default_config_);
  const tcp::TcpConfig config = effective_config(dst, base);

  tcp::FourTuple tuple{address_, allocate_port(), dst, dst_port};
  // Extremely long simulations can wrap the ephemeral space; skip over any
  // tuple still alive.
  while (connections_.contains(tuple)) tuple.local_port = allocate_port();

  ++stats_.connections_opened;
  auto& conn = create_connection(tuple, config, std::move(callbacks));
  conn.connect();
  return conn;
}

void Host::listen(std::uint16_t port, AcceptHook on_accept) {
  if (!listeners_.emplace(port, std::move(on_accept)).second) {
    throw std::logic_error("Host::listen: port already listening");
  }
}

void Host::close_listener(std::uint16_t port) { listeners_.erase(port); }

void Host::send_segment_thunk(void* ctx, const tcp::FourTuple& tuple,
                              tcp::SegmentRef seg) {
  static_cast<Host*>(ctx)->send_segment(tuple, std::move(seg));
}

void Host::send_segment(const tcp::FourTuple& tuple, tcp::SegmentRef seg) {
  const RouteEntry* route = routes_.lookup(tuple.remote_addr);
  if (route == nullptr || route->device == nullptr) {
    ++stats_.no_route_drops;
    return;
  }
  net::Packet packet;
  packet.src = tuple.local_addr;
  packet.dst = tuple.remote_addr;
  packet.size_bytes = seg->payload_bytes + default_config_.header_bytes;
  packet.payload = std::move(seg).ref();
  ++stats_.packets_sent;
  route->device->receive(packet);
}

void Host::send_rst_for(const net::Packet& packet, const tcp::Segment& seg) {
  const RouteEntry* route = routes_.lookup(packet.src);
  if (route == nullptr || route->device == nullptr) return;
  tcp::SegmentRef rst = tcp::SegmentPool::local().allocate();
  rst->src_port = seg.dst_port;
  rst->dst_port = seg.src_port;
  rst->rst = true;
  rst->ack_flag = true;
  rst->ack = seg.seq_end();
  net::Packet out;
  out.src = packet.dst;
  out.dst = packet.src;
  out.size_bytes = default_config_.header_bytes;
  out.payload = std::move(rst).ref();
  ++stats_.rst_sent;
  ++stats_.packets_sent;
  route->device->receive(out);
}

void Host::receive(const net::Packet& packet) {
  ++stats_.packets_received;
  const auto* seg = tcp::segment_from(packet);
  if (seg == nullptr) return;  // only TCP exists in this simulation

  const tcp::FourTuple tuple{packet.dst, seg->dst_port, packet.src,
                             seg->src_port};
  const auto it = connections_.find(tuple);
  if (it != connections_.end()) {
    it->second->on_segment(*seg);
    return;
  }

  if (seg->syn && !seg->ack_flag) {
    const auto listener = listeners_.find(seg->dst_port);
    if (listener != listeners_.end()) {
      ++stats_.connections_accepted;
      const tcp::TcpConfig config =
          effective_config(packet.src, default_config_);
      auto& conn = create_connection(tuple, config, {});
      listener->second(conn);
      conn.accept(*seg);
      return;
    }
  }

  ++stats_.no_connection_drops;
  if (!seg->rst) send_rst_for(packet, *seg);
}

std::vector<SocketInfo> Host::socket_stats() const {
  std::vector<SocketInfo> out;
  out.reserve(connections_.size());
  for (const auto& [tuple, conn] : connections_) {
    SocketInfo info;
    info.tuple = tuple;
    info.state = conn->state();
    info.cwnd_segments = conn->cwnd_segments();
    info.bytes_acked = conn->bytes_acked();
    info.bytes_in_flight = conn->bytes_in_flight();
    info.retransmissions = conn->stats().retransmissions;
    info.segments_sent = conn->stats().segments_sent;
    info.srtt = conn->srtt();
    info.established_at = conn->established_at();
    out.push_back(info);
  }
  return out;
}

tcp::TcpConnection* Host::find_connection(const tcp::FourTuple& tuple) {
  const auto it = connections_.find(tuple);
  return it == connections_.end() ? nullptr : it->second.get();
}

}  // namespace riptide::host

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"
#include "net/packet.h"
#include "tcp/config.h"

namespace riptide::host {

// Per-route TCP metrics, mirroring the `initcwnd` / `initrwnd` attributes of
// `ip route`. Zero means "unset — use the system default". This is the
// entire kernel surface Riptide drives (paper §III-C: the initial window
// cannot be set per-socket, only per-route). `cc` extends the same idiom to
// congestion-control selection (`ip route ... congctl <name>` on modern
// kernels): kUnset defers to the host-wide TcpConfig.
struct RouteMetrics {
  std::uint32_t initcwnd_segments = 0;
  std::uint32_t initrwnd_segments = 0;
  tcp::RouteCc cc = tcp::RouteCc::kUnset;

  friend bool operator==(const RouteMetrics&, const RouteMetrics&) = default;
};

struct RouteEntry {
  net::Prefix prefix;
  net::PacketSink* device = nullptr;  // egress (the host uplink in practice)
  RouteMetrics metrics;
};

// A host routing table with longest-prefix-match semantics and `ip route`
// style mutation. Lookups happen at connection setup only (as in Linux,
// where the route's initcwnd is read once when the socket transmits its
// SYN), so a linear scan over a sorted vector is plenty.
class RoutingTable {
 public:
  // `ip route replace <prefix> ... initcwnd N initrwnd M`
  void add_or_replace(const net::Prefix& prefix, net::PacketSink& device,
                      RouteMetrics metrics = {});

  // `ip route del <prefix>`; returns false when absent.
  bool remove(const net::Prefix& prefix);

  bool has_route(const net::Prefix& prefix) const;

  // Exact-prefix lookup (no LPM); nullptr when absent. The agent's route
  // reconciler uses this to compare what it installed with what the table
  // actually holds now.
  const RouteEntry* find_route(const net::Prefix& prefix) const;

  // Routes that look Riptide-installed: non-default prefix with a nonzero
  // initcwnd metric. Returned in PrefixOrder so callers iterating them
  // act deterministically.
  std::vector<RouteEntry> learned_routes() const;

  // Longest-prefix match; nullptr when nothing covers `dst`.
  const RouteEntry* lookup(net::Ipv4Address dst) const;

  // Longest-prefix match skipping the entry for exactly `excluded`. Used
  // when *replacing* a route: the new entry's egress should come from the
  // underlying (less specific) route, not from the route being replaced.
  const RouteEntry* lookup_excluding(net::Ipv4Address dst,
                                     const net::Prefix& excluded) const;

  // Effective initial windows for a destination: the most specific route's
  // metric, or `fallback` where the metric is unset.
  std::uint32_t effective_initcwnd(net::Ipv4Address dst,
                                   std::uint32_t fallback) const;
  std::uint32_t effective_initrwnd(net::Ipv4Address dst,
                                   std::uint32_t fallback) const;

  // Congestion-control regime programmed for a destination; kUnset when no
  // covering route carries one (host default applies).
  tcp::RouteCc effective_cc(net::Ipv4Address dst) const;

  const std::vector<RouteEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

 private:
  // Sorted by descending prefix length (most specific first).
  std::vector<RouteEntry> entries_;
};

}  // namespace riptide::host

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "host/routing_table.h"
#include "net/ipv4.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/config.h"
#include "tcp/connection.h"
#include "tcp/tuple.h"

namespace riptide::host {

// One row of the host's `ss -ti`-style connection dump: the information
// surface Riptide's observer polls (paper §III-B: current cwnd per open
// connection; bytes transferred are also "available via ss" and feed the
// traffic-weighted combiner variant).
struct SocketInfo {
  tcp::FourTuple tuple;
  tcp::TcpState state = tcp::TcpState::kClosed;
  std::uint32_t cwnd_segments = 0;
  std::uint64_t bytes_acked = 0;
  std::uint64_t bytes_in_flight = 0;
  // Cumulative loss-recovery counters (real `ss -ti` prints retrans and
  // segs_out); the agent's staleness guard rates retransmissions against
  // segments sent to detect paths gone bad under a learned window.
  std::uint64_t retransmissions = 0;
  std::uint64_t segments_sent = 0;
  std::optional<sim::Time> srtt;
  sim::Time established_at;
};

struct HostStats {
  std::uint64_t packets_received = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t rst_sent = 0;
  std::uint64_t no_route_drops = 0;
  std::uint64_t no_connection_drops = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_accepted = 0;
};

// A simulated Linux server: single NIC, TCP demultiplexer, routing table
// with per-route initial-window metrics, and listener sockets.
//
// Route metrics are consulted once per connection at setup time — for both
// actively opened and accepted connections, exactly as the kernel does —
// which is the hook Riptide exploits without touching the peer.
class Host : public net::PacketSink {
 public:
  // The accept hook runs before the SYN is processed so the application can
  // attach callbacks via TcpConnection::set_callbacks.
  using AcceptHook = std::function<void(tcp::TcpConnection&)>;

  Host(sim::Simulator& sim, std::string name, net::Ipv4Address address,
       tcp::TcpConfig default_config = {});

  // Points the default route (0.0.0.0/0) at `uplink`.
  void attach_uplink(net::PacketSink& uplink);

  // Active open. The effective TcpConfig starts from the host default,
  // applies `override_config` if given, then applies route metrics.
  tcp::TcpConnection& connect(
      net::Ipv4Address dst, std::uint16_t dst_port,
      tcp::TcpConnection::Callbacks callbacks,
      std::optional<tcp::TcpConfig> override_config = std::nullopt);

  void listen(std::uint16_t port, AcceptHook on_accept);
  void close_listener(std::uint16_t port);

  void receive(const net::Packet& packet) override;

  // The `ss` surface: a snapshot of all live connections.
  std::vector<SocketInfo> socket_stats() const;

  // Finds a live connection by tuple; nullptr when gone.
  tcp::TcpConnection* find_connection(const tcp::FourTuple& tuple);

  RoutingTable& routing_table() { return routes_; }
  const RoutingTable& routing_table() const { return routes_; }

  sim::Simulator& simulator() { return sim_; }
  const std::string& name() const { return name_; }
  net::Ipv4Address address() const { return address_; }
  tcp::TcpConfig& default_config() { return default_config_; }
  const HostStats& stats() const { return stats_; }
  std::size_t connection_count() const { return connections_.size(); }

  // Cumulative loss-recovery totals across live *and* already-closed
  // connections. Per-connection counters die with the connection; these
  // survive churn, which is what lets fault benches quantify the damage a
  // stale oversized window did before its flows finished.
  std::uint64_t total_retransmissions() const;
  std::uint64_t total_timeouts() const;

 private:
  tcp::TcpConfig effective_config(net::Ipv4Address peer,
                                  const tcp::TcpConfig& base) const;
  // TcpConnection::SegmentSender target: `ctx` is the owning Host.
  static void send_segment_thunk(void* ctx, const tcp::FourTuple& tuple,
                                 tcp::SegmentRef seg);
  void send_segment(const tcp::FourTuple& tuple, tcp::SegmentRef seg);
  void send_rst_for(const net::Packet& packet, const tcp::Segment& seg);
  tcp::TcpConnection& create_connection(const tcp::FourTuple& tuple,
                                        const tcp::TcpConfig& config,
                                        tcp::TcpConnection::Callbacks callbacks);
  void schedule_removal(const tcp::FourTuple& tuple);
  std::uint16_t allocate_port();

  sim::Simulator& sim_;
  std::string name_;
  net::Ipv4Address address_;
  tcp::TcpConfig default_config_;
  RoutingTable routes_;
  net::PacketSink* uplink_ = nullptr;

  std::unordered_map<tcp::FourTuple, std::unique_ptr<tcp::TcpConnection>,
                     tcp::FourTupleHash>
      connections_;
  std::unordered_map<std::uint16_t, AcceptHook> listeners_;
  std::uint16_t next_ephemeral_port_ = 32768;
  HostStats stats_;
  // Loss-recovery counters inherited from connections already erased.
  std::uint64_t closed_retransmissions_ = 0;
  std::uint64_t closed_timeouts_ = 0;
};

}  // namespace riptide::host

#pragma once

#include <string>
#include <vector>

#include "host/host.h"

namespace riptide::host {

// Textual `ss -ti`-style rendering of a host's connection table, and the
// parser that recovers the fields Riptide needs. The paper's tool is a
// user-space script that shells out to `ss` and parses its output; running
// the agent through this text round-trip (RiptideConfig::via_text_interface)
// demonstrates that the textual surface carries all required information.
//
// Format, one connection per line (wrapped here for width):
//   ESTAB 10.0.0.1:42000 10.1.0.1:9000 cwnd:34 bytes_acked:100000
//     rtt:120.5 unacked:0 retrans:3 segs_out:120
// (rtt in milliseconds, "-" when not yet sampled.)

std::string format_socket_stats(const std::vector<SocketInfo>& infos);

// Fields recovered from one `ss` line.
struct ParsedSocketInfo {
  tcp::TcpState state = tcp::TcpState::kClosed;
  net::Ipv4Address local_addr;
  std::uint16_t local_port = 0;
  net::Ipv4Address remote_addr;
  std::uint16_t remote_port = 0;
  std::uint32_t cwnd_segments = 0;
  std::uint64_t bytes_acked = 0;
  double rtt_ms = -1.0;  // -1 when unsampled
  std::uint64_t bytes_in_flight = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t segments_sent = 0;
};

// Parses the output of format_socket_stats. Malformed lines are skipped
// (never thrown on): a monitoring agent must survive garbage in a pipe.
std::vector<ParsedSocketInfo> parse_socket_stats(const std::string& text);

}  // namespace riptide::host

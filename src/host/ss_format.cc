#include "host/ss_format.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>

namespace riptide::host {

namespace {

const char* state_token(tcp::TcpState state) {
  switch (state) {
    case tcp::TcpState::kEstablished: return "ESTAB";
    case tcp::TcpState::kSynSent: return "SYN-SENT";
    case tcp::TcpState::kSynReceived: return "SYN-RECV";
    case tcp::TcpState::kFinWait1: return "FIN-WAIT-1";
    case tcp::TcpState::kFinWait2: return "FIN-WAIT-2";
    case tcp::TcpState::kCloseWait: return "CLOSE-WAIT";
    case tcp::TcpState::kClosing: return "CLOSING";
    case tcp::TcpState::kLastAck: return "LAST-ACK";
    case tcp::TcpState::kTimeWait: return "TIME-WAIT";
    case tcp::TcpState::kClosed: return "CLOSED";
  }
  return "UNKNOWN";
}

bool parse_state(const std::string& token, tcp::TcpState& out) {
  static const std::pair<const char*, tcp::TcpState> kStates[] = {
      {"ESTAB", tcp::TcpState::kEstablished},
      {"SYN-SENT", tcp::TcpState::kSynSent},
      {"SYN-RECV", tcp::TcpState::kSynReceived},
      {"FIN-WAIT-1", tcp::TcpState::kFinWait1},
      {"FIN-WAIT-2", tcp::TcpState::kFinWait2},
      {"CLOSE-WAIT", tcp::TcpState::kCloseWait},
      {"CLOSING", tcp::TcpState::kClosing},
      {"LAST-ACK", tcp::TcpState::kLastAck},
      {"TIME-WAIT", tcp::TcpState::kTimeWait},
      {"CLOSED", tcp::TcpState::kClosed},
  };
  for (const auto& [name, state] : kStates) {
    if (token == name) {
      out = state;
      return true;
    }
  }
  return false;
}

// "10.0.0.1:42000" -> address + port.
bool parse_endpoint(const std::string& token, net::Ipv4Address& addr,
                    std::uint16_t& port) {
  const auto colon = token.rfind(':');
  if (colon == std::string::npos) return false;
  try {
    addr = net::Ipv4Address::parse(token.substr(0, colon));
    const int p = std::stoi(token.substr(colon + 1));
    if (p < 0 || p > 65535) return false;
    port = static_cast<std::uint16_t>(p);
  } catch (...) {
    return false;
  }
  return true;
}

// "key:value" -> value string, empty when the key doesn't match. The
// prefix check is done on string_views so a non-matching key (the common
// case: every token is tested against every key) costs no allocation.
bool keyed_value(const std::string& token, std::string_view key,
                 std::string& value) {
  const std::string_view tok(token);
  if (tok.size() <= key.size() || tok[key.size()] != ':' ||
      tok.compare(0, key.size(), key) != 0) {
    return false;
  }
  value.assign(token, key.size() + 1, std::string::npos);
  return true;
}

}  // namespace

namespace {

// "%u.%u.%u.%u:%u" without the to_string() temporary.
int format_endpoint(char* buf, std::size_t size, net::Ipv4Address addr,
                    std::uint16_t port) {
  const std::uint32_t v = addr.value();
  return std::snprintf(buf, size, "%u.%u.%u.%u:%u", (v >> 24) & 0xff,
                       (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff,
                       static_cast<unsigned>(port));
}

}  // namespace

std::string format_socket_stats(const std::vector<SocketInfo>& infos) {
  std::string out;
  // Generous per-line upper bound (observed lines are ~110 bytes); one
  // reserve up front instead of ostringstream's repeated regrowth.
  out.reserve(infos.size() * 160);
  for (const auto& info : infos) {
    char rtt_buf[32];
    if (info.srtt) {
      std::snprintf(rtt_buf, sizeof(rtt_buf), "%.3f",
                    info.srtt->to_milliseconds());
    } else {
      std::snprintf(rtt_buf, sizeof(rtt_buf), "-");
    }
    char local_buf[32], remote_buf[32];
    format_endpoint(local_buf, sizeof(local_buf), info.tuple.local_addr,
                    info.tuple.local_port);
    format_endpoint(remote_buf, sizeof(remote_buf), info.tuple.remote_addr,
                    info.tuple.remote_port);
    char line[256];
    const int n = std::snprintf(
        line, sizeof(line),
        "%s %s %s cwnd:%u bytes_acked:%llu rtt:%s unacked:%llu retrans:%llu"
        " segs_out:%llu\n",
        state_token(info.state), local_buf, remote_buf, info.cwnd_segments,
        static_cast<unsigned long long>(info.bytes_acked), rtt_buf,
        static_cast<unsigned long long>(info.bytes_in_flight),
        static_cast<unsigned long long>(info.retransmissions),
        static_cast<unsigned long long>(info.segments_sent));
    if (n > 0) out.append(line, static_cast<std::size_t>(n));
  }
  return out;
}

std::vector<ParsedSocketInfo> parse_socket_stats(const std::string& text) {
  std::vector<ParsedSocketInfo> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string state_tok, local_tok, remote_tok;
    if (!(fields >> state_tok >> local_tok >> remote_tok)) continue;

    ParsedSocketInfo info;
    if (!parse_state(state_tok, info.state)) continue;
    if (!parse_endpoint(local_tok, info.local_addr, info.local_port)) continue;
    if (!parse_endpoint(remote_tok, info.remote_addr, info.remote_port)) {
      continue;
    }

    bool have_cwnd = false;
    std::string token, value;
    bool bad = false;
    while (fields >> token) {
      try {
        if (keyed_value(token, "cwnd", value)) {
          info.cwnd_segments = static_cast<std::uint32_t>(std::stoul(value));
          have_cwnd = true;
        } else if (keyed_value(token, "bytes_acked", value)) {
          info.bytes_acked = std::stoull(value);
        } else if (keyed_value(token, "rtt", value)) {
          info.rtt_ms = value == "-" ? -1.0 : std::stod(value);
        } else if (keyed_value(token, "unacked", value)) {
          info.bytes_in_flight = std::stoull(value);
        } else if (keyed_value(token, "retrans", value)) {
          info.retransmissions = std::stoull(value);
        } else if (keyed_value(token, "segs_out", value)) {
          info.segments_sent = std::stoull(value);
        }
        // Unknown keys are ignored: newer `ss` versions add fields.
      } catch (...) {
        bad = true;
        break;
      }
    }
    if (bad || !have_cwnd) continue;
    out.push_back(info);
  }
  return out;
}

}  // namespace riptide::host

#include "host/ss_format.h"

#include <cstdio>
#include <sstream>

namespace riptide::host {

namespace {

const char* state_token(tcp::TcpState state) {
  switch (state) {
    case tcp::TcpState::kEstablished: return "ESTAB";
    case tcp::TcpState::kSynSent: return "SYN-SENT";
    case tcp::TcpState::kSynReceived: return "SYN-RECV";
    case tcp::TcpState::kFinWait1: return "FIN-WAIT-1";
    case tcp::TcpState::kFinWait2: return "FIN-WAIT-2";
    case tcp::TcpState::kCloseWait: return "CLOSE-WAIT";
    case tcp::TcpState::kClosing: return "CLOSING";
    case tcp::TcpState::kLastAck: return "LAST-ACK";
    case tcp::TcpState::kTimeWait: return "TIME-WAIT";
    case tcp::TcpState::kClosed: return "CLOSED";
  }
  return "UNKNOWN";
}

bool parse_state(const std::string& token, tcp::TcpState& out) {
  static const std::pair<const char*, tcp::TcpState> kStates[] = {
      {"ESTAB", tcp::TcpState::kEstablished},
      {"SYN-SENT", tcp::TcpState::kSynSent},
      {"SYN-RECV", tcp::TcpState::kSynReceived},
      {"FIN-WAIT-1", tcp::TcpState::kFinWait1},
      {"FIN-WAIT-2", tcp::TcpState::kFinWait2},
      {"CLOSE-WAIT", tcp::TcpState::kCloseWait},
      {"CLOSING", tcp::TcpState::kClosing},
      {"LAST-ACK", tcp::TcpState::kLastAck},
      {"TIME-WAIT", tcp::TcpState::kTimeWait},
      {"CLOSED", tcp::TcpState::kClosed},
  };
  for (const auto& [name, state] : kStates) {
    if (token == name) {
      out = state;
      return true;
    }
  }
  return false;
}

// "10.0.0.1:42000" -> address + port.
bool parse_endpoint(const std::string& token, net::Ipv4Address& addr,
                    std::uint16_t& port) {
  const auto colon = token.rfind(':');
  if (colon == std::string::npos) return false;
  try {
    addr = net::Ipv4Address::parse(token.substr(0, colon));
    const int p = std::stoi(token.substr(colon + 1));
    if (p < 0 || p > 65535) return false;
    port = static_cast<std::uint16_t>(p);
  } catch (...) {
    return false;
  }
  return true;
}

// "key:value" -> value string, empty when the key doesn't match.
bool keyed_value(const std::string& token, const char* key,
                 std::string& value) {
  const std::string prefix = std::string(key) + ":";
  if (token.rfind(prefix, 0) != 0) return false;
  value = token.substr(prefix.size());
  return true;
}

}  // namespace

std::string format_socket_stats(const std::vector<SocketInfo>& infos) {
  std::ostringstream os;
  for (const auto& info : infos) {
    char rtt_buf[32];
    if (info.srtt) {
      std::snprintf(rtt_buf, sizeof(rtt_buf), "%.3f",
                    info.srtt->to_milliseconds());
    } else {
      std::snprintf(rtt_buf, sizeof(rtt_buf), "-");
    }
    os << state_token(info.state) << ' '
       << info.tuple.local_addr.to_string() << ':' << info.tuple.local_port
       << ' ' << info.tuple.remote_addr.to_string() << ':'
       << info.tuple.remote_port << " cwnd:" << info.cwnd_segments
       << " bytes_acked:" << info.bytes_acked << " rtt:" << rtt_buf
       << " unacked:" << info.bytes_in_flight
       << " retrans:" << info.retransmissions
       << " segs_out:" << info.segments_sent << '\n';
  }
  return os.str();
}

std::vector<ParsedSocketInfo> parse_socket_stats(const std::string& text) {
  std::vector<ParsedSocketInfo> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string state_tok, local_tok, remote_tok;
    if (!(fields >> state_tok >> local_tok >> remote_tok)) continue;

    ParsedSocketInfo info;
    if (!parse_state(state_tok, info.state)) continue;
    if (!parse_endpoint(local_tok, info.local_addr, info.local_port)) continue;
    if (!parse_endpoint(remote_tok, info.remote_addr, info.remote_port)) {
      continue;
    }

    bool have_cwnd = false;
    std::string token, value;
    bool bad = false;
    while (fields >> token) {
      try {
        if (keyed_value(token, "cwnd", value)) {
          info.cwnd_segments = static_cast<std::uint32_t>(std::stoul(value));
          have_cwnd = true;
        } else if (keyed_value(token, "bytes_acked", value)) {
          info.bytes_acked = std::stoull(value);
        } else if (keyed_value(token, "rtt", value)) {
          info.rtt_ms = value == "-" ? -1.0 : std::stod(value);
        } else if (keyed_value(token, "unacked", value)) {
          info.bytes_in_flight = std::stoull(value);
        } else if (keyed_value(token, "retrans", value)) {
          info.retransmissions = std::stoull(value);
        } else if (keyed_value(token, "segs_out", value)) {
          info.segments_sent = std::stoull(value);
        }
        // Unknown keys are ignored: newer `ss` versions add fields.
      } catch (...) {
        bad = true;
        break;
      }
    }
    if (bad || !have_cwnd) continue;
    out.push_back(info);
  }
  return out;
}

}  // namespace riptide::host

#include "host/routing_table.h"

#include <algorithm>

namespace riptide::host {

void RoutingTable::add_or_replace(const net::Prefix& prefix,
                                  net::PacketSink& device,
                                  RouteMetrics metrics) {
  for (auto& entry : entries_) {
    if (entry.prefix == prefix) {
      entry.device = &device;
      entry.metrics = metrics;
      return;
    }
  }
  entries_.push_back(RouteEntry{prefix, &device, metrics});
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const RouteEntry& a, const RouteEntry& b) {
                     return a.prefix.length() > b.prefix.length();
                   });
}

bool RoutingTable::remove(const net::Prefix& prefix) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const RouteEntry& e) { return e.prefix == prefix; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

bool RoutingTable::has_route(const net::Prefix& prefix) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const RouteEntry& e) { return e.prefix == prefix; });
}

const RouteEntry* RoutingTable::find_route(const net::Prefix& prefix) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const RouteEntry& e) { return e.prefix == prefix; });
  return it == entries_.end() ? nullptr : &*it;
}

std::vector<RouteEntry> RoutingTable::learned_routes() const {
  std::vector<RouteEntry> learned;
  learned.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (entry.prefix.length() == 0) continue;
    if (entry.metrics.initcwnd_segments == 0) continue;
    learned.push_back(entry);
  }
  std::sort(learned.begin(), learned.end(),
            [](const RouteEntry& a, const RouteEntry& b) {
              return net::PrefixOrder{}(a.prefix, b.prefix);
            });
  return learned;
}

const RouteEntry* RoutingTable::lookup(net::Ipv4Address dst) const {
  for (const auto& entry : entries_) {
    if (entry.prefix.contains(dst)) return &entry;
  }
  return nullptr;
}

const RouteEntry* RoutingTable::lookup_excluding(
    net::Ipv4Address dst, const net::Prefix& excluded) const {
  for (const auto& entry : entries_) {
    if (entry.prefix == excluded) continue;
    if (entry.prefix.contains(dst)) return &entry;
  }
  return nullptr;
}

std::uint32_t RoutingTable::effective_initcwnd(net::Ipv4Address dst,
                                               std::uint32_t fallback) const {
  const RouteEntry* entry = lookup(dst);
  if (entry == nullptr || entry->metrics.initcwnd_segments == 0) {
    return fallback;
  }
  return entry->metrics.initcwnd_segments;
}

std::uint32_t RoutingTable::effective_initrwnd(net::Ipv4Address dst,
                                               std::uint32_t fallback) const {
  const RouteEntry* entry = lookup(dst);
  if (entry == nullptr || entry->metrics.initrwnd_segments == 0) {
    return fallback;
  }
  return entry->metrics.initrwnd_segments;
}

tcp::RouteCc RoutingTable::effective_cc(net::Ipv4Address dst) const {
  const RouteEntry* entry = lookup(dst);
  if (entry == nullptr) return tcp::RouteCc::kUnset;
  return entry->metrics.cc;
}

}  // namespace riptide::host

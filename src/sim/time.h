#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace riptide::sim {

// Simulated time as a strong type over signed nanoseconds. Signed so that
// differences and "not yet scheduled" sentinels are representable without
// wrap-around surprises (Core Guidelines ES.102).
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time nanoseconds(std::int64_t ns) { return Time{ns}; }
  static constexpr Time microseconds(std::int64_t us) { return Time{us * 1'000}; }
  static constexpr Time milliseconds(std::int64_t ms) { return Time{ms * 1'000'000}; }
  static constexpr Time seconds(std::int64_t s) { return Time{s * 1'000'000'000}; }
  static constexpr Time minutes(std::int64_t m) { return seconds(m * 60); }
  static constexpr Time hours(std::int64_t h) { return seconds(h * 3600); }

  // Fractional constructors for rates/latencies computed in double.
  static constexpr Time from_seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Time from_milliseconds(double ms) {
    return Time{static_cast<std::int64_t>(ms * 1e6)};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_milliseconds() const { return static_cast<double>(ns_) / 1e6; }

  friend constexpr auto operator<=>(Time, Time) = default;

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  Time& operator+=(Time other) {
    ns_ += other.ns_;
    return *this;
  }
  Time& operator-=(Time other) {
    ns_ -= other.ns_;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, Time t) {
    return os << t.to_milliseconds() << "ms";
  }

 private:
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace riptide::sim

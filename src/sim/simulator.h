#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace riptide::sim {

class Simulator;

// Handle used to cancel a scheduled event. The handle is a (slot,
// generation) ticket into the simulator's event slab: cancelling bumps the
// slot's generation so the queued entry is skipped when it surfaces, and a
// stale handle (fired, cancelled, or slot since reused) reads as invalid
// and cancels nothing. Cancellation stays cheap for the common case of TCP
// retransmission timers, which are rearmed on every ACK.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event (if still pending) and releases the handle: a
  // cancelled handle reads as invalid, so guards like
  // `if (timer.valid()) return;` rearm correctly after cancellation.
  // Precondition: the simulator that issued the handle must still be
  // alive (holders are members of objects owned by the experiment, which
  // destroys them before its simulator).
  void cancel();

  // True while the event (or periodic series) is still scheduled.
  bool valid() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

// Single-threaded discrete-event simulator. Events at equal timestamps fire
// in scheduling (FIFO) order, which keeps runs deterministic.
//
// Hot-path representation: callbacks live in a slab of reusable event
// records (periodic timers keep their slot across firings); the priority
// queue itself holds 24-byte trivially-copyable entries, so heap sifting
// never moves a callback. Cancelled entries are skipped lazily when they
// surface, and the queue is compacted whenever cancelled entries outnumber
// live ones, so long-lived rearm-heavy workloads stay bounded.
class Simulator {
 public:
  using Callback = sim::Callback;

  Time now() const { return now_; }

  // Schedules `cb` to run at now() + delay. Precondition: delay >= 0.
  EventHandle schedule(Time delay, Callback cb);
  EventHandle schedule_at(Time when, Callback cb);

  // Schedules `cb` every `interval`, starting at now() + initial_delay.
  // The returned handle cancels all future firings (including from inside
  // the callback itself).
  EventHandle schedule_periodic(Time initial_delay, Time interval, Callback cb);

  // Runs events until the queue empties or `deadline` is reached; events
  // scheduled exactly at the deadline still run. Returns the number of
  // events executed.
  std::uint64_t run_until(Time deadline);

  // Runs until the queue is empty. Use run_until for open-loop workloads
  // that generate events forever.
  std::uint64_t run();

  // Stops the current run_* call after the in-flight event completes.
  void stop() { stopped_ = true; }

  // drop_pending post-condition check. The drain exists to return pooled
  // segments to the thread-local SegmentPool before a thread boundary, so
  // "pool has no live segments afterwards" is the property that proves the
  // drain worked. kAssertEmpty enforces it in debug builds; pass kSkip
  // when other simulators on the same thread legitimately still hold
  // segments (e.g. draining several shard cells that share a worker —
  // only the last drain on the thread can expect an empty pool).
  enum class PoolCheck { kSkip, kAssertEmpty };

  // Destroys every scheduled callback without running it and invalidates
  // all outstanding handles. For finished simulations whose owner is about
  // to cross a thread boundary: pending callbacks can capture pooled
  // segments, and the thread-local SegmentPool they must return to dies
  // with the thread that ran the simulation, so a worker drains here
  // before handing the experiment back. Must not be called from inside a
  // running callback. In debug builds, asserts the thread-local segment
  // pool is empty afterwards unless PoolCheck::kSkip is passed — the
  // cross-thread pool-escape class of bug then fails fast at the drain
  // site instead of only under ASan.
  void drop_pending(PoolCheck check = PoolCheck::kAssertEmpty);

  std::uint64_t events_executed() const { return executed_; }

  // Queue entries, including not-yet-reclaimed cancelled ones. Compaction
  // keeps this within a small factor of live_events().
  std::size_t pending_events() const { return heap_.size(); }
  std::size_t live_events() const { return heap_.size() - cancelled_; }

 private:
  friend class EventHandle;

  // Slab record owning the callback. `gen` is bumped whenever the slot's
  // current event ends (fires, is cancelled, or the slot is reused), which
  // invalidates every outstanding (slot, gen) ticket for it.
  struct EventRecord {
    Callback cb;
    Time interval{};  // > zero() for periodic events
    std::uint32_t gen = 0;
  };

  // Heap entry: trivially copyable, no callback, cheap to sift/compact.
  struct QueueEntry {
    Time when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;

    bool operator>(const QueueEntry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  static constexpr std::size_t kCompactMinEntries = 64;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void push_entry(Time when, std::uint32_t slot, std::uint32_t gen);
  void cancel_event(std::uint32_t slot, std::uint32_t gen);
  bool event_pending(std::uint32_t slot, std::uint32_t gen) const;
  void maybe_compact();
  void purge_cancelled_top();
  void pop_and_run_next();

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::size_t cancelled_ = 0;  // dead entries still in heap_
  bool in_flight_ = false;     // an event's callback is executing
  std::uint32_t in_flight_slot_ = 0;
  std::uint32_t in_flight_gen_ = 0;
  std::vector<EventRecord> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<QueueEntry> heap_;  // min-heap via std::*_heap + greater
};

inline void EventHandle::cancel() {
  if (sim_ != nullptr) {
    sim_->cancel_event(slot_, gen_);
    sim_ = nullptr;
  }
}

inline bool EventHandle::valid() const {
  return sim_ != nullptr && sim_->event_pending(slot_, gen_);
}

}  // namespace riptide::sim

#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace riptide::sim {

class Simulator;

// Handle used to cancel a scheduled event. The handle is a (slot,
// generation) ticket into the simulator's event slab: cancelling bumps the
// slot's generation so any queued reference to it reads as dead, and a
// stale handle (fired, cancelled, or slot since reused) reads as invalid
// and cancels nothing. Cancellation is an O(1) intrusive unlink for
// wheel-resident events — the common case of TCP retransmission timers,
// which are rearmed on every ACK, never leaves garbage behind.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event (if still pending) and releases the handle: a
  // cancelled handle reads as invalid, so guards like
  // `if (timer.valid()) return;` rearm correctly after cancellation.
  // Precondition: the simulator that issued the handle must still be
  // alive (holders are members of objects owned by the experiment, which
  // destroys them before its simulator).
  void cancel();

  // True while the event (or periodic series) is still scheduled.
  bool valid() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

// Single-threaded discrete-event simulator. Events at equal timestamps fire
// in scheduling (FIFO) order, which keeps runs deterministic.
//
// Hot-path representation: a two-tier scheduler replaces the PR-1 binary
// heap. Tier one is a hierarchical timer wheel: levels 0 and 1 are wide
// 4096-bucket windows (1 ns and 4.1 µs buckets respectively, so the
// microsecond-scale transmission events insert at their final position
// with no cascading and millisecond-scale RTT events cascade exactly
// once), topped by five 64-bucket levels whose bucket width is the span
// of the level below — a total horizon of 2^54 ns, ~208 simulated days.
// Tier two is a small overflow min-heap for far-future stragglers, which
// promote into the wheel as the cursor approaches them. Scheduling and cancellation are O(1) (insert is
// an intrusive push, cancel an intrusive unlink — no lazy garbage, no
// stop-the-world compaction), and dispatch pops whole level-0 buckets as
// run-lists instead of per-event heap sifts. Exact (when, seq) dispatch
// order is preserved: a level-0 bucket holds exactly one timestamp, and
// its run-list is sorted by seq before executing, so cascade and
// promotion order can never leak into dispatch order.
class Simulator {
 public:
  using Callback = sim::Callback;

  Simulator() { heads_.fill(kNil); }

  // Identifies the event-queue implementation in bench output.
  static constexpr const char* scheduler_name() { return "timer-wheel"; }

  Time now() const { return now_; }

  // Schedules `cb` to run at now() + delay. Precondition: delay >= 0.
  EventHandle schedule(Time delay, Callback cb);
  EventHandle schedule_at(Time when, Callback cb);

  // Schedules `cb` every `interval`, starting at now() + initial_delay.
  // The returned handle cancels all future firings (including from inside
  // the callback itself).
  EventHandle schedule_periodic(Time initial_delay, Time interval, Callback cb);

  // Runs events until the queue empties or `deadline` is reached; events
  // scheduled exactly at the deadline still run. Returns the number of
  // events executed.
  std::uint64_t run_until(Time deadline);

  // Runs until the queue is empty. Use run_until for open-loop workloads
  // that generate events forever.
  std::uint64_t run();

  // Stops the current run_* call after the in-flight event completes.
  void stop() { stopped_ = true; }

  // drop_pending post-condition check. The drain exists to return pooled
  // segments to the thread-local SegmentPool before a thread boundary, so
  // "pool has no live segments afterwards" is the property that proves the
  // drain worked. kAssertEmpty enforces it in debug builds; pass kSkip
  // when other simulators on the same thread legitimately still hold
  // segments (e.g. draining several shard cells that share a worker —
  // only the last drain on the thread can expect an empty pool).
  enum class PoolCheck { kSkip, kAssertEmpty };

  // Destroys every scheduled callback without running it and invalidates
  // all outstanding handles. For finished simulations whose owner is about
  // to cross a thread boundary: pending callbacks can capture pooled
  // segments, and the thread-local SegmentPool they must return to dies
  // with the thread that ran the simulation, so a worker drains here
  // before handing the experiment back. Must not be called from inside a
  // running callback. In debug builds, asserts the thread-local segment
  // pool is empty afterwards unless PoolCheck::kSkip is passed — the
  // cross-thread pool-escape class of bug then fails fast at the drain
  // site instead of only under ASan.
  void drop_pending(PoolCheck check = PoolCheck::kAssertEmpty);

  std::uint64_t events_executed() const { return executed_; }

  // Authoritative per-tier accounting. live_events() counts scheduled,
  // not-yet-fired, not-yet-cancelled events; pending_events() adds the
  // overflow tier's lazily-cancelled residents (wheel cancellation
  // unlinks eagerly, so the two differ only by overflow zombies awaiting
  // reclamation — the old `heap size - cancelled` arithmetic is gone).
  std::size_t pending_events() const { return live_ + overflow_dead_; }
  std::size_t live_events() const { return live_; }

  // Live events currently parked in the far-future overflow heap (tier
  // two). Exposed for tests and the queue bench, which assert that
  // far-future scheduling actually exercises the overflow tier.
  std::size_t overflow_events() const { return overflow_live_; }

 private:
  friend class EventHandle;

  // Levels 0 and 1: 2^12 buckets each (bitmapped as 64 words + a summary
  // word), 1 ns and 2^12 ns wide. Upper levels 2..6: 64 buckets each,
  // level L covering 2^(24 + 6(L-1)) ns. upper_shift(L) = 24 + 6(L-2)
  // converts a tick to a level-L bucket number for L >= 2.
  static constexpr int kLevel0Bits = 12;
  static constexpr std::size_t kLevel0Buckets = std::size_t{1}
                                               << kLevel0Bits;
  static constexpr int kLevel1Bits = 12;
  static constexpr std::size_t kLevel1Buckets = std::size_t{1}
                                               << kLevel1Bits;
  static constexpr int kUpperBits = 6;
  static constexpr std::size_t kBuckets = std::size_t{1} << kUpperBits;
  static constexpr int kLevels = 7;  // levels 0-1 wide + 5 upper levels
  static constexpr std::size_t kUpperBase = kLevel0Buckets + kLevel1Buckets;
  static constexpr std::size_t kWheelBuckets =
      kUpperBase + (kLevels - 2) * kBuckets;
  static constexpr std::uint32_t kNil = 0xFFFFFFFF;
  static constexpr std::uint64_t kInfTick = ~std::uint64_t{0};

  static constexpr int upper_shift(int level) {
    return kLevel0Bits + kLevel1Bits + kUpperBits * (level - 2);
  }

  // EventNode::where values: 0..kWheelBuckets-1 name the containing wheel
  // bucket (level 0, then level 1, then level 2..6 blocks of 64); the
  // sentinels mark the other residences.
  static constexpr std::uint16_t kWhereOverflow = 0xFFFD;
  static constexpr std::uint16_t kWhereRun = 0xFFFE;
  static constexpr std::uint16_t kWhereNone = 0xFFFF;

  // The slab is split hot/cold by access pattern. EventNode is the
  // intrusive wheel node — everything cascades, unlinks, and seq sorting
  // touch — kept to one 32-byte half-line so redistributing a bucket
  // walks dense memory. The callback and periodic interval live in the
  // parallel EventData array and are touched only at schedule, dispatch,
  // and release. prev/next are slot indices, so slab reallocation never
  // invalidates a link; `gen` is bumped whenever the slot's current event
  // ends (fires, is cancelled, or the slot is reused), which invalidates
  // every outstanding (slot, gen) ticket for it.
  struct EventNode {
    std::uint64_t when = 0;   // absolute ns tick
    std::uint64_t seq = 0;    // tie-break: FIFO among equal timestamps
    std::uint32_t gen = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint16_t where = kWhereNone;
  };
  static_assert(sizeof(EventNode) == 32, "keep the hot node half-line sized");

  struct EventData {
    Callback cb;
    Time interval{};  // > zero() for periodic events
  };

  // Overflow-tier entry: trivially copyable, heap-sifted by (when, seq).
  struct OverflowEntry {
    std::uint64_t when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;

    bool operator>(const OverflowEntry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // Detached level-0 bucket entry awaiting dispatch, sorted by seq (the
  // whole bucket shares one timestamp).
  struct RunEntry {
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void release_node(std::uint32_t slot);
  void insert_event(std::uint32_t slot);
  void link_into_bucket(std::uint32_t slot, std::size_t bucket);
  void unlink_from_bucket(std::uint32_t slot);
  void mark_occupied(std::size_t bucket);
  void clear_occupied(std::size_t bucket);
  void cancel_event(std::uint32_t slot, std::uint32_t gen);
  bool event_pending(std::uint32_t slot, std::uint32_t gen) const;
  std::uint64_t earliest_level0() const;
  std::uint64_t earliest_cascade_start() const;
  void flush_perf_counters();
  void cascade_at(std::uint64_t boundary);
  void promote_overflow(std::uint64_t head_tick);
  const OverflowEntry* overflow_top();
  void maybe_scrub_overflow();
  bool seek(std::uint64_t limit, bool bounded, std::uint64_t* out_tick);
  std::uint64_t dispatch_bucket(std::uint64_t tick);
  void requeue_run_tail(std::size_t from);

  Time now_;
  std::uint64_t cursor_ = 0;  // wheel position in ns; == now_.ns() between runs
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  bool in_flight_ = false;     // an event's callback is executing
  bool dispatching_ = false;   // a level-0 run-list is being drained
  std::uint32_t in_flight_slot_ = 0;
  std::uint32_t in_flight_gen_ = 0;
  std::uint64_t dispatch_tick_ = 0;
  std::size_t live_ = 0;           // scheduled and not cancelled, all tiers
  std::size_t overflow_live_ = 0;  // live events in the overflow heap
  std::size_t overflow_dead_ = 0;  // cancelled entries awaiting reclamation
  // Lower bound on the next cascade-or-promotion boundary; 0 means
  // unknown (forces the full per-level scan). While the earliest level-0
  // tick stays below this floor, seek() can dispatch without rescanning
  // the upper levels — the common case when a burst of near-future
  // events drains. Inserts into the upper tiers pull the floor down;
  // consuming a boundary resets it to 0.
  std::uint64_t boundary_floor_ = 0;
  // Scheduler work counters, accumulated locally and flushed into the
  // thread-local perf::Counters once per run_* call — the dispatch loop
  // never pays a TLS lookup per event.
  std::uint64_t pend_cascaded_ = 0;
  std::uint64_t pend_promotions_ = 0;
  std::uint64_t pend_buckets_ = 0;
  std::vector<EventNode> nodes_;  // hot intrusive nodes, indexed by slot
  std::vector<EventData> data_;   // cold callback/interval, same indexing
  std::vector<std::uint32_t> free_slots_;
  std::array<std::uint32_t, kWheelBuckets> heads_;
  // Occupancy for the wide levels 0 and 1 is a two-level bitmap over
  // their 4096 buckets: bit g of the summary is set iff words[g] is
  // non-zero. Upper levels get one 64-bit word each (upper_occupied_'s
  // first two entries are unused padding so the array indexes by level).
  std::uint64_t l0_summary_ = 0;
  std::array<std::uint64_t, kLevel0Buckets / 64> l0_words_{};
  std::uint64_t l1_summary_ = 0;
  std::array<std::uint64_t, kLevel1Buckets / 64> l1_words_{};
  std::array<std::uint64_t, kLevels> upper_occupied_{};
  std::vector<OverflowEntry> overflow_;  // min-heap via std::*_heap + greater
  std::vector<RunEntry> run_;            // scratch run-list, reused
};

inline void EventHandle::cancel() {
  if (sim_ != nullptr) {
    sim_->cancel_event(slot_, gen_);
    sim_ = nullptr;
  }
}

inline bool EventHandle::valid() const {
  return sim_ != nullptr && sim_->event_pending(slot_, gen_);
}

}  // namespace riptide::sim

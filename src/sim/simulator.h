#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace riptide::sim {

// Handle used to cancel a scheduled event. Cancellation is lazy: the event
// stays in the queue but is skipped when popped (cheap for the common case
// of TCP retransmission timers, which are rescheduled on every ACK).
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event (if still pending) and releases the handle: a
  // cancelled handle reads as invalid, so guards like
  // `if (timer.valid()) return;` rearm correctly after cancellation.
  void cancel() {
    if (cancelled_) {
      *cancelled_ = true;
      cancelled_.reset();
    }
  }
  bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

// Single-threaded discrete-event simulator. Events at equal timestamps fire
// in scheduling (FIFO) order, which keeps runs deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }

  // Schedules `cb` to run at now() + delay. Precondition: delay >= 0.
  EventHandle schedule(Time delay, Callback cb);
  EventHandle schedule_at(Time when, Callback cb);

  // Schedules `cb` every `interval`, starting at now() + initial_delay.
  // The returned handle cancels all future firings.
  EventHandle schedule_periodic(Time initial_delay, Time interval, Callback cb);

  // Runs events until the queue empties or `deadline` is reached; events
  // scheduled exactly at the deadline still run. Returns the number of
  // events executed.
  std::uint64_t run_until(Time deadline);

  // Runs until the queue is empty. Use run_until for open-loop workloads
  // that generate events forever.
  std::uint64_t run();

  // Stops the current run_* call after the in-flight event completes.
  void stop() { stopped_ = true; }

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    Callback cb;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void purge_cancelled_top();
  bool pop_and_run_next();

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace riptide::sim

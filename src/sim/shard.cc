#include "sim/shard.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "stats/perf.h"

namespace riptide::sim {
namespace {

// Central barrier with a latched stop decision.
//
// The continue/stop choice after a barrier MUST be a property of the
// crossing, not a post-crossing read of a mutable flag. The race that
// rules out the naive `arrive_and_wait(); if (failed) break;`: the last
// arriver returns immediately, runs the whole next phase, fails, sets the
// flag, and parks at the *next* barrier — all before a slow waiter of the
// previous barrier has even woken from the condvar. The slow waiter then
// reads `failed == true` one barrier early, breaks, and leaves the fast
// worker waiting forever (observed as a 2-thread join/condvar deadlock in
// ShardSetTest.PropagatesCellExceptions under load).
//
// So the last arriver samples the stop source exactly once, under the
// barrier mutex, and every thread of that generation returns the same
// sampled value: all workers take identical break decisions at identical
// crossings, whatever the flag does concurrently. (This is std::barrier's
// completion-step idiom; with at most a handful of workers per simulated
// window a mutex + condvar is plenty, and sidesteps any cleverness in the
// platform's tree barrier.)
class WindowBarrier {
 public:
  WindowBarrier(std::size_t parties, const std::atomic<bool>& stop_source)
      : parties_(parties), stop_source_(stop_source) {}

  // Returns true when this crossing decided to stop. A waiter cannot read
  // a later generation's latch: with parties >= 2 the next generation
  // cannot complete until this waiter arrives at it, and with parties == 1
  // there are no waiters.
  bool arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    const std::uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      latched_stop_ = stop_source_.load(std::memory_order_acquire);
      ++generation_;
      cv_.notify_all();
      return latched_stop_;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
    return latched_stop_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const std::size_t parties_;
  const std::atomic<bool>& stop_source_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool latched_stop_ = false;
};

}  // namespace

struct ShardSet::RunState {
  explicit RunState(std::size_t workers) : barrier(workers, failed) {}

  // Set by a worker that caught an exception, always before it arrives at
  // the next barrier. Workers never read it directly: the barrier latches
  // it once per crossing (see WindowBarrier), which is what makes the
  // stop decision uniform across workers.
  std::atomic<bool> failed{false};
  WindowBarrier barrier;
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::atomic<std::uint64_t> executed{0};
  // Spawned workers fold their thread-local perf deltas in here (under
  // error_mu); the caller accumulates the sum into its own counters.
  perf::Counters worker_perf;

  void record_error() {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!first_error) first_error = std::current_exception();
    failed.store(true, std::memory_order_release);
  }
};

ShardSet::ShardSet(std::size_t cells, std::size_t workers, Time window)
    : workers_(workers), window_(window) {
  if (cells == 0) {
    throw std::invalid_argument("ShardSet: need at least one cell");
  }
  if (workers == 0 || workers > cells) {
    throw std::invalid_argument("ShardSet: workers must be in [1, cells]");
  }
  if (window <= Time::zero()) {
    throw std::invalid_argument("ShardSet: window must be positive");
  }
  cells_.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    cells_.push_back(std::make_unique<Simulator>());
  }
}

void ShardSet::worker_loop(std::size_t worker, Time deadline,
                           std::uint64_t windows) {
  RunState& run = *run_;
  const auto in_scope = [&](std::size_t cell,
                            const std::function<void()>& body) {
    if (scope_) {
      scope_(cell, body);
    } else {
      body();
    }
  };

  std::uint64_t ran = 0;
  for (std::uint64_t k = 1; k <= windows; ++k) {
    const Time window_end = std::min(window_ * static_cast<std::int64_t>(k),
                                     deadline);
    // Phase A: inject everything other cells sent during the previous
    // window. Mailboxes are quiescent here — their producers are parked at
    // the same barrier we just left.
    try {
      if (flush_) {
        for (std::size_t c = worker; c < cells_.size(); c += workers_) {
          in_scope(c, [&] { flush_(c, *cells_[c]); });
        }
      }
    } catch (...) {
      run.record_error();
    }
    if (run.barrier.arrive_and_wait()) break;

    // Phase B: advance each owned cell to the end of the window. Cells on
    // one worker are independent (they interact only via mailboxes), so
    // their relative execution order is irrelevant; ascending order keeps
    // it tidy. run_until parks each cell's scheduler exactly at the
    // window edge even when idle, so next window's mailbox injections
    // insert relative to the same cursor on every shard layout — part of
    // the bit-identical-across-shard-counts guarantee.
    try {
      for (std::size_t c = worker; c < cells_.size(); c += workers_) {
        in_scope(c, [&] { ran += cells_[c]->run_until(window_end); });
      }
    } catch (...) {
      run.record_error();
    }
    if (worker == 0) ++perf::local().shard_windows;
    if (run.barrier.arrive_and_wait()) break;
  }

  // Drain owned cells before this thread's SegmentPool disappears: pending
  // callbacks can capture pooled segments, and those must retire on the
  // thread that allocated them. Only the last drain on a *spawned* worker
  // can expect an empty pool (worker 0 is the caller's thread, whose pool
  // may serve other simulations).
  std::vector<std::size_t> owned;
  for (std::size_t c = worker; c < cells_.size(); c += workers_) {
    owned.push_back(c);
  }
  for (std::size_t i = 0; i < owned.size(); ++i) {
    const bool last_on_spawned_worker = worker != 0 && i + 1 == owned.size();
    cells_[owned[i]]->drop_pending(last_on_spawned_worker
                                       ? Simulator::PoolCheck::kAssertEmpty
                                       : Simulator::PoolCheck::kSkip);
  }

  run.executed.fetch_add(ran, std::memory_order_relaxed);
}

std::uint64_t ShardSet::run_until(Time deadline) {
  if (run_ != nullptr) {
    throw std::logic_error("ShardSet::run_until: already running");
  }
  const std::int64_t window_ns = window_.ns();
  const std::uint64_t windows =
      deadline <= Time::zero()
          ? 0
          : static_cast<std::uint64_t>((deadline.ns() + window_ns - 1) /
                                       window_ns);

  RunState run(workers_);
  run_ = &run;

  std::vector<std::thread> threads;
  threads.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads.emplace_back([this, w, deadline, windows, &run] {
      const perf::Counters before = perf::local();
      try {
        worker_loop(w, deadline, windows);
      } catch (...) {
        // worker_loop catches per-phase; anything surfacing here (e.g. a
        // scope hook throwing outside a phase try) still must not escape
        // the thread.
        run.record_error();
      }
      const perf::Counters delta = perf::local().delta_since(before);
      std::lock_guard<std::mutex> lock(run.error_mu);
      run.worker_perf.accumulate(delta);
    });
  }

  worker_loop(0, deadline, windows);
  for (std::thread& t : threads) t.join();
  run_ = nullptr;

  // Fold spawned workers' activity into the caller's thread-local counters
  // so callers measuring `delta_since` around this run see the whole
  // sharded execution, same as a monolithic one.
  perf::local().accumulate(run.worker_perf);

  if (run.first_error) std::rethrow_exception(run.first_error);
  return run.executed.load(std::memory_order_relaxed);
}

}  // namespace riptide::sim

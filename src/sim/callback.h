#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace riptide::sim {

// Move-only `void()` callable with small-buffer optimisation, used as the
// simulator's event callback type. The simulator schedules one of these per
// simulated packet, so the representation matters:
//
//  - functors up to kInlineSize bytes (a captured `this` plus several
//    words — every timer lambda in src/tcp and src/cdn) are stored inline
//    in the event record, no allocation;
//  - larger functors fall back to a single heap allocation;
//  - moving never copies the functor state for heap targets and is a
//    memcpy-sized move for inline ones, which keeps event-queue sifting
//    and slab compaction cheap.
//
// Unlike std::function it is move-only, so callbacks may capture move-only
// state (unique_ptr, handles) directly.
class Callback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (stored_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      heap_ = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(target()); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(target());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    // Move-construct into `dst` and destroy the source; null for heap
    // targets, whose ownership transfers by pointer copy.
    void (*relocate)(void* src, void* dst) noexcept;
  };

  template <typename F>
  static constexpr bool stored_inline =
      sizeof(F) <= kInlineSize && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  static void invoke_inline(void* p) {
    (*std::launder(reinterpret_cast<F*>(p)))();
  }
  template <typename F>
  static void destroy_inline(void* p) noexcept {
    std::launder(reinterpret_cast<F*>(p))->~F();
  }
  template <typename F>
  static void relocate_inline(void* src, void* dst) noexcept {
    F* from = std::launder(reinterpret_cast<F*>(src));
    ::new (dst) F(std::move(*from));
    from->~F();
  }
  template <typename F>
  static void invoke_heap(void* p) {
    (*static_cast<F*>(p))();
  }
  template <typename F>
  static void destroy_heap(void* p) noexcept {
    delete static_cast<F*>(p);
  }

  template <typename F>
  static constexpr Ops kInlineOps{&invoke_inline<F>, &destroy_inline<F>,
                                  &relocate_inline<F>};
  template <typename F>
  static constexpr Ops kHeapOps{&invoke_heap<F>, &destroy_heap<F>, nullptr};

  void* target() noexcept {
    return ops_->relocate ? static_cast<void*>(buf_) : heap_;
  }

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (!ops_) return;
    if (ops_->relocate) {
      ops_->relocate(other.buf_, buf_);
    } else {
      heap_ = other.heap_;
    }
    other.ops_ = nullptr;
  }

  const Ops* ops_ = nullptr;
  union {
    void* heap_;
    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  };
};

}  // namespace riptide::sim

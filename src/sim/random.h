#pragma once

#include <cstdint>
#include <random>

namespace riptide::sim {

// Deterministic random source for simulations. All distributions hang off a
// single seeded engine so an experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  // Exponential with the given mean (= 1 / rate). Precondition: mean > 0.
  double exponential(double mean);

  // Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  double normal(double mean, double stddev);

  // Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed sizes).
  double pareto(double x_m, double alpha);

  std::mt19937_64& engine() { return engine_; }

  // Derives an independent child stream; children with distinct salts do not
  // correlate with the parent or each other.
  Rng fork(std::uint64_t salt);

 private:
  std::mt19937_64 engine_;
};

}  // namespace riptide::sim

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace riptide::sim {

// Conservative time-windowed parallel driver for a set of simulation cells.
//
// A *cell* is one independently-clocked Simulator plus everything scheduled
// on it (in the CDN experiment: one PoP — its router, hosts, agents, and the
// transmitter ends of its outgoing WAN links). Cells interact only through
// mailboxes flushed at window barriers, never by touching each other's
// objects directly.
//
// The cell is the unit of *determinism*; the worker thread is only the unit
// of *execution*. The cell set, each cell's event stream, and the window
// length are all fixed by the topology — `workers` merely round-robins the
// cells onto OS threads (cell c runs on worker c % workers, for the whole
// run, so pooled segments allocated while running a cell always retire on
// the thread that allocated them). Because nothing a cell computes depends
// on which worker hosts it, the fingerprint of a run is invariant under the
// worker count — the property golden_determinism locks for shards 1/2/4.
//
// Window protocol. Let L = window(). Simulated time is cut into windows
// ((k-1)L, kL]; each window runs in two phases separated by barriers:
//
//   Phase A (flush):  every worker, for each of its cells, invokes the
//                     flush hook, which drains the cell's incoming
//                     mailboxes (ascending source-cell order) into its
//                     event queue.            -- barrier --
//   Phase B (run):    every worker runs each of its cells to min(kL,
//                     deadline).              -- barrier --
//
// Safety argument: L must not exceed the minimum latency of any cross-cell
// mailbox path (for the CDN topology, the minimum inter-PoP propagation
// delay — serialization only adds to it). A packet pushed during window k-1
// was admitted at some s <= (k-1)L and carries deliver_at >= s' + L where
// s' > (k-2)L is its serialization completion, so deliver_at > (k-1)L: every
// entry flushed at the window-k barrier lands strictly inside or after the
// window about to run, never in a cell's past.
//
// The barriers are also the memory fences: a mailbox is written by exactly
// one worker during Phase B and read by exactly one worker during the next
// Phase A, so the channels need no locks and payload refcounts can stay
// non-atomic.
class ShardSet {
 public:
  // Flush hook: drain cell `cell`'s incoming mailboxes into `sim`. Runs on
  // the worker owning the cell, during Phase A. Installed once before run.
  using FlushHook = std::function<void(std::size_t cell, Simulator& sim)>;

  // Scope hook: wraps every slice of cell work (both phases) so callers
  // can install per-cell thread-local context — the trace sink, notably —
  // around `body`. Must invoke `body` exactly once. Defaults to plain
  // invocation.
  using ScopeHook =
      std::function<void(std::size_t cell, const std::function<void()>& body)>;

  // Preconditions: cells >= 1, 1 <= workers <= cells, window > 0.
  ShardSet(std::size_t cells, std::size_t workers, Time window);

  std::size_t cells() const { return cells_.size(); }
  std::size_t workers() const { return workers_; }
  Time window() const { return window_; }

  Simulator& cell(std::size_t i) { return *cells_[i]; }
  const Simulator& cell(std::size_t i) const { return *cells_[i]; }

  // Worker that executes cell `i`'s events for the whole run.
  std::size_t worker_of(std::size_t i) const { return i % workers_; }

  void set_flush_hook(FlushHook hook) { flush_ = std::move(hook); }
  void set_cell_scope(ScopeHook hook) { scope_ = std::move(hook); }

  // Runs every cell to `deadline` under the window protocol above. The
  // calling thread acts as worker 0; workers-1 threads are spawned for the
  // rest and joined before returning. Before a spawned worker exits, it
  // drains its cells' pending events (Simulator::drop_pending) so pooled
  // segments captured in not-yet-run callbacks return to that worker's
  // thread-local pool while it still exists, and asserts (debug builds)
  // that the pool is empty afterwards. Worker 0's cells are drained too,
  // without the assert (the caller's thread-local pool may serve other
  // simulations). Spawned workers' perf counters are folded into the
  // caller's thread-local counters so delta-based reporting sees the whole
  // run. An exception thrown by any cell stops all workers at the next
  // barrier and is rethrown here (first one wins).
  //
  // Returns the total number of events executed across all cells.
  std::uint64_t run_until(Time deadline);

 private:
  void worker_loop(std::size_t worker, Time deadline, std::uint64_t windows);

  std::size_t workers_;
  Time window_;
  std::vector<std::unique_ptr<Simulator>> cells_;
  FlushHook flush_;
  ScopeHook scope_;

  // Per-run shared state; only valid inside run_until.
  struct RunState;
  RunState* run_ = nullptr;
};

}  // namespace riptide::sim

#include "sim/simulator.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace riptide::sim {

EventHandle Simulator::schedule(Time delay, Callback cb) {
  if (delay < Time::zero()) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(cb), cancelled});
  return EventHandle{std::move(cancelled)};
}

EventHandle Simulator::schedule_periodic(Time initial_delay, Time interval,
                                         Callback cb) {
  if (interval <= Time::zero()) {
    throw std::invalid_argument("Simulator::schedule_periodic: interval <= 0");
  }
  auto cancelled = std::make_shared<bool>(false);
  // The recurring lambda reschedules itself under the same cancellation
  // flag so one handle controls the whole series. Ownership of the function
  // object lives in the queued events; the lambda itself only holds a weak
  // reference, so cancelling (or draining) the series frees everything.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, interval, cb = std::move(cb), cancelled, weak_tick]() {
    cb();
    if (!*cancelled) {
      if (auto strong = weak_tick.lock()) {
        queue_.push(Event{now_ + interval, next_seq_++,
                          [strong] { (*strong)(); }, cancelled});
      }
    }
  };
  queue_.push(Event{now_ + initial_delay, next_seq_++,
                    [tick] { (*tick)(); }, cancelled});
  return EventHandle{std::move(cancelled)};
}

void Simulator::purge_cancelled_top() {
  while (!queue_.empty() && *queue_.top().cancelled) queue_.pop();
}

bool Simulator::pop_and_run_next() {
  // Precondition: the queue head is a live (non-cancelled) event. Callers
  // purge first so deadline checks in run_until never look at dead entries.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ev.cb();
  ++executed_;
  return true;
}

std::uint64_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t ran = 0;
  for (;;) {
    purge_cancelled_top();
    if (stopped_ || queue_.empty() || queue_.top().when > deadline) break;
    pop_and_run_next();
    ++ran;
  }
  // Advance the clock to the deadline so consecutive run_until calls observe
  // contiguous time even when the queue idles.
  if (now_ < deadline) now_ = deadline;
  return ran;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t ran = 0;
  for (;;) {
    purge_cancelled_top();
    if (stopped_ || queue_.empty()) break;
    pop_and_run_next();
    ++ran;
  }
  return ran;
}

}  // namespace riptide::sim

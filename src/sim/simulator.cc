#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "stats/perf.h"

namespace riptide::sim {
//
// Wheel geometry and invariants
// -----------------------------
//
// Ticks are absolute nanoseconds. Levels 0 and 1 are circular windows of
// 4096 buckets, 1 ns and 4096 ns wide respectively — sized so the two
// event populations dominating the experiment hot path are cheap: the
// microsecond-scale transmission/pacing events insert at their final
// level-0 resting place and never cascade, and the millisecond-scale
// RTT/delivery events sit in level 1 and cascade exactly once. Each
// upper level L in 2..6 has 64 buckets of width 2^(24 + 6(L-2)) ns, so
// shift(L) = 24 + 6(L-2) converts a tick to a level-L bucket number. An
// event is placed at the lowest level whose window covers it:
//
//   level 0 :  when - cursor_ < 4096
//   level 1 :  (when >> 12) - (cursor_ >> 12) < 4096
//   level L :  D(L) = (when >> shift(L)) - (cursor_ >> shift(L)) < 64
//
// The bucket-number rule (rather than a raw-delta rule) is what makes
// bucket indices `(when >> shift) & mask` unambiguous under wraparound,
// and it guarantees that for L >= 1 the bucket at the cursor's own index
// is always empty: D(L) == 0 implies the event fits a lower tier, so it
// must have been placed there. Events past the top level's span (2^54 ns,
// ~208 simulated days) live in the overflow min-heap and promote into
// the wheel as the cursor approaches.
//
// The cursor only moves through seek(): it jumps straight to the next
// event boundary (occupancy bitmaps + rotate/ctz, no per-tick stepping),
// cascading each upper-level bucket it enters down into lower levels.
// The wide levels' occupancy is a two-level bitmap (a summary word over
// 64 64-bucket groups); each upper level is a single word. Dispatch
// detaches a whole level-0 bucket as a run-list and sorts it by seq —
// since the bucket holds a single timestamp, this reproduces the binary
// heap's exact (when, seq) order no matter how cascades and promotions
// interleaved the intrusive lists.

namespace {

// Circular distance (in buckets) from `pos` to the first occupied bucket
// of a wide 4096-bucket level, scanning its two-level bitmap: the
// position's own 64-bucket group at or after its bit, then later groups
// via the summary word, then the wrapped remainder of the own group.
// Precondition: summary != 0.
inline std::uint64_t wide_scan(const std::array<std::uint64_t, 64>& words,
                               std::uint64_t summary, std::uint64_t pos) {
  const std::size_t group = (pos >> 6) & 63;
  const unsigned sub = static_cast<unsigned>(pos & 63);
  const std::uint64_t own = words[group] >> sub;
  if (own != 0) {
    return static_cast<unsigned>(std::countr_zero(own));
  }
  const std::uint64_t later =
      std::rotr(summary, static_cast<int>(group)) & ~std::uint64_t{1};
  if (later != 0) {
    const unsigned ahead = static_cast<unsigned>(std::countr_zero(later));
    const std::size_t g = (group + ahead) & 63;
    const unsigned bit = static_cast<unsigned>(std::countr_zero(words[g]));
    return (static_cast<std::uint64_t>(ahead) << 6) - sub + bit;
  }
  // Only the position's own group has bits, all below its sub-index: the
  // window wrapped nearly a full revolution.
  const std::uint64_t wrapped = words[group] & ((std::uint64_t{1} << sub) - 1);
  assert(wrapped != 0);
  return 4096 - sub + static_cast<unsigned>(std::countr_zero(wrapped));
}

}  // namespace

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  nodes_.emplace_back();
  data_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Simulator::release_node(std::uint32_t slot) {
  EventNode& node = nodes_[slot];
  ++node.gen;  // invalidate outstanding handles before the slot is reused
  node.prev = kNil;
  node.next = kNil;
  node.where = kWhereNone;
  free_slots_.push_back(slot);
}

void Simulator::release_slot(std::uint32_t slot) {
  EventData& data = data_[slot];
  data.cb.reset();
  data.interval = Time::zero();
  release_node(slot);
}

bool Simulator::event_pending(std::uint32_t slot, std::uint32_t gen) const {
  return slot < nodes_.size() && nodes_[slot].gen == gen;
}

void Simulator::mark_occupied(std::size_t bucket) {
  if (bucket < kLevel0Buckets) {
    const std::size_t group = bucket >> 6;
    l0_words_[group] |= std::uint64_t{1} << (bucket & 63);
    l0_summary_ |= std::uint64_t{1} << group;
    return;
  }
  if (bucket < kUpperBase) {
    const std::size_t index = bucket - kLevel0Buckets;
    const std::size_t group = index >> 6;
    l1_words_[group] |= std::uint64_t{1} << (index & 63);
    l1_summary_ |= std::uint64_t{1} << group;
    return;
  }
  const std::size_t upper = bucket - kUpperBase;
  upper_occupied_[upper / kBuckets + 2] |= std::uint64_t{1}
                                          << (upper % kBuckets);
}

void Simulator::clear_occupied(std::size_t bucket) {
  if (bucket < kLevel0Buckets) {
    const std::size_t group = bucket >> 6;
    if ((l0_words_[group] &= ~(std::uint64_t{1} << (bucket & 63))) == 0) {
      l0_summary_ &= ~(std::uint64_t{1} << group);
    }
    return;
  }
  if (bucket < kUpperBase) {
    const std::size_t index = bucket - kLevel0Buckets;
    const std::size_t group = index >> 6;
    if ((l1_words_[group] &= ~(std::uint64_t{1} << (index & 63))) == 0) {
      l1_summary_ &= ~(std::uint64_t{1} << group);
    }
    return;
  }
  const std::size_t upper = bucket - kUpperBase;
  upper_occupied_[upper / kBuckets + 2] &=
      ~(std::uint64_t{1} << (upper % kBuckets));
}

void Simulator::link_into_bucket(std::uint32_t slot, std::size_t bucket) {
  EventNode& node = nodes_[slot];
  node.prev = kNil;
  node.next = heads_[bucket];
  if (node.next != kNil) nodes_[node.next].prev = slot;
  heads_[bucket] = slot;
  node.where = static_cast<std::uint16_t>(bucket);
  mark_occupied(bucket);
}

void Simulator::unlink_from_bucket(std::uint32_t slot) {
  EventNode& node = nodes_[slot];
  const std::size_t bucket = node.where;
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else {
    heads_[bucket] = node.next;
  }
  if (node.next != kNil) nodes_[node.next].prev = node.prev;
  if (heads_[bucket] == kNil) clear_occupied(bucket);
  node.prev = kNil;
  node.next = kNil;
  node.where = kWhereNone;
}

void Simulator::insert_event(std::uint32_t slot) {
  EventNode& node = nodes_[slot];
  const std::uint64_t tick = node.when;
  // A same-timestamp event scheduled from inside the bucket currently
  // dispatching joins the live run-list. Its seq is necessarily the
  // largest assigned so far, so appending keeps the list sorted.
  if (dispatching_ && tick == dispatch_tick_) {
    node.where = kWhereRun;
    run_.push_back(RunEntry{node.seq, slot, node.gen});
    return;
  }
  if (tick - cursor_ < kLevel0Buckets) {  // the common, cascade-free case
    link_into_bucket(slot, tick & (kLevel0Buckets - 1));
    return;
  }
  const std::uint64_t b1 = tick >> kLevel0Bits;
  if (b1 - (cursor_ >> kLevel0Bits) < kLevel1Buckets) {
    link_into_bucket(slot, kLevel0Buckets + (b1 & (kLevel1Buckets - 1)));
    // An upper-tier resident introduces a cascade boundary at its bucket
    // start; keep the floor a valid lower bound.
    const std::uint64_t start = b1 << kLevel0Bits;
    if (start < boundary_floor_) boundary_floor_ = start;
    return;
  }
  for (int level = 2; level < kLevels; ++level) {
    const int shift = upper_shift(level);
    if ((tick >> shift) - (cursor_ >> shift) < kBuckets) {
      const std::size_t index = (tick >> shift) & (kBuckets - 1);
      link_into_bucket(slot,
                       kUpperBase +
                           static_cast<std::size_t>(level - 2) * kBuckets +
                           index);
      const std::uint64_t start = (tick >> shift) << shift;
      if (start < boundary_floor_) boundary_floor_ = start;
      return;
    }
  }
  node.where = kWhereOverflow;
  overflow_.push_back(OverflowEntry{tick, node.seq, slot, node.gen});
  std::push_heap(overflow_.begin(), overflow_.end(), std::greater<>{});
  ++overflow_live_;
  if (tick < boundary_floor_) boundary_floor_ = tick;
}

void Simulator::cancel_event(std::uint32_t slot, std::uint32_t gen) {
  if (!event_pending(slot, gen)) return;  // fired, cancelled, or reused
  EventNode& node = nodes_[slot];
  if (in_flight_ && in_flight_slot_ == slot && in_flight_gen_ == gen) {
    // The callback cancelled its own (periodic) event: it has no queue
    // presence right now; the dispatch loop reclaims the slot.
    ++node.gen;
    data_[slot].cb.reset();
    data_[slot].interval = Time::zero();
    return;
  }
  --live_;
  if (node.where < kWheelBuckets) {
    // Wheel-resident: O(1) unlink, slot reclaimed immediately — the
    // rearm-heavy RTO pattern leaves no garbage behind.
    unlink_from_bucket(slot);
    release_slot(slot);
    return;
  }
  if (node.where == kWhereOverflow) {
    // Overflow-resident: the heap entry cannot be unlinked in O(1), so it
    // dies in place and is reclaimed when it surfaces (or scrubbed when
    // zombies outnumber live entries).
    ++node.gen;
    data_[slot].cb.reset();
    data_[slot].interval = Time::zero();
    node.where = kWhereNone;
    --overflow_live_;
    ++overflow_dead_;
    maybe_scrub_overflow();
    return;
  }
  // kWhereRun: mid-dispatch cancellation of a not-yet-run same-tick event.
  // The run-list entry's generation check skips it and reclaims the slot.
  assert(node.where == kWhereRun);
  ++node.gen;
  data_[slot].cb.reset();
  data_[slot].interval = Time::zero();
  node.where = kWhereNone;
}

void Simulator::maybe_scrub_overflow() {
  // Reclaim the overflow tier once zombies outnumber live entries, so a
  // pathological far-future cancel storm cannot grow the heap past ~2x
  // its live population. Amortized O(1) per cancellation; the wheel tier
  // never needs this (cancellation unlinks eagerly).
  if (overflow_.size() < kBuckets || overflow_dead_ * 2 <= overflow_.size()) {
    return;
  }
  std::size_t kept = 0;
  for (const OverflowEntry& entry : overflow_) {
    if (nodes_[entry.slot].gen == entry.gen) {
      overflow_[kept++] = entry;
    } else {
      release_slot(entry.slot);
    }
  }
  overflow_.resize(kept);
  std::make_heap(overflow_.begin(), overflow_.end(), std::greater<>{});
  overflow_dead_ = 0;
}

EventHandle Simulator::schedule(Time delay, Callback cb) {
  if (delay < Time::zero()) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const std::uint32_t slot = acquire_slot();
  EventData& data = data_[slot];
  data.cb = std::move(cb);
  data.interval = Time::zero();
  EventNode& node = nodes_[slot];
  node.when = static_cast<std::uint64_t>(when.ns());
  node.seq = next_seq_++;
  ++live_;
  insert_event(slot);
  return EventHandle{this, slot, nodes_[slot].gen};
}

EventHandle Simulator::schedule_periodic(Time initial_delay, Time interval,
                                         Callback cb) {
  if (interval <= Time::zero()) {
    throw std::invalid_argument("Simulator::schedule_periodic: interval <= 0");
  }
  if (initial_delay < Time::zero()) {
    throw std::invalid_argument(
        "Simulator::schedule_periodic: negative initial delay");
  }
  const std::uint32_t slot = acquire_slot();
  EventData& data = data_[slot];
  data.cb = std::move(cb);
  data.interval = interval;
  EventNode& node = nodes_[slot];
  node.when = static_cast<std::uint64_t>((now_ + initial_delay).ns());
  node.seq = next_seq_++;
  ++live_;
  insert_event(slot);
  return EventHandle{this, slot, nodes_[slot].gen};
}

std::uint64_t Simulator::earliest_level0() const {
  if (l0_summary_ == 0) return kInfTick;
  // Level-0 residents all lie within [cursor_, cursor_ + 4096), so the
  // circular distance from the cursor's own bucket recovers the exact
  // timestamp.
  return cursor_ + wide_scan(l0_words_, l0_summary_, cursor_);
}

std::uint64_t Simulator::earliest_cascade_start() const {
  std::uint64_t best = kInfTick;
  if (l1_summary_ != 0) {
    const std::uint64_t bucket_no = cursor_ >> kLevel0Bits;
    const std::uint64_t d = wide_scan(l1_words_, l1_summary_, bucket_no);
    // d == 0 would mean the cursor's own bucket is occupied, which the
    // placement rule and cascade-on-entry forbid for levels >= 1.
    assert(d != 0);
    best = (bucket_no + d) << kLevel0Bits;
  }
  for (int level = 2; level < kLevels; ++level) {
    const std::uint64_t bits = upper_occupied_[static_cast<std::size_t>(level)];
    if (bits == 0) continue;
    const int shift = upper_shift(level);
    const std::uint64_t bucket_no = cursor_ >> shift;
    const unsigned pos = static_cast<unsigned>(bucket_no & (kBuckets - 1));
    const unsigned d = static_cast<unsigned>(
        std::countr_zero(std::rotr(bits, static_cast<int>(pos))));
    assert(d != 0);
    const std::uint64_t start = (bucket_no + d) << shift;
    best = std::min(best, start);
  }
  return best;
}

void Simulator::cascade_at(std::uint64_t boundary) {
  // The cursor enters the earliest non-empty upper-level bucket, whose
  // start is `boundary`; every bucket the jump crossed was empty by
  // construction (boundary is the minimum over all levels). Top-down so a
  // top-level redistribution can land events into the lower-level buckets
  // cascaded right after it. The boundary floor is consumed here; seek()
  // recomputes it on its next slow pass.
  cursor_ = boundary;
  boundary_floor_ = 0;
  for (int level = kLevels - 1; level >= 2; --level) {
    const int shift = upper_shift(level);
    const std::size_t index = (boundary >> shift) & (kBuckets - 1);
    if ((upper_occupied_[static_cast<std::size_t>(level)] &
         (std::uint64_t{1} << index)) == 0) {
      continue;
    }
    const std::size_t bucket =
        kUpperBase + static_cast<std::size_t>(level - 2) * kBuckets + index;
    std::uint32_t slot = heads_[bucket];
    heads_[bucket] = kNil;
    upper_occupied_[static_cast<std::size_t>(level)] &=
        ~(std::uint64_t{1} << index);
    std::uint64_t moved = 0;
    while (slot != kNil) {
      const std::uint32_t next = nodes_[slot].next;
      // Re-place relative to the new cursor: D(level) is now 0, so the
      // event lands at a strictly lower level (possibly straight into
      // its level-0 timestamp bucket).
      insert_event(slot);
      ++moved;
      slot = next;
    }
    pend_cascaded_ += moved;
  }
  // Level 1 last: a level-1 bucket spans exactly the level-0 window, so
  // everything here lands straight in its level-0 timestamp bucket.
  const std::size_t index1 = (boundary >> kLevel0Bits) & (kLevel1Buckets - 1);
  if ((l1_words_[index1 >> 6] & (std::uint64_t{1} << (index1 & 63))) != 0) {
    const std::size_t bucket = kLevel0Buckets + index1;
    std::uint32_t slot = heads_[bucket];
    heads_[bucket] = kNil;
    if ((l1_words_[index1 >> 6] &= ~(std::uint64_t{1} << (index1 & 63))) ==
        0) {
      l1_summary_ &= ~(std::uint64_t{1} << (index1 >> 6));
    }
    std::uint64_t moved = 0;
    while (slot != kNil) {
      const std::uint32_t next = nodes_[slot].next;
      insert_event(slot);
      ++moved;
      slot = next;
    }
    pend_cascaded_ += moved;
  }
}

const Simulator::OverflowEntry* Simulator::overflow_top() {
  while (!overflow_.empty()) {
    const OverflowEntry& top = overflow_.front();
    if (nodes_[top.slot].gen == top.gen) return &top;
    const std::uint32_t slot = top.slot;
    std::pop_heap(overflow_.begin(), overflow_.end(), std::greater<>{});
    overflow_.pop_back();
    release_slot(slot);
    --overflow_dead_;
  }
  return nullptr;
}

void Simulator::promote_overflow(std::uint64_t head_tick) {
  // The overflow head is the globally earliest pending event: advance the
  // cursor to it (no wheel bucket starts before it, or seek would have
  // cascaded first) and pull in everything near it.
  if (cursor_ < head_tick) cursor_ = head_tick;
  boundary_floor_ = 0;
  while (!overflow_.empty()) {
    const OverflowEntry top = overflow_.front();
    if (nodes_[top.slot].gen != top.gen) {
      std::pop_heap(overflow_.begin(), overflow_.end(), std::greater<>{});
      overflow_.pop_back();
      release_slot(top.slot);
      --overflow_dead_;
      continue;
    }
    // Pull only what fits the wide levels 0-1 (no cascading after
    // promotion); anything further out stays parked in the heap until the
    // cursor gets close — promoting a dense far-future burst through the
    // upper levels would pay up to five cascades per event.
    if ((top.when >> kLevel0Bits) - (cursor_ >> kLevel0Bits) >=
        kLevel1Buckets) {
      break;
    }
    std::pop_heap(overflow_.begin(), overflow_.end(), std::greater<>{});
    overflow_.pop_back();
    --overflow_live_;
    insert_event(top.slot);
    ++pend_promotions_;
  }
}

bool Simulator::seek(std::uint64_t limit, bool bounded,
                     std::uint64_t* out_tick) {
  // Advances the cursor — cascading wheel buckets and promoting overflow
  // entries — until the earliest pending event's exact tick is known.
  // Returns true with *out_tick when that tick is <= limit; otherwise
  // parks the cursor at the limit (bounded mode) and returns false. Each
  // iteration moves at least one event down a level or drains the
  // overflow head, so every event is touched O(kLevels) times total.
  for (;;) {
    const std::uint64_t t0 = earliest_level0();
    if (t0 < boundary_floor_) {
      // Fast path: the floor proves no cascade or promotion can precede
      // t0, so the upper levels need no rescan. Parking below the floor
      // is equally safe — every boundary and resident is past the limit.
      if (t0 > limit) {
        if (bounded && cursor_ < limit) cursor_ = limit;
        return false;
      }
      *out_tick = t0;
      return true;
    }
    const std::uint64_t c = earliest_cascade_start();
    const OverflowEntry* top = overflow_top();
    const std::uint64_t h = top != nullptr ? top->when : kInfTick;
    boundary_floor_ = c < h ? c : h;  // now exact, not just a lower bound
    const std::uint64_t next = std::min(t0, boundary_floor_);
    if (next == kInfTick) return false;  // no pending events at all
    if (next > limit) {
      // Nothing due by the limit. Parking the cursor at the limit is safe:
      // every non-empty bucket boundary and level-0 resident is > limit,
      // so no mapping crosses the cursor.
      if (bounded && cursor_ < limit) cursor_ = limit;
      return false;
    }
    if (c <= t0 && c <= h) {
      // Cascade before dispatch/promotion even on ties: the bucket
      // starting at `c` may hold events at exactly that timestamp with
      // smaller seqs than anything already at level 0.
      cascade_at(c);
      continue;
    }
    if (h <= t0) {
      // Promote on ties too: an overflow entry sharing t0's timestamp was
      // necessarily scheduled earlier (smaller seq) and must join the
      // bucket before it is detached.
      promote_overflow(h);
      continue;
    }
    *out_tick = t0;
    return true;
  }
}

void Simulator::requeue_run_tail(std::size_t from) {
  // stop() or a throwing callback abandoned the rest of the run-list:
  // re-link the survivors into their level-0 bucket so the next run_*
  // call dispatches them (their original seqs keep the order exact).
  for (std::size_t i = from; i < run_.size(); ++i) {
    const RunEntry& entry = run_[i];
    if (nodes_[entry.slot].gen != entry.gen) {
      release_slot(entry.slot);
      continue;
    }
    insert_event(entry.slot);
  }
  run_.clear();
}

std::uint64_t Simulator::dispatch_bucket(std::uint64_t tick) {
  cursor_ = tick;
  now_ = Time::nanoseconds(static_cast<std::int64_t>(tick));

  // Detach the whole bucket as a run-list: one batched pop replaces
  // per-event heap sifts, and the seq sort restores FIFO order among the
  // bucket's single shared timestamp.
  const std::size_t index = tick & (kLevel0Buckets - 1);
  std::uint32_t slot = heads_[index];
  heads_[index] = kNil;
  const std::size_t group = index >> 6;
  if ((l0_words_[group] &= ~(std::uint64_t{1} << (index & 63))) == 0) {
    l0_summary_ &= ~(std::uint64_t{1} << group);
  }
  ++pend_buckets_;
  assert(slot != kNil);
  run_.clear();
  dispatching_ = true;
  dispatch_tick_ = tick;
  std::uint64_t ran = 0;

  if (nodes_[slot].next == kNil) {
    // Single-resident bucket — the overwhelmingly common case — executes
    // inline, skipping the run-list round-trip. No generation check
    // either: a wheel-resident entry cannot have been cancelled between
    // seek and here (cancellation unlinks eagerly, and no user code runs
    // in between). Same-tick events scheduled from inside the callback
    // still append to run_ and are drained by the loop below.
    EventNode& node = nodes_[slot];
    node.where = kWhereNone;  // prev/next are already kNil (lone head)
    const std::uint32_t gen = node.gen;
    --live_;
    Callback cb = std::move(data_[slot].cb);
    in_flight_ = true;
    in_flight_slot_ = slot;
    in_flight_gen_ = gen;
    try {
      cb();
    } catch (...) {
      in_flight_ = false;
      dispatching_ = false;
      release_slot(slot);
      requeue_run_tail(0);
      throw;
    }
    in_flight_ = false;
    ++executed_;
    ++ran;
    EventNode& after = nodes_[slot];  // the callback may have grown the slab
    if (after.gen == gen && data_[slot].interval > Time::zero()) {
      data_[slot].cb = std::move(cb);
      after.when =
          tick + static_cast<std::uint64_t>(data_[slot].interval.ns());
      after.seq = next_seq_++;
      ++live_;
      insert_event(slot);
    } else {
      release_node(slot);
    }
  } else {
    while (slot != kNil) {
      EventNode& node = nodes_[slot];
      const std::uint32_t next = node.next;
      node.prev = kNil;
      node.next = kNil;
      node.where = kWhereRun;
      run_.push_back(RunEntry{node.seq, slot, node.gen});
      slot = next;
    }
    std::sort(run_.begin(), run_.end(), [](const RunEntry& a,
                                           const RunEntry& b) {
      return a.seq < b.seq;
    });
  }

  std::size_t i = 0;
  for (; i < run_.size(); ++i) {
    if (stopped_) break;
    const RunEntry entry = run_[i];
    if (nodes_[entry.slot].gen != entry.gen) {
      // Cancelled after detachment (or while waiting in this run-list).
      release_slot(entry.slot);
      continue;
    }
    --live_;
    nodes_[entry.slot].where = kWhereNone;
    // Move the callback out before invoking: the callback may schedule
    // new events and grow/reallocate the slab, and a periodic callback
    // may cancel its own series.
    Callback cb = std::move(data_[entry.slot].cb);
    in_flight_ = true;
    in_flight_slot_ = entry.slot;
    in_flight_gen_ = entry.gen;
    try {
      cb();
    } catch (...) {
      in_flight_ = false;
      dispatching_ = false;
      release_slot(entry.slot);
      requeue_run_tail(i + 1);
      throw;
    }
    in_flight_ = false;
    ++executed_;
    ++ran;

    // Re-read through the vectors: the callback may have grown the slab.
    EventNode& node = nodes_[entry.slot];
    if (node.gen == entry.gen && data_[entry.slot].interval > Time::zero()) {
      // Periodic and not cancelled: the slot (and handle) stay live.
      data_[entry.slot].cb = std::move(cb);
      node.when =
          tick + static_cast<std::uint64_t>(data_[entry.slot].interval.ns());
      node.seq = next_seq_++;
      ++live_;
      insert_event(entry.slot);
    } else {
      // One-shot completion, or the callback cancelled its own series.
      // The moved-out callback destructs here; only the node needs
      // recycling.
      release_node(entry.slot);
    }
  }
  dispatching_ = false;
  if (i < run_.size()) {
    requeue_run_tail(i);  // stopped mid-bucket
  } else {
    run_.clear();
  }
  return ran;
}

void Simulator::drop_pending(PoolCheck check) {
  heads_.fill(kNil);
  l0_summary_ = 0;
  l0_words_.fill(0);
  l1_summary_ = 0;
  l1_words_.fill(0);
  upper_occupied_.fill(0);
  overflow_.clear();
  run_.clear();
  live_ = 0;
  overflow_live_ = 0;
  overflow_dead_ = 0;
  boundary_floor_ = 0;
  // Rebuild the free list from scratch: every slot is released exactly
  // once, and bumping the generation of already-free slots is harmless
  // (their handles are invalid either way).
  free_slots_.clear();
  free_slots_.reserve(nodes_.size());
  for (std::uint32_t slot = 0; slot < nodes_.size(); ++slot) {
    EventNode& node = nodes_[slot];
    ++node.gen;
    node.prev = kNil;
    node.next = kNil;
    node.where = kWhereNone;
    data_[slot].cb.reset();
    data_[slot].interval = Time::zero();
    free_slots_.push_back(slot);
  }
  // Destroying the callbacks released their SegmentRefs; nothing else in
  // this simulation holds pooled segments (connections only hold them
  // transiently inside events), so the thread-local pool gauge must read
  // zero — any residue is a segment about to escape across a thread.
  assert(check == PoolCheck::kSkip ||
         perf::local().segment_pool_live == 0);
  (void)check;
}

void Simulator::flush_perf_counters() {
  perf::Counters& perf = perf::local();
  perf.events_cascaded += pend_cascaded_;
  perf.overflow_promotions += pend_promotions_;
  perf.timer_buckets_dispatched += pend_buckets_;
  pend_cascaded_ = 0;
  pend_promotions_ = 0;
  pend_buckets_ = 0;
}

std::uint64_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t ran = 0;
  if (deadline >= now_) {
    const std::uint64_t limit = static_cast<std::uint64_t>(deadline.ns());
    std::uint64_t tick = 0;
    while (!stopped_ && seek(limit, /*bounded=*/true, &tick)) {
      ran += dispatch_bucket(tick);
    }
  }
  // Advance the clock to the deadline so consecutive run_until calls observe
  // contiguous time even when the queue idles.
  if (now_ < deadline) now_ = deadline;
  perf::Counters& perf = perf::local();
  perf.events_dispatched += ran;
  perf.events_cascaded += pend_cascaded_;
  perf.overflow_promotions += pend_promotions_;
  perf.timer_buckets_dispatched += pend_buckets_;
  pend_cascaded_ = 0;
  pend_promotions_ = 0;
  pend_buckets_ = 0;
  return ran;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t ran = 0;
  std::uint64_t tick = 0;
  while (!stopped_ && seek(kInfTick, /*bounded=*/false, &tick)) {
    ran += dispatch_bucket(tick);
  }
  perf::Counters& perf = perf::local();
  perf.events_dispatched += ran;
  perf.events_cascaded += pend_cascaded_;
  perf.overflow_promotions += pend_promotions_;
  perf.timer_buckets_dispatched += pend_buckets_;
  pend_cascaded_ = 0;
  pend_promotions_ = 0;
  pend_buckets_ = 0;
  return ran;
}

}  // namespace riptide::sim

#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>
#include <utility>

#include "stats/perf.h"

namespace riptide::sim {

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  EventRecord& rec = slab_[slot];
  ++rec.gen;  // invalidate outstanding handles before the slot is reused
  rec.cb.reset();
  rec.interval = Time::zero();
  free_slots_.push_back(slot);
}

void Simulator::push_entry(Time when, std::uint32_t slot, std::uint32_t gen) {
  heap_.push_back(QueueEntry{when, next_seq_++, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

bool Simulator::event_pending(std::uint32_t slot, std::uint32_t gen) const {
  return slot < slab_.size() && slab_[slot].gen == gen;
}

void Simulator::cancel_event(std::uint32_t slot, std::uint32_t gen) {
  if (!event_pending(slot, gen)) return;  // fired, cancelled, or reused
  EventRecord& rec = slab_[slot];
  ++rec.gen;
  rec.cb.reset();
  rec.interval = Time::zero();
  if (in_flight_ && in_flight_slot_ == slot && in_flight_gen_ == gen) {
    // The callback cancelled its own (periodic) event: no queue entry
    // exists for it right now; pop_and_run_next reclaims the slot.
    return;
  }
  ++cancelled_;
  maybe_compact();
}

void Simulator::drop_pending(PoolCheck check) {
  heap_.clear();
  cancelled_ = 0;
  // Rebuild the free list from scratch: every slot is released exactly
  // once, and bumping the generation of already-free slots is harmless
  // (their handles are invalid either way).
  free_slots_.clear();
  free_slots_.reserve(slab_.size());
  for (std::uint32_t slot = 0; slot < slab_.size(); ++slot) {
    EventRecord& rec = slab_[slot];
    ++rec.gen;
    rec.cb.reset();
    rec.interval = Time::zero();
    free_slots_.push_back(slot);
  }
  // Destroying the callbacks released their SegmentRefs; nothing else in
  // this simulation holds pooled segments (connections only hold them
  // transiently inside events), so the thread-local pool gauge must read
  // zero — any residue is a segment about to escape across a thread.
  assert(check == PoolCheck::kSkip ||
         perf::local().segment_pool_live == 0);
  (void)check;
}

void Simulator::maybe_compact() {
  // Rebuild the heap once dead entries outnumber live ones, so rearm-heavy
  // workloads (an RTO cancelled on every ACK) cannot grow the queue beyond
  // ~2x the live event count. Amortised O(1) per cancellation.
  if (heap_.size() < kCompactMinEntries || cancelled_ * 2 <= heap_.size()) {
    return;
  }
  std::size_t kept = 0;
  for (const QueueEntry& entry : heap_) {
    if (slab_[entry.slot].gen == entry.gen) {
      heap_[kept++] = entry;
    } else {
      release_slot(entry.slot);
    }
  }
  heap_.resize(kept);
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  cancelled_ = 0;
}

EventHandle Simulator::schedule(Time delay, Callback cb) {
  if (delay < Time::zero()) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const std::uint32_t slot = acquire_slot();
  EventRecord& rec = slab_[slot];
  rec.cb = std::move(cb);
  rec.interval = Time::zero();
  push_entry(when, slot, rec.gen);
  return EventHandle{this, slot, rec.gen};
}

EventHandle Simulator::schedule_periodic(Time initial_delay, Time interval,
                                         Callback cb) {
  if (interval <= Time::zero()) {
    throw std::invalid_argument("Simulator::schedule_periodic: interval <= 0");
  }
  if (initial_delay < Time::zero()) {
    throw std::invalid_argument(
        "Simulator::schedule_periodic: negative initial delay");
  }
  const std::uint32_t slot = acquire_slot();
  EventRecord& rec = slab_[slot];
  rec.cb = std::move(cb);
  rec.interval = interval;
  push_entry(now_ + initial_delay, slot, rec.gen);
  return EventHandle{this, slot, rec.gen};
}

void Simulator::purge_cancelled_top() {
  while (!heap_.empty()) {
    const QueueEntry& top = heap_.front();
    if (slab_[top.slot].gen == top.gen) return;
    const std::uint32_t slot = top.slot;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    release_slot(slot);
    --cancelled_;
  }
}

void Simulator::pop_and_run_next() {
  // Precondition: the queue head is a live (non-cancelled) event. Callers
  // purge first so deadline checks in run_until never look at dead entries.
  const QueueEntry entry = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
  now_ = entry.when;

  // Move the callback out before invoking: the callback may schedule new
  // events and grow/reallocate the slab, and a periodic callback may
  // cancel its own series.
  Callback cb = std::move(slab_[entry.slot].cb);
  in_flight_ = true;
  in_flight_slot_ = entry.slot;
  in_flight_gen_ = entry.gen;
  try {
    cb();
  } catch (...) {
    in_flight_ = false;
    release_slot(entry.slot);
    throw;
  }
  in_flight_ = false;
  ++executed_;

  EventRecord& rec = slab_[entry.slot];
  if (rec.gen == entry.gen && rec.interval > Time::zero()) {
    // Periodic and not cancelled: the slot (and handle) stay live.
    rec.cb = std::move(cb);
    push_entry(now_ + rec.interval, entry.slot, entry.gen);
  } else {
    // One-shot completion, or the callback cancelled its own series.
    release_slot(entry.slot);
  }
}

std::uint64_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t ran = 0;
  for (;;) {
    purge_cancelled_top();
    if (stopped_ || heap_.empty() || heap_.front().when > deadline) break;
    pop_and_run_next();
    ++ran;
  }
  // Advance the clock to the deadline so consecutive run_until calls observe
  // contiguous time even when the queue idles.
  if (now_ < deadline) now_ = deadline;
  perf::local().events_dispatched += ran;
  return ran;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t ran = 0;
  for (;;) {
    purge_cancelled_top();
    if (stopped_ || heap_.empty()) break;
    pop_and_run_next();
    ++ran;
  }
  perf::local().events_dispatched += ran;
  return ran;
}

}  // namespace riptide::sim

#include "sim/random.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace riptide::sim {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::pareto(double x_m, double alpha) {
  if (x_m <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("Rng::pareto: parameters must be positive");
  }
  // Inverse-CDF sampling; clamp u away from 0 to avoid infinity.
  const double u = std::max(uniform(0.0, 1.0), 1e-12);
  return x_m / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork(std::uint64_t salt) {
  // SplitMix64 step over (parent draw ^ salt) gives well-separated seeds.
  std::uint64_t z = engine_() ^ (salt + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return Rng(z);
}

}  // namespace riptide::sim

#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "net/link.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace riptide::flow {

// Parameters of the fluid cross-traffic aggregate attached to one link.
// Defaults give a moderately-loaded 10G WAN segment: ~60% utilization from
// heavy-tailed mice/elephant mix, leaving visible-but-not-crushing
// congestion for the packet-level probe flows sharing the pipe.
struct FlowTrafficConfig {
  // Poisson arrival rate of background flows on the link.
  double flows_per_second = 100.0;
  // Mean flow size. With pareto_alpha > 1 sizes are bounded-Pareto with
  // this mean; with pareto_alpha == 0 they are exponential.
  double mean_flow_bytes = 250e3;
  double pareto_alpha = 1.5;
  // Per-flow rate cap (sender access bandwidth); the aggregate is the sum
  // of per-flow rates under processor sharing, so a handful of flows
  // cannot instantly saturate a fat WAN pipe.
  double per_flow_access_bps = 200e6;
  // Hard cap on the fraction of link capacity the fluid aggregate may
  // occupy, so packet-level traffic always retains some residual rate
  // above the Link-enforced 1% floor.
  double max_utilization = 0.85;
  // Queue occupancy imputed to the aggregate: this fraction of the link's
  // buffer, scaled by instantaneous utilization.
  double queue_fill_fraction = 0.5;
};

// Flow-level (fluid) model of background cross-traffic on one WAN link —
// the "hybrid fidelity" half of the sharded-simulation PR. Instead of
// simulating every data packet of bulk transfers (~40 events per flow for
// connection setup, data, ACK clocking, teardown), each background flow is
// two events: a Poisson arrival and a completion computed from a
// processor-sharing service model. Between events the aggregate is a fluid
// occupying `offered_bps()` of the link, pushed into the packet-level
// world via net::Link::set_background_load — probe flows then experience
// the congestion through the link's ordinary residual-rate serialization
// and residual-buffer drop-tail paths.
//
// Service model: the n active flows share min(n * per_flow_access_bps,
// max_utilization * capacity) equally (egalitarian processor sharing).
// Completions are tracked in virtual service time: A(t) is the cumulative
// per-flow attained service; a flow arriving at time t_a with size S
// completes when A reaches A(t_a) + S. Because PS serves all flows at the
// same rate, completion order is exactly ascending target order — a
// min-heap of targets and one rearmable timer give O(log n) per flow.
//
// Determinism: all draws come from the Rng passed at construction and all
// events run on the Simulator passed at construction, so in a sharded run
// the model is part of its owning cell's deterministic event stream.
class FlowLevelLoad {
 public:
  // `link` must outlive this object. `rng` is borrowed; in sharded runs it
  // must be the owning cell's stream.
  FlowLevelLoad(sim::Simulator& sim, net::Link& link,
                FlowTrafficConfig config, sim::Rng& rng);

  // Schedules the first arrival. Call once, before the run starts.
  void start();

  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_completed() const { return flows_completed_; }
  std::size_t active_flows() const { return targets_.size(); }
  // Current fluid offered load, as applied to the link.
  double offered_bps() const { return offered_bps_; }

 private:
  void on_arrival();
  void on_completion();
  double draw_flow_bytes();
  // Brings A(t) forward to now at the pre-change per-flow rate. Must run
  // before any event that changes the active set.
  void advance_virtual_time();
  // Recomputes the shared rate and pushes the new load onto the link.
  void apply_load();
  // Rearms the completion timer for the earliest target (if any).
  void arm_completion_timer();

  sim::Simulator& sim_;
  net::Link& link_;
  FlowTrafficConfig config_;
  sim::Rng& rng_;

  // Virtual service state.
  double attained_bytes_ = 0.0;      // A(t), per-flow attained service
  double per_flow_bps_ = 0.0;        // dA/dt * 8, current equal-share rate
  sim::Time last_advance_;           // when A was last brought forward
  std::priority_queue<double, std::vector<double>, std::greater<>> targets_;

  double offered_bps_ = 0.0;
  sim::EventHandle completion_timer_;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
};

}  // namespace riptide::flow

#include "flow/flow_traffic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/perf.h"

namespace riptide::flow {

FlowLevelLoad::FlowLevelLoad(sim::Simulator& sim, net::Link& link,
                             FlowTrafficConfig config, sim::Rng& rng)
    : sim_(sim), link_(link), config_(config), rng_(rng) {
  if (config_.flows_per_second <= 0.0) {
    throw std::invalid_argument("FlowLevelLoad: flows_per_second must be > 0");
  }
  if (config_.mean_flow_bytes <= 0.0) {
    throw std::invalid_argument("FlowLevelLoad: mean_flow_bytes must be > 0");
  }
  if (config_.per_flow_access_bps <= 0.0) {
    throw std::invalid_argument("FlowLevelLoad: access rate must be > 0");
  }
  if (config_.max_utilization <= 0.0 || config_.max_utilization > 1.0) {
    throw std::invalid_argument(
        "FlowLevelLoad: max_utilization outside (0, 1]");
  }
  if (config_.pareto_alpha != 0.0 && config_.pareto_alpha <= 1.0) {
    // alpha <= 1 has no finite mean, so mean_flow_bytes would be
    // meaningless as a calibration knob.
    throw std::invalid_argument("FlowLevelLoad: pareto_alpha must be > 1");
  }
}

void FlowLevelLoad::start() {
  last_advance_ = sim_.now();
  sim_.schedule(
      sim::Time::from_seconds(
          rng_.exponential(1.0 / config_.flows_per_second)),
      [this] { on_arrival(); });
}

double FlowLevelLoad::draw_flow_bytes() {
  if (config_.pareto_alpha == 0.0) {
    return std::max(1.0, rng_.exponential(config_.mean_flow_bytes));
  }
  // Pareto(x_m, alpha) has mean x_m * alpha / (alpha - 1); pick x_m so the
  // configured mean holds.
  const double alpha = config_.pareto_alpha;
  const double x_m = config_.mean_flow_bytes * (alpha - 1.0) / alpha;
  return std::max(1.0, rng_.pareto(x_m, alpha));
}

void FlowLevelLoad::advance_virtual_time() {
  const sim::Time now = sim_.now();
  if (now > last_advance_ && per_flow_bps_ > 0.0) {
    attained_bytes_ +=
        per_flow_bps_ / 8.0 * (now - last_advance_).to_seconds();
  }
  last_advance_ = now;
}

void FlowLevelLoad::apply_load() {
  const std::size_t n = targets_.size();
  if (n == 0) {
    per_flow_bps_ = 0.0;
    offered_bps_ = 0.0;
    link_.set_background_load(0.0, 0);
    return;
  }
  const double capacity = link_.config().rate_bps;
  offered_bps_ = std::min(static_cast<double>(n) * config_.per_flow_access_bps,
                          config_.max_utilization * capacity);
  per_flow_bps_ = offered_bps_ / static_cast<double>(n);
  // Imputed buffer occupancy scales with the aggregate's utilization; it
  // never claims the whole buffer (Link floors the residue at one slot
  // anyway, but staying below capacity keeps the model honest).
  const auto buffer = static_cast<double>(link_.config().queue_packets);
  const auto occupancy = static_cast<std::size_t>(
      config_.queue_fill_fraction * buffer * (offered_bps_ / capacity));
  link_.set_background_load(offered_bps_, occupancy);
}

void FlowLevelLoad::arm_completion_timer() {
  completion_timer_.cancel();
  if (targets_.empty() || per_flow_bps_ <= 0.0) return;
  const double remaining = std::max(0.0, targets_.top() - attained_bytes_);
  // Ceil to whole nanoseconds so the timer never fires before the virtual
  // clock has actually reached the target (a truncated delay would leave an
  // epsilon of remaining service and re-arm a zero-length timer forever).
  const double delay_ns =
      std::ceil(remaining * 8.0 / per_flow_bps_ * 1e9);
  completion_timer_ = sim_.schedule(
      sim::Time::nanoseconds(static_cast<std::int64_t>(delay_ns)),
      [this] { on_completion(); });
}

void FlowLevelLoad::on_arrival() {
  advance_virtual_time();
  targets_.push(attained_bytes_ + draw_flow_bytes());
  ++flows_started_;
  ++perf::local().flow_level_flows;
  sim_.schedule(
      sim::Time::from_seconds(
          rng_.exponential(1.0 / config_.flows_per_second)),
      [this] { on_arrival(); });
  apply_load();
  arm_completion_timer();
}

void FlowLevelLoad::on_completion() {
  advance_virtual_time();
  // Tolerance absorbs double rounding in the ceil'd rearm; half a byte is
  // far below any real flow size.
  while (!targets_.empty() && targets_.top() <= attained_bytes_ + 0.5) {
    targets_.pop();
    ++flows_completed_;
  }
  apply_load();
  arm_completion_timer();
}

}  // namespace riptide::flow

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.h"

namespace riptide::trace {

// Knobs carried by ExperimentConfig (and anything else that owns a traced
// run). Like every hardening/observability knob in this repo, tracing is
// OFF by default and the off state is bit-identical to a build without the
// feature — the golden-determinism suite pins that.
struct TraceConfig {
  bool enabled = false;
  // Ring capacity in events. On overflow the OLDEST events are dropped
  // (the end of a run explains the end of a run; a debugging session that
  // needs the start raises the capacity). Dropped counts are reported so
  // truncation is never silent.
  std::size_t ring_capacity = 1 << 16;
  // When non-empty, the owner writes the JSONL export here after the run.
  // runner::ParallelRunner expands "{label}" and "{index}" so sweeps get
  // per-run files from one config.
  std::string export_path;
};

// Ring-buffered event sink. Single-threaded by design, mirroring
// perf::Counters: a simulation and everything it emits is confined to one
// thread (ParallelRunner workers included), so emit() is a few stores with
// no atomics. Ownership stays with whoever created the sink (usually
// cdn::Experiment); installation into the thread-local slot is scoped and
// never transfers ownership.
class TraceSink {
 public:
  explicit TraceSink(const TraceConfig& config = {});

  // Stamps `event.seq` and stores the event, overwriting the oldest entry
  // when the ring is full.
  void emit(TraceEvent event);

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const {
    return emitted_ - static_cast<std::uint64_t>(size());
  }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }

  // Retained events, oldest first — (at_ns, seq) ascending by
  // construction, since emission order within the owning thread is the
  // simulator's deterministic dispatch order.
  std::vector<TraceEvent> events() const;

  // Exports. JSONL carries a leading meta line
  // {"kind":"trace-meta","emitted":N,"dropped":N} so consumers can tell a
  // complete trace from a truncated one.
  std::string to_jsonl() const;
  std::string to_csv() const;
  // Returns false (and leaves no partial file contract — best effort) when
  // the path cannot be opened.
  bool write_jsonl(const std::string& path) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t count_ = 0;
  std::uint64_t emitted_ = 0;
};

namespace detail {
inline thread_local TraceSink* tls_sink = nullptr;
}

// The sink installed on this thread, or nullptr when tracing is off. Every
// emit site is `if (auto* t = trace::active()) { ... }`: when off, the
// whole feature costs one thread-local load and a branch — no event is
// built, nothing allocates, and (unlike perf counters, which are always
// on) not even a counter is touched.
inline TraceSink* active() { return detail::tls_sink; }

// Installs `sink` (may be nullptr) on this thread; returns the previous
// occupant so callers can restore it.
inline TraceSink* install(TraceSink* sink) {
  TraceSink* previous = detail::tls_sink;
  detail::tls_sink = sink;
  return previous;
}

// RAII installation around a run. Experiment::run uses this so the sink is
// active exactly while the simulation executes on the current (possibly
// worker) thread and never leaks into the next run scheduled there.
class ScopedSink {
 public:
  explicit ScopedSink(TraceSink* sink) : previous_(install(sink)) {}
  ~ScopedSink() { install(previous_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  TraceSink* previous_;
};

}  // namespace riptide::trace

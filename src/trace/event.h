#pragma once

#include <cstdint>
#include <string>

namespace riptide::trace {

// Typed decision-audit events. One enum per event family keeps the ring
// entry a flat tagged union (fixed size, trivially copyable) instead of a
// heap-backed variant — the sink can hold 64k of them in a few MB and the
// emit path is a couple of stores.
//
// The taxonomy (mirrored in DESIGN.md "Tracing and decision audit"):
//
//   tcp-state       RFC 793 state machine transition
//   tcp-cwnd        cwnd/ssthresh changed, tagged with *why*
//   tcp-rto         retransmission timer fired
//   agent-decision  one per-destination Algorithm-1 pipeline pass:
//                   raw samples -> combined -> EWMA fold -> clamp/cap
//   agent-program   what actually reached the routing table (or why not):
//                   governor scale, hysteresis skip, budget shrink
//   agent-route     route lifecycle outside the program pass: TTL expiry,
//                   staleness decay/withdrawal, reconciliation repairs,
//                   orphan withdrawals, adoption
//   agent-restore   warm-restart provenance (in-memory table vs persisted
//                   checkpoint generation)
//   agent-rollback  governor emergency rollback swept the table
//   governor-state  the safety governor's state machine moved (normal,
//                   scale-down, selective-withdraw, cooldown), with cause
//   fault           a FaultInjector plan event fired (or a burst restored)
//   link            a link's administrative state flipped
enum class EventKind : std::uint8_t {
  kTcpState,
  kTcpCwnd,
  kTcpRto,
  kAgentDecision,
  kAgentProgram,
  kAgentRoute,
  kAgentRestore,
  kAgentRollback,
  kGovernorState,
  kFault,
  kLink,
};
const char* to_string(EventKind kind);

// Why a tcp-cwnd event happened. "initcwnd-seeded" marks construction with
// the route-supplied initial window — the jump-start moment a Fig-6-style
// timeline hinges on; the others map one-to-one onto congestion-controller
// entry points.
enum class CwndCause : std::uint8_t {
  kInitcwndSeeded,        // connection created with its initial window
  kSlowStart,             // ACK processed below ssthresh
  kCongestionAvoidance,   // ACK processed at/above ssthresh
  kFastRetransmit,        // dupack threshold -> enter recovery
  kRecoveryExit,          // full ACK ended NewReno recovery
  kRto,                   // retransmission timeout collapsed the window
  kIdleRestart,           // RFC 2861 slow-start-after-idle reset
  kHystartExit,           // HyStart ended slow start (ssthresh = cwnd)
  kBbrProbeRtt,           // BBR-lite entered its probe-RTT episode
  kPaced,                 // pacer released deferred sends (timer fired)
};
const char* to_string(CwndCause cause);

// Outcome of one agent-program attempt.
enum class ProgramVerdict : std::uint8_t {
  kProgrammed,      // route metrics written (possibly budget-scaled)
  kHysteresisSkip,  // within the governor's damping band; not written
  kBudgetShrink,    // post-pass sweep shrank an installed route to budget
  kStageScaleDown,  // staged response stage 1 scaled an installed route
};
const char* to_string(ProgramVerdict verdict);

// Route lifecycle causes outside the program pass.
enum class RouteCause : std::uint8_t {
  kExpired,             // TTL lapsed; default window restored
  kStalenessDecay,      // retransmit spike decayed the learned window
  kStalenessWithdraw,   // decay hit c_min and the path still hurts
  kReconcileRepair,     // installed route vanished/mangled; re-programmed
  kReconcileConflict,   // live metrics differed from what we installed
  kReconcileOrphan,     // learned-looking route no process owns; withdrawn
  kRollback,            // governor emergency rollback withdrew it
  kAdopted,             // leftover route adopted at start()
  kStageWithdraw,       // staged response stage 2 shed it (newest first)
  kBudgetShed,          // shed-newest budget fairness withdrew it
};
const char* to_string(RouteCause cause);

// Why the governor's state machine moved (governor-state events).
enum class GovernorCause : std::uint8_t {
  kThreshold,  // host-wide retransmit fraction crossed the brake
  kBudget,     // budget pressure (shed-newest enforcement engaged)
  kManual,     // operator/test asked for it directly
  kRecovered,  // healthy window de-escalated / cooldown elapsed
};
const char* to_string(GovernorCause cause);

// Connection identity as raw integers, so trace/ does not depend on tcp/
// (tcp depends on trace for its emit sites; a tuple dependency would be a
// cycle). Formatting back to dotted-quad happens at export time.
struct ConnKey {
  std::uint32_t local_addr;
  std::uint32_t remote_addr;
  std::uint16_t local_port;
  std::uint16_t remote_port;
};

struct TcpStateEvent {
  ConnKey conn;
  std::uint8_t from;  // tcp::TcpState values
  std::uint8_t to;
};

struct TcpCwndEvent {
  ConnKey conn;
  CwndCause cause;
  std::uint64_t cwnd_bytes;
  std::uint64_t ssthresh_bytes;
  std::uint32_t mss;
};

struct TcpRtoEvent {
  ConnKey conn;
  std::int64_t rto_ns;     // the backoff-adjusted timer that just fired
  std::uint32_t retries;   // consecutive timeouts including this one
};

// One Algorithm-1 pipeline pass for one destination: every intermediate
// the paper's §IV-A pipeline produces, so a timeline can show *why* the
// final window is what it is.
struct AgentDecisionEvent {
  std::uint32_t host;        // agent's host address
  std::uint32_t route_addr;  // destination prefix
  std::uint8_t route_len;
  std::uint8_t trend_reset;  // trend guard fired (final forced to c_min)
  std::uint8_t capped;       // operator window cap bound the result
  std::uint32_t samples;     // established connections combined
  double combined;           // combiner output (raw cwnd summary)
  double folded;             // after the EWMA fold
  double final_window;       // after clamp [c_min, c_max] and cap — stored
};

struct AgentProgramEvent {
  std::uint32_t host;
  std::uint32_t route_addr;
  std::uint8_t route_len;
  ProgramVerdict verdict;
  double scale;             // governor budget scale this poll (1 = none)
  std::uint32_t initcwnd;   // segments actually requested of the actuator
  std::uint32_t initrwnd;   // 0 when initrwnd programming is off
};

struct AgentRouteEvent {
  std::uint32_t host;
  std::uint32_t route_addr;
  std::uint8_t route_len;
  RouteCause cause;
  double window;  // learned window after the action (0 when withdrawn)
};

struct AgentRestoreEvent {
  std::uint32_t host;
  std::uint8_t from_checkpoint;  // 1 = persisted snapshot store, 0 = memory
  std::uint8_t reinstalled;      // routes re-programmed immediately
  std::uint32_t records;         // destinations recovered
  std::uint32_t generation;      // snapshot generation used (checkpoint only)
  std::uint32_t rejected;        // records dropped by CRC/validation
};

struct AgentRollbackEvent {
  std::uint32_t host;
  std::uint32_t routes;  // routes withdrawn by the sweep
};

// One edge of the governor state machine. `from`/`to` carry
// core::GovernorState values (normal / scale-down / selective-withdraw /
// cooldown), exported by name; retrans_fraction is the host-wide
// retransmit rate of the poll window that drove the transition (0 when
// the cause carries no rate, e.g. cooldown expiry).
struct GovernorStateEvent {
  std::uint32_t host;
  std::uint8_t from;
  std::uint8_t to;
  GovernorCause cause;
  double retrans_fraction;
  std::uint32_t routes;  // routes the transition's action touched
};

struct FaultLifecycleEvent {
  const char* label;      // static string from faults::to_string
  std::uint8_t restored;  // 1 = a burst window closed (parameters restored)
  std::uint32_t pop_a;
  std::uint32_t pop_b;
  std::int32_t host_index;  // -1 = all agents
  double value;
  std::int64_t duration_ns;
};

struct LinkAdminEvent {
  char name[24];  // link name, truncated
  std::uint8_t up;
};

// One ring entry. `seq` is assigned by the sink at emit time and is the
// tie-break for events sharing a timestamp: within one simulation thread
// emission order is dispatch order, which the simulator already makes
// deterministic (time, then queue seq), so (at_ns, seq) is a total order
// that is stable across runs and across --threads N.
struct TraceEvent {
  std::int64_t at_ns = 0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kTcpState;
  union {
    TcpStateEvent tcp_state;
    TcpCwndEvent tcp_cwnd;
    TcpRtoEvent tcp_rto;
    AgentDecisionEvent decision;
    AgentProgramEvent program;
    AgentRouteEvent route;
    AgentRestoreEvent restore;
    AgentRollbackEvent rollback;
    GovernorStateEvent governor;
    FaultLifecycleEvent fault;
    LinkAdminEvent link;
  };

  TraceEvent() : tcp_state{} {}
};

// One JSONL object (no trailing newline), fixed key order per kind:
// {"at":ns,"seq":n,"kind":"...", ...kind-specific fields...}. Doubles use
// %.17g so export is byte-stable and round-trips exactly.
std::string to_json(const TraceEvent& event);

// Flat CSV row matching csv_header(); fields a kind does not use are left
// empty. For spreadsheet spelunking; the JSONL form is the tool interface.
std::string to_csv(const TraceEvent& event);
const char* csv_header();

}  // namespace riptide::trace

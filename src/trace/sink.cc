#include "trace/sink.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace riptide::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTcpState: return "tcp-state";
    case EventKind::kTcpCwnd: return "tcp-cwnd";
    case EventKind::kTcpRto: return "tcp-rto";
    case EventKind::kAgentDecision: return "agent-decision";
    case EventKind::kAgentProgram: return "agent-program";
    case EventKind::kAgentRoute: return "agent-route";
    case EventKind::kAgentRestore: return "agent-restore";
    case EventKind::kAgentRollback: return "agent-rollback";
    case EventKind::kGovernorState: return "governor-state";
    case EventKind::kFault: return "fault";
    case EventKind::kLink: return "link";
  }
  return "?";
}

const char* to_string(CwndCause cause) {
  switch (cause) {
    case CwndCause::kInitcwndSeeded: return "initcwnd-seeded";
    case CwndCause::kSlowStart: return "slowstart";
    case CwndCause::kCongestionAvoidance: return "ca";
    case CwndCause::kFastRetransmit: return "fast-retransmit";
    case CwndCause::kRecoveryExit: return "recovery-exit";
    case CwndCause::kRto: return "rto";
    case CwndCause::kIdleRestart: return "idle-restart";
    case CwndCause::kHystartExit: return "hystart-exit";
    case CwndCause::kBbrProbeRtt: return "bbr-probe-rtt";
    case CwndCause::kPaced: return "paced";
  }
  return "?";
}

const char* to_string(ProgramVerdict verdict) {
  switch (verdict) {
    case ProgramVerdict::kProgrammed: return "programmed";
    case ProgramVerdict::kHysteresisSkip: return "hysteresis-skip";
    case ProgramVerdict::kBudgetShrink: return "budget-shrink";
    case ProgramVerdict::kStageScaleDown: return "stage-scale-down";
  }
  return "?";
}

const char* to_string(RouteCause cause) {
  switch (cause) {
    case RouteCause::kExpired: return "expired";
    case RouteCause::kStalenessDecay: return "staleness-decay";
    case RouteCause::kStalenessWithdraw: return "staleness-withdraw";
    case RouteCause::kReconcileRepair: return "reconcile-repair";
    case RouteCause::kReconcileConflict: return "reconcile-conflict";
    case RouteCause::kReconcileOrphan: return "reconcile-orphan";
    case RouteCause::kRollback: return "rollback";
    case RouteCause::kAdopted: return "adopted";
    case RouteCause::kStageWithdraw: return "stage-withdraw";
    case RouteCause::kBudgetShed: return "budget-shed";
  }
  return "?";
}

const char* to_string(GovernorCause cause) {
  switch (cause) {
    case GovernorCause::kThreshold: return "threshold";
    case GovernorCause::kBudget: return "budget";
    case GovernorCause::kManual: return "manual";
    case GovernorCause::kRecovered: return "recovered";
  }
  return "?";
}

namespace {

// Dotted-quad of a raw address word, matching net::Ipv4Address::to_string
// (trace/ stores raw integers to avoid a dependency cycle with net/).
void format_addr(char* buf, std::size_t n, std::uint32_t addr) {
  std::snprintf(buf, n, "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
}

// "local:port-remote:port", the connection key the report tool groups by.
std::string format_conn(const ConnKey& conn) {
  char local[16], remote[16], buf[48];
  format_addr(local, sizeof local, conn.local_addr);
  format_addr(remote, sizeof remote, conn.remote_addr);
  std::snprintf(buf, sizeof buf, "%s:%u-%s:%u", local, conn.local_port,
                remote, conn.remote_port);
  return buf;
}

std::string format_route(std::uint32_t addr, std::uint8_t len) {
  char a[16], buf[24];
  format_addr(a, sizeof a, addr);
  std::snprintf(buf, sizeof buf, "%s/%u", a, len);
  return buf;
}

std::string format_host(std::uint32_t addr) {
  char a[16];
  format_addr(a, sizeof a, addr);
  return a;
}

// Names for GovernorStateEvent::from/to. Mirrors core::GovernorState by
// value (trace/ cannot include core/ — core depends on trace for its emit
// sites, and the reverse edge would be a cycle).
const char* governor_state_name(std::uint8_t state) {
  switch (state) {
    case 0: return "normal";
    case 1: return "scale-down";
    case 2: return "selective-withdraw";
    case 3: return "cooldown";
  }
  return "?";
}

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string to_json(const TraceEvent& e) {
  std::string out;
  out.reserve(192);
  append(out, "{\"at\":%lld,\"seq\":%llu,\"kind\":\"%s\"",
         static_cast<long long>(e.at_ns),
         static_cast<unsigned long long>(e.seq), to_string(e.kind));
  switch (e.kind) {
    case EventKind::kTcpState:
      append(out, ",\"conn\":\"%s\",\"from\":%u,\"to\":%u",
             format_conn(e.tcp_state.conn).c_str(), e.tcp_state.from,
             e.tcp_state.to);
      break;
    case EventKind::kTcpCwnd:
      append(out,
             ",\"conn\":\"%s\",\"cause\":\"%s\",\"cwnd\":%llu,"
             "\"ssthresh\":%llu,\"mss\":%u",
             format_conn(e.tcp_cwnd.conn).c_str(), to_string(e.tcp_cwnd.cause),
             static_cast<unsigned long long>(e.tcp_cwnd.cwnd_bytes),
             static_cast<unsigned long long>(e.tcp_cwnd.ssthresh_bytes),
             e.tcp_cwnd.mss);
      break;
    case EventKind::kTcpRto:
      append(out, ",\"conn\":\"%s\",\"rto_ns\":%lld,\"retries\":%u",
             format_conn(e.tcp_rto.conn).c_str(),
             static_cast<long long>(e.tcp_rto.rto_ns), e.tcp_rto.retries);
      break;
    case EventKind::kAgentDecision:
      append(out,
             ",\"host\":\"%s\",\"route\":\"%s\",\"samples\":%u,"
             "\"combined\":%.17g,\"folded\":%.17g,\"final\":%.17g,"
             "\"trend_reset\":%u,\"capped\":%u",
             format_host(e.decision.host).c_str(),
             format_route(e.decision.route_addr, e.decision.route_len).c_str(),
             e.decision.samples, e.decision.combined, e.decision.folded,
             e.decision.final_window, e.decision.trend_reset,
             e.decision.capped);
      break;
    case EventKind::kAgentProgram:
      append(out,
             ",\"host\":\"%s\",\"route\":\"%s\",\"verdict\":\"%s\","
             "\"scale\":%.17g,\"initcwnd\":%u,\"initrwnd\":%u",
             format_host(e.program.host).c_str(),
             format_route(e.program.route_addr, e.program.route_len).c_str(),
             to_string(e.program.verdict), e.program.scale, e.program.initcwnd,
             e.program.initrwnd);
      break;
    case EventKind::kAgentRoute:
      append(out,
             ",\"host\":\"%s\",\"route\":\"%s\",\"cause\":\"%s\","
             "\"window\":%.17g",
             format_host(e.route.host).c_str(),
             format_route(e.route.route_addr, e.route.route_len).c_str(),
             to_string(e.route.cause), e.route.window);
      break;
    case EventKind::kAgentRestore:
      append(out,
             ",\"host\":\"%s\",\"source\":\"%s\",\"reinstalled\":%u,"
             "\"records\":%u,\"generation\":%u,\"rejected\":%u",
             format_host(e.restore.host).c_str(),
             e.restore.from_checkpoint ? "checkpoint" : "memory",
             e.restore.reinstalled, e.restore.records, e.restore.generation,
             e.restore.rejected);
      break;
    case EventKind::kAgentRollback:
      append(out, ",\"host\":\"%s\",\"routes\":%u",
             format_host(e.rollback.host).c_str(), e.rollback.routes);
      break;
    case EventKind::kGovernorState:
      append(out,
             ",\"host\":\"%s\",\"from\":\"%s\",\"to\":\"%s\","
             "\"cause\":\"%s\",\"retrans_fraction\":%.17g,\"routes\":%u",
             format_host(e.governor.host).c_str(),
             governor_state_name(e.governor.from),
             governor_state_name(e.governor.to), to_string(e.governor.cause),
             e.governor.retrans_fraction, e.governor.routes);
      break;
    case EventKind::kFault:
      append(out,
             ",\"fault\":\"%s\",\"restored\":%u,\"pop_a\":%u,\"pop_b\":%u,"
             "\"host_index\":%d,\"value\":%.17g,\"duration_ns\":%lld",
             e.fault.label != nullptr ? e.fault.label : "?", e.fault.restored,
             e.fault.pop_a, e.fault.pop_b, e.fault.host_index, e.fault.value,
             static_cast<long long>(e.fault.duration_ns));
      break;
    case EventKind::kLink: {
      char name[sizeof e.link.name + 1];
      std::memcpy(name, e.link.name, sizeof e.link.name);
      name[sizeof e.link.name] = '\0';
      append(out, ",\"link\":\"%s\",\"up\":%u", name, e.link.up);
      break;
    }
  }
  out += '}';
  return out;
}

const char* csv_header() {
  return "at_ns,seq,kind,conn,cause,cwnd,ssthresh,host,route,"
         "combined,folded,final,verdict,scale,initcwnd,detail";
}

std::string to_csv(const TraceEvent& e) {
  // Fixed columns (see csv_header); kinds leave unused cells empty and
  // park oddball fields in the trailing free-form `detail` cell.
  std::string conn, cause, cwnd, ssthresh, host, route, combined, folded,
      final_window, verdict, scale, initcwnd, detail;
  char buf[96];
  switch (e.kind) {
    case EventKind::kTcpState:
      conn = format_conn(e.tcp_state.conn);
      std::snprintf(buf, sizeof buf, "state:%u->%u", e.tcp_state.from,
                    e.tcp_state.to);
      detail = buf;
      break;
    case EventKind::kTcpCwnd:
      conn = format_conn(e.tcp_cwnd.conn);
      cause = to_string(e.tcp_cwnd.cause);
      cwnd = std::to_string(e.tcp_cwnd.cwnd_bytes);
      ssthresh = std::to_string(e.tcp_cwnd.ssthresh_bytes);
      break;
    case EventKind::kTcpRto:
      conn = format_conn(e.tcp_rto.conn);
      cause = "rto";
      std::snprintf(buf, sizeof buf, "rto_ns:%lld retries:%u",
                    static_cast<long long>(e.tcp_rto.rto_ns),
                    e.tcp_rto.retries);
      detail = buf;
      break;
    case EventKind::kAgentDecision:
      host = format_host(e.decision.host);
      route = format_route(e.decision.route_addr, e.decision.route_len);
      std::snprintf(buf, sizeof buf, "%.17g", e.decision.combined);
      combined = buf;
      std::snprintf(buf, sizeof buf, "%.17g", e.decision.folded);
      folded = buf;
      std::snprintf(buf, sizeof buf, "%.17g", e.decision.final_window);
      final_window = buf;
      std::snprintf(buf, sizeof buf, "samples:%u", e.decision.samples);
      detail = buf;
      break;
    case EventKind::kAgentProgram:
      host = format_host(e.program.host);
      route = format_route(e.program.route_addr, e.program.route_len);
      verdict = to_string(e.program.verdict);
      std::snprintf(buf, sizeof buf, "%.17g", e.program.scale);
      scale = buf;
      initcwnd = std::to_string(e.program.initcwnd);
      std::snprintf(buf, sizeof buf, "initrwnd:%u", e.program.initrwnd);
      detail = buf;
      break;
    case EventKind::kAgentRoute:
      host = format_host(e.route.host);
      route = format_route(e.route.route_addr, e.route.route_len);
      cause = to_string(e.route.cause);
      std::snprintf(buf, sizeof buf, "%.17g", e.route.window);
      final_window = buf;
      break;
    case EventKind::kAgentRestore:
      host = format_host(e.restore.host);
      std::snprintf(buf, sizeof buf, "source:%s records:%u gen:%u rejected:%u",
                    e.restore.from_checkpoint ? "checkpoint" : "memory",
                    e.restore.records, e.restore.generation,
                    e.restore.rejected);
      detail = buf;
      break;
    case EventKind::kAgentRollback:
      host = format_host(e.rollback.host);
      std::snprintf(buf, sizeof buf, "routes:%u", e.rollback.routes);
      detail = buf;
      break;
    case EventKind::kGovernorState:
      host = format_host(e.governor.host);
      cause = to_string(e.governor.cause);
      std::snprintf(buf, sizeof buf,
                    "state:%s->%s retrans_fraction:%.9g routes:%u",
                    governor_state_name(e.governor.from),
                    governor_state_name(e.governor.to),
                    e.governor.retrans_fraction, e.governor.routes);
      detail = buf;
      break;
    case EventKind::kFault:
      cause = e.fault.label != nullptr ? e.fault.label : "?";
      std::snprintf(buf, sizeof buf,
                    "pops:%u-%u value:%.9g restored:%u host_index:%d",
                    e.fault.pop_a, e.fault.pop_b, e.fault.value,
                    e.fault.restored, e.fault.host_index);
      detail = buf;
      break;
    case EventKind::kLink: {
      char name[sizeof e.link.name + 1];
      std::memcpy(name, e.link.name, sizeof e.link.name);
      name[sizeof e.link.name] = '\0';
      std::snprintf(buf, sizeof buf, "link:%s up:%u", name, e.link.up);
      detail = buf;
      break;
    }
  }
  std::string out;
  out.reserve(160);
  append(out, "%lld,%llu,%s,", static_cast<long long>(e.at_ns),
         static_cast<unsigned long long>(e.seq), to_string(e.kind));
  out += conn + ',' + cause + ',' + cwnd + ',' + ssthresh + ',' + host + ',' +
         route + ',' + combined + ',' + folded + ',' + final_window + ',' +
         verdict + ',' + scale + ',' + initcwnd + ',' + detail;
  return out;
}

TraceSink::TraceSink(const TraceConfig& config) {
  ring_.resize(config.ring_capacity > 0 ? config.ring_capacity : 1);
}

void TraceSink::emit(TraceEvent event) {
  event.seq = emitted_++;
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string TraceSink::to_jsonl() const {
  std::string out;
  out.reserve(count_ * 160 + 64);
  char meta[96];
  std::snprintf(meta, sizeof meta,
                "{\"kind\":\"trace-meta\",\"emitted\":%llu,\"dropped\":%llu}\n",
                static_cast<unsigned long long>(emitted()),
                static_cast<unsigned long long>(dropped()));
  out += meta;
  for (const TraceEvent& e : events()) {
    out += to_json(e);
    out += '\n';
  }
  return out;
}

std::string TraceSink::to_csv() const {
  std::string out;
  out.reserve(count_ * 128 + 64);
  out += csv_header();
  out += '\n';
  for (const TraceEvent& e : events()) {
    // Qualified: the member to_csv() would otherwise hide the free function.
    out += trace::to_csv(e);
    out += '\n';
  }
  return out;
}

bool TraceSink::write_jsonl(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  const std::string body = to_jsonl();
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(file);
}

}  // namespace riptide::trace

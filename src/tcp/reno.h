#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "tcp/congestion_control.h"
#include "tcp/hystart.h"

namespace riptide::tcp {

// TCP NewReno congestion control (RFC 5681 + RFC 6582 window halving), with
// Appropriate Byte Counting (RFC 3465, L=2) so delayed ACKs still let slow
// start double per RTT, as in Linux. HyStart (tcp/hystart.h) composes onto
// slow start the same way it does for Cubic; historically the hystart flag
// was a Cubic-only silent no-op here.
class NewReno : public CongestionControl {
 public:
  NewReno(std::uint32_t mss, std::uint64_t initial_cwnd_bytes,
          bool hystart = false, HystartTuning hystart_tuning = {});

  void on_ack(const AckEvent& ev) override;
  void on_enter_recovery(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_exit_recovery(sim::Time now) override;
  void on_timeout(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_restart_after_idle() override;

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  const char* name() const override { return "newreno"; }
  CcSignal take_signal() override {
    const CcSignal s = signal_;
    signal_ = CcSignal::kNone;
    return s;
  }

  bool hystart_enabled() const { return hystart_.has_value(); }

 private:
  std::uint32_t mss_;
  std::uint64_t initial_cwnd_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t ca_acc_ = 0;  // bytes acked toward the next +1 MSS in CA
  bool in_recovery_ = false;
  sim::Time last_rtt_ = sim::Time::milliseconds(100);  // HyStart round length
  std::optional<Hystart> hystart_;
  CcSignal signal_ = CcSignal::kNone;
};

}  // namespace riptide::tcp

#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/time.h"
#include "tcp/config.h"

namespace riptide::tcp {

// Everything a congestion controller may want to know about one ACK.
struct AckEvent {
  sim::Time now;
  std::uint64_t bytes_acked = 0;          // newly cumulatively acked bytes
  std::uint64_t bytes_in_flight = 0;      // before this ACK was processed
  std::optional<sim::Time> rtt;           // valid (non-retransmitted) sample
};

// A regime-internal transition the connection's trace layer wants to name
// (tcp-cwnd cause tags): HyStart ended slow start, or BBR entered its
// probe-RTT episode. Set by on_ack, consumed (and cleared) by
// take_signal; at most one per ACK, the freshest wins.
enum class CcSignal : std::uint8_t {
  kNone,
  kHystartExit,
  kBbrProbeRtt,
};

// Congestion-controller interface. The controller owns cwnd and ssthresh in
// bytes; the connection owns loss *detection* (dupACK counting, RTO) and
// notifies the controller of recovery transitions. Fast-recovery window
// inflation (the +1 MSS per dupACK of RFC 6582) is handled by the
// connection, since it is part of NewReno's retransmission strategy rather
// than of long-term window evolution.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Cumulative ACK of new data outside fast recovery.
  virtual void on_ack(const AckEvent& ev) = 0;

  // Entering fast recovery (3rd dupACK). `bytes_in_flight` is FlightSize at
  // the time loss was detected.
  virtual void on_enter_recovery(sim::Time now, std::uint64_t bytes_in_flight) = 0;

  // Recovery completed (all data outstanding at entry has been acked).
  virtual void on_exit_recovery(sim::Time now) = 0;

  // Retransmission timeout: collapse to loss window.
  virtual void on_timeout(sim::Time now, std::uint64_t bytes_in_flight) = 0;

  // RFC 2861 restart after idle: cwnd back to the (route) initial window.
  virtual void on_restart_after_idle() = 0;

  virtual std::uint64_t cwnd_bytes() const = 0;
  virtual std::uint64_t ssthresh_bytes() const = 0;
  virtual bool in_slow_start() const { return cwnd_bytes() < ssthresh_bytes(); }
  virtual const char* name() const = 0;

  // Drains the regime transition recorded by the last on_ack, if any. The
  // connection polls this only when a trace sink is installed, so
  // controllers must overwrite (not accumulate) the pending signal each
  // on_ack — an undrained stale signal must never survive into the next
  // ACK's report.
  virtual CcSignal take_signal() { return CcSignal::kNone; }

  // The controller's own pacing-rate opinion in bytes/sec; 0 means "no
  // opinion" and the connection falls back to the window-derived rate
  // pacing_gain * cwnd / srtt. BBR-lite supplies gain * estimated
  // bottleneck bandwidth here, which is the whole point of a rate model.
  virtual double pacing_rate_bytes_per_sec() const { return 0.0; }
};

// Creates the controller selected by `config.congestion_control`.
// `initial_cwnd_bytes` is the (possibly route-overridden) IW — this is the
// single knob Riptide turns.
std::unique_ptr<CongestionControl> make_congestion_control(
    const TcpConfig& config, std::uint64_t initial_cwnd_bytes);

}  // namespace riptide::tcp

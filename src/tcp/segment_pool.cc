#include "tcp/segment_pool.h"

#include "stats/perf.h"

namespace riptide::tcp {

SegmentPool& SegmentPool::local() {
  thread_local SegmentPool pool;
  return pool;
}

void SegmentPool::refill() {
  // One heap allocation per kSlabSegments checkouts at peak; after the
  // high-water mark is reached, zero.
  ++perf::local().segment_heap_allocs;
  slabs_.push_back(std::make_unique<Segment[]>(kSlabSegments));
  Segment* slab = slabs_.back().get();
  free_.reserve(free_.size() + kSlabSegments);
  // Reverse order so the free list pops slab[0] first (cache-friendly and
  // deterministic across builds).
  for (std::size_t i = kSlabSegments; i-- > 0;) {
    slab[i].pool_ = this;
    free_.push_back(&slab[i]);
  }
}

SegmentRef SegmentPool::allocate() {
  if (free_.empty()) refill();
  Segment* seg = free_.back();
  free_.pop_back();

  // Reset to the default-constructed state; the generation stamp (bumped
  // by recycle) and pool backlink survive.
  seg->src_port = 0;
  seg->dst_port = 0;
  seg->seq = 0;
  seg->ack = 0;
  seg->syn = false;
  seg->ack_flag = false;
  seg->fin = false;
  seg->rst = false;
  seg->payload_bytes = 0;
  seg->window_bytes = 0;
  seg->sack_blocks.clear();

  ++live_;
  if (live_ > high_water_) high_water_ = live_;

  auto& perf = perf::local();
  ++perf.segments_allocated;
  perf.segment_pool_live = live_;
  perf.segment_pool_high_water = high_water_;
  perf.segment_pool_free = free_.size();
  return SegmentRef(seg);
}

void SegmentPool::recycle(Segment* seg) {
  ++seg->pool_gen_;  // invalidate outstanding debug handles
  free_.push_back(seg);
  --live_;

  auto& perf = perf::local();
  ++perf.segments_recycled;
  perf.segment_pool_live = live_;
  perf.segment_pool_free = free_.size();
}

Segment* Segment::wire_clone() const {
  // Field-by-field copy on purpose: the implicit copy constructor would
  // also copy the pool backlink and generation stamp, and a heap clone
  // must never masquerade as a pool slot.
  auto* clone = new Segment();
  clone->src_port = src_port;
  clone->dst_port = dst_port;
  clone->seq = seq;
  clone->ack = ack;
  clone->syn = syn;
  clone->ack_flag = ack_flag;
  clone->fin = fin;
  clone->rst = rst;
  clone->payload_bytes = payload_bytes;
  clone->window_bytes = window_bytes;
  clone->sack_blocks = sack_blocks;
  return clone;
}

void Segment::retire() const {
  // retire() is conceptually destruction, so shedding const to hand the
  // slot back mirrors what `delete this` (legal on a const pointer) does.
  if (pool_ != nullptr) {
    pool_->recycle(const_cast<Segment*>(this));
  } else {
    delete this;
  }
}

}  // namespace riptide::tcp

#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "tcp/congestion_control.h"
#include "tcp/hystart.h"

namespace riptide::tcp {

// CUBIC congestion control per RFC 8312 (the Linux default the paper's CDN
// runs, §III-B). Slow start below ssthresh is standard (with RFC 3465 byte
// counting); above ssthresh the window tracks the cubic curve
//   W_cubic(t) = C * (t - K)^3 + W_max
// with fast convergence and the TCP-friendly (Reno-tracking) region.
//
// Optional HyStart (tcp/hystart.h, delay-increase by default, ACK-train
// via tuning): when the detector fires during slow start, ssthresh is set
// to the current window, ending slow start before the queue overflows.
// Disabled by default (the study's flows are short and IW-dominated).
class Cubic : public CongestionControl {
 public:
  Cubic(std::uint32_t mss, std::uint64_t initial_cwnd_bytes,
        bool hystart = false, HystartTuning hystart_tuning = {});

  void on_ack(const AckEvent& ev) override;
  void on_enter_recovery(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_exit_recovery(sim::Time now) override;
  void on_timeout(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_restart_after_idle() override;

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }
  const char* name() const override { return "cubic"; }
  CcSignal take_signal() override {
    const CcSignal s = signal_;
    signal_ = CcSignal::kNone;
    return s;
  }

  bool hystart_enabled() const { return hystart_.has_value(); }

 private:
  void multiplicative_decrease(std::uint64_t bytes_in_flight);
  double w_cubic_segments(double t_seconds) const;

  static constexpr double kC = 0.4;     // cubic scaling constant
  static constexpr double kBeta = 0.7;  // multiplicative decrease factor

  std::uint32_t mss_;
  std::uint64_t initial_cwnd_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();

  double w_max_segments_ = 0.0;          // window at last decrease
  double k_seconds_ = 0.0;               // time to regain w_max
  std::optional<sim::Time> epoch_start_; // start of current cubic epoch
  double w_est_segments_ = 0.0;          // TCP-friendly estimate
  sim::Time last_rtt_ = sim::Time::milliseconds(100);  // fallback until sampled
  bool in_recovery_ = false;

  std::optional<Hystart> hystart_;
  CcSignal signal_ = CcSignal::kNone;
};

}  // namespace riptide::tcp

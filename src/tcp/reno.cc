#include "tcp/reno.h"

#include <algorithm>

namespace riptide::tcp {

NewReno::NewReno(std::uint32_t mss, std::uint64_t initial_cwnd_bytes,
                 bool hystart, HystartTuning hystart_tuning)
    : mss_(mss), initial_cwnd_(initial_cwnd_bytes), cwnd_(initial_cwnd_bytes) {
  if (hystart) hystart_.emplace(hystart_tuning);
}

void NewReno::on_ack(const AckEvent& ev) {
  signal_ = CcSignal::kNone;
  if (in_recovery_) return;  // window frozen until recovery exits
  if (ev.rtt) last_rtt_ = *ev.rtt;
  if (cwnd_ < ssthresh_) {
    if (hystart_ && hystart_->on_ack(ev, last_rtt_)) {
      ssthresh_ = cwnd_;  // congestion avoidance takes over from here
      signal_ = CcSignal::kHystartExit;
    }
    // Slow start with ABC (L=2): grow by bytes acked, at most 2 MSS per ACK.
    cwnd_ += std::min<std::uint64_t>(ev.bytes_acked, 2ull * mss_);
  } else {
    // Congestion avoidance: +1 MSS per cwnd of acked bytes.
    ca_acc_ += ev.bytes_acked;
    if (ca_acc_ >= cwnd_) {
      ca_acc_ -= cwnd_;
      cwnd_ += mss_;
    }
  }
}

void NewReno::on_enter_recovery(sim::Time /*now*/,
                                std::uint64_t bytes_in_flight) {
  // RFC 6582: ssthresh = max(FlightSize / 2, 2 * SMSS); cwnd deflates to
  // ssthresh (the per-dupACK inflation lives in the connection).
  ssthresh_ = std::max<std::uint64_t>(bytes_in_flight / 2, 2ull * mss_);
  cwnd_ = ssthresh_;
  ca_acc_ = 0;
  in_recovery_ = true;
}

void NewReno::on_exit_recovery(sim::Time /*now*/) {
  in_recovery_ = false;
  cwnd_ = ssthresh_;
}

void NewReno::on_timeout(sim::Time /*now*/, std::uint64_t bytes_in_flight) {
  ssthresh_ = std::max<std::uint64_t>(bytes_in_flight / 2, 2ull * mss_);
  cwnd_ = mss_;  // RFC 5681 loss window
  ca_acc_ = 0;
  in_recovery_ = false;
}

void NewReno::on_restart_after_idle() {
  cwnd_ = std::min(cwnd_, initial_cwnd_);
  ca_acc_ = 0;
}

}  // namespace riptide::tcp

#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace riptide::tcp {

// A TCP segment. Sequence numbers are 64-bit absolute byte offsets starting
// from 0 on each side (no 32-bit wrap handling: simulated flows move far
// less than 2^64 bytes, and wrap logic would only obscure the protocol
// logic this reproduction cares about). Payload is represented by its length
// only; the CDN workloads in this study are size-driven, not content-driven.
struct Segment : net::Payload {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  std::uint64_t seq = 0;  // first payload byte (or the SYN/FIN itself)
  std::uint64_t ack = 0;  // next byte expected by the sender of this segment

  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;

  std::uint32_t payload_bytes = 0;
  std::uint64_t window_bytes = 0;  // advertised receive window

  // SACK option: up to 3 received-but-out-of-order ranges [start, end),
  // most useful first. Empty when the peer has no holes (or SACK is off).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sack_blocks;

  // Sequence space consumed: payload plus one unit each for SYN and FIN.
  std::uint64_t sequence_span() const {
    return payload_bytes + (syn ? 1u : 0u) + (fin ? 1u : 0u);
  }
  std::uint64_t seq_end() const { return seq + sequence_span(); }

  std::string flags_string() const {
    std::string f;
    if (syn) f += 'S';
    if (ack_flag) f += 'A';
    if (fin) f += 'F';
    if (rst) f += 'R';
    return f.empty() ? "." : f;
  }

  std::string to_string() const {
    std::ostringstream os;
    os << flags_string() << " seq=" << seq << " ack=" << ack
       << " len=" << payload_bytes << " wnd=" << window_bytes;
    return os.str();
  }
};

}  // namespace riptide::tcp

#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "stats/perf.h"

namespace riptide::tcp {

class SegmentPool;

// SACK blocks with small-buffer storage: real ACKs carry at most 3 blocks
// (RFC 2018 with timestamps; the sender caps at 3 too), so the common case
// lives entirely inside the segment with zero heap traffic. Pathological
// reordering past the inline capacity spills to a heap vector and bumps
// the `sack_heap_spills` perf counter so the spill rate stays observable.
class SackBlocks {
 public:
  using Block = std::pair<std::uint64_t, std::uint64_t>;  // [start, end)
  static constexpr std::size_t kInlineCapacity = 3;

  SackBlocks() = default;
  SackBlocks(const SackBlocks& other) { *this = other; }
  SackBlocks& operator=(const SackBlocks& other) {
    if (this == &other) return *this;
    size_ = other.size_;
    inline_ = other.inline_;
    spill_ = other.spill_ ? std::make_unique<std::vector<Block>>(*other.spill_)
                          : nullptr;
    return *this;
  }
  SackBlocks(SackBlocks&&) noexcept = default;
  SackBlocks& operator=(SackBlocks&&) noexcept = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void clear() {
    size_ = 0;
    spill_.reset();
  }

  void push_back(const Block& block) {
    if (size_ < kInlineCapacity) {
      inline_[size_++] = block;
      return;
    }
    if (!spill_) {
      ++perf::local().sack_heap_spills;
      spill_ = std::make_unique<std::vector<Block>>();
    }
    spill_->push_back(block);
    ++size_;
  }

  const Block& operator[](std::size_t i) const {
    return i < kInlineCapacity ? inline_[i] : (*spill_)[i - kInlineCapacity];
  }

  // Iteration: contiguous only while within the inline buffer, which is
  // the invariant for every segment the stack itself builds (senders cap
  // at kInlineCapacity blocks). Spilled sets fall back to operator[].
  const Block* begin() const { return inline_.data(); }
  const Block* end() const {
    return inline_.data() + (size_ < kInlineCapacity ? size_ : kInlineCapacity);
  }
  bool spilled() const { return spill_ != nullptr; }

 private:
  std::array<Block, kInlineCapacity> inline_{};
  std::uint32_t size_ = 0;
  std::unique_ptr<std::vector<Block>> spill_;
};

// A TCP segment. Sequence numbers are 64-bit absolute byte offsets starting
// from 0 on each side (no 32-bit wrap handling: simulated flows move far
// less than 2^64 bytes, and wrap logic would only obscure the protocol
// logic this reproduction cares about). Payload is represented by its length
// only; the CDN workloads in this study are size-driven, not content-driven.
//
// Segments are normally checked out of a thread-local SegmentPool (see
// tcp/segment_pool.h) and returned to it when the last net::Ref drops;
// stack- or make_shared-constructed segments (tests) simply delete.
struct Segment : net::Payload {
  Segment() : net::Payload(net::Payload::kSegmentKind) {}

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  std::uint64_t seq = 0;  // first payload byte (or the SYN/FIN itself)
  std::uint64_t ack = 0;  // next byte expected by the sender of this segment

  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;

  std::uint32_t payload_bytes = 0;
  std::uint64_t window_bytes = 0;  // advertised receive window

  // SACK option: up to 3 received-but-out-of-order ranges [start, end),
  // ascending. Empty when the peer has no holes (or SACK is off).
  SackBlocks sack_blocks;

  // Sequence space consumed: payload plus one unit each for SYN and FIN.
  std::uint64_t sequence_span() const {
    return payload_bytes + (syn ? 1u : 0u) + (fin ? 1u : 0u);
  }
  std::uint64_t seq_end() const { return seq + sequence_span(); }

  std::string flags_string() const {
    std::string f;
    if (syn) f += 'S';
    if (ack_flag) f += 'A';
    if (fin) f += 'F';
    if (rst) f += 'R';
    return f.empty() ? "." : f;
  }

  std::string to_string() const {
    std::ostringstream os;
    os << flags_string() << " seq=" << seq << " ack=" << ack
       << " len=" << payload_bytes << " wnd=" << window_bytes;
    return os.str();
  }

  // Generation stamp for debug-build use-after-recycle checks: bumped by
  // the pool each time this slot is recycled, compared by SegmentRef.
  std::uint32_t pool_generation() const { return pool_gen_; }

  // Shard-boundary copy (see net::Payload::wire_clone): a heap-owned
  // segment with identical protocol fields but no pool backlink, so it is
  // plain-deleted on whichever shard drops the last reference. Pooled
  // segments themselves must never cross a shard mailbox alive.
  Segment* wire_clone() const override;

 protected:
  void retire() const override;

 private:
  friend class SegmentPool;
  SegmentPool* pool_ = nullptr;  // null: not pool-owned, retire() deletes
  std::uint32_t pool_gen_ = 0;
};

// Tag-checked downcast for packet demux: dynamic_cast without the RTTI
// walk. Returns null for non-TCP payloads (or none at all).
inline const Segment* segment_from(const net::Packet& packet) {
  const net::Payload* p = packet.payload.get();
  return p != nullptr && p->kind() == net::Payload::kSegmentKind
             ? static_cast<const Segment*>(p)
             : nullptr;
}

// Owning handle to a (usually pooled) segment. A thin wrapper over
// net::Ref<Segment> that, in debug builds, pins the pool generation it was
// issued for and asserts on every dereference — a stale handle to a
// recycled slot trips immediately instead of silently reading the next
// checkout's fields.
class SegmentRef {
 public:
  SegmentRef() = default;
  explicit SegmentRef(Segment* seg) : ref_(seg) {
#ifndef NDEBUG
    gen_ = seg != nullptr ? seg->pool_generation() : 0;
#endif
  }

  Segment* get() const {
    check();
    return ref_.get();
  }
  Segment& operator*() const {
    check();
    return *ref_;
  }
  Segment* operator->() const {
    check();
    return ref_.get();
  }
  explicit operator bool() const { return static_cast<bool>(ref_); }

  // The underlying refcounted handle (e.g. to stash in a Packet).
  const net::Ref<Segment>& ref() const& {
    check();
    return ref_;
  }
  net::Ref<Segment>&& ref() && {
    check();
    return std::move(ref_);
  }

 private:
  void check() const {
#ifndef NDEBUG
    if (ref_.get() != nullptr && ref_->pool_generation() != gen_) {
      std::abort();  // use-after-recycle
    }
#endif
  }

  net::Ref<Segment> ref_;
#ifndef NDEBUG
  std::uint32_t gen_ = 0;
#endif
};

}  // namespace riptide::tcp

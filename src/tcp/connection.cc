#include "tcp/connection.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "tcp/segment_pool.h"
#include "trace/sink.h"

namespace riptide::tcp {

const char* to_string(TcpState state) {
  switch (state) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN-SENT";
    case TcpState::kSynReceived: return "SYN-RECEIVED";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN-WAIT-1";
    case TcpState::kFinWait2: return "FIN-WAIT-2";
    case TcpState::kCloseWait: return "CLOSE-WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST-ACK";
    case TcpState::kTimeWait: return "TIME-WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(sim::Simulator& sim, TcpConfig config,
                             FourTuple tuple, SegmentSender sender,
                             void* sender_ctx, Callbacks callbacks)
    : sim_(sim),
      config_(config),
      tuple_(tuple),
      sender_(sender),
      sender_ctx_(sender_ctx),
      callbacks_(std::move(callbacks)),
      cc_(make_congestion_control(config_, config_.initial_cwnd_bytes())),
      rtt_(config_.initial_rto, config_.min_rto, config_.max_rto) {}

TcpConnection::~TcpConnection() {
  cancel_rto();
  delack_timer_.cancel();
  time_wait_timer_.cancel();
  pacing_timer_.cancel();
}

trace::ConnKey TcpConnection::trace_key() const {
  return trace::ConnKey{tuple_.local_addr.value(), tuple_.remote_addr.value(),
                        tuple_.local_port, tuple_.remote_port};
}

void TcpConnection::set_state(TcpState next) {
  if (auto* sink = trace::active(); sink != nullptr && next != state_) {
    trace::TraceEvent ev;
    ev.at_ns = sim_.now().ns();
    ev.kind = trace::EventKind::kTcpState;
    ev.tcp_state = {trace_key(), static_cast<std::uint8_t>(state_),
                    static_cast<std::uint8_t>(next)};
    sink->emit(ev);
  }
  state_ = next;
}

void TcpConnection::trace_cwnd(trace::CwndCause cause) {
  auto* sink = trace::active();
  if (sink == nullptr) return;
  trace::TraceEvent ev;
  ev.at_ns = sim_.now().ns();
  ev.kind = trace::EventKind::kTcpCwnd;
  ev.tcp_cwnd = {trace_key(), cause, cc_->cwnd_bytes(), cc_->ssthresh_bytes(),
                 config_.mss};
  sink->emit(ev);
}

std::uint64_t TcpConnection::bytes_acked() const {
  if (snd_una_ <= 1) return 0;  // only the SYN (or nothing) acked so far
  std::uint64_t acked = snd_una_ - 1;
  if (fin_sent_ && snd_una_ > data_end_seq()) --acked;  // exclude FIN unit
  return acked;
}

std::uint64_t TcpConnection::bytes_received() const {
  if (tracker_.rcv_nxt() == 0) return 0;
  std::uint64_t received = tracker_.rcv_nxt() - 1;  // exclude peer SYN
  if (peer_fin_seq_ && tracker_.rcv_nxt() > *peer_fin_seq_) --received;
  return received;
}

std::optional<sim::Time> TcpConnection::srtt() const {
  if (!rtt_.has_sample()) return std::nullopt;
  return rtt_.srtt();
}

// ---------------------------------------------------------------- lifecycle

void TcpConnection::connect() {
  if (state_ != TcpState::kClosed) {
    throw std::logic_error("TcpConnection::connect: not closed");
  }
  set_state(TcpState::kSynSent);
  trace_cwnd(trace::CwndCause::kInitcwndSeeded);
  auto syn = make_segment();
  syn->syn = true;
  syn->seq = 0;
  syn->ack_flag = false;
  syn->ack = 0;
  snd_nxt_ = 1;
  probe_seq_end_ = 1;  // handshake RTT seeds the estimator
  probe_sent_at_ = sim_.now();
  emit(std::move(syn));
  arm_rto();
}

void TcpConnection::accept(const Segment& syn) {
  if (state_ != TcpState::kClosed || !syn.syn) {
    throw std::logic_error("TcpConnection::accept: bad state or segment");
  }
  ++stats_.segments_received;
  set_state(TcpState::kSynReceived);
  trace_cwnd(trace::CwndCause::kInitcwndSeeded);
  tracker_ = ReceiveTracker(1);  // peer ISS 0, SYN consumed
  peer_rwnd_ = syn.window_bytes;
  auto synack = make_segment();
  synack->syn = true;
  synack->seq = 0;
  snd_nxt_ = 1;
  probe_seq_end_ = 1;
  probe_sent_at_ = sim_.now();
  emit(std::move(synack));
  arm_rto();
}

void TcpConnection::send(std::uint64_t bytes) {
  if (fin_pending_ || fin_sent_) {
    throw std::logic_error("TcpConnection::send after close()");
  }
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) {
    throw std::logic_error("TcpConnection::send on closed connection");
  }
  app_bytes_queued_ += bytes;
  try_send();
}

void TcpConnection::close() {
  if (fin_pending_ || fin_sent_ || state_ == TcpState::kClosed) return;
  fin_pending_ = true;
  try_send();
}

void TcpConnection::abort() {
  if (state_ == TcpState::kClosed) return;
  send_rst();
  teardown(true);
}

void TcpConnection::enter_established() {
  set_state(TcpState::kEstablished);
  established_at_ = sim_.now();
  last_activity_ = sim_.now();
  if (callbacks_.on_established) callbacks_.on_established();
}

void TcpConnection::enter_time_wait() {
  set_state(TcpState::kTimeWait);
  cancel_rto();
  delack_timer_.cancel();
  time_wait_timer_.cancel();
  time_wait_timer_ =
      sim_.schedule(config_.time_wait_duration, [this] { teardown(false); });
}

void TcpConnection::teardown(bool reset) {
  if (state_ == TcpState::kClosed) return;
  set_state(TcpState::kClosed);
  cancel_rto();
  delack_timer_.cancel();
  time_wait_timer_.cancel();
  pacing_timer_.cancel();
  if (callbacks_.on_closed) callbacks_.on_closed(reset);
  if (teardown_hook_) teardown_hook_();
}

// ------------------------------------------------------------ segment I/O

SegmentRef TcpConnection::make_segment() const {
  SegmentRef seg = SegmentPool::local().allocate();
  seg->src_port = tuple_.local_port;
  seg->dst_port = tuple_.remote_port;
  seg->seq = snd_nxt_;
  seg->ack = tracker_.rcv_nxt();
  seg->ack_flag = true;
  seg->window_bytes = advertised_window();
  if (config_.sack && tracker_.has_out_of_order()) {
    tracker_.fill_intervals(seg->sack_blocks, SackBlocks::kInlineCapacity);
  }
  return seg;
}

// ------------------------------------------------------ SACK scoreboard

void TcpConnection::merge_sack_blocks(const Segment& seg) {
  if (!config_.sack) return;
  for (auto [start, end] : seg.sack_blocks) {
    start = std::max(start, snd_una_);
    if (end <= start) continue;
    auto it = sacked_.lower_bound(start);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        end = std::max(end, prev->second);
        it = sacked_.erase(prev);
      }
    }
    while (it != sacked_.end() && it->first <= end) {
      end = std::max(end, it->second);
      it = sacked_.erase(it);
    }
    sacked_.emplace(start, end);
  }
}

void TcpConnection::purge_sacked_below(std::uint64_t seq) {
  while (!sacked_.empty()) {
    const auto it = sacked_.begin();
    if (it->second <= seq) {
      sacked_.erase(it);
      continue;
    }
    if (it->first < seq) {
      const auto end = it->second;
      sacked_.erase(it);
      sacked_.emplace(seq, end);
    }
    break;
  }
}

bool TcpConnection::is_sacked_at(std::uint64_t seq) const {
  const auto it = sacked_.upper_bound(seq);
  if (it == sacked_.begin()) return false;
  return std::prev(it)->second > seq;
}

std::uint64_t TcpConnection::next_hole(std::uint64_t from) const {
  const auto it = sacked_.upper_bound(from);
  if (it == sacked_.begin()) return from;
  const auto prev = std::prev(it);
  return prev->second > from ? prev->second : from;
}

std::uint64_t TcpConnection::sacked_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [s, e] : sacked_) total += e - s;
  return total;
}

void TcpConnection::emit(SegmentRef seg) {
  ++stats_.segments_sent;
  sender_(sender_ctx_, tuple_, std::move(seg));
}

void TcpConnection::send_ack_now() {
  unacked_segments_ = 0;
  delack_timer_.cancel();
  emit(make_segment());
}

void TcpConnection::send_rst() {
  auto rst = make_segment();
  rst->rst = true;
  emit(std::move(rst));
}

std::uint64_t TcpConnection::advertised_window() const {
  return window_opened_ ? config_.receive_buffer_bytes
                        : config_.initial_rwnd_bytes();
}

// Delayed ACKs stay on the seed's eager cancel + reschedule discipline
// deliberately. A lazy deadline-field variant (rearm = two stores, early
// fire re-sleeps) was measured ~9% faster on the bulk bench but is NOT
// behavior-identical: the re-slept event's queue sequence number is
// assigned at re-sleep time instead of schedule time, and a delack
// deadline is always `data arrival + constant`, which lands exactly on
// the packet-arrival grid — so delack-vs-arrival timestamp ties are
// common, and flipping their dispatch order changes which cumulative ACK
// goes out (caught by the golden-determinism suite and a stress seed).
// The constraint is scheduler-independent: the timer wheel, like the old
// heap, assigns the FIFO tie-break sequence at schedule time, so the
// same re-sleep scheme would reorder the same ties.
// The RTO timer below CAN be lazy because its deadline derives from
// measured RTT sums that don't re-align with the arrival grid.
void TcpConnection::schedule_delayed_ack() {
  if (delack_timer_.valid()) return;
  delack_timer_ = sim_.schedule(config_.delayed_ack_timeout, [this] {
    delack_timer_ = sim::EventHandle{};
    if (unacked_segments_ > 0) send_ack_now();
  });
}

// --------------------------------------------------------------- sender

std::uint64_t TcpConnection::send_limit_bytes() const {
  return std::min<std::uint64_t>(cc_->cwnd_bytes() + recovery_inflation_,
                                 peer_rwnd_);
}

void TcpConnection::maybe_restart_after_idle() {
  if (!config_.slow_start_after_idle) return;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) return;
  if (bytes_in_flight() > 0) return;
  if (sim_.now() - last_activity_ > rtt_.rto()) {
    const std::uint64_t cwnd_before = cc_->cwnd_bytes();
    cc_->on_restart_after_idle();
    if (cc_->cwnd_bytes() != cwnd_before) {
      trace_cwnd(trace::CwndCause::kIdleRestart);
    }
  }
}

bool TcpConnection::pacing_blocked() {
  if (!config_.pacing || !rtt_.has_sample()) return false;
  if (!pacer_.blocked(sim_.now())) return false;
  if (!pacing_timer_.valid()) {
    pacing_timer_ = sim_.schedule_at(pacer_.release_at(), [this] {
      pacing_timer_ = sim::EventHandle{};
      // The release tag makes pacing stalls visible in a cwnd timeline:
      // sends resumed here because the pacer said so, not because an ACK
      // opened the window.
      trace_cwnd(trace::CwndCause::kPaced);
      try_send();
    });
  }
  return true;
}

void TcpConnection::note_paced_send(std::uint32_t bytes) {
  if (!config_.pacing || !rtt_.has_sample()) return;
  // A rate-model controller (BBR-lite) supplies its own pacing rate;
  // window-based controllers fall back to gain * cwnd / srtt, i.e. the
  // window spread over 1/gain of an RTT.
  double rate_bytes_per_sec = cc_->pacing_rate_bytes_per_sec();
  if (rate_bytes_per_sec <= 0.0) {
    rate_bytes_per_sec =
        config_.pacing_gain * static_cast<double>(cc_->cwnd_bytes()) /
        std::max(rtt_.srtt().to_seconds(), 1e-6);
  }
  pacer_.on_send(sim_.now(), bytes, rate_bytes_per_sec,
                 config_.pacing_burst_bytes);
}

void TcpConnection::try_send() {
  const bool may_send_data =
      state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait;
  if (!may_send_data) return;

  maybe_restart_after_idle();

  bool sent_any = false;
  while (snd_nxt_ < data_end_seq() &&
         bytes_in_flight() < send_limit_bytes()) {
    if (config_.sack && is_sacked_at(snd_nxt_)) {
      // Post-RTO rewind ran into a range the peer already holds: skip it.
      snd_nxt_ = std::min(next_hole(snd_nxt_), data_end_seq());
      continue;
    }
    if (pacing_blocked()) break;
    auto len_bytes =
        std::min<std::uint64_t>(config_.mss, data_end_seq() - snd_nxt_);
    if (config_.sack) {
      const auto it = sacked_.lower_bound(snd_nxt_ + 1);
      if (it != sacked_.end() && it->first < snd_nxt_ + len_bytes) {
        len_bytes = it->first - snd_nxt_;
      }
    }
    const auto len = static_cast<std::uint32_t>(len_bytes);
    const bool attach_fin =
        fin_pending_ && snd_nxt_ + len == data_end_seq();
    send_data_segment(snd_nxt_, len, attach_fin);
    note_paced_send(len);
    snd_nxt_ += len + (attach_fin ? 1 : 0);
    sent_any = true;
    if (attach_fin) break;
  }

  // Pure FIN when there is no data left to carry it on.
  if (fin_pending_ && !fin_sent_ && snd_nxt_ == data_end_seq()) {
    send_data_segment(snd_nxt_, 0, true);
    snd_nxt_ += 1;
    sent_any = true;
  }

  if (sent_any) {
    last_activity_ = sim_.now();
    arm_rto();
  }
}

void TcpConnection::send_data_segment(std::uint64_t seq, std::uint32_t len,
                                      bool fin) {
  auto seg = make_segment();
  seg->seq = seq;
  seg->payload_bytes = len;
  if (fin) {
    seg->fin = true;
    fin_sent_ = true;
    if (state_ == TcpState::kEstablished) set_state(TcpState::kFinWait1);
    else if (state_ == TcpState::kCloseWait) set_state(TcpState::kLastAck);
  }
  unacked_segments_ = 0;  // this segment carries our current ACK
  delack_timer_.cancel();
  if (!probe_seq_end_ && seq == snd_nxt_) {
    probe_seq_end_ = seq + len + (fin ? 1 : 0);
    probe_sent_at_ = sim_.now();
  }
  emit(std::move(seg));
}

void TcpConnection::retransmit_front() {
  ++stats_.retransmissions;
  probe_seq_end_.reset();  // Karn's rule

  if (snd_una_ == 0) {  // SYN (or SYN-ACK) lost
    auto syn = make_segment();
    syn->syn = true;
    syn->seq = 0;
    if (state_ == TcpState::kSynSent) {
      syn->ack_flag = false;
      syn->ack = 0;
    }
    emit(std::move(syn));
    return;
  }

  // With SACK, retransmit the first scoreboard *hole* rather than blindly
  // resending from snd_una (which the peer may already hold).
  const std::uint64_t seq = config_.sack ? next_hole(snd_una_) : snd_una_;

  auto seg = make_segment();
  seg->seq = seq;
  if (seq < data_end_seq()) {
    auto len =
        std::min<std::uint64_t>(config_.mss, data_end_seq() - seq);
    if (config_.sack) {
      // Do not run into the next peer-held block.
      const auto it = sacked_.lower_bound(seq + 1);
      if (it != sacked_.end() && it->first < seq + len) {
        len = it->first - seq;
      }
    }
    seg->payload_bytes = static_cast<std::uint32_t>(len);
    seg->fin = fin_sent_ && seq + len == data_end_seq();
  } else if (fin_sent_) {
    seg->fin = true;
  } else {
    return;  // nothing outstanding to retransmit
  }
  emit(std::move(seg));
}

void TcpConnection::arm_rto() {
  // Lazy rearm: per-ACK this is two field writes. The pending event only
  // needs replacing when it would fire *after* the new deadline (the RTO
  // estimate shrank), which is rare; an early-firing event re-sleeps
  // itself in on_rto_timer. The scheme predates the O(1)-cancel timer
  // wheel (under the old heap it also kept dead entries out of the
  // queue); it stays because two stores still beat even a cheap
  // cancel + reschedule round-trip on the per-ACK path.
  rto_armed_ = true;
  rto_deadline_ = sim_.now() + rtt_.rto();
  if (!rto_timer_.valid() || rto_scheduled_for_ > rto_deadline_) {
    rto_timer_.cancel();
    rto_scheduled_for_ = rto_deadline_;
    rto_timer_ = sim_.schedule_at(rto_deadline_, [this] { on_rto_timer(); });
  }
}

void TcpConnection::cancel_rto() {
  rto_armed_ = false;
  rto_timer_.cancel();
}

void TcpConnection::on_rto_timer() {
  rto_timer_ = sim::EventHandle{};  // this event has fired
  if (!rto_armed_) return;
  if (sim_.now() < rto_deadline_) {
    // The deadline moved while we slept; sleep again until it.
    rto_scheduled_for_ = rto_deadline_;
    rto_timer_ = sim_.schedule_at(rto_deadline_, [this] { on_rto_timer(); });
    return;
  }
  rto_armed_ = false;
  on_rto();
}

void TcpConnection::on_rto() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;
  if (snd_nxt_ == snd_una_) return;  // stale timer, nothing outstanding

  ++stats_.timeouts;
  ++retries_;
  if (auto* sink = trace::active()) {
    trace::TraceEvent ev;
    ev.at_ns = sim_.now().ns();
    ev.kind = trace::EventKind::kTcpRto;
    ev.tcp_rto = {trace_key(), rtt_.rto().ns(), retries_};
    sink->emit(ev);
  }
  rtt_.on_timeout();

  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived) {
    if (retries_ > config_.max_syn_retries) {
      teardown(true);
      return;
    }
    retransmit_front();
    arm_rto();
    return;
  }

  if (retries_ > config_.max_data_retries) {
    teardown(true);
    return;
  }

  cc_->on_timeout(sim_.now(), bytes_in_flight());
  trace_cwnd(trace::CwndCause::kRto);
  in_recovery_ = false;
  recovery_inflation_ = 0;
  dupacks_ = 0;

  // Go-back-N: rewind snd_nxt and let try_send stream from the loss point
  // under the collapsed window. (Linux uses SACK-based retransmission; the
  // simplification only affects multi-loss tail behaviour.)
  snd_nxt_ = snd_una_;
  if (fin_sent_ && snd_nxt_ <= data_end_seq()) {
    fin_sent_ = false;  // FIN will be re-attached when we reach it again
    if (state_ == TcpState::kFinWait1) set_state(TcpState::kEstablished);
    else if (state_ == TcpState::kLastAck) set_state(TcpState::kCloseWait);
  }
  ++stats_.retransmissions;
  try_send();
  arm_rto();
}

// --------------------------------------------------------------- receiver

void TcpConnection::on_segment(const Segment& seg) {
  if (state_ == TcpState::kClosed) return;
  ++stats_.segments_received;

  if (seg.rst) {
    teardown(true);
    return;
  }

  switch (state_) {
    case TcpState::kSynSent: {
      if (seg.syn && seg.ack_flag && seg.ack >= 1) {
        tracker_ = ReceiveTracker(1);
        snd_una_ = 1;
        peer_rwnd_ = seg.window_bytes;
        retries_ = 0;
        cancel_rto();
        if (probe_seq_end_ && snd_una_ >= *probe_seq_end_) {
          rtt_.add_sample(sim_.now() - probe_sent_at_);
          probe_seq_end_.reset();
        }
        enter_established();
        send_ack_now();
        try_send();
      }
      return;
    }
    case TcpState::kSynReceived: {
      if (seg.syn && !seg.ack_flag) {
        // Client retransmitted its SYN: our SYN-ACK was lost.
        retransmit_front();
        return;
      }
      if (seg.ack_flag && seg.ack >= 1) {
        snd_una_ = std::max<std::uint64_t>(snd_una_, 1);
        peer_rwnd_ = seg.window_bytes;
        retries_ = 0;
        cancel_rto();
        if (probe_seq_end_ && snd_una_ >= *probe_seq_end_) {
          rtt_.add_sample(sim_.now() - probe_sent_at_);
          probe_seq_end_.reset();
        }
        enter_established();
        // Fall through to normal processing for piggybacked payload/FIN.
        if (seg.payload_bytes > 0) process_payload(seg);
        if (seg.fin) process_fin(seg);
        try_send();
      }
      return;
    }
    default:
      break;
  }

  if (seg.syn && seg.ack_flag) {
    // Peer retransmitted SYN-ACK: our handshake ACK was lost.
    send_ack_now();
    return;
  }

  if (seg.ack_flag) process_ack(seg);
  if (seg.payload_bytes > 0) process_payload(seg);
  if (seg.fin) process_fin(seg);
}

void TcpConnection::process_ack(const Segment& seg) {
  if (seg.ack < snd_una_) return;  // stale
  merge_sack_blocks(seg);

  if (seg.ack == snd_una_) {
    const bool is_dupack = snd_nxt_ > snd_una_ && seg.payload_bytes == 0 &&
                           !seg.syn && !seg.fin;
    if (!is_dupack) {
      peer_rwnd_ = seg.window_bytes;
      return;
    }
    ++stats_.duplicate_acks_received;
    ++dupacks_;
    peer_rwnd_ = seg.window_bytes;
    if (!in_recovery_ && dupacks_ == config_.duplicate_ack_threshold) {
      in_recovery_ = true;
      recover_seq_ = snd_nxt_;
      cc_->on_enter_recovery(sim_.now(), bytes_in_flight());
      trace_cwnd(trace::CwndCause::kFastRetransmit);
      recovery_inflation_ =
          std::uint64_t{config_.duplicate_ack_threshold} * config_.mss;
      ++stats_.fast_retransmits;
      retransmit_front();
      arm_rto();
    } else if (in_recovery_) {
      recovery_inflation_ += config_.mss;
      try_send();
    }
    return;
  }

  // New data acknowledged.
  const std::uint64_t in_flight_before = bytes_in_flight();
  const std::uint64_t acked = seg.ack - snd_una_;
  snd_una_ = seg.ack;
  purge_sacked_below(snd_una_);
  peer_rwnd_ = seg.window_bytes;
  dupacks_ = 0;
  retries_ = 0;

  std::optional<sim::Time> sample;
  if (probe_seq_end_ && snd_una_ >= *probe_seq_end_) {
    sample = sim_.now() - probe_sent_at_;
    rtt_.add_sample(*sample);
    probe_seq_end_.reset();
  }

  if (in_recovery_) {
    if (seg.ack >= recover_seq_) {
      in_recovery_ = false;
      recovery_inflation_ = 0;
      cc_->on_exit_recovery(sim_.now());
      trace_cwnd(trace::CwndCause::kRecoveryExit);
    } else {
      // NewReno partial ACK: retransmit the next hole, deflate, inflate by
      // one MSS (RFC 6582 §3.2).
      retransmit_front();
      recovery_inflation_ -= std::min(recovery_inflation_, acked);
      recovery_inflation_ += config_.mss;
      arm_rto();
    }
  } else {
    // Whether this ACK grows the window in slow start or congestion
    // avoidance is decided by the controller's state *before* the ack is
    // applied; snapshot it only when a sink is installed.
    const bool traced = trace::active() != nullptr;
    const std::uint64_t cwnd_before = traced ? cc_->cwnd_bytes() : 0;
    const bool slow_start = traced && cc_->in_slow_start();
    cc_->on_ack(AckEvent{sim_.now(), acked, in_flight_before, sample});
    if (traced) {
      // A regime-internal transition (HyStart exit, BBR probe-RTT entry)
      // outranks the generic growth tag — and must be reported even when
      // cwnd itself did not move (HyStart only writes ssthresh).
      switch (cc_->take_signal()) {
        case CcSignal::kHystartExit:
          trace_cwnd(trace::CwndCause::kHystartExit);
          break;
        case CcSignal::kBbrProbeRtt:
          trace_cwnd(trace::CwndCause::kBbrProbeRtt);
          break;
        case CcSignal::kNone:
          if (cc_->cwnd_bytes() != cwnd_before) {
            trace_cwnd(slow_start ? trace::CwndCause::kSlowStart
                                  : trace::CwndCause::kCongestionAvoidance);
          }
          break;
      }
    }
  }

  // Our FIN acknowledged?
  if (fin_sent_ && snd_una_ >= data_end_seq() + 1) {
    switch (state_) {
      case TcpState::kFinWait1:
        if (peer_fin_seq_ && tracker_.rcv_nxt() > *peer_fin_seq_) {
          enter_time_wait();
        } else {
          set_state(TcpState::kFinWait2);
        }
        break;
      case TcpState::kClosing:
        enter_time_wait();
        break;
      case TcpState::kLastAck:
        teardown(false);
        return;
      default:
        break;
    }
  }

  if (bytes_in_flight() > 0) {
    arm_rto();
  } else {
    cancel_rto();
  }
  try_send();
}

void TcpConnection::process_payload(const Segment& seg) {
  window_opened_ = true;

  std::uint64_t delivered =
      tracker_.on_segment(seg.seq, seg.seq + seg.payload_bytes);

  // The advance may have run through a previously buffered FIN.
  bool fin_consumed_now = false;
  if (peer_fin_seq_ && delivered > 0 && tracker_.rcv_nxt() > *peer_fin_seq_) {
    --delivered;  // the FIN unit is not application data
    fin_consumed_now = true;
  }

  if (delivered > 0 && callbacks_.on_data) callbacks_.on_data(delivered);

  const bool out_of_order = tracker_.has_out_of_order() || delivered == 0;
  if (out_of_order) {
    send_ack_now();  // immediate (duplicate) ACK to drive fast retransmit
  } else {
    ++unacked_segments_;
    if (unacked_segments_ >= config_.delayed_ack_segments) {
      send_ack_now();
    } else {
      schedule_delayed_ack();
    }
  }

  if (fin_consumed_now) process_fin_transition();
}

void TcpConnection::process_fin(const Segment& seg) {
  const std::uint64_t fin_seq = seg.seq + seg.payload_bytes;
  peer_fin_seq_ = fin_seq;
  tracker_.on_segment(fin_seq, fin_seq + 1);
  send_ack_now();
  if (tracker_.rcv_nxt() > fin_seq) process_fin_transition();
}

void TcpConnection::process_fin_transition() {
  switch (state_) {
    case TcpState::kEstablished:
      set_state(TcpState::kCloseWait);
      if (callbacks_.on_peer_closed) callbacks_.on_peer_closed();
      break;
    case TcpState::kFinWait1:
      // Our FIN not yet acked (otherwise we'd be in FIN-WAIT-2).
      set_state(TcpState::kClosing);
      if (callbacks_.on_peer_closed) callbacks_.on_peer_closed();
      break;
    case TcpState::kFinWait2:
      if (callbacks_.on_peer_closed) callbacks_.on_peer_closed();
      enter_time_wait();
      break;
    default:
      break;
  }
}

}  // namespace riptide::tcp

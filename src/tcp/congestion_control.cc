#include "tcp/congestion_control.h"

#include "tcp/cubic.h"
#include "tcp/reno.h"

namespace riptide::tcp {

std::unique_ptr<CongestionControl> make_congestion_control(
    const TcpConfig& config, std::uint64_t initial_cwnd_bytes) {
  switch (config.congestion_control) {
    case CcAlgorithm::kNewReno:
      return std::make_unique<NewReno>(config.mss, initial_cwnd_bytes);
    case CcAlgorithm::kCubic:
      return std::make_unique<Cubic>(config.mss, initial_cwnd_bytes,
                                     config.hystart);
  }
  return std::make_unique<Cubic>(config.mss, initial_cwnd_bytes,
                                 config.hystart);
}

}  // namespace riptide::tcp

#include "tcp/congestion_control.h"

#include "tcp/bbr_lite.h"
#include "tcp/cubic.h"
#include "tcp/reno.h"

namespace riptide::tcp {

std::unique_ptr<CongestionControl> make_congestion_control(
    const TcpConfig& config, std::uint64_t initial_cwnd_bytes) {
  switch (config.congestion_control) {
    case CcAlgorithm::kNewReno:
      return std::make_unique<NewReno>(config.mss, initial_cwnd_bytes,
                                       config.hystart, config.hystart_tuning);
    case CcAlgorithm::kCubic:
      return std::make_unique<Cubic>(config.mss, initial_cwnd_bytes,
                                     config.hystart, config.hystart_tuning);
    case CcAlgorithm::kBbrLite:
      return std::make_unique<BbrLite>(config.mss, initial_cwnd_bytes,
                                       config.bbr);
  }
  return std::make_unique<Cubic>(config.mss, initial_cwnd_bytes,
                                 config.hystart, config.hystart_tuning);
}

const char* to_string(RouteCc cc) {
  switch (cc) {
    case RouteCc::kUnset: return "";
    case RouteCc::kReno: return "reno";
    case RouteCc::kCubic: return "cubic";
    case RouteCc::kCubicFast: return "cubic-fast";
    case RouteCc::kBbrLite: return "bbr";
  }
  return "";
}

bool parse_route_cc(const std::string& token, RouteCc& out) {
  if (token == "reno") {
    out = RouteCc::kReno;
  } else if (token == "cubic") {
    out = RouteCc::kCubic;
  } else if (token == "cubic-fast") {
    out = RouteCc::kCubicFast;
  } else if (token == "bbr") {
    out = RouteCc::kBbrLite;
  } else {
    return false;
  }
  return true;
}

void apply_route_cc(RouteCc cc, TcpConfig& config) {
  switch (cc) {
    case RouteCc::kUnset:
      break;
    case RouteCc::kReno:
      config.congestion_control = CcAlgorithm::kNewReno;
      break;
    case RouteCc::kCubic:
      config.congestion_control = CcAlgorithm::kCubic;
      break;
    case RouteCc::kCubicFast:
      config.congestion_control = CcAlgorithm::kCubic;
      config.hystart = true;
      config.pacing = true;
      break;
    case RouteCc::kBbrLite:
      config.congestion_control = CcAlgorithm::kBbrLite;
      config.pacing = true;
      break;
  }
}

}  // namespace riptide::tcp

#pragma once

#include <optional>

#include "sim/time.h"
#include "tcp/config.h"

namespace riptide::tcp {

struct AckEvent;

// HyStart slow-start exit detection (Ha & Rhee), extracted from Cubic so
// any loss-based controller can compose it. Two independent detectors,
// either of which ends slow start at the current window:
//
//  * delay increase — per-round minimum RTTs are tracked, rounds being
//    delimited by the smoothed RTT; when a round's minimum exceeds the
//    previous round's by eta = prev_min / eta_divisor (clamped to
//    [min_eta, max_eta]), the queue has started building. This is the
//    variant the pre-extraction Cubic shipped, bit-identically.
//
//  * ACK train (optional, tuning.ack_train) — a run of ACKs spaced at
//    most train_spacing_max apart whose span reaches half the minimum
//    observed RTT means the in-flight window already covers the pipe.
//
// The caller owns the consequence (typically ssthresh = cwnd): on_ack
// only reports the verdict, so the detector stays controller-agnostic.
class Hystart {
 public:
  explicit Hystart(HystartTuning tuning = {}) : tuning_(tuning) {}

  // Feeds one ACK; `last_rtt` is the controller's current RTT estimate
  // (round delimiter). Returns true when slow start should end now.
  // Keep calling only while in slow start; detection state is cheap but
  // meaningless afterwards.
  bool on_ack(const AckEvent& ev, sim::Time last_rtt);

  const HystartTuning& tuning() const { return tuning_; }

 private:
  bool delay_increase_detected() const;
  bool ack_train_detected(sim::Time now) const;

  HystartTuning tuning_;
  // Round tracking (delay-increase detector).
  std::optional<sim::Time> round_start_;
  std::optional<sim::Time> round_min_rtt_;
  std::optional<sim::Time> prev_round_min_rtt_;
  // ACK-train tracking.
  std::optional<sim::Time> train_start_;
  std::optional<sim::Time> last_ack_at_;
  std::optional<sim::Time> min_rtt_;
};

}  // namespace riptide::tcp

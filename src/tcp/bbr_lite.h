#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>

#include "tcp/congestion_control.h"

namespace riptide::tcp {

// A model-based controller in the BBR v1 mold (delivery-rate + min-RTT
// probing; see the large-BDP transport survey in PAPERS.md), deliberately
// "lite": it works from the cumulative-ACK stream the AckEvent interface
// already carries instead of per-packet rate samples, so it slots behind
// the existing CongestionControl interface untouched.
//
//   * Bandwidth: delivered bytes are accumulated per round (rounds
//     delimited by the current RTT estimate, as in HyStart); each round's
//     delivered/elapsed is a bandwidth sample, max-filtered over the last
//     bw_window_rounds rounds. Reordering robustness falls out of the
//     cumulative accounting: dupACK storms contribute no on_ack calls,
//     and the eventual cumulative ACK restores the exact byte count, so
//     a reordered round measures the same delivery as an in-order one.
//   * Min RTT: windowed minimum over min_rtt_window; when the estimate
//     goes stale, a probe-RTT episode clamps cwnd to min_cwnd_segments
//     for probe_rtt_duration to drain the queue and re-measure.
//   * State machine: STARTUP (gain startup_gain until the bandwidth
//     filter plateaus for full_bw_rounds rounds) -> DRAIN (one inverse-
//     gain round) -> PROBE_BW (the 8-phase pacing-gain cycle), with
//     PROBE_RTT overriding any state.
//   * cwnd = cwnd_gain * estimated BDP, floored at min_cwnd_segments;
//     during STARTUP it additionally grows by bytes acked so the initial
//     (possibly route-jump-started) window keeps doubling while the
//     model warms up.
//
// Loss is *not* a model input: on_enter/on_exit_recovery leave the window
// alone (steady-state loss tolerance is BBR's defining property), and
// only an RTO — by then the model is provably wrong — collapses to the
// floor window. Every constant is construction-time tunable via
// BbrTuning.
class BbrLite : public CongestionControl {
 public:
  BbrLite(std::uint32_t mss, std::uint64_t initial_cwnd_bytes,
          BbrTuning tuning = {});

  void on_ack(const AckEvent& ev) override;
  void on_enter_recovery(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_exit_recovery(sim::Time now) override;
  void on_timeout(sim::Time now, std::uint64_t bytes_in_flight) override;
  void on_restart_after_idle() override;

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override {
    return std::numeric_limits<std::uint64_t>::max();  // no loss threshold
  }
  bool in_slow_start() const override { return mode_ == Mode::kStartup; }
  const char* name() const override { return "bbr-lite"; }
  CcSignal take_signal() override {
    const CcSignal s = signal_;
    signal_ = CcSignal::kNone;
    return s;
  }
  double pacing_rate_bytes_per_sec() const override;

  // Model introspection for tests and the cc bench.
  double bottleneck_bw_bytes_per_sec() const;
  std::optional<sim::Time> min_rtt() const { return min_rtt_; }
  bool in_probe_rtt() const { return mode_ == Mode::kProbeRtt; }
  std::uint32_t rounds_elapsed() const { return round_count_; }

 private:
  enum class Mode : std::uint8_t { kStartup, kDrain, kProbeBw, kProbeRtt };

  double current_gain() const;
  std::uint64_t bdp_bytes() const;
  void finish_round(sim::Time now);
  void update_min_rtt(const AckEvent& ev);
  void update_target_cwnd(const AckEvent& ev);

  std::uint32_t mss_;
  std::uint64_t initial_cwnd_;
  std::uint64_t cwnd_;
  BbrTuning tuning_;

  Mode mode_ = Mode::kStartup;
  Mode probe_rtt_return_ = Mode::kStartup;  // mode to resume afterwards
  CcSignal signal_ = CcSignal::kNone;

  // Round + delivery accounting.
  std::uint64_t delivered_ = 0;          // total bytes cumulatively acked
  std::uint64_t round_base_ = 0;         // delivered_ at round start
  std::optional<sim::Time> round_start_;
  std::uint32_t round_count_ = 0;
  sim::Time last_rtt_ = sim::Time::milliseconds(100);  // round delimiter

  // Windowed max bandwidth filter (bytes/sec), one entry per round.
  std::deque<double> bw_samples_;

  // Startup plateau detection.
  double full_bw_ = 0.0;
  std::uint32_t full_bw_count_ = 0;

  // Probe-bw gain cycle.
  std::uint32_t cycle_phase_ = 0;

  // Min-RTT filter + probe-RTT episode.
  std::optional<sim::Time> min_rtt_;
  sim::Time min_rtt_stamp_;
  std::optional<sim::Time> probe_rtt_done_;
};

}  // namespace riptide::tcp

#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace riptide::tcp {

// Tracks the received sequence space on the receive side: a cumulative
// in-order point (rcv_nxt) plus a set of disjoint out-of-order intervals.
// Feeding a segment advances rcv_nxt through any intervals it connects.
class ReceiveTracker {
 public:
  explicit ReceiveTracker(std::uint64_t initial_rcv_nxt = 0)
      : rcv_nxt_(initial_rcv_nxt) {}

  // Records [start, end) as received. Returns the number of bytes newly
  // delivered in-order (i.e. how far rcv_nxt advanced).
  std::uint64_t on_segment(std::uint64_t start, std::uint64_t end);

  std::uint64_t rcv_nxt() const { return rcv_nxt_; }

  // True when the segment contains no new data (fully duplicate).
  bool is_duplicate(std::uint64_t start, std::uint64_t end) const;

  bool has_out_of_order() const { return !ooo_.empty(); }
  std::size_t out_of_order_intervals() const { return ooo_.size(); }
  std::uint64_t out_of_order_bytes() const;

  // Up to `max_intervals` out-of-order ranges in ascending order — the
  // material for SACK blocks.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals(
      std::size_t max_intervals) const;

  // Allocation-free variant: appends the same ranges into any container
  // with push_back (the segment's inline SackBlocks on the hot path).
  template <typename Out>
  void fill_intervals(Out& out, std::size_t max_intervals) const {
    std::size_t n = 0;
    for (const auto& [s, e] : ooo_) {
      if (n++ >= max_intervals) break;
      out.push_back({s, e});
    }
  }

 private:
  std::uint64_t rcv_nxt_;
  // start -> end, disjoint, all strictly above rcv_nxt_.
  std::map<std::uint64_t, std::uint64_t> ooo_;
};

}  // namespace riptide::tcp

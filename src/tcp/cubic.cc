#include "tcp/cubic.h"

#include <algorithm>
#include <cmath>

namespace riptide::tcp {

Cubic::Cubic(std::uint32_t mss, std::uint64_t initial_cwnd_bytes, bool hystart,
             HystartTuning hystart_tuning)
    : mss_(mss),
      initial_cwnd_(initial_cwnd_bytes),
      cwnd_(initial_cwnd_bytes) {
  if (hystart) hystart_.emplace(hystart_tuning);
}

double Cubic::w_cubic_segments(double t_seconds) const {
  const double dt = t_seconds - k_seconds_;
  return kC * dt * dt * dt + w_max_segments_;
}

void Cubic::on_ack(const AckEvent& ev) {
  signal_ = CcSignal::kNone;
  if (in_recovery_) return;
  if (ev.rtt) last_rtt_ = *ev.rtt;

  if (cwnd_ < ssthresh_) {
    // Standard slow start with byte counting (L=2), as in Linux CUBIC.
    if (hystart_ && hystart_->on_ack(ev, last_rtt_)) {
      ssthresh_ = cwnd_;  // leave slow start; cubic takes over from here
      signal_ = CcSignal::kHystartExit;
    }
    cwnd_ += std::min<std::uint64_t>(ev.bytes_acked, 2ull * mss_);
    return;
  }

  const double w = static_cast<double>(cwnd_) / mss_;
  if (!epoch_start_) {
    epoch_start_ = ev.now;
    if (w_max_segments_ < w) {
      // No decrease recorded above the current window: start a fresh
      // plateau here.
      w_max_segments_ = w;
      k_seconds_ = 0.0;
    } else {
      k_seconds_ = std::cbrt((w_max_segments_ - w) / kC);
    }
    w_est_segments_ = w;
  }

  const double t = (ev.now - *epoch_start_).to_seconds();
  const double rtt_s = std::max(last_rtt_.to_seconds(), 1e-6);

  // Target is the cubic curve one RTT ahead (RFC 8312 §4.1).
  double target = w_cubic_segments(t + rtt_s);
  // Linux caps the per-RTT growth at 1.5x to bound burstiness.
  target = std::min(target, 1.5 * w);

  // TCP-friendly region (RFC 8312 §4.2).
  const double acked_segments = static_cast<double>(ev.bytes_acked) / mss_;
  w_est_segments_ += 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * acked_segments / w;
  target = std::max(target, w_est_segments_);

  if (target > w) {
    // Spread the climb to `target` over roughly one RTT worth of ACKs.
    const double inc_segments = (target - w) / w * acked_segments;
    cwnd_ += static_cast<std::uint64_t>(inc_segments * mss_);
  }
  // Below-target: hold (cubic plateau around w_max).
}

void Cubic::multiplicative_decrease(std::uint64_t bytes_in_flight) {
  const double w = static_cast<double>(cwnd_) / mss_;
  // Fast convergence (RFC 8312 §4.6): release bandwidth when the new
  // saturation point is below the previous one.
  if (w < w_max_segments_) {
    w_max_segments_ = w * (2.0 - kBeta) / 2.0;
  } else {
    w_max_segments_ = w;
  }
  epoch_start_.reset();
  const std::uint64_t flight_based =
      static_cast<std::uint64_t>(static_cast<double>(bytes_in_flight) * kBeta);
  ssthresh_ = std::max<std::uint64_t>(flight_based, 2ull * mss_);
}

void Cubic::on_enter_recovery(sim::Time /*now*/,
                              std::uint64_t bytes_in_flight) {
  multiplicative_decrease(bytes_in_flight);
  cwnd_ = ssthresh_;
  in_recovery_ = true;
}

void Cubic::on_exit_recovery(sim::Time /*now*/) {
  in_recovery_ = false;
  cwnd_ = ssthresh_;
}

void Cubic::on_timeout(sim::Time /*now*/, std::uint64_t bytes_in_flight) {
  multiplicative_decrease(bytes_in_flight);
  cwnd_ = mss_;
  in_recovery_ = false;
}

void Cubic::on_restart_after_idle() {
  cwnd_ = std::min(cwnd_, initial_cwnd_);
  epoch_start_.reset();
}

}  // namespace riptide::tcp

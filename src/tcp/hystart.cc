#include "tcp/hystart.h"

#include <algorithm>

#include "tcp/congestion_control.h"

namespace riptide::tcp {

bool Hystart::delay_increase_detected() const {
  if (!prev_round_min_rtt_ || !round_min_rtt_) return false;
  const auto eta =
      std::clamp(*prev_round_min_rtt_ / tuning_.eta_divisor, tuning_.min_eta,
                 tuning_.max_eta);
  return *round_min_rtt_ >= *prev_round_min_rtt_ + eta;
}

bool Hystart::ack_train_detected(sim::Time now) const {
  if (!tuning_.ack_train || !train_start_ || !min_rtt_) return false;
  return now - *train_start_ >= *min_rtt_ / 2;
}

bool Hystart::on_ack(const AckEvent& ev, sim::Time last_rtt) {
  if (!ev.rtt) return false;
  if (!round_start_ || ev.now - *round_start_ > last_rtt) {
    // Round boundary: rotate the per-round minimum.
    prev_round_min_rtt_ = round_min_rtt_;
    round_min_rtt_.reset();
    round_start_ = ev.now;
    train_start_.reset();  // trains do not span rounds
  }
  if (!round_min_rtt_ || *ev.rtt < *round_min_rtt_) round_min_rtt_ = *ev.rtt;
  if (!min_rtt_ || *ev.rtt < *min_rtt_) min_rtt_ = *ev.rtt;

  if (tuning_.ack_train) {
    if (last_ack_at_ && ev.now - *last_ack_at_ <= tuning_.train_spacing_max) {
      if (!train_start_) train_start_ = *last_ack_at_;
    } else {
      train_start_.reset();
    }
    last_ack_at_ = ev.now;
  }

  return delay_increase_detected() || ack_train_detected(ev.now);
}

}  // namespace riptide::tcp

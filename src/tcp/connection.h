#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "sim/simulator.h"
#include "sim/time.h"
#include "tcp/config.h"
#include "tcp/congestion_control.h"
#include "tcp/pacing.h"
#include "tcp/receive_tracker.h"
#include "tcp/rtt_estimator.h"
#include "tcp/segment.h"
#include "tcp/tuple.h"
#include "trace/event.h"

namespace riptide::tcp {

enum class TcpState {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* to_string(TcpState state);

// Per-connection counters, exposed through the host's `ss`-style interface.
struct ConnectionStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t duplicate_acks_received = 0;
};

// One TCP endpoint. Implements the RFC 793 state machine (minus simultaneous
// open), NewReno loss recovery on top of a pluggable congestion controller,
// RFC 6298 RTO with Karn's rule, delayed ACKs with byte counting on the
// sender, flow control with a staged receive window (initial window until
// first data, then full buffer — the initrwnd behaviour §III-C builds on),
// and RFC 2861 slow-start-after-idle (what makes reused-but-idle connections
// also benefit from Riptide's route windows).
//
// Loss recovery simplifications vs Linux (documented in DESIGN.md): SACK is
// opt-in via TcpConfig::sack (NewReno partial-ACK retransmission otherwise),
// go-back-N after an RTO. HyStart and pacing are opt-in via TcpConfig
// (tcp/hystart.h, tcp/pacing.h).
class TcpConnection {
 public:
  // Outbound segment dispatch. A bare function pointer plus context word
  // instead of std::function: emit() runs once per segment, and the old
  // type-erased callable cost an indirect call through a heap-allocated
  // capture (this + tuple) per connection. The connection passes its own
  // tuple, so the context is just the owning host.
  using SegmentSender = void (*)(void* ctx, const FourTuple& tuple,
                                 SegmentRef seg);

  struct Callbacks {
    std::function<void()> on_established;
    // `bytes` newly delivered in order (may batch previously out-of-order
    // data).
    std::function<void(std::uint64_t bytes)> on_data;
    std::function<void()> on_peer_closed;  // FIN consumed
    // Connection fully terminated; `reset` is true for RST/failure paths.
    std::function<void(bool reset)> on_closed;
  };

  // `config` must already carry the effective initial windows: the host
  // applies any per-route initcwnd/initrwnd before construction. This
  // mirrors Linux, where route metrics are consulted once at connect time.
  TcpConnection(sim::Simulator& sim, TcpConfig config, FourTuple tuple,
                SegmentSender sender, void* sender_ctx, Callbacks callbacks);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Active open (client).
  void connect();

  // Passive open: adopt an incoming SYN (the host's listener calls this).
  void accept(const Segment& syn);

  // Replaces the callback set. Intended for accept paths where the
  // application wires itself up between construction and accept().
  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  // Owner-level teardown hook, invoked after the user's on_closed when the
  // connection reaches CLOSED. Reserved for the owning host's cleanup and
  // deliberately separate from Callbacks so set_callbacks cannot displace
  // it.
  void set_teardown_hook(std::function<void()> hook) {
    teardown_hook_ = std::move(hook);
  }

  // Queues `bytes` of application data for transmission. Legal from
  // kSynSent onward until close() is called.
  void send(std::uint64_t bytes);

  // Graceful close: FIN goes out once all queued data is sent.
  void close();

  // Hard close: RST to the peer, immediate teardown.
  void abort();

  // Entry point for segments demultiplexed to this connection.
  void on_segment(const Segment& seg);

  // -- Introspection (the `ss` surface and tests) --
  TcpState state() const { return state_; }
  bool established() const { return state_ == TcpState::kEstablished; }
  bool closed() const { return state_ == TcpState::kClosed; }
  // True once close() has been called (even while data is still draining);
  // send() is no longer legal.
  bool close_requested() const { return fin_pending_ || fin_sent_; }
  const FourTuple& tuple() const { return tuple_; }
  const TcpConfig& config() const { return config_; }

  std::uint64_t cwnd_bytes() const { return cc_->cwnd_bytes(); }
  std::uint32_t cwnd_segments() const {
    return static_cast<std::uint32_t>(cc_->cwnd_bytes() / config_.mss);
  }
  std::uint64_t ssthresh_bytes() const { return cc_->ssthresh_bytes(); }
  std::uint64_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }
  // Liveness introspection for invariant checkers: unacked data with no
  // armed retransmit timer would be a silent stall (nothing will ever
  // retry), which is exactly what the chaos stall oracle looks for.
  bool rto_armed() const { return rto_armed_; }
  std::uint64_t bytes_acked() const;
  std::uint64_t bytes_received() const;
  std::optional<sim::Time> srtt() const;
  sim::Time established_at() const { return established_at_; }
  sim::Time last_activity() const { return last_activity_; }
  bool in_recovery() const { return in_recovery_; }
  const ConnectionStats& stats() const { return stats_; }
  std::uint64_t send_queue_bytes() const {
    return data_end_seq() > snd_nxt_ ? data_end_seq() - snd_nxt_ : 0;
  }

 private:
  // -- segment construction --
  SegmentRef make_segment() const;
  void emit(SegmentRef seg);
  void send_ack_now();
  void send_rst();

  // -- sender path --
  void try_send();
  void send_data_segment(std::uint64_t seq, std::uint32_t len, bool fin);
  void retransmit_front();
  std::uint64_t data_end_seq() const { return 1 + app_bytes_queued_; }
  std::uint64_t send_limit_bytes() const;
  // True when pacing defers the next segment; arms the pacing timer.
  bool pacing_blocked();
  void note_paced_send(std::uint32_t bytes);
  void arm_rto();
  void cancel_rto();
  void on_rto_timer();
  void on_rto();

  // -- receiver path --
  void process_ack(const Segment& seg);
  void process_payload(const Segment& seg);
  void process_fin(const Segment& seg);
  void process_fin_transition();
  std::uint64_t advertised_window() const;
  void schedule_delayed_ack();
  void maybe_restart_after_idle();

  // -- lifecycle --
  void enter_established();
  void enter_time_wait();
  void teardown(bool reset);

  // -- decision-audit tracing (src/trace) --
  // All state_ writes funnel through set_state so every RFC 793
  // transition is observable; trace_cwnd snapshots the controller after a
  // window-changing entry point, tagged with why it was called. Both are
  // no-ops costing one thread-local load when no sink is installed.
  void set_state(TcpState next);
  void trace_cwnd(trace::CwndCause cause);
  trace::ConnKey trace_key() const;

  sim::Simulator& sim_;
  TcpConfig config_;
  FourTuple tuple_;
  SegmentSender sender_;
  void* sender_ctx_ = nullptr;
  Callbacks callbacks_;
  std::function<void()> teardown_hook_;

  TcpState state_ = TcpState::kClosed;
  std::unique_ptr<CongestionControl> cc_;
  RttEstimator rtt_;
  ReceiveTracker tracker_;

  // Sender sequence state (ISS = 0; SYN occupies seq 0, data starts at 1).
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t app_bytes_queued_ = 0;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  std::uint64_t peer_rwnd_ = 0;
  std::uint64_t recovery_inflation_ = 0;
  std::uint64_t recover_seq_ = 0;
  bool in_recovery_ = false;
  std::uint32_t dupacks_ = 0;
  std::uint32_t retries_ = 0;

  // SACK scoreboard: disjoint peer-held ranges strictly above snd_una_
  // (start -> end). Maintained only when config_.sack is set.
  std::map<std::uint64_t, std::uint64_t> sacked_;
  void merge_sack_blocks(const Segment& seg);
  void purge_sacked_below(std::uint64_t seq);
  bool is_sacked_at(std::uint64_t seq) const;
  // First sequence >= `from` the peer is not known to hold, and the length
  // of the hole (capped by mss / data end / next sacked block).
  std::uint64_t next_hole(std::uint64_t from) const;
  std::uint64_t sacked_bytes() const;

  // RTT probing (Karn's rule: any retransmission invalidates the probe).
  std::optional<std::uint64_t> probe_seq_end_;
  sim::Time probe_sent_at_;

  // Receiver state.
  std::optional<std::uint64_t> peer_fin_seq_;
  bool window_opened_ = false;
  std::uint32_t unacked_segments_ = 0;

  // The RTO timer is *lazy*: rearming on every ACK (the old cancel +
  // reschedule pair per segment) only moves the deadline field; the
  // pending event, when it fires early, puts itself back to sleep until
  // the current deadline. Event-queue traffic drops from one cancel+push
  // per ACK to one dispatch per RTO interval. (The delayed-ACK timer is
  // NOT lazy — see the note at schedule_delayed_ack.)
  sim::EventHandle rto_timer_;
  sim::Time rto_deadline_;       // meaningful while rto_armed_
  sim::Time rto_scheduled_for_;  // fire time of the pending event
  bool rto_armed_ = false;
  sim::EventHandle delack_timer_;
  sim::EventHandle time_wait_timer_;
  sim::EventHandle pacing_timer_;
  TokenBucketPacer pacer_;  // earliest-departure-time schedule (tcp/pacing.h)

  sim::Time established_at_;
  sim::Time last_activity_;  // last time we sent data (for idle restart)
  ConnectionStats stats_;

 public:
  // Scoreboard introspection for tests/diagnostics.
  std::size_t sack_scoreboard_intervals() const { return sacked_.size(); }
};

}  // namespace riptide::tcp

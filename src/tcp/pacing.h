#pragma once

#include <cstdint>

#include "sim/time.h"

namespace riptide::tcp {

// Token-bucket pacer in earliest-departure-time form (how Linux fq/EDT
// implements sk_pacing_rate): instead of refilling a token counter on a
// clock, each departure advances a single release timestamp by
// bytes/rate, and a segment may leave once `now` has caught up to the
// release time minus the burst credit. The connection drives it from the
// timer wheel — one µs-granularity event per deferred segment, which the
// PR-9 hierarchical wheel schedules and cancels in O(1) with no cascade
// work at this horizon.
//
// With burst_bytes = 0 (the default) this is exactly the strict spacing
// the pacing ablation measured: release' = max(release, now) + bytes/rate,
// blocked while now < release. A nonzero burst lets that many bytes
// depart ahead of schedule (fq's initial quantum), trading smoothness for
// fewer wakeups.
class TokenBucketPacer {
 public:
  TokenBucketPacer() = default;

  // True when the pacer currently defers transmission.
  bool blocked(sim::Time now) const { return now < release_ - slack_; }

  // When the next segment may depart; schedule the pacing timer here.
  sim::Time release_at() const { return release_ - slack_; }

  // Accounts one departure of `bytes` at `rate_bytes_per_sec`, advancing
  // the release time. The burst credit is re-derived from the current
  // rate so it stays `burst_bytes` worth of wire time.
  void on_send(sim::Time now, std::uint32_t bytes, double rate_bytes_per_sec,
               std::uint64_t burst_bytes) {
    const double rate = rate_bytes_per_sec < 1.0 ? 1.0 : rate_bytes_per_sec;
    release_ = (release_ > now ? release_ : now) +
               sim::Time::from_seconds(static_cast<double>(bytes) / rate);
    slack_ = burst_bytes == 0
                 ? sim::Time::zero()
                 : sim::Time::from_seconds(
                       static_cast<double>(burst_bytes) / rate);
  }

  // Forgets accumulated schedule (idle restart): the next send departs
  // immediately.
  void reset() {
    release_ = sim::Time::zero();
    slack_ = sim::Time::zero();
  }

 private:
  sim::Time release_;  // earliest departure time of the next segment
  sim::Time slack_;    // burst credit expressed as wire time
};

}  // namespace riptide::tcp

#pragma once

#include <cstdint>

#include "sim/time.h"

namespace riptide::tcp {

// RTT estimation and retransmission-timeout computation per RFC 6298
// (Jacobson/Karels smoothing, Karn's rule enforced by the caller feeding
// only non-retransmitted samples).
class RttEstimator {
 public:
  RttEstimator(sim::Time initial_rto, sim::Time min_rto, sim::Time max_rto);

  // Feed one valid RTT sample (from a segment that was not retransmitted).
  void add_sample(sim::Time rtt);

  // Current timeout: clamped SRTT + 4 * RTTVAR, doubled `backoff` times.
  sim::Time rto() const;

  // Exponential backoff on timeout; resets once a fresh sample arrives.
  void on_timeout();

  bool has_sample() const { return has_sample_; }
  sim::Time srtt() const { return srtt_; }
  sim::Time rttvar() const { return rttvar_; }
  std::uint32_t backoff_count() const { return backoff_; }

 private:
  sim::Time initial_rto_;
  sim::Time min_rto_;
  sim::Time max_rto_;
  sim::Time srtt_;
  sim::Time rttvar_;
  bool has_sample_ = false;
  std::uint32_t backoff_ = 0;
};

}  // namespace riptide::tcp

#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace riptide::tcp {

enum class CcAlgorithm {
  kNewReno,
  kCubic,    // Linux default, and the paper's deployment (§III-B)
  kBbrLite,  // model-based: delivery rate + min-RTT probing, no loss
             // reaction in steady state (ROADMAP item 2)
};

// Per-route congestion-control regime selector, the CC analog of the
// initcwnd route metric: kUnset means "use the host default", everything
// else rewrites the effective TcpConfig at connect time (apply_route_cc).
// Lives here rather than in host/ because it names TCP regimes; the
// routing table stores it, the policy grammar spells it (cc=reno etc.).
enum class RouteCc : std::uint8_t {
  kUnset = 0,
  kReno,       // NewReno, plain
  kCubic,      // Cubic, plain (the stock default made explicit)
  kCubicFast,  // Cubic + HyStart slow-start exit + pacing
  kBbrLite,    // BBR-style model + pacing
};

// Canonical grammar token ("reno", "cubic", "cubic-fast", "bbr"; "" for
// kUnset) and its inverse. parse returns false on unknown tokens.
const char* to_string(RouteCc cc);
bool parse_route_cc(const std::string& token, RouteCc& out);

// HyStart thresholds (delay-increase + ACK-train slow-start exit). Every
// constant is construction-time tunable; the defaults reproduce the
// pre-extraction Cubic behaviour exactly (delay variant only, eta =
// prev_round_min/8 clamped to [4, 16] ms).
struct HystartTuning {
  // Delay-increase: exit when this round's min RTT exceeds the previous
  // round's by eta = prev_min / eta_divisor, clamped to [min_eta, max_eta].
  std::uint32_t eta_divisor = 8;
  sim::Time min_eta = sim::Time::milliseconds(4);
  sim::Time max_eta = sim::Time::milliseconds(16);
  // ACK-train: exit when a train of closely spaced ACKs (inter-ACK gap at
  // most train_spacing_max) stretches past half the minimum RTT — the
  // window already covers the pipe. Off by default: the delay variant
  // alone is the historical behaviour the golden fingerprint pins.
  bool ack_train = false;
  sim::Time train_spacing_max = sim::Time::milliseconds(2);
};

// BBR-lite model constants (bbr_lite.h). Gains are the published BBR v1
// values; windows are generous for WAN RTTs.
struct BbrTuning {
  double startup_gain = 2.885;  // 2/ln2: doubles delivery rate per RTT
  double drain_gain = 0.3465;   // 1/startup_gain: drains the startup queue
  double cwnd_gain = 2.0;       // cwnd = cwnd_gain * estimated BDP
  double probe_gain_up = 1.25;  // probe-bw cycle phase 0
  double probe_gain_down = 0.75;  // phase 1 (drain what phase 0 queued)
  std::uint32_t probe_cycle_len = 8;   // phases 2..7 cruise at gain 1.0
  std::uint32_t bw_window_rounds = 10;     // max-filter depth, in rounds
  std::uint32_t full_bw_rounds = 3;        // startup exit: plateau length
  double full_bw_thresh = 1.25;            // startup exit: growth floor
  sim::Time min_rtt_window = sim::Time::seconds(10);
  sim::Time probe_rtt_duration = sim::Time::milliseconds(200);
  std::uint32_t min_cwnd_segments = 4;  // floor, and the probe-RTT window
};

// Per-connection TCP tuning knobs. Defaults mirror a stock Linux host of the
// paper's era: IW10 (RFC 6928), Cubic, min RTO 200 ms, delayed ACKs with
// byte counting, slow-start-after-idle on.
struct TcpConfig {
  std::uint32_t mss = 1460;           // payload bytes per full segment
  std::uint32_t header_bytes = 40;    // IP + TCP headers on the wire

  // Initial congestion window in segments (RFC 6928 default 10). Riptide
  // overrides this per destination through route metrics at connect time.
  std::uint32_t initial_cwnd_segments = 10;

  // Initial *receive* window advertised during the handshake, in segments.
  // Kept deliberately small by default (as in Linux) — §III-C explains why
  // Riptide must raise it alongside c_max or first bursts stall.
  std::uint32_t initial_rwnd_segments = 20;

  // Steady-state receive buffer; advertised once the window has opened.
  std::uint64_t receive_buffer_bytes = 16u * 1024 * 1024;

  CcAlgorithm congestion_control = CcAlgorithm::kCubic;

  // Selective acknowledgments: receivers advertise out-of-order ranges and
  // the sender retransmits scoreboard holes instead of blindly resending
  // from snd_una (and go-back-N after an RTO skips ranges the peer already
  // holds). Like Linux's net.ipv4.tcp_sack, but default-off here so the
  // baseline stack stays plain NewReno; the SACK ablation quantifies it.
  bool sack = false;

  // HyStart (Reno and CUBIC): leave slow start when per-round minimum
  // RTTs show a delay increase (or, with hystart_tuning.ack_train, when
  // an ACK train spans the pipe), instead of waiting for loss. Off by
  // default — the study's flows are short and IW-dominated — but
  // available for long-flow scenarios.
  bool hystart = false;
  HystartTuning hystart_tuning;

  // BBR-lite model constants; only consulted when congestion_control is
  // CcAlgorithm::kBbrLite.
  BbrTuning bbr;

  sim::Time initial_rto = sim::Time::seconds(1);
  sim::Time min_rto = sim::Time::milliseconds(200);
  sim::Time max_rto = sim::Time::seconds(120);

  // Delayed-ACK policy: ACK immediately every `delayed_ack_segments`-th
  // full segment (or out-of-order data), otherwise after the timeout.
  std::uint32_t delayed_ack_segments = 2;
  sim::Time delayed_ack_timeout = sim::Time::milliseconds(40);

  std::uint32_t duplicate_ack_threshold = 3;

  std::uint32_t max_syn_retries = 6;
  std::uint32_t max_data_retries = 15;

  // RFC 2861 congestion window validation: collapse cwnd back to the
  // restart window after an idle period > RTO (Linux
  // tcp_slow_start_after_idle=1). Note the restart window is the *route*
  // initial window, so Riptide speeds up idle-restarted connections too.
  bool slow_start_after_idle = true;

  // Packet pacing (Linux `fq`/`sk_pacing_rate` style): spread the window
  // over the RTT at `pacing_gain * cwnd / srtt` instead of line-rate
  // bursts. §II-B warns that large initial windows risk burst-induced
  // congestion; pacing is the standard mitigation, and the pacing ablation
  // bench quantifies it. Pacing engages once an RTT sample exists (i.e.
  // from the first data flight — the handshake seeds the estimator).
  bool pacing = false;
  double pacing_gain = 2.0;
  // Token-bucket burst credit: segments may depart up to this many bytes
  // ahead of the paced schedule (Linux fq's initial quantum). 0 keeps the
  // strict earliest-departure-time spacing the pacing ablation measured.
  std::uint64_t pacing_burst_bytes = 0;

  // Shortened TIME_WAIT so simulations recycle port state promptly.
  sim::Time time_wait_duration = sim::Time::seconds(2);

  std::uint32_t initial_cwnd_bytes() const {
    return initial_cwnd_segments * mss;
  }
  std::uint32_t initial_rwnd_bytes() const {
    return initial_rwnd_segments * mss;
  }
};

// Rewrites `config` for a route-selected CC regime: the algorithm itself
// plus the companions that define the regime (kCubicFast arms HyStart and
// pacing; kBbrLite arms pacing, since a rate model paced only by window
// bursts defeats its purpose). kUnset leaves `config` untouched. Window
// fields are never modified — initcwnd/initrwnd stay the routing table's
// separate, composable decision.
void apply_route_cc(RouteCc cc, TcpConfig& config);

}  // namespace riptide::tcp

#pragma once

#include <cstdint>

#include "sim/time.h"

namespace riptide::tcp {

enum class CcAlgorithm {
  kNewReno,
  kCubic,  // Linux default, and the paper's deployment (§III-B)
};

// Per-connection TCP tuning knobs. Defaults mirror a stock Linux host of the
// paper's era: IW10 (RFC 6928), Cubic, min RTO 200 ms, delayed ACKs with
// byte counting, slow-start-after-idle on.
struct TcpConfig {
  std::uint32_t mss = 1460;           // payload bytes per full segment
  std::uint32_t header_bytes = 40;    // IP + TCP headers on the wire

  // Initial congestion window in segments (RFC 6928 default 10). Riptide
  // overrides this per destination through route metrics at connect time.
  std::uint32_t initial_cwnd_segments = 10;

  // Initial *receive* window advertised during the handshake, in segments.
  // Kept deliberately small by default (as in Linux) — §III-C explains why
  // Riptide must raise it alongside c_max or first bursts stall.
  std::uint32_t initial_rwnd_segments = 20;

  // Steady-state receive buffer; advertised once the window has opened.
  std::uint64_t receive_buffer_bytes = 16u * 1024 * 1024;

  CcAlgorithm congestion_control = CcAlgorithm::kCubic;

  // Selective acknowledgments: receivers advertise out-of-order ranges and
  // the sender retransmits scoreboard holes instead of blindly resending
  // from snd_una (and go-back-N after an RTO skips ranges the peer already
  // holds). Like Linux's net.ipv4.tcp_sack, but default-off here so the
  // baseline stack stays plain NewReno; the SACK ablation quantifies it.
  bool sack = false;

  // HyStart (CUBIC only): leave slow start when per-round minimum RTTs
  // show a delay increase, instead of waiting for loss. Off by default —
  // the study's flows are short and IW-dominated — but available for
  // long-flow scenarios.
  bool hystart = false;

  sim::Time initial_rto = sim::Time::seconds(1);
  sim::Time min_rto = sim::Time::milliseconds(200);
  sim::Time max_rto = sim::Time::seconds(120);

  // Delayed-ACK policy: ACK immediately every `delayed_ack_segments`-th
  // full segment (or out-of-order data), otherwise after the timeout.
  std::uint32_t delayed_ack_segments = 2;
  sim::Time delayed_ack_timeout = sim::Time::milliseconds(40);

  std::uint32_t duplicate_ack_threshold = 3;

  std::uint32_t max_syn_retries = 6;
  std::uint32_t max_data_retries = 15;

  // RFC 2861 congestion window validation: collapse cwnd back to the
  // restart window after an idle period > RTO (Linux
  // tcp_slow_start_after_idle=1). Note the restart window is the *route*
  // initial window, so Riptide speeds up idle-restarted connections too.
  bool slow_start_after_idle = true;

  // Packet pacing (Linux `fq`/`sk_pacing_rate` style): spread the window
  // over the RTT at `pacing_gain * cwnd / srtt` instead of line-rate
  // bursts. §II-B warns that large initial windows risk burst-induced
  // congestion; pacing is the standard mitigation, and the pacing ablation
  // bench quantifies it. Pacing engages once an RTT sample exists (i.e.
  // from the first data flight — the handshake seeds the estimator).
  bool pacing = false;
  double pacing_gain = 2.0;

  // Shortened TIME_WAIT so simulations recycle port state promptly.
  sim::Time time_wait_duration = sim::Time::seconds(2);

  std::uint32_t initial_cwnd_bytes() const {
    return initial_cwnd_segments * mss;
  }
  std::uint32_t initial_rwnd_bytes() const {
    return initial_rwnd_segments * mss;
  }
};

}  // namespace riptide::tcp

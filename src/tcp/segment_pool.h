#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tcp/segment.h"

namespace riptide::tcp {

// Slab-backed recycling allocator for Segments. One `operator new` buys a
// slab of kSlabSegments; individual checkouts and returns are free-list
// pushes/pops with no heap traffic at all. The pool is thread-local
// (`SegmentPool::local()`): a simulation and every segment it emits are
// confined to one thread (ParallelRunner workers included), so there is no
// locking, and per-run perf-counter deltas taken around a run are exact.
//
// Ownership rules:
//   - allocate() returns a SegmentRef holding the only reference; the
//     segment is reset to a default-constructed state (generation aside).
//   - Copies of the handle (and of Packets carrying it) bump the intrusive
//     refcount; when the last one drops, Segment::retire() returns the
//     slot to this pool's free list.
//   - The pool owns the slabs and never shrinks; high-water occupancy is
//     the steady-state footprint (reported via perf counters).
//   - Recycling bumps the slot's generation; in debug builds SegmentRef
//     asserts its pinned generation on every dereference, so stale handles
//     to recycled slots abort instead of aliasing the next checkout.
class SegmentPool {
 public:
  static constexpr std::size_t kSlabSegments = 64;

  SegmentPool() = default;
  SegmentPool(const SegmentPool&) = delete;
  SegmentPool& operator=(const SegmentPool&) = delete;

  // This thread's pool. Thread-local storage duration: outlives every
  // stack-scoped Simulator/Host on the thread, so segments in flight at
  // teardown still have a pool to return to.
  static SegmentPool& local();

  SegmentRef allocate();

  std::size_t live() const { return live_; }
  std::size_t free_count() const { return free_.size(); }
  std::size_t capacity() const { return slabs_.size() * kSlabSegments; }

 private:
  friend struct Segment;  // retire() -> recycle()
  void recycle(Segment* seg);
  void refill();

  // Slabs are arrays of Segment; a unique_ptr<Segment[]> per slab keeps
  // addresses stable for the pool's lifetime.
  std::vector<std::unique_ptr<Segment[]>> slabs_;
  std::vector<Segment*> free_;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace riptide::tcp

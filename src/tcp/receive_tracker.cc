#include "tcp/receive_tracker.h"

#include <algorithm>

namespace riptide::tcp {

bool ReceiveTracker::is_duplicate(std::uint64_t start, std::uint64_t end) const {
  if (end <= start) return true;
  if (end <= rcv_nxt_) return true;
  // New bytes exist unless some out-of-order interval covers [max(start,
  // rcv_nxt), end) entirely.
  std::uint64_t cursor = std::max(start, rcv_nxt_);
  for (const auto& [s, e] : ooo_) {
    if (e <= cursor) continue;
    if (s > cursor) return false;  // gap at cursor not covered
    cursor = e;
    if (cursor >= end) return true;
  }
  return cursor >= end;
}

std::uint64_t ReceiveTracker::on_segment(std::uint64_t start, std::uint64_t end) {
  if (end <= start || end <= rcv_nxt_) return 0;
  start = std::max(start, rcv_nxt_);

  // Merge [start, end) into the out-of-order set.
  auto it = ooo_.lower_bound(start);
  if (it != ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = ooo_.erase(prev);
    }
  }
  while (it != ooo_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ooo_.erase(it);
  }
  ooo_.emplace(start, end);

  // Advance rcv_nxt through a now-contiguous head interval.
  std::uint64_t delivered = 0;
  auto head = ooo_.begin();
  if (head != ooo_.end() && head->first <= rcv_nxt_) {
    delivered = head->second - rcv_nxt_;
    rcv_nxt_ = head->second;
    ooo_.erase(head);
  }
  return delivered;
}

std::uint64_t ReceiveTracker::out_of_order_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [s, e] : ooo_) total += e - s;
  return total;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> ReceiveTracker::intervals(
    std::size_t max_intervals) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(std::min(max_intervals, ooo_.size()));
  for (const auto& [s, e] : ooo_) {
    if (out.size() >= max_intervals) break;
    out.emplace_back(s, e);
  }
  return out;
}

}  // namespace riptide::tcp

#include "tcp/rtt_estimator.h"

#include <algorithm>
#include <cstdlib>

namespace riptide::tcp {

RttEstimator::RttEstimator(sim::Time initial_rto, sim::Time min_rto,
                           sim::Time max_rto)
    : initial_rto_(initial_rto), min_rto_(min_rto), max_rto_(max_rto) {}

void RttEstimator::add_sample(sim::Time rtt) {
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298: alpha = 1/8, beta = 1/4, in integer nanoseconds.
    const sim::Time err = sim::Time::nanoseconds(
        std::abs((rtt - srtt_).ns()));
    rttvar_ = (rttvar_ * 3 + err) / 4;
    srtt_ = (srtt_ * 7 + rtt) / 8;
  }
  backoff_ = 0;  // Karn: fresh sample ends backoff
}

sim::Time RttEstimator::rto() const {
  sim::Time base = has_sample_ ? srtt_ + 4 * rttvar_ : initial_rto_;
  base = std::clamp(base, min_rto_, max_rto_);
  for (std::uint32_t i = 0; i < backoff_ && base < max_rto_; ++i) {
    base = std::min(base * 2, max_rto_);
  }
  return base;
}

void RttEstimator::on_timeout() { ++backoff_; }

}  // namespace riptide::tcp

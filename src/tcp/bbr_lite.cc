#include "tcp/bbr_lite.h"

#include <algorithm>

namespace riptide::tcp {

BbrLite::BbrLite(std::uint32_t mss, std::uint64_t initial_cwnd_bytes,
                 BbrTuning tuning)
    : mss_(mss),
      initial_cwnd_(initial_cwnd_bytes),
      cwnd_(initial_cwnd_bytes),
      tuning_(tuning) {}

double BbrLite::bottleneck_bw_bytes_per_sec() const {
  double best = 0.0;
  for (double s : bw_samples_) best = std::max(best, s);
  return best;
}

double BbrLite::current_gain() const {
  switch (mode_) {
    case Mode::kStartup: return tuning_.startup_gain;
    case Mode::kDrain: return tuning_.drain_gain;
    case Mode::kProbeRtt: return 1.0;
    case Mode::kProbeBw:
      if (cycle_phase_ == 0) return tuning_.probe_gain_up;
      if (cycle_phase_ == 1) return tuning_.probe_gain_down;
      return 1.0;
  }
  return 1.0;
}

double BbrLite::pacing_rate_bytes_per_sec() const {
  const double bw = bottleneck_bw_bytes_per_sec();
  return bw > 0.0 ? current_gain() * bw : 0.0;
}

std::uint64_t BbrLite::bdp_bytes() const {
  const double bw = bottleneck_bw_bytes_per_sec();
  if (bw <= 0.0 || !min_rtt_) return 0;
  return static_cast<std::uint64_t>(bw * min_rtt_->to_seconds());
}

void BbrLite::finish_round(sim::Time now) {
  const double elapsed = (now - *round_start_).to_seconds();
  if (elapsed > 0.0) {
    const double sample =
        static_cast<double>(delivered_ - round_base_) / elapsed;
    bw_samples_.push_back(sample);
    while (bw_samples_.size() > tuning_.bw_window_rounds) {
      bw_samples_.pop_front();
    }
  }
  round_start_ = now;
  round_base_ = delivered_;
  ++round_count_;

  switch (mode_) {
    case Mode::kStartup: {
      // Exit once the filtered bandwidth stops growing by full_bw_thresh
      // for full_bw_rounds consecutive rounds: the pipe is full.
      const double bw = bottleneck_bw_bytes_per_sec();
      if (bw >= full_bw_ * tuning_.full_bw_thresh) {
        full_bw_ = bw;
        full_bw_count_ = 0;
      } else if (++full_bw_count_ >= tuning_.full_bw_rounds) {
        mode_ = Mode::kDrain;
      }
      break;
    }
    case Mode::kDrain:
      // One inverse-gain round drains the startup queue; then cruise.
      mode_ = Mode::kProbeBw;
      cycle_phase_ = 2;  // skip straight to cruising; probe on next cycle
      break;
    case Mode::kProbeBw:
      cycle_phase_ = (cycle_phase_ + 1) % std::max(tuning_.probe_cycle_len,
                                                   std::uint32_t{2});
      break;
    case Mode::kProbeRtt:
      break;  // timed, not round-counted
  }
}

void BbrLite::update_min_rtt(const AckEvent& ev) {
  if (ev.rtt) {
    last_rtt_ = *ev.rtt;
    if (!min_rtt_ || *ev.rtt <= *min_rtt_) {
      min_rtt_ = *ev.rtt;
      min_rtt_stamp_ = ev.now;
    }
  }

  if (mode_ == Mode::kProbeRtt) {
    if (probe_rtt_done_ && ev.now >= *probe_rtt_done_) {
      // Episode over: the queue drained, so the freshest samples are the
      // truth — restart the window from now.
      min_rtt_stamp_ = ev.now;
      probe_rtt_done_.reset();
      mode_ = probe_rtt_return_;
    }
    return;
  }
  if (min_rtt_ && ev.now - min_rtt_stamp_ > tuning_.min_rtt_window) {
    probe_rtt_return_ = mode_ == Mode::kStartup ? Mode::kStartup
                                                : Mode::kProbeBw;
    mode_ = Mode::kProbeRtt;
    probe_rtt_done_ = ev.now + tuning_.probe_rtt_duration;
    signal_ = CcSignal::kBbrProbeRtt;
  }
}

void BbrLite::update_target_cwnd(const AckEvent& ev) {
  const std::uint64_t floor = std::uint64_t{tuning_.min_cwnd_segments} * mss_;
  if (mode_ == Mode::kProbeRtt) {
    cwnd_ = floor;
    return;
  }
  const std::uint64_t bdp = bdp_bytes();
  std::uint64_t target =
      bdp > 0 ? static_cast<std::uint64_t>(tuning_.cwnd_gain *
                                           static_cast<double>(bdp))
              : cwnd_;
  if (mode_ == Mode::kStartup) {
    // Keep exponential window growth while the model warms up, from
    // whatever (possibly route-jump-started) initial window we were
    // constructed with.
    target = std::max(target, cwnd_ + ev.bytes_acked);
  }
  cwnd_ = std::max(target, floor);
}

void BbrLite::on_ack(const AckEvent& ev) {
  signal_ = CcSignal::kNone;
  delivered_ += ev.bytes_acked;
  update_min_rtt(ev);

  if (!round_start_) {
    round_start_ = ev.now;
    round_base_ = delivered_ - ev.bytes_acked;
  } else if (ev.now - *round_start_ >= last_rtt_) {
    finish_round(ev.now);
  }

  update_target_cwnd(ev);
}

void BbrLite::on_enter_recovery(sim::Time /*now*/,
                                std::uint64_t /*bytes_in_flight*/) {
  // Loss is not a model input: packet loss with a standing delivery-rate
  // estimate means a shallow buffer, not reduced capacity.
}

void BbrLite::on_exit_recovery(sim::Time /*now*/) {}

void BbrLite::on_timeout(sim::Time /*now*/, std::uint64_t /*bytes_in_flight*/) {
  // An RTO means the model lost the plot; collapse to the floor and let
  // the ACK stream rebuild it (the bandwidth filter keeps its history —
  // a spurious RTO should not forget a good estimate).
  cwnd_ = std::uint64_t{tuning_.min_cwnd_segments} * mss_;
}

void BbrLite::on_restart_after_idle() {
  cwnd_ = std::min(cwnd_, initial_cwnd_);
  // Rate samples from before the idle period no longer describe the path.
  round_start_.reset();
}

}  // namespace riptide::tcp

#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

#include "net/ipv4.h"

namespace riptide::tcp {

// Connection 4-tuple used for demultiplexing at a host.
struct FourTuple {
  net::Ipv4Address local_addr;
  std::uint16_t local_port = 0;
  net::Ipv4Address remote_addr;
  std::uint16_t remote_port = 0;

  friend auto operator<=>(const FourTuple&, const FourTuple&) = default;

  std::string to_string() const {
    std::ostringstream os;
    os << local_addr << ":" << local_port << " -> " << remote_addr << ":"
       << remote_port;
    return os.str();
  }
};

struct FourTupleHash {
  std::size_t operator()(const FourTuple& t) const {
    std::uint64_t h = t.local_addr.value();
    h = h * 1000003u ^ t.remote_addr.value();
    h = h * 1000003u ^ (std::uint64_t{t.local_port} << 16 | t.remote_port);
    return std::hash<std::uint64_t>{}(h);
  }
};

}  // namespace riptide::tcp

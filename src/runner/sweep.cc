#include "runner/sweep.h"

#include <utility>

namespace riptide::runner {

namespace {

std::string join_label(const std::string& variant, std::uint64_t seed,
                       bool many_seeds, const char* arm) {
  std::string label = variant;
  if (many_seeds) {
    if (!label.empty()) label += '/';
    label += "seed=" + std::to_string(seed);
  }
  if (arm != nullptr) {
    if (!label.empty()) label += '/';
    label += arm;
  }
  return label;
}

}  // namespace

std::size_t SweepSpec::size() const {
  const std::size_t variants = variants_.empty() ? 1 : variants_.size();
  const std::size_t seeds = seeds_.empty() ? 1 : seeds_.size();
  return variants * seeds * (treatment_control_ ? 2 : 1);
}

std::vector<RunSpec> SweepSpec::materialize() const {
  std::vector<RunSpec> specs;
  specs.reserve(size());

  std::vector<Variant> variants = variants_;
  if (variants.empty()) variants.push_back(Variant{"", nullptr});
  std::vector<std::uint64_t> seeds = seeds_;
  if (seeds.empty()) seeds.push_back(base_.seed);

  for (const Variant& variant : variants) {
    for (const std::uint64_t seed : seeds) {
      cdn::ExperimentConfig config = base_;
      config.seed = seed;
      if (variant.apply) variant.apply(config);

      if (treatment_control_) {
        cdn::ExperimentConfig treatment = config;
        treatment.riptide_enabled = true;
        cdn::ExperimentConfig control = config;
        control.riptide_enabled = false;
        specs.push_back(RunSpec{
            join_label(variant.label, seed, seeds.size() > 1, "riptide"),
            std::move(treatment),
            nullptr});
        specs.push_back(RunSpec{
            join_label(variant.label, seed, seeds.size() > 1, "control"),
            std::move(control),
            nullptr});
      } else {
        specs.push_back(RunSpec{
            join_label(variant.label, seed, seeds.size() > 1, nullptr),
            std::move(config),
            nullptr});
      }
    }
  }
  return specs;
}

}  // namespace riptide::runner

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "stats/perf.h"

namespace riptide::runner {

// One experiment to run: a label for reports, the full config, and an
// optional hook executed after construction but before run() — used by
// benches that attach samplers to the experiment's simulator.
struct RunSpec {
  std::string label;
  cdn::ExperimentConfig config;
  std::function<void(cdn::Experiment&)> setup;
};

// A completed run, returned in the same order the specs were given
// regardless of the thread count or completion order.
struct RunResult {
  std::size_t index = 0;
  std::string label;
  std::unique_ptr<cdn::Experiment> experiment;
  double wall_seconds = 0.0;
  // Hot-path counter deltas for this run, snapshotted around run() on the
  // worker thread (counters are thread-local; reading them on the caller's
  // thread would see nothing). Exact per run: each run is confined to one
  // worker.
  perf::Counters perf;
};

// Fans fully independent cdn::Experiment runs (treatment/control pairs,
// seed sweeps, parameter sweeps) across a thread pool. Each run owns its
// simulator and RNG (seeded from its config), touches no shared state, and
// is reported back in spec order, so results are bit-identical to a
// sequential execution of the same specs — a property the determinism
// tests pin down.
class ParallelRunner {
 public:
  // threads = 0 means one worker per hardware thread.
  explicit ParallelRunner(unsigned threads = 0) : threads_(threads) {}

  unsigned threads() const { return threads_; }

  // Runs every spec and blocks until all are done. Exceptions from a run
  // (bad config, etc.) are rethrown for the lowest failing spec index.
  std::vector<RunResult> run(std::vector<RunSpec> specs) const;

  // Convenience for the ubiquitous paired layout: [treatment, control].
  std::vector<RunResult> run_pair(cdn::ExperimentConfig treatment,
                                  cdn::ExperimentConfig control) const;

 private:
  unsigned threads_;
};

}  // namespace riptide::runner

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/parallel_runner.h"

namespace riptide::runner {

// Declarative sweep over a base ExperimentConfig: named parameter variants
// x seeds x (optionally) a riptide-on/riptide-off pair per point. This is
// the campaign layout behind every figure reproduction — Fig 10 sweeps
// c_max, Figs 12-16 run treatment/control pairs, and seed sweeps tighten
// the distributional claims.
//
// materialize() expands to RunSpecs in a fixed order — variant-major, then
// seed, then treatment before control — so result indices are stable and
// parallel runs stay comparable across thread counts.
class SweepSpec {
 public:
  struct Variant {
    std::string label;
    std::function<void(cdn::ExperimentConfig&)> apply;
  };

  explicit SweepSpec(cdn::ExperimentConfig base) : base_(std::move(base)) {}

  SweepSpec& seeds(std::vector<std::uint64_t> seeds) {
    seeds_ = std::move(seeds);
    return *this;
  }

  // Expand each point into a treatment (riptide on) / control (riptide
  // off) pair.
  SweepSpec& treatment_control(bool enabled = true) {
    treatment_control_ = enabled;
    return *this;
  }

  SweepSpec& variant(std::string label,
                     std::function<void(cdn::ExperimentConfig&)> apply) {
    variants_.push_back(Variant{std::move(label), std::move(apply)});
    return *this;
  }

  // Expansion order: for each variant, for each seed, treatment then
  // (optionally) control. With no variants the base config is the single
  // variant; with no seeds the base config's seed is used.
  std::vector<RunSpec> materialize() const;

  // Number of RunSpecs materialize() will produce.
  std::size_t size() const;

 private:
  cdn::ExperimentConfig base_;
  std::vector<std::uint64_t> seeds_;
  bool treatment_control_ = false;
  std::vector<Variant> variants_;
};

}  // namespace riptide::runner

#include "runner/task_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace riptide::runner {

unsigned effective_threads(unsigned requested, std::size_t jobs) {
  if (jobs == 0) return 1;
  unsigned threads = requested != 0 ? requested
                                    : std::max(1u,
                                               std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<std::size_t>(threads, jobs));
}

void parallel_for(unsigned threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned workers = effective_threads(threads, n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t first_error_index = n;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread pulls its weight too
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace riptide::runner

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace riptide::runner {

// Worker count actually used for `jobs` jobs when the caller asked for
// `requested` threads (0 = one per hardware thread). Never more workers
// than jobs, never fewer than one.
unsigned effective_threads(unsigned requested, std::size_t jobs);

// Runs fn(0), ..., fn(n-1) across up to `threads` worker threads (0 = one
// per hardware thread). Indices are claimed dynamically, so long and short
// jobs pack well; with threads <= 1 (or n <= 1) everything runs inline on
// the calling thread. If any invocation throws, the exception thrown by
// the lowest index is rethrown after all workers finish.
void parallel_for(unsigned threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

// parallel_for returning the results in index order. R must be default-
// constructible and movable; results are deterministic regardless of the
// thread count because slot i only ever holds fn(i).
template <typename R>
std::vector<R> parallel_map(unsigned threads, std::size_t n,
                            const std::function<R(std::size_t)>& fn) {
  std::vector<R> out(n);
  parallel_for(threads, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace riptide::runner

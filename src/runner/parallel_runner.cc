#include "runner/parallel_runner.h"

#include <chrono>
#include <utility>

#include "runner/task_pool.h"

namespace riptide::runner {

std::vector<RunResult> ParallelRunner::run(std::vector<RunSpec> specs) const {
  return parallel_map<RunResult>(
      threads_, specs.size(), [&specs](std::size_t i) {
        RunSpec& spec = specs[i];
        RunResult result;
        result.index = i;
        result.label = std::move(spec.label);
        const auto start = std::chrono::steady_clock::now();
        const perf::Counters perf_before = perf::local();
        result.experiment =
            std::make_unique<cdn::Experiment>(std::move(spec.config));
        if (spec.setup) spec.setup(*result.experiment);
        result.experiment->run();
        // Release pending callbacks (and the pooled segments they capture)
        // on this worker thread: the experiment outlives the worker, but
        // its segments must return to this thread's SegmentPool.
        result.experiment->simulator().drop_pending();
        result.perf = perf::local().delta_since(perf_before);
        result.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        return result;
      });
}

std::vector<RunResult> ParallelRunner::run_pair(
    cdn::ExperimentConfig treatment, cdn::ExperimentConfig control) const {
  std::vector<RunSpec> specs(2);
  specs[0].label = "treatment";
  specs[0].config = std::move(treatment);
  specs[1].label = "control";
  specs[1].config = std::move(control);
  return run(std::move(specs));
}

}  // namespace riptide::runner

#include "runner/parallel_runner.h"

#include <chrono>
#include <string>
#include <utility>

#include "runner/task_pool.h"

namespace riptide::runner {

namespace {

void replace_all(std::string& s, const std::string& from,
                 const std::string& to) {
  for (std::size_t pos = 0; (pos = s.find(from, pos)) != std::string::npos;
       pos += to.size()) {
    s.replace(pos, from.size(), to);
  }
}

}  // namespace

std::vector<RunResult> ParallelRunner::run(std::vector<RunSpec> specs) const {
  return parallel_map<RunResult>(
      threads_, specs.size(), [&specs](std::size_t i) {
        RunSpec& spec = specs[i];
        RunResult result;
        result.index = i;
        result.label = std::move(spec.label);
        // One sweep config can fan out to per-run trace files: "{label}"
        // and "{index}" in the export path are expanded per spec.
        if (!spec.config.trace.export_path.empty()) {
          replace_all(spec.config.trace.export_path, "{label}", result.label);
          replace_all(spec.config.trace.export_path, "{index}",
                      std::to_string(i));
        }
        const auto start = std::chrono::steady_clock::now();
        const perf::Counters perf_before = perf::local();
        result.experiment =
            std::make_unique<cdn::Experiment>(std::move(spec.config));
        if (spec.setup) spec.setup(*result.experiment);
        result.experiment->run();
        // Release pending callbacks (and the pooled segments they capture)
        // on this worker thread: the experiment outlives the worker, but
        // its segments must return to this thread's SegmentPool.
        result.experiment->simulator().drop_pending();
        result.perf = perf::local().delta_since(perf_before);
        result.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        return result;
      });
}

std::vector<RunResult> ParallelRunner::run_pair(
    cdn::ExperimentConfig treatment, cdn::ExperimentConfig control) const {
  std::vector<RunSpec> specs(2);
  specs[0].label = "treatment";
  specs[0].config = std::move(treatment);
  specs[1].label = "control";
  specs[1].config = std::move(control);
  return run(std::move(specs));
}

}  // namespace riptide::runner

// Destinations as routes (§III-B): host-granularity vs prefix-granularity.
//
// One host in PoP A pushes back-office objects to four different hosts in
// PoP B. With /32 granularity Riptide programs one route per remote host
// it has actually talked to; with /16 granularity it programs a *single*
// route for the whole PoP — and a fifth host it has never contacted still
// starts at the learned window, because the prefix route covers it.
//
// Build & run:  ./build/examples/prefix_granularity

#include <cstdio>
#include <memory>
#include <vector>

#include "cdn/pops.h"
#include "cdn/topology.h"
#include "core/agent.h"

using namespace riptide;
using sim::Time;

namespace {

constexpr std::uint16_t kSinkPort = 9900;

std::vector<cdn::PopSpec> two_pops() {
  return {{"lon", cdn::Continent::kEurope, {51.51, -0.13}},
          {"nyc", cdn::Continent::kNorthAmerica, {40.71, -74.01}}};
}

void run_one(core::Granularity granularity, const char* label) {
  sim::Simulator sim;
  cdn::TopologyConfig topo_cfg;
  topo_cfg.hosts_per_pop = 6;
  topo_cfg.wan_loss_probability = 0.0;
  cdn::Topology topo(sim, topo_cfg, two_pops());

  // Sinks on every nyc host.
  for (auto* host : topo.pops()[1].hosts) {
    host->listen(kSinkPort, [](tcp::TcpConnection& conn) {
      tcp::TcpConnection::Callbacks cbs;
      cbs.on_peer_closed = [&conn] { conn.close(); };
      conn.set_callbacks(std::move(cbs));
    });
  }

  auto& lon0 = topo.host(0, 0);
  core::RiptideConfig config;
  config.granularity = granularity;
  config.prefix_length = 16;
  core::RiptideAgent agent(sim, lon0, config);
  agent.start();

  // Push 300 KB to nyc hosts 0..3 (never to 4 or 5), a few rounds each.
  std::vector<tcp::TcpConnection*> conns;
  for (int h = 0; h < 4; ++h) {
    conns.push_back(&lon0.connect(topo.host(1, static_cast<std::size_t>(h))
                                      .address(),
                                  kSinkPort, {}));
  }
  sim.run_until(Time::milliseconds(300));
  for (int round = 0; round < 4; ++round) {
    for (auto* conn : conns) conn->send(300'000);
    sim.run_until(sim.now() + Time::seconds(5));
  }

  std::printf("%s\n", label);
  std::printf("  learned table entries at lon-0: %zu  (routes programmed: "
              "%llu)\n",
              agent.table().size(),
              static_cast<unsigned long long>(agent.stats().routes_set));
  for (const auto& [dst, state] : agent.table().entries()) {
    std::printf("    %-18s -> initcwnd %.0f\n", dst.to_string().c_str(),
                state.final_window_segments);
  }
  const auto unseen = topo.host(1, 5).address();
  std::printf("  initcwnd toward never-contacted nyc-5 (%s): %u segments\n\n",
              unseen.to_string().c_str(),
              lon0.routing_table().effective_initcwnd(unseen, 10));
}

}  // namespace

int main() {
  std::printf("Riptide route granularity: one lon host pushing to 4 of 6 "
              "nyc hosts\n\n");
  run_one(core::Granularity::kHost, "granularity = /32 host routes:");
  run_one(core::Granularity::kPrefix, "granularity = /16 prefix route:");
  std::printf("With prefix routes the table is O(PoPs) instead of O(hosts "
              "contacted), and unseen host pairs inherit the PoP's learned "
              "window — the overhead reduction of §III-B.\n");
  return 0;
}

// Quickstart: the Riptide mechanism on two hosts, end to end.
//
// This walks the core loop of the paper (Figs 7 and 8): a host serves
// objects over a WAN-like link, its congestion window grows, the Riptide
// agent observes the window through the `ss`-style interface and programs
// a per-destination route initcwnd — and the *next* connection to that
// destination skips slow start, completing the same transfer two round
// trips faster.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/agent.h"
#include "host/host.h"
#include "net/link.h"
#include "sim/random.h"
#include "sim/simulator.h"

using namespace riptide;
using sim::Time;

namespace {

constexpr std::uint16_t kPort = 80;
constexpr std::uint64_t kObjectBytes = 100'000;  // ~69 segments, >> IW10

// Serve a 100 KB object for every 200-byte request.
void start_server(host::Host& server) {
  server.listen(kPort, [](tcp::TcpConnection& conn) {
    auto pending = std::make_shared<std::uint64_t>(0);
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_data = [&conn, pending](std::uint64_t bytes) {
      *pending += bytes;
      while (*pending >= 200) {
        *pending -= 200;
        conn.send(kObjectBytes);
      }
    };
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });
}

// Fetch one object and report how long it took.
Time fetch_once(sim::Simulator& sim, host::Host& client,
                net::Ipv4Address server_addr, const char* label) {
  struct State {
    tcp::TcpConnection* conn = nullptr;
    std::uint64_t received = 0;
    Time started;
    Time finished;
    bool done = false;
  };
  auto state = std::make_shared<State>();
  state->started = sim.now();

  tcp::TcpConnection::Callbacks cbs;
  cbs.on_established = [state] { state->conn->send(200); };
  cbs.on_data = [state, &sim](std::uint64_t bytes) {
    state->received += bytes;
    if (state->received >= kObjectBytes && !state->done) {
      state->done = true;
      state->finished = sim.now();
    }
  };
  state->conn = &client.connect(server_addr, kPort, std::move(cbs));
  std::printf("  [%s] new connection opened (the server's accepted side "
              "starts at ITS route's initcwnd)\n",
              label);

  sim.run_until(sim.now() + Time::seconds(5));
  const Time elapsed = state->finished - state->started;
  std::printf("  [%s] fetched %llu KB in %.0f ms\n", label,
              static_cast<unsigned long long>(kObjectBytes / 1000),
              elapsed.to_milliseconds());
  state->conn->close();
  sim.run_until(sim.now() + Time::seconds(5));
  return elapsed;
}

}  // namespace

int main() {
  sim::Simulator sim;
  sim::Rng rng(1);

  // Two "datacenters" 100 ms apart (50 ms one-way), 1 Gbps.
  host::Host client(sim, "client-dc", net::Ipv4Address(10, 0, 0, 1));
  host::Host server(sim, "server-dc", net::Ipv4Address(10, 1, 0, 1));
  net::Link to_server(sim, {1e9, Time::milliseconds(50), 1024, 0.0, "c->s"},
                      server, &rng);
  net::Link to_client(sim, {1e9, Time::milliseconds(50), 1024, 0.0, "s->c"},
                      client, &rng);
  client.attach_uplink(to_server);
  server.attach_uplink(to_client);

  start_server(server);

  // Riptide agents on both sides, exactly as deployed in the paper: the
  // server side learns the initcwnd it can open with toward the client;
  // the client side raises its advertised initrwnd so those bursts fit.
  core::RiptideConfig config;  // Table I defaults: alpha=0.5, i_u=1s, t=90s,
                               // c_min=10, c_max=100
  core::RiptideAgent server_agent(sim, server, config);
  core::RiptideAgent client_agent(sim, client, config);
  server_agent.start();
  client_agent.start();

  std::printf("== 1. Cold fetch: default IW10, slow start pays 3 data "
              "RTTs ==\n");
  const Time cold = fetch_once(sim, client, server.address(), "cold");

  std::printf("\n== 2. Riptide observes the grown window via `ss` polling "
              "==\n");
  sim.run_until(sim.now() + Time::seconds(3));  // a few poll intervals
  const auto key = server_agent.destination_key(client.address());
  const auto* learned = server_agent.learned(key);
  if (learned != nullptr) {
    std::printf("  server agent learned %s -> initcwnd %.0f segments "
                "(route programmed, like `ip route replace ... initcwnd`)\n",
                key.to_string().c_str(), learned->final_window_segments);
  }

  std::printf("\n== 3. Warm fetch: a brand-new connection starts at the "
              "learned window ==\n");
  const Time warm = fetch_once(sim, client, server.address(), "warm");

  std::printf("\nResult: %.0f ms -> %.0f ms (%.0f%% faster; the saved time "
              "is whole round trips)\n",
              cold.to_milliseconds(), warm.to_milliseconds(),
              (1.0 - warm.to_milliseconds() / cold.to_milliseconds()) * 100.0);
  return 0;
}

// Cache fill: the motivating back-office workload of the paper's intro.
//
// An edge PoP serves Zipf-popular objects from an LRU cache; every miss is
// a WAN fetch from the origin PoP. Misses arrive irregularly, so their
// connections churn — exactly the short, recurring, fresh-connection flows
// whose slow start Riptide eliminates. The run compares miss-fetch latency
// with and without Riptide agents on both ends.
//
// Build & run:  ./build/examples/cache_fill

#include <cstdio>
#include <memory>

#include "cdn/cache_fill.h"
#include "cdn/probe.h"
#include "core/agent.h"
#include "host/host.h"
#include "net/link.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "stats/cdf.h"

using namespace riptide;
using sim::Time;

namespace {

struct RunResult {
  double hit_ratio = 0.0;
  std::uint64_t fetches = 0;
  stats::Cdf all_fetch_ms;
  stats::Cdf large_fetch_ms;  // objects >= 50 KB
};

RunResult run(bool riptide_enabled) {
  sim::Simulator sim;
  sim::Rng rng(7);

  // Edge in Europe, origin in North America: ~120 ms RTT.
  host::Host edge(sim, "edge", net::Ipv4Address(10, 0, 0, 1));
  host::Host origin(sim, "origin", net::Ipv4Address(10, 1, 0, 1));
  net::Link to_origin(sim, {1e9, Time::milliseconds(60), 2048, 1e-4, "e->o"},
                      origin, &rng);
  net::Link to_edge(sim, {1e9, Time::milliseconds(60), 2048, 1e-4, "o->e"},
                    edge, &rng);
  edge.attach_uplink(to_origin);
  origin.attach_uplink(to_edge);

  cdn::ProbeServer origin_server(origin);
  origin_server.start();

  std::unique_ptr<core::RiptideAgent> edge_agent, origin_agent;
  if (riptide_enabled) {
    core::RiptideConfig config;  // Table I defaults
    edge_agent = std::make_unique<core::RiptideAgent>(sim, edge, config);
    origin_agent = std::make_unique<core::RiptideAgent>(sim, origin, config);
    edge_agent->start();
    origin_agent->start();
  }

  cdn::MetricsCollector metrics;
  cdn::CacheFillConfig config;
  config.mean_interarrival_seconds = 0.04;
  config.catalog_size = 3000;
  config.zipf_exponent = 0.9;
  config.cache_capacity_bytes = 48ull * 1024 * 1024;
  cdn::CacheFillWorkload workload(sim, edge, 0, origin, 1, 120.0, config,
                                  metrics, rng);
  workload.start();
  sim.run_until(Time::minutes(5));

  RunResult result;
  result.hit_ratio = workload.cache().hit_ratio();
  result.fetches = workload.fetches_completed();
  for (const auto& flow : metrics.flows()) {
    result.all_fetch_ms.add(flow.duration.to_milliseconds());
    if (flow.object_bytes >= 50'000) {
      result.large_fetch_ms.add(flow.duration.to_milliseconds());
    }
  }
  return result;
}

void report(const char* label, const RunResult& r) {
  std::printf("%s\n", label);
  std::printf("  cache hit ratio: %.1f%%   origin fetches: %llu\n",
              r.hit_ratio * 100.0,
              static_cast<unsigned long long>(r.fetches));
  std::printf("  miss fetch latency (ms):        p50=%6.0f  p75=%6.0f  "
              "p95=%6.0f\n",
              r.all_fetch_ms.percentile(50), r.all_fetch_ms.percentile(75),
              r.all_fetch_ms.percentile(95));
  std::printf("  large-object (>=50KB) fetches:  p50=%6.0f  p75=%6.0f  "
              "p95=%6.0f  (n=%zu)\n",
              r.large_fetch_ms.percentile(50),
              r.large_fetch_ms.percentile(75),
              r.large_fetch_ms.percentile(95), r.large_fetch_ms.count());
}

}  // namespace

int main() {
  std::printf("Cache-fill workload: edge LRU cache, Zipf(0.9) catalog, "
              "origin 120 ms away\n\n");
  const auto baseline = run(false);
  report("Default TCP (IW10):", baseline);
  std::printf("\n");
  const auto treated = run(true);
  report("With Riptide on edge and origin:", treated);

  std::printf("\nLarge-object miss penalty cut: p75 %.0f ms -> %.0f ms "
              "(%.0f%%)\n",
              baseline.large_fetch_ms.percentile(75),
              treated.large_fetch_ms.percentile(75),
              (1.0 - treated.large_fetch_ms.percentile(75) /
                         baseline.large_fetch_ms.percentile(75)) *
                  100.0);
  return 0;
}

// CDN probe mesh: the paper's evaluation workload (§IV-A) in miniature.
//
// Builds a six-PoP slice of the global topology, runs the 10/50/100 KB
// diagnostic probe mesh with Riptide agents on every host, and prints the
// probe completion times by destination distance — first for a control run
// without Riptide, then with it. The stair-step gains on 50/100 KB probes
// toward far destinations are the paper's Figs 13-14 in table form.
//
// Build & run:  ./build/examples/cdn_probes

#include <cstdio>
#include <vector>

#include "cdn/experiment.h"
#include "cdn/pops.h"

using namespace riptide;
using sim::Time;

namespace {

std::vector<cdn::PopSpec> six_pops() {
  return {{"lon", cdn::Continent::kEurope, {51.51, -0.13}},
          {"fra", cdn::Continent::kEurope, {50.11, 8.68}},
          {"nyc", cdn::Continent::kNorthAmerica, {40.71, -74.01}},
          {"lax", cdn::Continent::kNorthAmerica, {34.05, -118.24}},
          {"sin", cdn::Continent::kAsia, {1.35, 103.82}},
          {"syd", cdn::Continent::kOceania, {-33.87, 151.21}}};
}

cdn::ExperimentConfig make_config(bool riptide) {
  cdn::ExperimentConfig config;
  config.pop_specs = six_pops();
  config.topology.hosts_per_pop = 2;
  config.riptide_enabled = riptide;
  config.probe.interval = Time::seconds(5);
  config.duration = Time::minutes(3);
  config.seed = 42;
  return config;
}

void report(const char* title, cdn::Experiment& exp) {
  std::printf("%s\n", title);
  std::printf("  %-6s %-10s %12s %12s %12s\n", "dst", "base RTT", "10KB p50",
              "50KB p50", "100KB p50");
  const int src = 0;  // lon
  for (std::size_t dst = 1; dst < exp.topology().pop_count(); ++dst) {
    std::printf("  %-6s %7.0fms",
                exp.topology().pops()[dst].spec.name.c_str(),
                exp.topology().base_rtt(src, dst).to_milliseconds());
    for (std::uint64_t size : {10'000u, 50'000u, 100'000u}) {
      const auto cdf =
          exp.probe_cdf(src, size, static_cast<int>(dst), /*fresh=*/true);
      if (cdf.empty()) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %10.0fms", cdf.percentile(50));
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  cdn::Experiment control(make_config(false));
  control.run();
  report("Default TCP (IW10), median fresh-connection probe times from lon:",
         control);

  cdn::Experiment treatment(make_config(true));
  treatment.run();
  report("\nWith Riptide (c_max=100), same probes:", treatment);

  std::printf("\nLearned windows at lon's host 0 after the run:\n");
  const auto& agent = *treatment.agents().front();
  for (const auto& [dst, state] : agent.table().entries()) {
    std::printf("  %-18s -> initcwnd %3.0f segments (updated %llu times)\n",
                dst.to_string().c_str(), state.final_window_segments,
                static_cast<unsigned long long>(state.updates));
  }
  std::printf("\nNote: 10 KB probes fit in IW10 and do not change; gains on "
              "50/100 KB probes are whole RTTs and grow with distance.\n");
  return 0;
}

// Adaptability and the TTL safety valve (§III-B).
//
// Riptide must (1) stop boosting a destination once it has no evidence —
// the time-to-live expiry restoring the default IW10 — and (2) follow the
// network down: when a path degrades and congestion windows shrink, the
// learned initial window shrinks with them instead of blasting a congested
// link.
//
// Build & run:  ./build/examples/failover_ttl

#include <cstdio>
#include <memory>

#include "core/agent.h"
#include "host/host.h"
#include "net/link.h"
#include "sim/random.h"
#include "sim/simulator.h"

using namespace riptide;
using sim::Time;

namespace {

constexpr std::uint16_t kSinkPort = 9900;

std::uint32_t learned_initcwnd(host::Host& host, net::Ipv4Address dst) {
  return host.routing_table().effective_initcwnd(dst, 10);
}

}  // namespace

int main() {
  sim::Simulator sim;
  sim::Rng rng(3);

  host::Host a(sim, "a", net::Ipv4Address(10, 0, 0, 1));
  host::Host b(sim, "b", net::Ipv4Address(10, 1, 0, 1));
  // Mutable loss knob: we will degrade the b-ward path mid-run.
  net::Link::Config ab_cfg{1e9, Time::milliseconds(40), 64, 0.0, "a->b"};
  auto ab = std::make_unique<net::Link>(sim, ab_cfg, b, &rng);
  net::Link ba(sim, {1e9, Time::milliseconds(40), 1024, 0.0, "b->a"}, a, &rng);
  a.attach_uplink(*ab);
  b.attach_uplink(ba);

  b.listen(kSinkPort, [](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });

  core::RiptideConfig config;
  config.ttl = Time::seconds(90);  // the paper's deployed value
  core::RiptideAgent agent(sim, a, config);
  agent.start();

  // Phase 1: healthy path, regular 200 KB pushes grow the window.
  tcp::TcpConnection* conn = nullptr;
  tcp::TcpConnection::Callbacks cbs;
  conn = &a.connect(b.address(), kSinkPort, std::move(cbs));
  sim.run_until(Time::milliseconds(200));
  for (int i = 0; i < 5; ++i) {
    conn->send(200'000);
    sim.run_until(sim.now() + Time::seconds(3));
  }
  std::printf("phase 1 (healthy path): learned initcwnd toward b = %u "
              "segments (cwnd on live conn: %u)\n",
              learned_initcwnd(a, b.address()), conn->cwnd_segments());

  // Phase 2: the path degrades — 3% loss. Cubic backs off; Riptide's
  // average follows the shrinking windows within a few poll intervals.
  // (This is the "if connections demonstrate smaller windows, Riptide will
  // respond accordingly" property of §III-B.)
  // Point the default route at a lossy replacement link. The old link must
  // stay alive until its in-flight packets drain (see net/link.h), so we
  // keep both.
  ab_cfg.loss_probability = 0.08;
  auto lossy = std::make_unique<net::Link>(sim, ab_cfg, b, &rng);
  a.routing_table().add_or_replace(net::Prefix(net::Ipv4Address(0), 0),
                                   *lossy);
  for (int i = 0; i < 8; ++i) {
    conn->send(50'000);
    sim.run_until(sim.now() + Time::seconds(4));
  }
  std::printf("phase 2 (8%% loss): learned initcwnd toward b = %u segments "
              "(cwnd on live conn: %u) — the boost follows the network "
              "down\n",
              learned_initcwnd(a, b.address()), conn->cwnd_segments());

  // Phase 3: the application hits an error and hard-closes (§II-A's
  // "unmanageable error cases"). With no connections left, the entry ages
  // out after the 90 s TTL, the route is withdrawn, and new connections
  // are back to the default initial window.
  conn->abort();
  sim.run_until(sim.now() + Time::seconds(60));
  std::printf("phase 3 (+60 s idle): learned initcwnd = %u (entry still "
              "within TTL)\n",
              learned_initcwnd(a, b.address()));
  sim.run_until(sim.now() + Time::seconds(60));
  std::printf("phase 3 (+120 s idle): learned initcwnd = %u (TTL expired -> "
              "default restored), routes expired so far: %llu\n",
              learned_initcwnd(a, b.address()),
              static_cast<unsigned long long>(agent.stats().routes_expired));
  return 0;
}

#!/usr/bin/env bash
# CI entry point: build + test the two configurations that matter.
#
#   1. Release        — the configuration benches and figure reproductions
#                       use; catches optimizer-dependent breakage.
#   2. Debug+ASan/UBSan — memory and UB errors in the event-queue slab,
#                       the SBO callback, and the thread-pool fan-out.
#
# Usage: tools/ci.sh [jobs]   (default: nproc)

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "==== configure $dir ($*) ===="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "==== build $dir ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== test $dir ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build-ci-release -DCMAKE_BUILD_TYPE=Release

run_config build-ci-asan \
  -DCMAKE_BUILD_TYPE=Debug \
  -DRIPTIDE_SANITIZE=ON

# The chaos label (fault-injection + stress suites) re-runs under the
# sanitizers with a hard per-test timeout: injected failures exercise the
# exception/retry/restart paths where lifetime bugs hide, and a wedged
# simulation must fail the build rather than hang it.
echo "==== chaos suite (ASan/UBSan) ===="
ctest --test-dir build-ci-asan -L chaos --output-on-failure \
  --timeout 300 -j "$JOBS"

# The persist label (snapshot codec, stores, checkpointer, governor,
# reconciliation) likewise re-runs under the sanitizers: the decoder
# walks attacker-shaped bytes and must never read past them.
echo "==== persist suite (ASan/UBSan) ===="
ctest --test-dir build-ci-asan -L persist --output-on-failure \
  --timeout 300 -j "$JOBS"

# The shard label (sharded PDES engine, wire channels, fluid cross-traffic,
# sharded determinism) re-runs under the sanitizers: races, lost barrier
# wakeups, and pooled segments crossing a shard boundary alive are exactly
# the bugs ASan/TSan-shaped instrumentation turns from flaky to loud.
echo "==== shard suite (ASan/UBSan) ===="
ctest --test-dir build-ci-asan -L shard --output-on-failure \
  --timeout 300 -j "$JOBS"

# The sched label (timer-wheel differential/property suites, the core
# simulator tests, and the sharded-determinism pins) re-runs under the
# sanitizers: the scheduler is an intrusive slab of raw indices where an
# off-by-one cascade or a stale unlink corrupts silently — exactly what
# ASan/UBSan turn into a loud failure.
echo "==== sched suite (ASan/UBSan) ===="
ctest --test-dir build-ci-asan -L sched --output-on-failure \
  --timeout 300 -j "$JOBS"

# The hostile label (incast/flash-crowd wave generators, the governed
# policy end-to-end ordering, the governed CLI path) re-runs under the
# sanitizers: waves of short-lived connections churn through socket
# teardown and the governor's withdraw/rollback sweeps, prime ground for
# use-after-free.
echo "==== hostile suite (ASan/UBSan) ===="
ctest --test-dir build-ci-asan -L hostile --output-on-failure \
  --timeout 300 -j "$JOBS"

# The chaos-search label (spec codec, invariant oracles, shrinker,
# campaign engine, repro replay) re-runs under the sanitizers: a campaign
# composes every other subsystem's failure modes in one process, so a
# lifetime bug anywhere tends to surface here first.
echo "==== chaos-search suite (ASan/UBSan) ===="
ctest --test-dir build-ci-asan -L chaos-search --output-on-failure \
  --timeout 300 -j "$JOBS"

# The cc label (pacer release arithmetic, HyStart round tracking, the
# BBR-lite delivery-rate filter, per-route CC programming, and the paced
# determinism pins) re-runs under the sanitizers: the controllers keep
# per-connection state machines whose stale-pointer/uninitialized-read
# failure modes are silent in Release.
echo "==== cc suite (ASan/UBSan) ===="
ctest --test-dir build-ci-asan -L cc --output-on-failure \
  --timeout 300 -j "$JOBS"

# Chaos campaign smoke (Release): a short seeded campaign end to end
# through the CLI. A healthy tree must come back with zero findings; any
# finding writes its minimized .min.spec next to the build for triage.
echo "==== chaos campaign smoke (Release) ===="
./build-ci-release/tools/riptide_sim --chaos 48 --chaos-seed 1 \
  --chaos-out build-ci-release

# Event-queue bench diff (informational, never a gate): one JSONL row per
# workload, diffed against the checked-in wheel-vs-heap baseline.
echo "==== event-queue throughput (Release) ===="
./build-ci-release/bench/bench_micro --queue-json \
  | tee build-ci-release/BENCH_eventwheel.ci.json
python3 tools/bench_diff.py BENCH_eventwheel.json \
  build-ci-release/BENCH_eventwheel.ci.json || true

# Hotpath bench diff (informational, never a gate): zero baselines render
# as "n/a" rows, and bench_diff.py always exits 0 — `|| true` guards only
# against the bench itself failing to run.
echo "==== hotpath bench diff vs checked-in baseline ===="
./build-ci-release/bench/bench_micro --hotpath-json \
  > build-ci-release/BENCH_hotpath.ci.json
python3 tools/bench_diff.py BENCH_hotpath.json \
  build-ci-release/BENCH_hotpath.ci.json || true

# Shard bench (informational): quick mode keeps CI short; the JSON's
# hardware-independent facts — identical event totals per shard count and
# the hybrid/packet event ratio — are what reviewers read.
echo "==== shard scaling + hybrid fidelity bench (quick) ===="
./build-ci-release/bench/bench_shard_scale --quick --json \
  | tail -1 > build-ci-release/BENCH_shard.ci.json
python3 tools/bench_diff.py BENCH_shard.json \
  build-ci-release/BENCH_shard.ci.json || true

# Policy zoo bench (informational): quick mode keeps CI short. The
# headline block — static IW50 vs governed adaptive per hostile scenario —
# is what reviewers read; quick-mode numbers are not comparable with the
# checked-in full-length BENCH_policy.json, so the diff is advisory.
echo "==== policy zoo x hostile scenario bench (quick) ===="
./build-ci-release/bench/bench_policy_zoo --quick --json \
  > build-ci-release/BENCH_policy.ci.json
python3 tools/bench_diff.py BENCH_policy.json \
  build-ci-release/BENCH_policy.ci.json || true

# CC matrix bench (informational): quick mode keeps CI short. The headline
# — jump-start gain per congestion-control regime — is what reviewers
# read; quick-mode numbers are not comparable with the checked-in
# full-length BENCH_cc.json, so the diff is advisory.
echo "==== cc regime matrix bench (quick) ===="
./build-ci-release/bench/bench_cc_matrix --quick --json \
  > build-ci-release/BENCH_cc.ci.json
python3 tools/bench_diff.py BENCH_cc.json \
  build-ci-release/BENCH_cc.ci.json || true

# Docs lint: every relative markdown link must resolve (offline check; no
# network fetches in CI), and docs/CLI.md must match riptide_sim --help
# exactly (drift fails the build; regenerate with --update). The --binary
# cross-check also pins the kHelpText extraction against what the built
# binary actually prints.
echo "==== docs lint ===="
python3 tools/check_md_links.py
python3 tools/check_cli_docs.py --binary build-ci-release/tools/riptide_sim

# Trace smoke: one traced run through the CLI, then schema/order
# validation of the emitted JSONL.
echo "==== trace smoke ===="
./build-ci-release/tools/riptide_sim --pops 3 --duration 20 --seed 7 \
  --trace build-ci-release/trace_ci.jsonl
python3 tools/trace_report.py build-ci-release/trace_ci.jsonl --check

echo "CI passed."

#!/usr/bin/env python3
"""Keep docs/CLI.md in sync with riptide_sim's --help text.

The authoritative flag reference is the kHelpText raw-string literal in
tools/riptide_sim.cc; docs/CLI.md embeds a copy in its ```text fence.
This script extracts the literal straight from the source (no build
required — that is what lets the docs-lint CI job run it on a bare
checkout) and diffs it against the fence.

Usage:
  tools/check_cli_docs.py             # exit 1 + diff when out of sync
  tools/check_cli_docs.py --update    # rewrite docs/CLI.md from source
  tools/check_cli_docs.py --binary build/tools/riptide_sim
                                      # additionally cross-check that the
                                      # built binary prints the same text
"""

import argparse
import difflib
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE = REPO / "tools" / "riptide_sim.cc"
DOC = REPO / "docs" / "CLI.md"

HEADER = """\
# riptide_sim CLI reference

Generated from the `kHelpText` literal in `tools/riptide_sim.cc` (what
`riptide_sim --help` prints). Do not edit the fenced block by hand:
regenerate with `tools/check_cli_docs.py --update`. The docs-lint CI job
runs `tools/check_cli_docs.py` and fails on any drift.

```text
"""

FOOTER = "```\n"


def help_text_from_source() -> str:
    source = SOURCE.read_text()
    match = re.search(r'R"HELP\((.*)\)HELP"', source, re.DOTALL)
    if match is None:
        sys.exit(f"error: no R\"HELP(...)HELP\" literal in {SOURCE}")
    # The literal starts with the newline right after R"HELP(.
    return match.group(1).lstrip("\n")


def help_text_from_doc() -> str:
    doc = DOC.read_text()
    match = re.search(r"```text\n(.*?)```", doc, re.DOTALL)
    if match is None:
        sys.exit(f"error: no ```text fence in {DOC}")
    return match.group(1)


def fail_with_diff(name_a: str, a: str, name_b: str, b: str) -> None:
    diff = difflib.unified_diff(
        a.splitlines(keepends=True), b.splitlines(keepends=True),
        fromfile=name_a, tofile=name_b)
    sys.stdout.writelines(diff)
    sys.exit(f"error: {name_b} is out of sync with {name_a}; "
             "run tools/check_cli_docs.py --update")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite docs/CLI.md from the source literal")
    parser.add_argument("--binary",
                        help="path to a built riptide_sim; also verify its "
                             "--help output matches the source literal")
    args = parser.parse_args()

    from_source = help_text_from_source()

    if args.update:
        DOC.write_text(HEADER + from_source + FOOTER)
        print(f"wrote {DOC}")
        return

    if args.binary:
        printed = subprocess.run(
            [args.binary, "--help"], check=True, capture_output=True,
            text=True).stdout
        if printed != from_source:
            fail_with_diff("kHelpText (source)", from_source,
                           f"{args.binary} --help", printed)

    from_doc = help_text_from_doc()
    if from_doc != from_source:
        fail_with_diff("kHelpText (source)", from_source, str(DOC), from_doc)
    print("docs/CLI.md matches riptide_sim --help")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Diff two benchmark JSON files (e.g. BENCH_hotpath.json before/after).

Flattens every numeric field (nested objects become dotted paths, lists of
numbers become their median) and prints an aligned table of

    metric | A | B | % delta

so a perf PR can show exactly which counters and rates moved. Fields present
in only one file are listed separately. Exit code is always 0 — this is a
reporting tool, not a gate; CI uploads the table as an artifact and humans
judge the deltas.

Inputs may be a single JSON document or JSONL (one object per line, the
shape `bench_micro --queue-json` emits). JSONL rows are keyed by their
"workload" field (falling back to "bench"/line number) so the same workload
diffs against itself across captures.

Usage:
    tools/bench_diff.py before.json after.json [--only PREFIX]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Any, Dict


def flatten(value: Any, prefix: str = "") -> Dict[str, float]:
    """Collect numeric leaves as {dotted.path: value}.

    Lists of numbers collapse to their median (the stable summary for
    repeated-measurement arrays); lists of objects are indexed. Strings and
    booleans are ignored — only measured quantities are diffable.
    """
    out: Dict[str, float] = {}
    if isinstance(value, bool):
        return out
    if isinstance(value, (int, float)):
        out[prefix or "value"] = float(value)
        return out
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(child, path))
        return out
    if isinstance(value, list) and value:
        if all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in value):
            out[f"{prefix}.median" if prefix else "median"] = float(
                statistics.median(value))
        else:
            for i, child in enumerate(value):
                out.update(flatten(child, f"{prefix}[{i}]"))
    return out


def fmt(x: float) -> str:
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return f"{x:.4g}"


def load(path: str) -> Dict[str, float]:
    """Flatten one capture: a JSON document, or JSONL keyed by workload."""
    with open(path) as f:
        text = f.read()
    try:
        return flatten(json.loads(text))
    except json.JSONDecodeError:
        pass
    out: Dict[str, float] = {}
    for i, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        key = f"line{i}"
        if isinstance(row, dict):
            key = str(row.get("workload") or row.get("bench") or key)
        out.update(flatten(row, key))
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", help="baseline JSON file")
    parser.add_argument("after", help="candidate JSON file")
    parser.add_argument("--only", default="",
                        help="restrict to metrics whose path starts with this")
    args = parser.parse_args()

    a = load(args.before)
    b = load(args.after)
    if args.only:
        a = {k: v for k, v in a.items() if k.startswith(args.only)}
        b = {k: v for k, v in b.items() if k.startswith(args.only)}

    shared = sorted(set(a) & set(b))
    rows = []
    for key in shared:
        if a[key] == 0.0:
            # A zero baseline has no meaningful percentage — neither 0 -> 0
            # (a counter that never fired, e.g. segment_heap_allocs after
            # the pool landed) nor 0 -> n (infinite growth). Report n/a and
            # let the absolute columns speak.
            delta = "n/a"
        else:
            delta = f"{(b[key] - a[key]) / a[key] * 100.0:+.1f}%"
        rows.append((key, fmt(a[key]), fmt(b[key]), delta))

    if rows:
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        header = ("metric", "before", "after", "delta")
        widths = [max(w, len(h)) for w, h in zip(widths, header)]
        line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
        print(line)
        print("  ".join("-" * w for w in widths))
        for key, av, bv, delta in rows:
            print(f"{key.ljust(widths[0])}  {av.rjust(widths[1])}  "
                  f"{bv.rjust(widths[2])}  {delta.rjust(widths[3])}")
    else:
        print("no shared numeric metrics")

    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    if only_a:
        print(f"\nonly in {args.before}: " + ", ".join(only_a))
    if only_b:
        print(f"\nonly in {args.after}: " + ", ".join(only_b))
    return 0


if __name__ == "__main__":
    sys.exit(main())

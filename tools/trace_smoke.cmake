# ctest driver for the traced-run smoke: run one small fig6-style transfer
# scenario through the CLI with --trace, then validate the JSONL with
# trace_report.py --check. Invoked from tools/CMakeLists.txt with
# -DSIM_CLI=... -DPYTHON=... -DREPORT=... -DOUT_DIR=...

set(trace_file "${OUT_DIR}/trace_smoke.jsonl")

execute_process(
  COMMAND "${SIM_CLI}" --pops 3 --duration 20 --seed 7
          --trace "${trace_file}"
  RESULT_VARIABLE sim_rc)
if(NOT sim_rc EQUAL 0)
  message(FATAL_ERROR "riptide_sim --trace failed (rc=${sim_rc})")
endif()

if(NOT EXISTS "${trace_file}")
  message(FATAL_ERROR "traced run produced no ${trace_file}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${REPORT}" "${trace_file}" --check
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "trace_report.py --check rejected ${trace_file}")
endif()

#!/usr/bin/env python3
"""Render riptide decision-audit traces (JSONL from --trace / TraceSink).

A trace file is one meta line followed by one JSON object per event:

    {"kind":"trace-meta","emitted":N,"dropped":N}
    {"at":<ns>,"seq":<n>,"kind":"tcp-cwnd",...}

Modes (stdlib only, no third-party dependencies):

    trace_report.py FILE                 summary: counts, connections, routes
    trace_report.py FILE --check         validate schema/ordering; exit 0/1
    trace_report.py FILE --list          list traced connections and routes
    trace_report.py FILE --conn CONN     cwnd-vs-time table + ASCII plot for
                                         one connection ("a:p-b:p", or a
                                         unique substring of it)
    trace_report.py FILE --route PREFIX  per-route decision timeline
                                         (--host narrows to one agent)
    trace_report.py FILE --governor      SafetyGovernor state timeline per
                                         agent (--host narrows to one)

The --conn view is the Fig-6-style picture: an initcwnd-seeded connection
starts its timeline at the jump-started window instead of IW10.
"""

import argparse
import json
import os
import sys

# Keys every event of a kind must carry (beyond at/seq/kind).
REQUIRED_KEYS = {
    "tcp-state": {"conn", "from", "to"},
    "tcp-cwnd": {"conn", "cause", "cwnd", "ssthresh", "mss"},
    # (tcp-cwnd "cause" must additionally be one of TCP_CWND_CAUSES.)
    "tcp-rto": {"conn", "rto_ns", "retries"},
    "agent-decision": {
        "host", "route", "samples", "combined", "folded", "final",
        "trend_reset", "capped",
    },
    "agent-program": {"host", "route", "verdict", "scale", "initcwnd",
                      "initrwnd"},
    "agent-route": {"host", "route", "cause", "window"},
    "agent-restore": {"host", "from_checkpoint", "reinstalled", "records",
                      "generation", "rejected"},
    "agent-rollback": {"host", "routes"},
    "governor-state": {"host", "from", "to", "cause", "retrans_fraction",
                       "routes"},
    "fault": {"label", "restored", "value", "duration_ns"},
    "link": {"name", "up"},
}

# Closed vocabulary for tcp-cwnd "cause" (src/trace/sink.cc to_string):
# the classic loss-based transitions plus the CC-zoo regimes — HyStart's
# slow-start exit, BBR-lite's probe-RTT dip, and pacer-deferred sends.
TCP_CWND_CAUSES = {
    "initcwnd-seeded", "slowstart", "ca", "fast-retransmit",
    "recovery-exit", "rto", "idle-restart",
    "hystart-exit", "bbr-probe-rtt", "paced",
}


def load(path):
    """Returns (meta, events) or raises ValueError with a line number."""
    meta = None
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(f"line {lineno}: bad JSON: {err}") from err
            if lineno == 1:
                if obj.get("kind") != "trace-meta":
                    raise ValueError("line 1: expected trace-meta header")
                meta = obj
                continue
            events.append((lineno, obj))
    if meta is None:
        raise ValueError("empty trace file")
    return meta, events


def check(meta, events):
    """Schema + ordering validation; returns a list of error strings."""
    errors = []
    for field in ("emitted", "dropped"):
        if not isinstance(meta.get(field), int):
            errors.append(f"trace-meta: missing integer '{field}'")
    retained = meta.get("emitted", 0) - meta.get("dropped", 0)
    if isinstance(retained, int) and retained != len(events):
        errors.append(
            f"trace-meta claims {retained} retained events, file has "
            f"{len(events)}")
    prev = None
    for lineno, ev in events:
        kind = ev.get("kind")
        if kind not in REQUIRED_KEYS:
            errors.append(f"line {lineno}: unknown kind {kind!r}")
            continue
        for field in ("at", "seq"):
            if not isinstance(ev.get(field), int):
                errors.append(f"line {lineno}: missing integer '{field}'")
        missing = REQUIRED_KEYS[kind] - set(ev)
        if missing:
            errors.append(
                f"line {lineno}: {kind} missing {sorted(missing)}")
        if (kind == "tcp-cwnd"
                and ev.get("cause") not in TCP_CWND_CAUSES):
            errors.append(
                f"line {lineno}: tcp-cwnd unknown cause "
                f"{ev.get('cause')!r}")
        key = (ev.get("at", 0), ev.get("seq", 0))
        if prev is not None and key <= prev:
            errors.append(
                f"line {lineno}: (at, seq) {key} not increasing after {prev}")
        prev = key
    return errors


def summarize(meta, events, path):
    counts = {}
    conns = set()
    routes = set()
    for _, ev in events:
        counts[ev["kind"]] = counts.get(ev["kind"], 0) + 1
        if "conn" in ev:
            conns.add(ev["conn"])
        if "route" in ev:
            routes.add((ev.get("host", "?"), ev["route"]))
    print(f"{path}: {meta['emitted']} emitted, {meta['dropped']} dropped, "
          f"{len(events)} retained")
    for kind in sorted(counts):
        print(f"  {kind:<16} {counts[kind]:>8}")
    print(f"  connections: {len(conns)}, (host, route) pairs: {len(routes)}")


def list_entities(events):
    conns = {}
    routes = {}
    for _, ev in events:
        if "conn" in ev:
            conns[ev["conn"]] = conns.get(ev["conn"], 0) + 1
        if "route" in ev:
            key = (ev.get("host", "?"), ev["route"])
            routes[key] = routes.get(key, 0) + 1
    print("connections (events):")
    for conn in sorted(conns):
        print(f"  {conn}  ({conns[conn]})")
    print("host routes (events):")
    for host, route in sorted(routes):
        print(f"  {host} -> {route}  ({routes[(host, route)]})")


def pick_conn(events, wanted):
    conns = sorted({ev["conn"] for _, ev in events if "conn" in ev})
    matches = [c for c in conns if wanted in c]
    if wanted in conns:
        return wanted
    if len(matches) == 1:
        return matches[0]
    if not matches:
        sys.exit(f"error: no traced connection matches {wanted!r} "
                 f"(use --list)")
    sys.exit("error: ambiguous connection; candidates:\n  "
             + "\n  ".join(matches))


def ascii_plot(rows, width=60):
    """rows: list of (t_ms, segments). One line per sample, bar-scaled."""
    peak = max(seg for _, seg in rows)
    if peak <= 0:
        return
    print(f"\n  cwnd (segments), peak = {peak:g}")
    for t_ms, seg in rows:
        bar = "#" * max(1, round(seg / peak * width)) if seg > 0 else ""
        print(f"  {t_ms:>12.3f} ms |{bar:<{width}}| {seg:g}")


def conn_timeline(events, conn, plot_width):
    state_names = [
        "Closed", "SynSent", "SynReceived", "Established", "FinWait1",
        "FinWait2", "CloseWait", "Closing", "LastAck", "TimeWait",
    ]

    def state(idx):
        return state_names[idx] if 0 <= idx < len(state_names) else str(idx)

    print(f"connection {conn}")
    print(f"  {'time (ms)':>12}  {'event':<12} {'detail'}")
    samples = []
    for _, ev in events:
        if ev.get("conn") != conn:
            continue
        t_ms = ev["at"] / 1e6
        if ev["kind"] == "tcp-state":
            print(f"  {t_ms:>12.3f}  {'state':<12} "
                  f"{state(ev['from'])} -> {state(ev['to'])}")
        elif ev["kind"] == "tcp-cwnd":
            segments = ev["cwnd"] / ev["mss"] if ev["mss"] else 0.0
            ssthresh = ev["ssthresh"]
            ss = ("inf" if ssthresh >= 2**63 else
                  f"{ssthresh / ev['mss']:g}" if ev["mss"] else str(ssthresh))
            print(f"  {t_ms:>12.3f}  {'cwnd':<12} {segments:g} segments "
                  f"(ssthresh {ss}) [{ev['cause']}]")
            samples.append((t_ms, segments))
        elif ev["kind"] == "tcp-rto":
            print(f"  {t_ms:>12.3f}  {'rto':<12} fired after "
                  f"{ev['rto_ns'] / 1e6:g} ms (retry {ev['retries']})")
    if not samples:
        sys.exit(f"error: no cwnd events for {conn}")
    ascii_plot(samples, plot_width)


def route_timeline(events, route, host):
    # A bare address matches its host route, so `--route 10.1.0.1` works
    # without spelling out the /32.
    if "/" not in route:
        route = route + "/32"
    shown = 0
    print(f"route {route}" + (f" on {host}" if host else " (all agents)"))
    print(f"  {'time (ms)':>12}  {'event':<16} {'detail'}")
    for _, ev in events:
        if ev.get("route") != route:
            continue
        if host and ev.get("host") != host:
            continue
        t_ms = ev["at"] / 1e6
        prefix = "" if host else f"[{ev.get('host', '?')}] "
        if ev["kind"] == "agent-decision":
            flags = []
            if ev["trend_reset"]:
                flags.append("trend-reset")
            if ev["capped"]:
                flags.append("capped")
            flag_str = f" ({', '.join(flags)})" if flags else ""
            print(f"  {t_ms:>12.3f}  {'decision':<16} {prefix}"
                  f"samples={ev['samples']} combined={ev['combined']:g} "
                  f"folded={ev['folded']:g} -> final={ev['final']:g}"
                  f"{flag_str}")
        elif ev["kind"] == "agent-program":
            print(f"  {t_ms:>12.3f}  {'program':<16} {prefix}"
                  f"{ev['verdict']} initcwnd={ev['initcwnd']} "
                  f"initrwnd={ev['initrwnd']} scale={ev['scale']:g}")
        elif ev["kind"] == "agent-route":
            print(f"  {t_ms:>12.3f}  {'route':<16} {prefix}"
                  f"{ev['cause']} window={ev['window']:g}")
        else:
            continue
        shown += 1
    if shown == 0:
        sys.exit(f"error: no events for route {route!r} (use --list)")


def governor_timeline(events, host):
    """Per-host SafetyGovernor state machine: every governor-state edge plus
    the rollbacks and staged programs/withdrawals that accompanied it."""
    hosts = sorted({ev["host"] for _, ev in events
                    if ev.get("kind") == "governor-state"})
    if host:
        if host not in hosts:
            sys.exit(f"error: no governor-state events for host {host!r}"
                     + (f"; hosts with events: {', '.join(hosts)}"
                        if hosts else " (none traced)"))
        hosts = [host]
    if not hosts:
        sys.exit("error: no governor-state events in trace")
    for agent_host in hosts:
        print(f"governor on {agent_host}")
        print(f"  {'time (ms)':>12}  {'edge':<36} {'cause':<10} {'detail'}")
        for _, ev in events:
            if ev.get("kind") != "governor-state":
                continue
            if ev["host"] != agent_host:
                continue
            t_ms = ev["at"] / 1e6
            edge = (ev["from"] if ev["from"] == ev["to"]
                    else f"{ev['from']} -> {ev['to']}")
            detail = f"routes={ev['routes']}"
            if ev["retrans_fraction"] > 0:
                detail += f" retrans={ev['retrans_fraction']:.4g}"
            print(f"  {t_ms:>12.3f}  {edge:<36} {ev['cause']:<10} {detail}")


def main():
    parser = argparse.ArgumentParser(
        description="Render riptide decision-audit traces.")
    parser.add_argument("file", help="JSONL trace (riptide_sim --trace ...)")
    parser.add_argument("--check", action="store_true",
                        help="validate schema and ordering; exit non-zero "
                             "on any violation")
    parser.add_argument("--list", action="store_true",
                        help="list traced connections and routes")
    parser.add_argument("--conn", metavar="CONN",
                        help="cwnd timeline for one connection "
                             "(exact 'a:p-b:p' or unique substring)")
    parser.add_argument("--route", metavar="PREFIX",
                        help="decision timeline for one route (a.b.c.d/len)")
    parser.add_argument("--governor", action="store_true",
                        help="SafetyGovernor state timeline per agent")
    parser.add_argument("--host", metavar="ADDR",
                        help="restrict --route/--governor to one agent host")
    parser.add_argument("--plot-width", type=int, default=60,
                        help="ASCII plot width in characters")
    args = parser.parse_args()

    try:
        meta, events = load(args.file)
    except (OSError, ValueError) as err:
        sys.exit(f"error: {err}")

    if args.check:
        errors = check(meta, events)
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        if errors:
            sys.exit(1)
        print(f"{args.file}: OK ({len(events)} events, "
              f"{meta['dropped']} dropped)")
        return

    if args.list:
        list_entities(events)
    elif args.conn:
        conn_timeline(events, pick_conn(events, args.conn), args.plot_width)
    elif args.route:
        route_timeline(events, args.route, args.host)
    elif args.governor:
        governor_timeline(events, args.host)
    else:
        summarize(meta, events, args.file)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal, not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)

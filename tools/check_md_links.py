#!/usr/bin/env python3
"""Check markdown links without network access (CI docs-lint job).

For every given .md file (or every tracked .md under the repo root when
none are given) this validates:

  * inline links/images `[text](target)` whose target is a relative path:
    the referenced file must exist (anchors are split off first);
  * intra-file anchors `[text](#section)`: a heading with the matching
    GitHub-style slug must exist in the same file.

External links (http/https/mailto) are deliberately not fetched — CI must
not depend on the network — but their syntax still has to parse.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link: `file:line: message`).
"""

import os
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def slugify(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, dashes for spaces."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def collect_anchors(path):
    anchors = set()
    in_fence = False
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING.match(line)
            if match:
                anchors.add(slugify(match.group(1)))
    return anchors


def check_file(path, anchor_cache):
    errors = []
    base = os.path.dirname(os.path.abspath(path))
    in_fence = False
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if target.startswith("#"):
                    if path not in anchor_cache:
                        anchor_cache[path] = collect_anchors(path)
                    if target[1:].lower() not in anchor_cache[path]:
                        errors.append(
                            f"{path}:{lineno}: no heading for anchor "
                            f"'{target}'")
                    continue
                file_part = target.split("#", 1)[0]
                resolved = os.path.normpath(os.path.join(base, file_part))
                if not os.path.exists(resolved):
                    errors.append(
                        f"{path}:{lineno}: broken link '{target}' "
                        f"(no {resolved})")
    return errors


def main():
    paths = sys.argv[1:]
    if not paths:
        for root, dirs, files in os.walk("."):
            dirs[:] = [d for d in dirs
                       if not d.startswith(".") and d != "build"]
            paths.extend(os.path.join(root, f) for f in files
                         if f.endswith(".md"))
        paths.sort()
    anchor_cache = {}
    errors = []
    for path in paths:
        errors.extend(check_file(path, anchor_cache))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(paths)} file(s): "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} broken)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

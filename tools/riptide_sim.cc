// riptide_sim — command-line front end for the simulated CDN.
//
// Runs the probe-mesh experiment on a configurable slice of the global
// topology and prints a summary: learned windows, probe completion
// percentiles per size, and agent counters. Handy for parameter
// exploration without writing C++.
//
// Usage:
//   riptide_sim [--pops N] [--hosts N] [--duration SECONDS] [--seed S]
//               [--riptide 0|1] [--cmax N] [--cmin N] [--alpha F]
//               [--interval SECONDS] [--ttl SECONDS]
//               [--combiner avg|max|weighted] [--prefix-granularity]
//               [--probe-interval SECONDS] [--wan-loss P] [--organic POP]
//               [--pacing] [--cc NAME] [--threads N] [--sweep-seeds A,B,C]
//               [--trace PATH.jsonl] [--trace-ring N]
//               [--shards N] [--flow-traffic FLOWS_PER_SEC]
//               [--policy NAME] [--hostile SPEC] [--faults SPEC]
//               [--validate-only]
//               [--chaos N] [--chaos-seed S] [--chaos-out DIR]
//               [--repro FILE] [--help]
//
// --help prints the full flag reference (kHelpText below); docs/CLI.md is
// generated from it and tools/check_cli_docs.py keeps the two in sync.
//
// With --sweep-seeds, the same scenario is run once per seed — fanned
// across --threads workers (default: one per hardware thread) — and a
// per-seed summary plus seed-merged percentiles are printed.
//
// --trace enables the decision-audit layer (src/trace) and writes the
// JSONL event stream to PATH after the run; "{label}" / "{index}" in PATH
// expand per run in a sweep. Render it with tools/trace_report.py.
//
// --policy selects a point in the initcwnd policy zoo (src/policy):
// "default", "static-iwN[@L]", "adaptive[-governed][@L]", "oracle[@L]".
// --hostile runs an adversarial scenario (src/cdn/hostile.h):
// "shallow-buffer[:queue=N]", "incast[:victim=P,fanin=N,...]",
// "flash-crowd[:at=S,conns=N,...]", "combined". Neither composes with
// --shards.
//
// --faults runs a declarative fault plan (src/faults) against the
// experiment: "@5 down 0-1; @10 up 0-1; @20 actuator-fail 0.3 30".
// --validate-only parses --faults/--hostile/--policy and exits 0 (all
// valid) or 1, printing the offending token and byte offset — a spec
// linter for campaign tooling.
//
// --chaos N runs the chaos-search campaign (src/chaos): N generated
// specs over fault plans x hostile scenarios x the policy zoo, each
// checked against the invariant oracles; violations are delta-debugged
// to minimal repro spec files under --chaos-out (default "."). The
// campaign is a pure function of --chaos-seed. --repro FILE replays one
// spec file and reports its violations (exit 1 when any fire).
//
// --shards N runs the sharded (PDES) engine: the topology's PoPs become
// cells synchronized by conservative time windows, mapped onto N worker
// threads. The fingerprint is shard-count-invariant, so any N gives the
// same metrics. --flow-traffic F adds fluid (flow-level) cross-traffic at
// F flows/sec per WAN link instead of simulating those packets.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <stdexcept>

#include "cdn/experiment.h"
#include "cdn/hostile.h"
#include "cdn/pops.h"
#include "chaos/engine.h"
#include "faults/fault_plan.h"
#include "faults/harness.h"
#include "policy/policy.h"
#include "runner/parallel_runner.h"
#include "runner/sweep.h"
#include "runner/task_pool.h"

using namespace riptide;

namespace {

struct Options {
  std::size_t pops = 8;
  int hosts = 1;
  double duration_s = 120;
  std::uint64_t seed = 1;
  bool riptide = true;
  unsigned threads = 0;
  std::size_t shards = 0;  // 0 = monolithic engine
  std::string policy;
  std::string hostile;
  std::string faults;
  bool validate_only = false;
  std::size_t chaos = 0;  // 0 = no campaign
  std::uint64_t chaos_seed = 1;
  std::string chaos_out = ".";
  std::string repro;
  std::vector<std::uint64_t> sweep_seeds;
  cdn::ExperimentConfig config;
};

// The complete flag reference, printed by --help. Kept in one raw string
// so tools/check_cli_docs.py can extract it straight from this source file
// and diff it against docs/CLI.md — edit a flag here and the docs-lint CI
// job fails until the doc is regenerated.
constexpr const char* kHelpText = R"HELP(riptide_sim — simulated-CDN front end for the Riptide reproduction

usage: riptide_sim [flags]

World:
  --pops N             PoPs from the global list (default 8, max 34)
  --hosts N            hosts per PoP (default 1)
  --duration S         simulated seconds (default 120)
  --seed S             root RNG seed (default 1)
  --wan-loss P         WAN random-loss probability (default 0)
  --organic POP_INDEX  PoP also generating organic back-office traffic
                       (repeatable)

Riptide agent:
  --riptide 0|1        enable/disable the agent (default 1)
  --cmax N             window clamp upper bound, segments
  --cmin N             window clamp lower bound, segments
  --alpha F            EWMA history weight in [0,1]
  --interval S         poll interval i_u, seconds
  --ttl S              route entry time-to-live, seconds
  --combiner KIND      avg | max | weighted
  --prefix-granularity aggregate destinations to /16 routes

TCP:
  --pacing             enable the token-bucket pacer on every host
  --cc NAME            host-wide congestion control: reno | cubic |
                       cubic-fast (CUBIC + HyStart + pacing) | bbr
                       (BBR-lite + pacing); default is stock cubic
  --probe-interval S   probe client launch interval, seconds

Scenarios:
  --policy NAME        initcwnd policy: default | static-iwN[@L] |
                       adaptive[-governed][@L] | oracle[@L], each with an
                       optional ,cc=NAME suffix (L = route prefix length,
                       default 32; overrides --riptide)
  --hostile SPEC       adversarial scenario: shallow-buffer | incast |
                       flash-crowd | combined, with optional :key=val,...
                       tuning (see src/cdn/hostile.h)
  --faults SPEC        declarative fault plan (src/faults), e.g.
                       "@5 down 0-1; @10 up 0-1"
  --validate-only      parse --faults/--hostile/--policy, report offending
                       token + byte offset, exit 0/1 without running

Execution:
  --threads N          sweep worker threads (default: hardware threads)
  --sweep-seeds A,B,C  run the scenario once per seed and merge percentiles
  --shards N           sharded (PDES) engine on N workers; one cell per
                       PoP, N <= PoP count; metrics identical for every N
  --flow-traffic F     fluid cross-traffic, F flows/sec per WAN link

Tracing:
  --trace PATH.jsonl   decision-audit JSONL export ({label}/{index} expand
                       per run); render with tools/trace_report.py
  --trace-ring N       trace ring capacity, events

Chaos search:
  --chaos N            N-spec campaign against the invariant oracles;
                       minimized repros land in --chaos-out
  --chaos-seed S       campaign seed (default 1)
  --chaos-out DIR      repro output directory (default ".")
  --repro FILE         replay one chaos spec, exit 1 when oracles fire

Misc:
  --help               print this reference and exit 0
)HELP";

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--pops N] [--hosts N] [--duration S] [--seed S]\n"
               "  [--riptide 0|1] [--cmax N] [--cmin N] [--alpha F]\n"
               "  [--interval S] [--ttl S] [--combiner avg|max|weighted]\n"
               "  [--prefix-granularity] [--probe-interval S]\n"
               "  [--wan-loss P] [--organic POP_INDEX] [--pacing]\n"
               "  [--cc reno|cubic|cubic-fast|bbr]\n"
               "  [--threads N] [--sweep-seeds A,B,C]\n"
               "  [--trace PATH.jsonl] [--trace-ring N]\n"
               "  [--shards N] [--flow-traffic FLOWS_PER_SEC]\n"
               "  [--policy NAME] [--hostile SPEC] [--faults SPEC]\n"
               "  [--validate-only] [--chaos N] [--chaos-seed S]\n"
               "  [--chaos-out DIR] [--repro FILE] [--help]\n"
               "\n"
               "  --policy NAME     initcwnd policy: default | static-iwN[@L]\n"
               "                    | adaptive[-governed][@L] | oracle[@L]\n"
               "                    (L = route prefix length, default 32;\n"
               "                    overrides --riptide)\n"
               "  --hostile SPEC    adversarial scenario: shallow-buffer |\n"
               "                    incast | flash-crowd | combined, with\n"
               "                    optional :key=val,... tuning (see\n"
               "                    src/cdn/hostile.h)\n"
               "  --faults SPEC     declarative fault plan (src/faults), e.g.\n"
               "                    \"@5 down 0-1; @10 up 0-1\"\n"
               "  --validate-only   parse --faults/--hostile/--policy, report\n"
               "                    offending token + byte offset, exit 0/1\n"
               "                    without running anything\n"
               "  --chaos N         run an N-spec chaos-search campaign with\n"
               "                    invariant oracles; minimized repro specs\n"
               "                    land in --chaos-out (default \".\"); the\n"
               "                    campaign is deterministic in --chaos-seed\n"
               "  --repro FILE      replay one chaos spec file and report its\n"
               "                    oracle violations (exit 1 when any fire)\n"
               "  --shards N        run the sharded (PDES) engine on N worker\n"
               "                    threads; one cell per PoP, so N must not\n"
               "                    exceed the PoP/host count. Metrics are\n"
               "                    identical for every N (fixed seed).\n"
               "  --flow-traffic F  fluid cross-traffic, F flows/sec per WAN\n"
               "                    link (flow-level FCT model; probe flows\n"
               "                    stay packet-level).\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kHelpText, stdout);
      std::exit(0);
    } else if (arg == "--pops") {
      opt.pops = static_cast<std::size_t>(std::atoi(need_value(i)));
    } else if (arg == "--hosts") {
      opt.hosts = std::atoi(need_value(i));
    } else if (arg == "--duration") {
      opt.duration_s = std::atof(need_value(i));
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (arg == "--riptide") {
      opt.riptide = std::atoi(need_value(i)) != 0;
    } else if (arg == "--cmax") {
      opt.config.riptide.c_max =
          static_cast<std::uint32_t>(std::atoi(need_value(i)));
    } else if (arg == "--cmin") {
      opt.config.riptide.c_min =
          static_cast<std::uint32_t>(std::atoi(need_value(i)));
    } else if (arg == "--alpha") {
      opt.config.riptide.alpha = std::atof(need_value(i));
    } else if (arg == "--interval") {
      opt.config.riptide.update_interval =
          sim::Time::from_seconds(std::atof(need_value(i)));
    } else if (arg == "--ttl") {
      opt.config.riptide.ttl =
          sim::Time::from_seconds(std::atof(need_value(i)));
    } else if (arg == "--combiner") {
      const std::string kind = need_value(i);
      if (kind == "avg") {
        opt.config.riptide.combiner = core::CombinerKind::kAverage;
      } else if (kind == "max") {
        opt.config.riptide.combiner = core::CombinerKind::kMax;
      } else if (kind == "weighted") {
        opt.config.riptide.combiner = core::CombinerKind::kTrafficWeighted;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--prefix-granularity") {
      opt.config.riptide.granularity = core::Granularity::kPrefix;
      opt.config.riptide.prefix_length = 16;
    } else if (arg == "--probe-interval") {
      opt.config.probe.interval =
          sim::Time::from_seconds(std::atof(need_value(i)));
    } else if (arg == "--wan-loss") {
      opt.config.topology.wan_loss_probability = std::atof(need_value(i));
    } else if (arg == "--organic") {
      opt.config.organic_source_pops.push_back(
          static_cast<std::size_t>(std::atoi(need_value(i))));
    } else if (arg == "--pacing") {
      opt.config.topology.host_tcp.pacing = true;
    } else if (arg == "--cc") {
      tcp::RouteCc cc = tcp::RouteCc::kUnset;
      if (!tcp::parse_route_cc(need_value(i), cc)) usage(argv[0]);
      tcp::apply_route_cc(cc, opt.config.topology.host_tcp);
    } else if (arg == "--trace") {
      opt.config.trace.enabled = true;
      opt.config.trace.export_path = need_value(i);
    } else if (arg == "--trace-ring") {
      opt.config.trace.ring_capacity =
          static_cast<std::size_t>(std::atoll(need_value(i)));
      if (opt.config.trace.ring_capacity == 0) usage(argv[0]);
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(std::atoi(need_value(i)));
    } else if (arg == "--shards") {
      const int n = std::atoi(need_value(i));
      if (n <= 0) usage(argv[0]);
      opt.shards = static_cast<std::size_t>(n);
    } else if (arg == "--flow-traffic") {
      const double fps = std::atof(need_value(i));
      if (fps <= 0.0) usage(argv[0]);
      opt.config.flow_traffic.enabled = true;
      opt.config.flow_traffic.model.flows_per_second = fps;
    } else if (arg == "--policy") {
      opt.policy = need_value(i);
    } else if (arg == "--hostile") {
      opt.hostile = need_value(i);
    } else if (arg == "--faults") {
      opt.faults = need_value(i);
    } else if (arg == "--validate-only") {
      opt.validate_only = true;
    } else if (arg == "--chaos") {
      const int n = std::atoi(need_value(i));
      if (n <= 0) usage(argv[0]);
      opt.chaos = static_cast<std::size_t>(n);
    } else if (arg == "--chaos-seed") {
      opt.chaos_seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (arg == "--chaos-out") {
      opt.chaos_out = need_value(i);
    } else if (arg == "--repro") {
      opt.repro = need_value(i);
    } else if (arg == "--sweep-seeds") {
      const char* p = need_value(i);
      while (*p != '\0') {
        char* end = nullptr;
        opt.sweep_seeds.push_back(std::strtoull(p, &end, 10));
        if (end == p) usage(argv[0]);
        p = (*end == ',') ? end + 1 : end;
      }
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

void print_summary(const cdn::Experiment& exp);

// --validate-only: parse every scenario spec the invocation carries and
// report each failure with its offending token and byte offset. Exit 0
// iff all given specs parse.
int validate_specs(const Options& opt) {
  int failures = 0;
  const auto check = [&](const char* flag, const std::string& text,
                         void (*parse_one)(const std::string&)) {
    if (text.empty()) return;
    try {
      parse_one(text);
      std::printf("%s: OK\n", flag);
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "%s: %s\n", flag, err.what());
      ++failures;
    }
  };
  check("--faults", opt.faults,
        [](const std::string& s) { (void)faults::FaultPlan::parse(s); });
  check("--hostile", opt.hostile,
        [](const std::string& s) { (void)cdn::parse_hostile_spec(s); });
  check("--policy", opt.policy,
        [](const std::string& s) { (void)policy::parse_policy(s); });
  return failures == 0 ? 0 : 1;
}

// --repro FILE: replay one chaos spec and report its violations.
int run_repro(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "--repro: cannot open %s\n", path.c_str());
    return 2;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  chaos::ChaosSpec spec;
  try {
    spec = chaos::ChaosSpec::parse(text);
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "--repro: %s: %s\n", path.c_str(), err.what());
    return 2;
  }
  const chaos::RunResult result = chaos::run_chaos_spec(spec);
  std::printf("repro %s: fingerprint 0x%08X, %zu violation(s)\n",
              path.c_str(), result.fingerprint, result.violations.size());
  for (const auto& v : result.violations) {
    std::printf("  violation: %s — %s\n", v.oracle.c_str(),
                v.detail.c_str());
  }
  return result.violations.empty() ? 0 : 1;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
  return (std::fclose(f) == 0) && ok;
}

// --chaos N: the randomized campaign. Prints one line per finding as it
// lands and writes the failing + minimized specs under --chaos-out.
int run_chaos_campaign(const Options& opt) {
  chaos::CampaignConfig config;
  config.seed = opt.chaos_seed;
  config.runs = opt.chaos;
  std::printf("chaos: campaign seed %llu, %zu runs -> %s\n",
              static_cast<unsigned long long>(config.seed), config.runs,
              opt.chaos_out.c_str());
  config.on_run = [](std::size_t index, const chaos::ChaosSpec& spec,
                     const chaos::RunResult& result) {
    if (result.violations.empty()) return;
    std::printf("run %zu VIOLATED %s (%zu violation(s), policy %s)\n", index,
                result.violations.front().oracle.c_str(),
                result.violations.size(),
                policy::to_string(spec.policy).c_str());
  };
  const chaos::CampaignResult result = chaos::run_campaign(config);

  for (const auto& finding : result.findings) {
    const std::string stem = opt.chaos_out + "/chaos-" +
                             std::to_string(opt.chaos_seed) + "-" +
                             std::to_string(finding.index);
    if (!write_file(stem + ".spec", finding.spec.to_string()) ||
        !write_file(stem + ".min.spec", finding.minimized.to_string())) {
      std::fprintf(stderr, "chaos: cannot write repro specs at %s\n",
                   stem.c_str());
      return 2;
    }
    std::printf("finding @%zu: %s\n", finding.index,
                finding.violations.front().oracle.c_str());
    for (const auto& v : finding.minimized_violations) {
      std::printf("  minimized violation: %s — %s\n", v.oracle.c_str(),
                  v.detail.c_str());
    }
    std::printf("  repro: %s.min.spec (%zu shrink runs)\n", stem.c_str(),
                finding.shrink_runs);
  }
  std::printf("chaos: %zu runs (%zu golden), %zu shrink runs, "
              "%zu finding(s)\n",
              result.runs, result.golden_runs, result.shrink_runs,
              result.findings.size());
  return result.findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse(argc, argv);

  if (opt.validate_only) return validate_specs(opt);
  if (!opt.repro.empty()) return run_repro(opt.repro);
  if (opt.chaos > 0) return run_chaos_campaign(opt);

  const auto& all_specs = cdn::default_pop_specs();
  if (opt.pops < 2 || opt.pops > all_specs.size()) {
    std::fprintf(stderr, "--pops must be in [2, %zu]\n", all_specs.size());
    return 2;
  }
  opt.config.pop_specs.assign(all_specs.begin(),
                              all_specs.begin() +
                                  static_cast<std::ptrdiff_t>(opt.pops));
  opt.config.topology.hosts_per_pop = opt.hosts;
  opt.config.riptide_enabled = opt.riptide;
  opt.config.duration = sim::Time::from_seconds(opt.duration_s);
  opt.config.seed = opt.seed;

  if (!opt.hostile.empty()) {
    try {
      opt.config.hostile = cdn::parse_hostile_spec(opt.hostile);
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "--hostile: %s\n", err.what());
      return 2;
    }
    if (opt.config.hostile.kind != cdn::HostileKind::kNone &&
        opt.shards > 0) {
      std::fprintf(stderr, "--hostile does not compose with --shards\n");
      return 2;
    }
    if ((opt.config.hostile.kind == cdn::HostileKind::kIncast ||
         opt.config.hostile.kind == cdn::HostileKind::kCombined) &&
        opt.config.hostile.victim_pop >= opt.pops) {
      std::fprintf(stderr, "--hostile: victim PoP %zu out of range [0, %zu)\n",
                   opt.config.hostile.victim_pop, opt.pops);
      return 2;
    }
    if (opt.config.hostile.kind == cdn::HostileKind::kShallowBuffer ||
        opt.config.hostile.kind == cdn::HostileKind::kCombined) {
      // The shallow bottleneck is a topology property, not a traffic
      // source: shrink the WAN queues before the world is built.
      opt.config.topology.wan_queue_packets =
          opt.config.hostile.queue_packets;
    }
  }

  if (!opt.faults.empty()) {
    faults::FaultPlan plan;
    try {
      plan = faults::FaultPlan::parse(opt.faults);
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "--faults: %s\n", err.what());
      return 2;
    }
    if (opt.shards > 0) {
      std::fprintf(stderr, "--faults does not compose with --shards\n");
      return 2;
    }
    faults::FaultHarness::install(opt.config, std::move(plan));
  }

  if (!opt.policy.empty()) {
    policy::PolicySpec spec;
    try {
      spec = policy::parse_policy(opt.policy);
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "--policy: %s\n", err.what());
      return 2;
    }
    if ((spec.kind == policy::PolicyKind::kStaticIw ||
         spec.kind == policy::PolicyKind::kOracle) &&
        opt.shards > 0) {
      std::fprintf(stderr, "--policy %s does not compose with --shards\n",
                   opt.policy.c_str());
      return 2;
    }
    // apply_policy owns riptide_enabled from here; --riptide is ignored.
    policy::apply_policy(opt.config, spec);
    opt.riptide = opt.config.riptide_enabled;
  }

  if (opt.shards > 0) {
    // Cells are fixed at one per PoP; worker shards only map cells onto
    // threads, so more shards than PoPs (and a fortiori than hosts) has
    // nothing to run.
    const std::size_t total_hosts =
        opt.pops * static_cast<std::size_t>(opt.hosts);
    if (opt.shards > opt.pops || opt.shards > total_hosts) {
      std::fprintf(stderr,
                   "--shards %zu exceeds the world: %zu PoPs, %zu hosts "
                   "(shards must be <= the PoP count)\n",
                   opt.shards, opt.pops, total_hosts);
      return 2;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && opt.shards > hw) {
      std::fprintf(stderr,
                   "warning: --shards %zu > %u hardware threads; workers "
                   "will time-slice (results are identical, just slower)\n",
                   opt.shards, hw);
    }
    opt.config.sharding.enabled = true;
    opt.config.sharding.shards = opt.shards;
  }

  std::vector<std::uint64_t> seeds =
      opt.sweep_seeds.empty() ? std::vector<std::uint64_t>{opt.seed}
                              : opt.sweep_seeds;

  std::printf("riptide_sim: %zu PoPs x %d hosts, %.0f s simulated, "
              "riptide=%s, %zu seed(s) on %u worker(s)",
              opt.pops, opt.hosts, opt.duration_s,
              opt.riptide ? "on" : "off", seeds.size(),
              runner::effective_threads(opt.threads, seeds.size()));
  if (opt.shards > 0) std::printf(", engine=sharded(%zu)", opt.shards);
  if (!opt.policy.empty()) std::printf(", policy=%s", opt.policy.c_str());
  if (opt.config.hostile.kind != cdn::HostileKind::kNone) {
    std::printf(", hostile=%s", cdn::to_string(opt.config.hostile.kind));
  }
  if (opt.config.flow_traffic.enabled) {
    std::printf(", flow-traffic=%.0f/s",
                opt.config.flow_traffic.model.flows_per_second);
  }
  std::printf("\n");

  const auto results = runner::ParallelRunner(opt.threads)
                           .run(runner::SweepSpec(opt.config)
                                    .seeds(seeds)
                                    .materialize());

  for (const auto& r : results) {
    const auto* sink = r.experiment->trace_sink();
    if (sink == nullptr) continue;
    std::printf("trace: %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(sink->emitted()),
                static_cast<unsigned long long>(sink->dropped()),
                r.experiment->config().trace.export_path.c_str());
  }

  if (results.size() == 1) {
    print_summary(*results.front().experiment);
    return 0;
  }

  // Seed sweep: per-seed compact rows plus seed-merged percentiles — the
  // campaign view the paper's distributional claims rest on.
  std::printf("\nper-seed 100 KB probe completion (ms):\n");
  std::printf("  %12s %10s %10s %10s %10s %9s\n", "seed", "p50", "p75",
              "p90", "n", "wall s");
  stats::Cdf merged;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto cdf = results[i].experiment->metrics().completion_cdf(
        [](const cdn::FlowRecord& f) { return f.object_bytes == 100'000; });
    merged.add_all(cdf.sorted_samples());
    std::printf("  %12llu %10.0f %10.0f %10.0f %10zu %9.2f\n",
                static_cast<unsigned long long>(seeds[i]),
                cdf.empty() ? 0.0 : cdf.percentile(50),
                cdf.empty() ? 0.0 : cdf.percentile(75),
                cdf.empty() ? 0.0 : cdf.percentile(90), cdf.count(),
                results[i].wall_seconds);
  }
  if (!merged.empty()) {
    std::printf("  %12s %10.0f %10.0f %10.0f %10zu\n", "merged",
                merged.percentile(50), merged.percentile(75),
                merged.percentile(90), merged.count());
  }
  return 0;
}

namespace {

void print_summary(const cdn::Experiment& exp) {
  std::printf("\nprobe completion times (ms), all sources:\n");
  std::printf("  %8s %10s %10s %10s %10s\n", "size", "p50", "p75", "p90",
              "n");
  for (std::uint64_t size : {10'000u, 50'000u, 100'000u}) {
    const auto cdf = exp.metrics().completion_cdf(
        [=](const cdn::FlowRecord& f) { return f.object_bytes == size; });
    if (cdf.empty()) continue;
    std::printf("  %6lluKB %10.0f %10.0f %10.0f %10zu\n",
                static_cast<unsigned long long>(size / 1000),
                cdf.percentile(50), cdf.percentile(75), cdf.percentile(90),
                cdf.count());
  }

  const auto cwnd = exp.metrics().cwnd_cdf();
  if (!cwnd.empty()) {
    std::printf("\nsampled congestion windows (segments): p25=%.0f p50=%.0f "
                "p75=%.0f p90=%.0f (n=%zu)\n",
                cwnd.percentile(25), cwnd.percentile(50),
                cwnd.percentile(75), cwnd.percentile(90), cwnd.count());
  }

  const auto& hostile = exp.config().hostile;
  if (hostile.kind != cdn::HostileKind::kNone) {
    std::uint64_t waves = 0, conns = 0, bytes = 0;
    for (const auto& src : exp.incast_sources()) {
      waves += src->waves_fired();
      conns += src->connections_opened();
      bytes += src->bytes_queued();
    }
    for (const auto& src : exp.flash_crowd_sources()) {
      waves += src->waves_fired();
      conns += src->connections_opened();
      bytes += src->bytes_queued();
    }
    std::printf("\nhostile %s: %llu waves, %llu fresh connections, "
                "%.1f MB queued\n",
                cdn::to_string(hostile.kind),
                static_cast<unsigned long long>(waves),
                static_cast<unsigned long long>(conns), bytes / 1e6);
  }

  if (!exp.agents().empty()) {
    std::uint64_t polls = 0, routes = 0, expired = 0;
    std::uint64_t scaledowns = 0, withdrawals = 0, rollbacks = 0;
    std::uint64_t sheds = 0, storms = 0;
    std::size_t entries = 0;
    for (const auto& agent : exp.agents()) {
      polls += agent->stats().polls;
      routes += agent->stats().routes_set;
      expired += agent->stats().routes_expired;
      entries += agent->table().size();
      scaledowns += agent->stats().governor_stage_scaledowns;
      withdrawals += agent->stats().governor_stage_withdrawals;
      rollbacks += agent->stats().governor_rollbacks;
      sheds += agent->stats().governor_budget_sheds;
      storms += agent->stats().governor_storm_escalations;
    }
    std::printf("\nagents: %zu, polls: %llu, routes set: %llu, expired: "
                "%llu, live table entries: %zu\n",
                exp.agents().size(), static_cast<unsigned long long>(polls),
                static_cast<unsigned long long>(routes),
                static_cast<unsigned long long>(expired), entries);
    if (scaledowns + withdrawals + rollbacks + sheds > 0) {
      std::printf("governor: %llu scale-downs, %llu selective withdrawals, "
                  "%llu rollbacks (%llu storm escalations), "
                  "%llu budget sheds\n",
                  static_cast<unsigned long long>(scaledowns),
                  static_cast<unsigned long long>(withdrawals),
                  static_cast<unsigned long long>(rollbacks),
                  static_cast<unsigned long long>(storms),
                  static_cast<unsigned long long>(sheds));
    }

    std::printf("\nlearned windows at %s:\n",
                exp.topology().host(0, 0).name().c_str());
    for (const auto& [dst, state] : exp.agents().front()->table().entries()) {
      std::printf("  %-18s -> %5.1f segments\n", dst.to_string().c_str(),
                  state.final_window_segments);
    }
  }
}

}  // namespace

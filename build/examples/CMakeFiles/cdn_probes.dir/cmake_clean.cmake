file(REMOVE_RECURSE
  "CMakeFiles/cdn_probes.dir/cdn_probes.cpp.o"
  "CMakeFiles/cdn_probes.dir/cdn_probes.cpp.o.d"
  "cdn_probes"
  "cdn_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

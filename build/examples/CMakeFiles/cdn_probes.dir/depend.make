# Empty dependencies file for cdn_probes.
# This may be replaced when dependencies are built.

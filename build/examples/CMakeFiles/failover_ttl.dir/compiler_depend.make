# Empty compiler generated dependencies file for failover_ttl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/failover_ttl.dir/failover_ttl.cpp.o"
  "CMakeFiles/failover_ttl.dir/failover_ttl.cpp.o.d"
  "failover_ttl"
  "failover_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cache_fill.dir/cache_fill.cpp.o"
  "CMakeFiles/cache_fill.dir/cache_fill.cpp.o.d"
  "cache_fill"
  "cache_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

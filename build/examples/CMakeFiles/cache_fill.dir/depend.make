# Empty dependencies file for cache_fill.
# This may be replaced when dependencies are built.

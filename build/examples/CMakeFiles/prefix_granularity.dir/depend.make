# Empty dependencies file for prefix_granularity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/prefix_granularity.dir/prefix_granularity.cpp.o"
  "CMakeFiles/prefix_granularity.dir/prefix_granularity.cpp.o.d"
  "prefix_granularity"
  "prefix_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/riptide_host.dir/host.cc.o"
  "CMakeFiles/riptide_host.dir/host.cc.o.d"
  "CMakeFiles/riptide_host.dir/routing_table.cc.o"
  "CMakeFiles/riptide_host.dir/routing_table.cc.o.d"
  "CMakeFiles/riptide_host.dir/ss_format.cc.o"
  "CMakeFiles/riptide_host.dir/ss_format.cc.o.d"
  "libriptide_host.a"
  "libriptide_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riptide_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

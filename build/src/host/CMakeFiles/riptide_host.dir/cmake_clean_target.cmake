file(REMOVE_RECURSE
  "libriptide_host.a"
)

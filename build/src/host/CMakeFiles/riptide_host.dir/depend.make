# Empty dependencies file for riptide_host.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/host.cc" "src/host/CMakeFiles/riptide_host.dir/host.cc.o" "gcc" "src/host/CMakeFiles/riptide_host.dir/host.cc.o.d"
  "/root/repo/src/host/routing_table.cc" "src/host/CMakeFiles/riptide_host.dir/routing_table.cc.o" "gcc" "src/host/CMakeFiles/riptide_host.dir/routing_table.cc.o.d"
  "/root/repo/src/host/ss_format.cc" "src/host/CMakeFiles/riptide_host.dir/ss_format.cc.o" "gcc" "src/host/CMakeFiles/riptide_host.dir/ss_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/riptide_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/riptide_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/riptide_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

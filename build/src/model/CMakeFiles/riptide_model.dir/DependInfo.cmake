
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/transfer_model.cc" "src/model/CMakeFiles/riptide_model.dir/transfer_model.cc.o" "gcc" "src/model/CMakeFiles/riptide_model.dir/transfer_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/riptide_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libriptide_model.a"
)

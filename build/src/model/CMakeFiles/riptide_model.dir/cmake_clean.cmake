file(REMOVE_RECURSE
  "CMakeFiles/riptide_model.dir/transfer_model.cc.o"
  "CMakeFiles/riptide_model.dir/transfer_model.cc.o.d"
  "libriptide_model.a"
  "libriptide_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riptide_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

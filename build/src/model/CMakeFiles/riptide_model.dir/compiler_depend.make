# Empty compiler generated dependencies file for riptide_model.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for riptide_sim.
# This may be replaced when dependencies are built.

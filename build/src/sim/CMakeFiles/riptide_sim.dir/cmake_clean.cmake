file(REMOVE_RECURSE
  "CMakeFiles/riptide_sim.dir/random.cc.o"
  "CMakeFiles/riptide_sim.dir/random.cc.o.d"
  "CMakeFiles/riptide_sim.dir/simulator.cc.o"
  "CMakeFiles/riptide_sim.dir/simulator.cc.o.d"
  "libriptide_sim.a"
  "libriptide_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riptide_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libriptide_sim.a"
)

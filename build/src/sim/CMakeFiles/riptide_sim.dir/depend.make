# Empty dependencies file for riptide_sim.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for riptide_net.
# This may be replaced when dependencies are built.

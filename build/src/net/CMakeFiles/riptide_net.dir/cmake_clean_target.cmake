file(REMOVE_RECURSE
  "libriptide_net.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/riptide_net.dir/ipv4.cc.o"
  "CMakeFiles/riptide_net.dir/ipv4.cc.o.d"
  "CMakeFiles/riptide_net.dir/link.cc.o"
  "CMakeFiles/riptide_net.dir/link.cc.o.d"
  "CMakeFiles/riptide_net.dir/router.cc.o"
  "CMakeFiles/riptide_net.dir/router.cc.o.d"
  "libriptide_net.a"
  "libriptide_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riptide_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

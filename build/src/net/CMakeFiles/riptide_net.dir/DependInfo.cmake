
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/riptide_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/riptide_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/riptide_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/riptide_net.dir/link.cc.o.d"
  "/root/repo/src/net/router.cc" "src/net/CMakeFiles/riptide_net.dir/router.cc.o" "gcc" "src/net/CMakeFiles/riptide_net.dir/router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/riptide_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

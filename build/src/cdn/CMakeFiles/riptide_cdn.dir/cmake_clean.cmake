file(REMOVE_RECURSE
  "CMakeFiles/riptide_cdn.dir/cache_fill.cc.o"
  "CMakeFiles/riptide_cdn.dir/cache_fill.cc.o.d"
  "CMakeFiles/riptide_cdn.dir/experiment.cc.o"
  "CMakeFiles/riptide_cdn.dir/experiment.cc.o.d"
  "CMakeFiles/riptide_cdn.dir/file_size_dist.cc.o"
  "CMakeFiles/riptide_cdn.dir/file_size_dist.cc.o.d"
  "CMakeFiles/riptide_cdn.dir/geo.cc.o"
  "CMakeFiles/riptide_cdn.dir/geo.cc.o.d"
  "CMakeFiles/riptide_cdn.dir/metrics.cc.o"
  "CMakeFiles/riptide_cdn.dir/metrics.cc.o.d"
  "CMakeFiles/riptide_cdn.dir/pops.cc.o"
  "CMakeFiles/riptide_cdn.dir/pops.cc.o.d"
  "CMakeFiles/riptide_cdn.dir/probe.cc.o"
  "CMakeFiles/riptide_cdn.dir/probe.cc.o.d"
  "CMakeFiles/riptide_cdn.dir/topology.cc.o"
  "CMakeFiles/riptide_cdn.dir/topology.cc.o.d"
  "CMakeFiles/riptide_cdn.dir/traffic.cc.o"
  "CMakeFiles/riptide_cdn.dir/traffic.cc.o.d"
  "CMakeFiles/riptide_cdn.dir/zipf.cc.o"
  "CMakeFiles/riptide_cdn.dir/zipf.cc.o.d"
  "libriptide_cdn.a"
  "libriptide_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riptide_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdn/cache_fill.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/cache_fill.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/cache_fill.cc.o.d"
  "/root/repo/src/cdn/experiment.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/experiment.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/experiment.cc.o.d"
  "/root/repo/src/cdn/file_size_dist.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/file_size_dist.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/file_size_dist.cc.o.d"
  "/root/repo/src/cdn/geo.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/geo.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/geo.cc.o.d"
  "/root/repo/src/cdn/metrics.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/metrics.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/metrics.cc.o.d"
  "/root/repo/src/cdn/pops.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/pops.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/pops.cc.o.d"
  "/root/repo/src/cdn/probe.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/probe.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/probe.cc.o.d"
  "/root/repo/src/cdn/topology.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/topology.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/topology.cc.o.d"
  "/root/repo/src/cdn/traffic.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/traffic.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/traffic.cc.o.d"
  "/root/repo/src/cdn/zipf.cc" "src/cdn/CMakeFiles/riptide_cdn.dir/zipf.cc.o" "gcc" "src/cdn/CMakeFiles/riptide_cdn.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/riptide_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/riptide_host.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/riptide_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/riptide_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/riptide_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/riptide_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/riptide_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

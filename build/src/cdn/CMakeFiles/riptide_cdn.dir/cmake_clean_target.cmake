file(REMOVE_RECURSE
  "libriptide_cdn.a"
)

# Empty compiler generated dependencies file for riptide_cdn.
# This may be replaced when dependencies are built.

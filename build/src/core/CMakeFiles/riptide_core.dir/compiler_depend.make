# Empty compiler generated dependencies file for riptide_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libriptide_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/riptide_core.dir/agent.cc.o"
  "CMakeFiles/riptide_core.dir/agent.cc.o.d"
  "CMakeFiles/riptide_core.dir/combiner.cc.o"
  "CMakeFiles/riptide_core.dir/combiner.cc.o.d"
  "CMakeFiles/riptide_core.dir/observed_table.cc.o"
  "CMakeFiles/riptide_core.dir/observed_table.cc.o.d"
  "CMakeFiles/riptide_core.dir/route_programmer.cc.o"
  "CMakeFiles/riptide_core.dir/route_programmer.cc.o.d"
  "libriptide_core.a"
  "libriptide_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riptide_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libriptide_stats.a"
)

# Empty dependencies file for riptide_stats.
# This may be replaced when dependencies are built.

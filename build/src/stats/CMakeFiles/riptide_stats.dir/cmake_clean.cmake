file(REMOVE_RECURSE
  "CMakeFiles/riptide_stats.dir/cdf.cc.o"
  "CMakeFiles/riptide_stats.dir/cdf.cc.o.d"
  "CMakeFiles/riptide_stats.dir/histogram.cc.o"
  "CMakeFiles/riptide_stats.dir/histogram.cc.o.d"
  "CMakeFiles/riptide_stats.dir/summary.cc.o"
  "CMakeFiles/riptide_stats.dir/summary.cc.o.d"
  "libriptide_stats.a"
  "libriptide_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riptide_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for riptide_tcp.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/congestion_control.cc" "src/tcp/CMakeFiles/riptide_tcp.dir/congestion_control.cc.o" "gcc" "src/tcp/CMakeFiles/riptide_tcp.dir/congestion_control.cc.o.d"
  "/root/repo/src/tcp/connection.cc" "src/tcp/CMakeFiles/riptide_tcp.dir/connection.cc.o" "gcc" "src/tcp/CMakeFiles/riptide_tcp.dir/connection.cc.o.d"
  "/root/repo/src/tcp/cubic.cc" "src/tcp/CMakeFiles/riptide_tcp.dir/cubic.cc.o" "gcc" "src/tcp/CMakeFiles/riptide_tcp.dir/cubic.cc.o.d"
  "/root/repo/src/tcp/receive_tracker.cc" "src/tcp/CMakeFiles/riptide_tcp.dir/receive_tracker.cc.o" "gcc" "src/tcp/CMakeFiles/riptide_tcp.dir/receive_tracker.cc.o.d"
  "/root/repo/src/tcp/reno.cc" "src/tcp/CMakeFiles/riptide_tcp.dir/reno.cc.o" "gcc" "src/tcp/CMakeFiles/riptide_tcp.dir/reno.cc.o.d"
  "/root/repo/src/tcp/rtt_estimator.cc" "src/tcp/CMakeFiles/riptide_tcp.dir/rtt_estimator.cc.o" "gcc" "src/tcp/CMakeFiles/riptide_tcp.dir/rtt_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/riptide_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/riptide_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

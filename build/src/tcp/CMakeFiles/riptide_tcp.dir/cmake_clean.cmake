file(REMOVE_RECURSE
  "CMakeFiles/riptide_tcp.dir/congestion_control.cc.o"
  "CMakeFiles/riptide_tcp.dir/congestion_control.cc.o.d"
  "CMakeFiles/riptide_tcp.dir/connection.cc.o"
  "CMakeFiles/riptide_tcp.dir/connection.cc.o.d"
  "CMakeFiles/riptide_tcp.dir/cubic.cc.o"
  "CMakeFiles/riptide_tcp.dir/cubic.cc.o.d"
  "CMakeFiles/riptide_tcp.dir/receive_tracker.cc.o"
  "CMakeFiles/riptide_tcp.dir/receive_tracker.cc.o.d"
  "CMakeFiles/riptide_tcp.dir/reno.cc.o"
  "CMakeFiles/riptide_tcp.dir/reno.cc.o.d"
  "CMakeFiles/riptide_tcp.dir/rtt_estimator.cc.o"
  "CMakeFiles/riptide_tcp.dir/rtt_estimator.cc.o.d"
  "libriptide_tcp.a"
  "libriptide_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riptide_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libriptide_tcp.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(riptide_sim_cli_smoke "/root/repo/build/tools/riptide_sim" "--pops" "3" "--duration" "20" "--seed" "3")
set_tests_properties(riptide_sim_cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(riptide_sim_cli_variants "/root/repo/build/tools/riptide_sim" "--pops" "3" "--duration" "20" "--riptide" "1" "--combiner" "max" "--prefix-granularity" "--pacing" "--cmax" "60")
set_tests_properties(riptide_sim_cli_variants PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(riptide_sim_cli_bad_flag "/root/repo/build/tools/riptide_sim" "--bogus")
set_tests_properties(riptide_sim_cli_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")

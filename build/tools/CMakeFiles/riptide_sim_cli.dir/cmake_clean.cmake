file(REMOVE_RECURSE
  "CMakeFiles/riptide_sim_cli.dir/riptide_sim.cc.o"
  "CMakeFiles/riptide_sim_cli.dir/riptide_sim.cc.o.d"
  "riptide_sim"
  "riptide_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riptide_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

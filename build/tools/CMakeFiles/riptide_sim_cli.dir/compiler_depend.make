# Empty compiler generated dependencies file for riptide_sim_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_traffic_profile.dir/bench_fig11_traffic_profile.cc.o"
  "CMakeFiles/bench_fig11_traffic_profile.dir/bench_fig11_traffic_profile.cc.o.d"
  "bench_fig11_traffic_profile"
  "bench_fig11_traffic_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_traffic_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

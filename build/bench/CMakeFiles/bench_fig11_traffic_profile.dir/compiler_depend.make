# Empty compiler generated dependencies file for bench_fig11_traffic_profile.
# This may be replaced when dependencies are built.

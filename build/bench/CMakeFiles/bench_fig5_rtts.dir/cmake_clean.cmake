file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rtts.dir/bench_fig5_rtts.cc.o"
  "CMakeFiles/bench_fig5_rtts.dir/bench_fig5_rtts.cc.o.d"
  "bench_fig5_rtts"
  "bench_fig5_rtts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rtts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

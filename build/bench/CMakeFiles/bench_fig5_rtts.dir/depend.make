# Empty dependencies file for bench_fig5_rtts.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig4_gain.
# This may be replaced when dependencies are built.

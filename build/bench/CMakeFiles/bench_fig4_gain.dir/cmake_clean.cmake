file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_gain.dir/bench_fig4_gain.cc.o"
  "CMakeFiles/bench_fig4_gain.dir/bench_fig4_gain.cc.o.d"
  "bench_fig4_gain"
  "bench_fig4_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

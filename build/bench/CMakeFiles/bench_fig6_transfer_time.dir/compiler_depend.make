# Empty compiler generated dependencies file for bench_fig6_transfer_time.
# This may be replaced when dependencies are built.

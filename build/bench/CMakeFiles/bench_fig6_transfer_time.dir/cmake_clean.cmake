file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_transfer_time.dir/bench_fig6_transfer_time.cc.o"
  "CMakeFiles/bench_fig6_transfer_time.dir/bench_fig6_transfer_time.cc.o.d"
  "bench_fig6_transfer_time"
  "bench_fig6_transfer_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_transfer_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cmax_sweep.dir/bench_fig10_cmax_sweep.cc.o"
  "CMakeFiles/bench_fig10_cmax_sweep.dir/bench_fig10_cmax_sweep.cc.o.d"
  "bench_fig10_cmax_sweep"
  "bench_fig10_cmax_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cmax_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

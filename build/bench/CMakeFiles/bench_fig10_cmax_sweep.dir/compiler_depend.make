# Empty compiler generated dependencies file for bench_fig10_cmax_sweep.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig3_rtt_cdf.
# This may be replaced when dependencies are built.

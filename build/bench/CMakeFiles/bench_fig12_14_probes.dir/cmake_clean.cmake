file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_14_probes.dir/bench_fig12_14_probes.cc.o"
  "CMakeFiles/bench_fig12_14_probes.dir/bench_fig12_14_probes.cc.o.d"
  "bench_fig12_14_probes"
  "bench_fig12_14_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_14_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig12_14_probes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_16_percentile.dir/bench_fig15_16_percentile.cc.o"
  "CMakeFiles/bench_fig15_16_percentile.dir/bench_fig15_16_percentile.cc.o.d"
  "bench_fig15_16_percentile"
  "bench_fig15_16_percentile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_16_percentile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig15_16_percentile.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig2_filesizes.
# This may be replaced when dependencies are built.

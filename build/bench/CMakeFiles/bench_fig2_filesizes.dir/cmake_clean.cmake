file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_filesizes.dir/bench_fig2_filesizes.cc.o"
  "CMakeFiles/bench_fig2_filesizes.dir/bench_fig2_filesizes.cc.o.d"
  "bench_fig2_filesizes"
  "bench_fig2_filesizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_filesizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

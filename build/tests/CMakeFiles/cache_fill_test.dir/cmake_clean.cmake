file(REMOVE_RECURSE
  "CMakeFiles/cache_fill_test.dir/cache_fill_test.cc.o"
  "CMakeFiles/cache_fill_test.dir/cache_fill_test.cc.o.d"
  "cache_fill_test"
  "cache_fill_test.pdb"
  "cache_fill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_fill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cache_fill_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tcp_unit_test.dir/tcp_unit_test.cc.o"
  "CMakeFiles/tcp_unit_test.dir/tcp_unit_test.cc.o.d"
  "tcp_unit_test"
  "tcp_unit_test.pdb"
  "tcp_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tcp_close_paths_test.
# This may be replaced when dependencies are built.

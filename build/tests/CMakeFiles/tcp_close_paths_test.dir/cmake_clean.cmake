file(REMOVE_RECURSE
  "CMakeFiles/tcp_close_paths_test.dir/tcp_close_paths_test.cc.o"
  "CMakeFiles/tcp_close_paths_test.dir/tcp_close_paths_test.cc.o.d"
  "tcp_close_paths_test"
  "tcp_close_paths_test.pdb"
  "tcp_close_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_close_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tcp_connection_test.dir/tcp_connection_test.cc.o"
  "CMakeFiles/tcp_connection_test.dir/tcp_connection_test.cc.o.d"
  "tcp_connection_test"
  "tcp_connection_test.pdb"
  "tcp_connection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

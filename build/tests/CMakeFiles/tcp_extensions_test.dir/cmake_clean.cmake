file(REMOVE_RECURSE
  "CMakeFiles/tcp_extensions_test.dir/tcp_extensions_test.cc.o"
  "CMakeFiles/tcp_extensions_test.dir/tcp_extensions_test.cc.o.d"
  "tcp_extensions_test"
  "tcp_extensions_test.pdb"
  "tcp_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

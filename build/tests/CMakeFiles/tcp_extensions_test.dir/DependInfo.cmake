
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tcp_extensions_test.cc" "tests/CMakeFiles/tcp_extensions_test.dir/tcp_extensions_test.cc.o" "gcc" "tests/CMakeFiles/tcp_extensions_test.dir/tcp_extensions_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdn/CMakeFiles/riptide_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/riptide_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/riptide_model.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/riptide_host.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/riptide_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/riptide_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/riptide_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/riptide_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cdn_test.dir/cdn_test.cc.o"
  "CMakeFiles/cdn_test.dir/cdn_test.cc.o.d"
  "cdn_test"
  "cdn_test.pdb"
  "cdn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

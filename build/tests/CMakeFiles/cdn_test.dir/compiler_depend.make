# Empty compiler generated dependencies file for cdn_test.
# This may be replaced when dependencies are built.

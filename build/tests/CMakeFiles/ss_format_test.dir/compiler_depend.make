# Empty compiler generated dependencies file for ss_format_test.
# This may be replaced when dependencies are built.

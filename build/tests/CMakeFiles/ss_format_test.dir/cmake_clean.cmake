file(REMOVE_RECURSE
  "CMakeFiles/ss_format_test.dir/ss_format_test.cc.o"
  "CMakeFiles/ss_format_test.dir/ss_format_test.cc.o.d"
  "ss_format_test"
  "ss_format_test.pdb"
  "ss_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for probe_test.
# This may be replaced when dependencies are built.

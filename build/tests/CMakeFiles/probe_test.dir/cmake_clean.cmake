file(REMOVE_RECURSE
  "CMakeFiles/probe_test.dir/probe_test.cc.o"
  "CMakeFiles/probe_test.dir/probe_test.cc.o.d"
  "probe_test"
  "probe_test.pdb"
  "probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tcp_sack_test.dir/tcp_sack_test.cc.o"
  "CMakeFiles/tcp_sack_test.dir/tcp_sack_test.cc.o.d"
  "tcp_sack_test"
  "tcp_sack_test.pdb"
  "tcp_sack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_sack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tcp_sack_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_unit_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_connection_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/cdn_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/probe_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/cache_fill_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_sack_test[1]_include.cmake")
include("/root/repo/build/tests/ss_format_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_close_paths_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")

// Whole-stack stress fuzzing: random application behaviour over lossy,
// congested paths, checking global invariants — byte conservation, no
// stuck connections, bounded state — rather than specific timings.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "core/agent.h"
#include "test_util.h"

namespace riptide {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

class StackStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackStressTest, RandomWorkloadConservesBytesAndState) {
  tcp::TcpConfig config;
  // Exercise the optional machinery too, seed-dependently.
  sim::Rng knob_rng(GetParam());
  config.sack = knob_rng.bernoulli(0.5);
  config.pacing = knob_rng.bernoulli(0.3);
  config.congestion_control = knob_rng.bernoulli(0.5)
                                  ? tcp::CcAlgorithm::kCubic
                                  : tcp::CcAlgorithm::kNewReno;

  TwoHostNet net(Time::milliseconds(25), 1e8, config, /*queue=*/64);
  sim::Rng rng(GetParam() * 7919 + 3);
  // Random loss both ways: a genuinely bad path.
  net.filter_ab.set_drop_predicate(
      [&](const net::Packet&) { return rng.bernoulli(0.01); });
  net.filter_ba.set_drop_predicate(
      [&](const net::Packet&) { return rng.bernoulli(0.01); });

  std::uint64_t server_received = 0;
  net.b.listen(80, [&](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::uint64_t n) { server_received += n; };
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });

  // Riptide in the loop, learning from the chaos.
  core::RiptideConfig agent_config;
  core::RiptideAgent agent(net.sim, net.a, agent_config);
  agent.start();

  // Random op sequence: open, send, close, abort, idle.
  struct Client {
    tcp::TcpConnection* conn = nullptr;
    std::uint64_t queued = 0;
    bool gone = false;
    bool reset = false;  // died by RST/abort (tail bytes may be lost)
  };
  std::deque<Client> clients;  // deque: stable addresses for callbacks

  for (int op = 0; op < 120; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind <= 2 || clients.empty()) {  // open
      clients.push_back(Client{});
      auto& client = clients.back();
      tcp::TcpConnection::Callbacks cbs;
      cbs.on_closed = [&client](bool reset) {
        client.gone = true;
        client.reset = client.reset || reset;
      };
      client.conn = &net.a.connect(net.b.address(), 80, std::move(cbs));
    } else {
      auto& client = clients[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(clients.size()) - 1))];
      if (client.gone || client.conn->closed()) continue;
      if (kind <= 6) {  // send
        if (!client.conn->close_requested()) {
          const auto bytes =
              static_cast<std::uint64_t>(rng.uniform_int(100, 120'000));
          client.conn->send(bytes);
          client.queued += bytes;
        }
      } else if (kind <= 8) {  // graceful close
        client.conn->close();
      } else {  // abort
        client.reset = true;
        client.conn->abort();
      }
    }
    net.sim.run_until(net.sim.now() +
                      Time::milliseconds(rng.uniform_int(10, 400)));
  }

  // Close everything and drain.
  for (auto& client : clients) {
    if (!client.gone && !client.conn->closed() &&
        !client.conn->close_requested()) {
      client.conn->close();
    }
  }
  net.sim.run_until(net.sim.now() + Time::minutes(10));

  // Invariant 1: every byte queued on a gracefully-closed connection
  // arrived exactly once; reset connections may lose their tails but
  // never duplicate.
  std::uint64_t bytes_committed = 0;  // on connections that ended cleanly
  std::uint64_t bytes_at_risk = 0;    // on reset connections
  for (const auto& client : clients) {
    (client.reset ? bytes_at_risk : bytes_committed) += client.queued;
  }
  EXPECT_GE(server_received, bytes_committed)
      << "lost bytes on gracefully-closed connections";
  EXPECT_LE(server_received, bytes_committed + bytes_at_risk)
      << "duplicate delivery";

  // Invariant 2: no connection state leaks once everything closed.
  EXPECT_EQ(net.a.connection_count(), 0u);
  EXPECT_EQ(net.b.connection_count(), 0u);

  // Invariant 3: the agent survived and never programmed out of bounds.
  for (const auto& [dst, state] : agent.table().entries()) {
    EXPECT_GE(state.final_window_segments, 10.0);
    EXPECT_LE(state.final_window_segments, 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackStressTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace riptide

// Close-path edge cases: simultaneous close, FIN loss, passive close,
// close-before-established, and abort timing.

#include <gtest/gtest.h>

#include "test_util.h"

namespace riptide::tcp {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

struct Pair {
  // `auto_close_server`: the passive side closes its half when it sees the
  // peer's FIN (the normal server behaviour); disable to test half-close.
  explicit Pair(TwoHostNet& net, bool auto_close_server = true) {
    net.b.listen(80, [this, auto_close_server](TcpConnection& conn) {
      server = &conn;
      TcpConnection::Callbacks cbs;
      cbs.on_closed = [this](bool r) {
        server_closed = true;
        server_reset = r;
      };
      cbs.on_peer_closed = [this, auto_close_server] {
        server_saw_fin = true;
        if (auto_close_server) server->close();
      };
      cbs.on_data = [this](std::uint64_t bytes) {
        server_received += bytes;
      };
      conn.set_callbacks(std::move(cbs));
    });
    TcpConnection::Callbacks cbs;
    cbs.on_closed = [this](bool r) {
      client_closed = true;
      client_reset = r;
    };
    cbs.on_peer_closed = [this] { client_saw_fin = true; };
    client = &net.a.connect(net.b.address(), 80, std::move(cbs));
  }

  TcpConnection* client = nullptr;
  TcpConnection* server = nullptr;
  bool client_closed = false, server_closed = false;
  bool client_reset = false, server_reset = false;
  bool client_saw_fin = false, server_saw_fin = false;
  // Accumulated via on_data: the connection objects are destroyed once
  // teardown completes, so post-run assertions must not touch them.
  std::uint64_t server_received = 0;
};

TEST(ClosePathsTest, SimultaneousCloseBothReachClosed) {
  TwoHostNet net(Time::milliseconds(30));
  Pair pair(net);
  net.sim.run_until(Time::milliseconds(200));
  ASSERT_TRUE(pair.client->established());
  ASSERT_TRUE(pair.server->established());

  // Both ends close in the same instant: FINs cross in flight.
  pair.client->close();
  pair.server->close();
  net.sim.run_until(Time::seconds(20));

  EXPECT_TRUE(pair.client_closed);
  EXPECT_TRUE(pair.server_closed);
  EXPECT_FALSE(pair.client_reset);
  EXPECT_FALSE(pair.server_reset);
  EXPECT_EQ(net.a.connection_count(), 0u);
  EXPECT_EQ(net.b.connection_count(), 0u);
}

TEST(ClosePathsTest, LostFinIsRetransmitted) {
  TwoHostNet net(Time::milliseconds(30));
  Pair pair(net);
  net.sim.run_until(Time::milliseconds(200));

  // Drop the first FIN from the client.
  int fins_dropped = 0;
  net.filter_ab.set_drop_predicate([&](const net::Packet& p) {
    const auto* seg = dynamic_cast<const Segment*>(p.payload.get());
    if (seg != nullptr && seg->fin && fins_dropped < 1) {
      ++fins_dropped;
      return true;
    }
    return false;
  });
  pair.client->close();
  net.sim.run_until(Time::seconds(30));
  EXPECT_EQ(fins_dropped, 1);
  EXPECT_TRUE(pair.server_saw_fin);
  EXPECT_TRUE(pair.client_closed);
  EXPECT_EQ(net.a.connection_count(), 0u);
}

TEST(ClosePathsTest, ServerInitiatedClose) {
  TwoHostNet net(Time::milliseconds(30));
  Pair pair(net);
  net.sim.run_until(Time::milliseconds(200));

  pair.server->close();
  net.sim.run_until(net.sim.now() + Time::milliseconds(200));
  EXPECT_TRUE(pair.client_saw_fin);
  EXPECT_EQ(pair.client->state(), TcpState::kCloseWait);
  // Client can still send in CLOSE-WAIT (half-close semantics) ...
  pair.client->send(5'000);
  net.sim.run_until(net.sim.now() + Time::milliseconds(500));
  EXPECT_EQ(pair.server->bytes_received(), 5'000u);
  // ... and completes the close from its side.
  pair.client->close();
  net.sim.run_until(net.sim.now() + Time::seconds(20));
  EXPECT_TRUE(pair.client_closed);
  EXPECT_TRUE(pair.server_closed);
  EXPECT_EQ(net.a.connection_count(), 0u);
  EXPECT_EQ(net.b.connection_count(), 0u);
}

TEST(ClosePathsTest, CloseRequestedBeforeEstablishedStillHandshakes) {
  TwoHostNet net(Time::milliseconds(50));
  Pair pair(net);
  pair.client->send(10'000);
  pair.client->close();  // still in SYN-SENT
  EXPECT_TRUE(pair.client->close_requested());
  net.sim.run_until(Time::seconds(20));
  // Handshake completes, queued data drains, FIN follows, all tears down.
  EXPECT_EQ(pair.server_received, 10'000u);
  EXPECT_TRUE(pair.client_closed);
  EXPECT_FALSE(pair.client_reset);
  EXPECT_EQ(net.a.connection_count(), 0u);
}

TEST(ClosePathsTest, DoubleCloseIsIdempotent) {
  TwoHostNet net(Time::milliseconds(10));
  Pair pair(net);
  net.sim.run_until(Time::milliseconds(100));
  pair.client->close();
  pair.client->close();  // no-op
  net.sim.run_until(Time::seconds(10));
  EXPECT_TRUE(pair.client_closed);
  EXPECT_EQ(net.a.connection_count(), 0u);
}

TEST(ClosePathsTest, AbortAfterCloseStillTearsDownPeer) {
  TwoHostNet net(Time::milliseconds(30));
  Pair pair(net);
  net.sim.run_until(Time::milliseconds(200));
  pair.client->send(50'000);
  pair.client->close();   // FIN pending behind 50 KB
  pair.client->abort();   // impatient app gives up: RST
  net.sim.run_until(Time::seconds(5));
  EXPECT_TRUE(pair.client_closed);
  EXPECT_TRUE(pair.client_reset);
  EXPECT_TRUE(pair.server_closed);
  EXPECT_TRUE(pair.server_reset);
  EXPECT_EQ(net.b.connection_count(), 0u);
}

TEST(ClosePathsTest, DataArrivingAfterOurFinStillDelivered) {
  TwoHostNet net(Time::milliseconds(30));
  Pair pair(net, /*auto_close_server=*/false);
  net.sim.run_until(Time::milliseconds(200));

  std::uint64_t client_received = 0;
  TcpConnection::Callbacks cbs;
  cbs.on_data = [&](std::uint64_t n) { client_received += n; };
  cbs.on_closed = [&](bool) {};
  pair.client->set_callbacks(std::move(cbs));

  pair.client->close();  // half-close: we're done sending, not receiving
  net.sim.run_until(net.sim.now() + Time::milliseconds(100));
  pair.server->send(20'000);  // server keeps talking into FIN-WAIT-2
  net.sim.run_until(net.sim.now() + Time::seconds(5));
  EXPECT_EQ(client_received, 20'000u);
}

}  // namespace
}  // namespace riptide::tcp

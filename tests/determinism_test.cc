// Golden-determinism regression tests: a fixed-seed knobs-off experiment
// must keep producing bit-identical metrics as the hot path is rebuilt
// under it (segment pooling, callback dispatch, observation batching).
// Three layers of pinning:
//
//   1. a golden CRC-32 captured from the pre-refactor build — catches any
//      behavioral drift the refactors introduce, across PRs;
//   2. run-twice-in-process equality — catches state leaking between runs
//      (a shared pool or thread-local counter bleeding into behavior);
//   3. ParallelRunner --threads 1 vs 2 equality — catches cross-thread
//      interference now that per-run state includes thread-local slabs.
//
// Every metric field is serialized exactly (integers raw, doubles with
// %.17g round-trip precision) so the fingerprint has no tolerance to hide
// drift in.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "persist/crc32.h"
#include "runner/parallel_runner.h"

namespace riptide::cdn {
namespace {

using sim::Time;

// CRC-32 of serialize_metrics() for golden_config() on the pre-refactor
// (shared_ptr segment) build. The pooled build must reproduce it exactly.
constexpr std::uint32_t kGoldenCrc = 0x1B61F592;

// Compact 4-PoP closed-loop world, WAN loss *on* so the RNG-coupled paths
// (random loss -> SACK -> retransmission) are part of the fingerprint.
ExperimentConfig golden_config(std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.pop_specs = {{"lon", Continent::kEurope, {51.51, -0.13}},
                      {"fra", Continent::kEurope, {50.11, 8.68}},
                      {"nyc", Continent::kNorthAmerica, {40.71, -74.01}},
                      {"tyo", Continent::kAsia, {35.68, 139.69}}};
  config.topology.hosts_per_pop = 1;
  config.topology.wan_loss_probability = 2e-4;
  config.topology.seed = seed;
  config.riptide_enabled = true;
  config.riptide.update_interval = Time::seconds(1);
  config.riptide.c_max = 100;
  config.probe.interval = Time::seconds(5);
  config.probe.idle_close = Time::seconds(10);
  config.duration = Time::seconds(60);
  config.cwnd_sample_interval = Time::seconds(10);
  config.seed = seed;
  return config;
}

// Every observable output of a run, bit-exactly. Field order is part of
// the format; extend only by appending (and recapturing the golden).
std::string serialize_metrics(const Experiment& exp) {
  std::string out;
  out.reserve(1 << 16);
  char line[256];
  for (const auto& f : exp.metrics().flows()) {
    std::snprintf(line, sizeof line,
                  "F,%d,%d,%" PRIu64 ",%" PRId64 ",%" PRId64 ",%d,%.17g\n",
                  f.src_pop, f.dst_pop, f.object_bytes, f.started.ns(),
                  f.duration.ns(), f.fresh ? 1 : 0, f.base_rtt_ms);
    out += line;
  }
  for (const auto& s : exp.metrics().cwnd_samples()) {
    std::snprintf(line, sizeof line, "W,%d,%u,%" PRId64 "\n", s.pop,
                  s.cwnd_segments, s.at.ns());
    out += line;
  }
  for (const auto& agent : exp.agents()) {
    const auto& st = agent->stats();
    std::snprintf(line, sizeof line,
                  "A,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                  st.polls, st.connections_observed, st.routes_set,
                  st.routes_expired);
    out += line;
  }
  // Deliberately NOT fingerprinted: simulator().events_executed(). The
  // event count is harness bookkeeping, not simulation output — lazy
  // timers and the link completion ring change how many events run while
  // producing the same simulated behavior, and pinning it would veto
  // exactly the optimizations this suite exists to keep honest.
  std::snprintf(line, sizeof line, "S,%" PRId64 "\n",
                exp.simulator().now().ns());
  out += line;
  return out;
}

std::uint32_t run_fingerprint(const ExperimentConfig& config) {
  Experiment exp(config);
  exp.run();
  return persist::crc32(serialize_metrics(exp));
}

TEST(GoldenDeterminismTest, MatchesPrePoolCapture) {
  const std::uint32_t crc = run_fingerprint(golden_config());
  EXPECT_EQ(crc, kGoldenCrc)
      << "metrics fingerprint changed: 0x" << std::hex << crc
      << " (expected 0x" << kGoldenCrc
      << "). A hot-path change altered simulation behavior; if the change "
         "is intentional, recapture the golden.";
}

TEST(GoldenDeterminismTest, RunTwiceIdentical) {
  EXPECT_EQ(run_fingerprint(golden_config()), run_fingerprint(golden_config()));
}

TEST(GoldenDeterminismTest, SeedChangesFingerprint) {
  // Sanity: the fingerprint actually depends on behavior, not just shape.
  EXPECT_NE(run_fingerprint(golden_config(42)),
            run_fingerprint(golden_config(43)));
}

// -- Sharded execution (PDES) fingerprints --
//
// The sharded engine is a different event interleaving from the monolithic
// loop (per-cell clocks, mailbox delivery), so its fingerprint is NOT the
// monolithic golden. What it must be is *worker-count-invariant*: the cell
// decomposition is fixed by the topology, and --shards only maps cells
// onto threads, so shards=1, 2, and 4 must agree bit-exactly — the hard
// invariant of the sharded-simulation PR.

ExperimentConfig sharded_config(std::size_t shards, std::uint64_t seed = 42,
                                bool tracing = false) {
  ExperimentConfig config = golden_config(seed);
  config.sharding.enabled = true;
  config.sharding.shards = shards;
  config.trace.enabled = tracing;
  return config;
}

TEST(ShardedDeterminismTest, ShardCountInvariant) {
  const std::uint32_t one = run_fingerprint(sharded_config(1));
  const std::uint32_t two = run_fingerprint(sharded_config(2));
  const std::uint32_t four = run_fingerprint(sharded_config(4));
  EXPECT_EQ(one, two) << "shards=2 diverged from shards=1";
  EXPECT_EQ(one, four) << "shards=4 diverged from shards=1";
}

TEST(ShardedDeterminismTest, RunTwiceIdentical) {
  EXPECT_EQ(run_fingerprint(sharded_config(2)),
            run_fingerprint(sharded_config(2)));
}

TEST(ShardedDeterminismTest, TracingDoesNotPerturb) {
  // Decision-audit tracing is pure observation; per-cell sinks must not
  // change behavior under any worker count.
  const std::uint32_t off = run_fingerprint(sharded_config(1, 42, false));
  EXPECT_EQ(off, run_fingerprint(sharded_config(1, 42, true)));
  EXPECT_EQ(off, run_fingerprint(sharded_config(4, 42, true)));
}

TEST(ShardedDeterminismTest, SeedChangesFingerprint) {
  EXPECT_NE(run_fingerprint(sharded_config(2, 42)),
            run_fingerprint(sharded_config(2, 43)));
}

TEST(ShardedDeterminismTest, HybridCrossTrafficShardCountInvariant) {
  // Flow-level cross-traffic rides each WAN link's source cell, so the
  // hybrid fingerprint must be worker-count-invariant too.
  auto hybrid = [](std::size_t shards) {
    ExperimentConfig config = sharded_config(shards);
    config.flow_traffic.enabled = true;
    config.flow_traffic.model.flows_per_second = 50.0;
    return run_fingerprint(config);
  };
  const std::uint32_t one = hybrid(1);
  EXPECT_EQ(one, hybrid(2));
  EXPECT_EQ(one, hybrid(4));
}

TEST(ShardedDeterminismTest, HybridLoadPerturbsProbes) {
  // Sanity that the fluid aggregate actually couples into the packet
  // world: turning it on must change the probe metrics.
  ExperimentConfig with = sharded_config(2);
  with.flow_traffic.enabled = true;
  with.flow_traffic.model.flows_per_second = 200.0;
  EXPECT_NE(run_fingerprint(sharded_config(2)), run_fingerprint(with));
}

TEST(GoldenDeterminismTest, ParallelRunnerThreadCountInvariant) {
  std::vector<std::uint32_t> fingerprints;
  for (unsigned threads : {1u, 2u}) {
    runner::ParallelRunner runner(threads);
    std::vector<runner::RunSpec> specs;
    specs.push_back({"a", golden_config(42), nullptr});
    specs.push_back({"b", golden_config(43), nullptr});
    auto results = runner.run(std::move(specs));
    ASSERT_EQ(results.size(), 2u);
    std::uint32_t crc = 0;
    for (const auto& r : results) {
      crc = persist::crc32(serialize_metrics(*r.experiment), crc);
    }
    fingerprints.push_back(crc);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

}  // namespace
}  // namespace riptide::cdn

#include <gtest/gtest.h>

#include <map>

#include "core/agent.h"
#include "core/combiner.h"
#include "core/config.h"
#include "core/observed_table.h"
#include "core/route_programmer.h"
#include "test_util.h"

namespace riptide::core {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

// --------------------------------------------------------------- Combiner

TEST(CombinerTest, AverageIsMean) {
  AverageCombiner c;
  EXPECT_DOUBLE_EQ(c.combine({{10, 0}, {20, 0}, {30, 0}}), 20.0);
}

TEST(CombinerTest, AverageSingleObservation) {
  AverageCombiner c;
  EXPECT_DOUBLE_EQ(c.combine({{42, 0}}), 42.0);
}

TEST(CombinerTest, MaxPicksLargest) {
  MaxCombiner c;
  EXPECT_DOUBLE_EQ(c.combine({{10, 0}, {90, 0}, {30, 0}}), 90.0);
}

TEST(CombinerTest, TrafficWeightedFavorsBusyConnections) {
  TrafficWeightedCombiner c;
  // A barely used connection at window 100 vs a busy one at window 20.
  const double v = c.combine({{100, 0}, {20, 1'000'000}});
  EXPECT_LT(v, 25.0);
  EXPECT_GT(v, 19.0);
}

TEST(CombinerTest, TrafficWeightedEqualTrafficIsMean) {
  TrafficWeightedCombiner c;
  EXPECT_NEAR(c.combine({{10, 5000}, {30, 5000}}), 20.0, 0.01);
}

TEST(CombinerTest, EmptyObservationsThrow) {
  EXPECT_THROW(AverageCombiner{}.combine({}), std::invalid_argument);
  EXPECT_THROW(MaxCombiner{}.combine({}), std::invalid_argument);
  EXPECT_THROW(TrafficWeightedCombiner{}.combine({}), std::invalid_argument);
}

TEST(CombinerTest, FactoryProducesRequestedKind) {
  EXPECT_STREQ(make_combiner(CombinerKind::kAverage)->name(), "average");
  EXPECT_STREQ(make_combiner(CombinerKind::kMax)->name(), "max");
  EXPECT_STREQ(make_combiner(CombinerKind::kTrafficWeighted)->name(),
               "traffic-weighted");
}

// ----------------------------------------------------------- ObservedTable

TEST(ObservedTableTest, FirstFoldSeedsWithObservation) {
  ObservedTable table;
  const auto dst = net::Prefix::parse("10.1.0.0/16");
  EXPECT_DOUBLE_EQ(table.fold(dst, 40.0, 0.5, Time::seconds(1)), 40.0);
  EXPECT_TRUE(table.contains(dst));
}

TEST(ObservedTableTest, FoldAppliesEwma) {
  ObservedTable table;
  const auto dst = net::Prefix::parse("10.1.0.0/16");
  table.fold(dst, 40.0, 0.5, Time::seconds(1));
  table.store_final(dst, 40.0, Time::seconds(1));
  // 0.5 * 40 + 0.5 * 80 = 60
  EXPECT_DOUBLE_EQ(table.fold(dst, 80.0, 0.5, Time::seconds(2)), 60.0);
}

TEST(ObservedTableTest, FoldUsesStoredFinalAsHistory) {
  ObservedTable table;
  const auto dst = net::Prefix::parse("10.1.0.0/16");
  table.fold(dst, 500.0, 0.5, Time::seconds(1));
  table.store_final(dst, 100.0, Time::seconds(1));  // clamped by caller
  // History is the clamped 100, not the raw 500.
  EXPECT_DOUBLE_EQ(table.fold(dst, 100.0, 0.5, Time::seconds(2)), 100.0);
}

TEST(ObservedTableTest, ExpireRemovesOnlyStaleEntries) {
  ObservedTable table;
  const auto old_dst = net::Prefix::parse("10.1.0.0/16");
  const auto fresh_dst = net::Prefix::parse("10.2.0.0/16");
  table.store_final(old_dst, 50.0, Time::seconds(0));
  table.store_final(fresh_dst, 50.0, Time::seconds(95));
  const auto expired = table.expire(Time::seconds(100), Time::seconds(90));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], old_dst);
  EXPECT_FALSE(table.contains(old_dst));
  EXPECT_TRUE(table.contains(fresh_dst));
}

TEST(ObservedTableTest, EntryExactlyAtTtlSurvives) {
  ObservedTable table;
  const auto dst = net::Prefix::parse("10.1.0.0/16");
  table.store_final(dst, 50.0, Time::seconds(10));
  EXPECT_TRUE(table.expire(Time::seconds(100), Time::seconds(90)).empty());
  EXPECT_TRUE(table.contains(dst));
}

TEST(ObservedTableTest, UpdateCountsTracked) {
  ObservedTable table;
  const auto dst = net::Prefix::parse("10.1.0.0/16");
  table.fold(dst, 10.0, 0.5, Time::seconds(1));
  table.fold(dst, 10.0, 0.5, Time::seconds(2));
  EXPECT_EQ(table.find(dst)->updates, 2u);
  EXPECT_EQ(table.find(net::Prefix::parse("10.9.0.0/16")), nullptr);
}

// --------------------------------------------------------- RouteProgrammer

class RecordingProgrammer : public RouteProgrammer {
 public:
  void set_initial_windows(const net::Prefix& dst, std::uint32_t initcwnd,
                           std::uint32_t initrwnd,
                           tcp::RouteCc = tcp::RouteCc::kUnset) override {
    programmed[dst] = {initcwnd, initrwnd};
  }
  void clear(const net::Prefix& dst) override {
    programmed.erase(dst);
    ++clears;
  }
  std::map<net::Prefix, std::pair<std::uint32_t, std::uint32_t>> programmed;
  int clears = 0;
};

TEST(HostRouteProgrammerTest, ProgramsAndClearsHostRoutes) {
  TwoHostNet net(Time::milliseconds(10));
  HostRouteProgrammer programmer(net.a);
  const auto dst = net::Prefix::host(net.b.address());
  programmer.set_initial_windows(dst, 77, 100);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            77u);
  EXPECT_EQ(programmer.routes_programmed(), 1u);

  programmer.clear(dst);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
  EXPECT_EQ(programmer.routes_cleared(), 1u);
}

TEST(HostRouteProgrammerTest, RefusesDefaultRoute) {
  TwoHostNet net(Time::milliseconds(10));
  HostRouteProgrammer programmer(net.a);
  EXPECT_THROW(programmer.set_initial_windows(
                   net::Prefix(net::Ipv4Address(0), 0), 50, 0),
               std::invalid_argument);
}

TEST(HostRouteProgrammerTest, PreservesEgressDevice) {
  TwoHostNet net(Time::milliseconds(10));
  HostRouteProgrammer programmer(net.a);
  const auto* before = net.a.routing_table().lookup(net.b.address())->device;
  programmer.set_initial_windows(net::Prefix::host(net.b.address()), 50, 60);
  EXPECT_EQ(net.a.routing_table().lookup(net.b.address())->device, before);
}

TEST(HostRouteProgrammerTest, ProgramReprogramClearRoundTrip) {
  TwoHostNet net(Time::milliseconds(10));
  HostRouteProgrammer programmer(net.a);
  const auto dst = net::Prefix::host(net.b.address());
  const auto* egress = net.a.routing_table().lookup(net.b.address())->device;

  programmer.set_initial_windows(dst, 50, 60);
  // Reprogramming resolves the egress from the *underlying* route, not
  // from the Riptide route being replaced — the device must survive the
  // round trip unchanged.
  programmer.set_initial_windows(dst, 70, 80);
  EXPECT_EQ(net.a.routing_table().lookup(net.b.address())->device, egress);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            70u);
  EXPECT_EQ(programmer.routes_programmed(), 2u);

  programmer.clear(dst);
  EXPECT_EQ(net.a.routing_table().lookup(net.b.address())->device, egress);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);  // back to the system default
  EXPECT_FALSE(net.a.routing_table().has_route(dst));
}

TEST(HostRouteProgrammerTest, ClearOnWithdrawnRouteIsNoOp) {
  TwoHostNet net(Time::milliseconds(10));
  HostRouteProgrammer programmer(net.a);
  const auto dst = net::Prefix::host(net.b.address());

  programmer.clear(dst);  // nothing installed yet
  EXPECT_EQ(programmer.routes_cleared(), 0u);

  programmer.set_initial_windows(dst, 50, 0);
  programmer.clear(dst);
  programmer.clear(dst);  // double clear: second is a no-op
  EXPECT_EQ(programmer.routes_cleared(), 1u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
}

// ------------------------------------------------------------ RiptideAgent

// Establishes a data-carrying connection a -> b and returns once cwnd on
// the sender (a) has grown past the initial window.
void push_data(TwoHostNet& net, std::uint64_t bytes) {
  net.b.listen(9900, [](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    conn.set_callbacks(std::move(cbs));
  });
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 9900, std::move(cbs));
  net.sim.run_until(net.sim.now() + Time::milliseconds(100));
  conn.send(bytes);
  net.sim.run_until(net.sim.now() + Time::seconds(5));
}

RiptideConfig test_config() {
  RiptideConfig config;
  config.alpha = 0.0;  // no history: deterministic single-poll assertions
  config.c_max = 100;
  config.c_min = 10;
  return config;
}

TEST(RiptideAgentTest, LearnsWindowAndProgramsRoute) {
  TwoHostNet net(Time::milliseconds(20));
  RiptideAgent agent(net.sim, net.a, test_config());
  push_data(net, 500'000);  // grows a's cwnd well past 10

  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const auto* learned = agent.learned(key);
  ASSERT_NE(learned, nullptr);
  EXPECT_GT(learned->final_window_segments, 10.0);
  EXPECT_GT(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
  EXPECT_EQ(agent.stats().routes_set, 1u);
}

TEST(RiptideAgentTest, ClampsToCmax) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.c_max = 30;
  RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 2'000'000);

  agent.poll_once();
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            30u);
}

TEST(RiptideAgentTest, ClampsToCmin) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.c_min = 10;
  RiptideAgent agent(net.sim, net.a, config);
  // A connection that only ever carried a handful of bytes keeps cwnd 10,
  // but force c_min higher to observe the floor.
  config.c_min = 25;
  RiptideAgent floored(net.sim, net.a, config);
  push_data(net, 1'000);

  floored.poll_once();
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            25u);
}

TEST(RiptideAgentTest, SetsInitrwndToCoverCmax) {
  TwoHostNet net(Time::milliseconds(20));
  RiptideAgent agent(net.sim, net.a, test_config());
  push_data(net, 100'000);
  agent.poll_once();
  EXPECT_EQ(net.a.routing_table().effective_initrwnd(net.b.address(), 20),
            100u);  // == c_max
}

TEST(RiptideAgentTest, InitrwndDisabled) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.set_initrwnd = false;
  RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 100'000);
  agent.poll_once();
  EXPECT_EQ(net.a.routing_table().effective_initrwnd(net.b.address(), 20),
            20u);
}

TEST(RiptideAgentTest, EwmaSmoothsAcrossPolls) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.alpha = 0.5;
  RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);

  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const double first = agent.learned(key)->final_window_segments;

  // Second poll sees the same (now idle) window; EWMA stays put.
  agent.poll_once();
  const double second = agent.learned(key)->final_window_segments;
  EXPECT_NEAR(second, first, 1.0);
}

TEST(RiptideAgentTest, TtlExpiryRemovesRoute) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.ttl = Time::seconds(30);
  RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  ASSERT_GT(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);

  // Close the connection, advance past the TTL, poll again: the entry and
  // route must be withdrawn, restoring the default IW10.
  for (const auto& info : net.a.socket_stats()) {
    net.a.find_connection(info.tuple)->abort();
  }
  net.sim.run_until(net.sim.now() + Time::seconds(31));
  agent.poll_once();
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
  EXPECT_EQ(agent.stats().routes_expired, 1u);
}

TEST(RiptideAgentTest, ChurnWithdrawsExactlyOncePerExpiry) {
  // Snapshot source the test scripts directly, so learn/expire cycles can
  // be driven without real connections.
  class ScriptedSource : public SocketStatsSource {
   public:
    std::vector<host::SocketInfo> next;
    std::vector<host::SocketInfo> poll() override { return next; }
  };

  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.ttl = Time::seconds(30);
  auto recording = std::make_unique<RecordingProgrammer>();
  auto* programmer = recording.get();
  auto scripted = std::make_unique<ScriptedSource>();
  auto* source = scripted.get();
  RiptideAgent agent(net.sim, net.a, config, std::move(recording),
                     std::move(scripted));

  host::SocketInfo info;
  info.tuple.local_addr = net.a.address();
  info.tuple.local_port = 40000;
  info.tuple.remote_addr = net.b.address();
  info.tuple.remote_port = 9900;
  info.state = tcp::TcpState::kEstablished;
  info.cwnd_segments = 40;
  info.bytes_acked = 100'000;

  // Two learn -> idle -> expire cycles. Each expiry must withdraw the
  // route exactly once: the entry leaves the table with the withdrawal,
  // so subsequent idle polls have nothing left to clear.
  for (int cycle = 1; cycle <= 2; ++cycle) {
    source->next = {info};
    agent.poll_once();
    ASSERT_EQ(agent.table().size(), 1u);
    source->next.clear();
    net.sim.run_until(net.sim.now() + Time::seconds(31));
    agent.poll_once();  // past TTL: expires and withdraws
    agent.poll_once();  // extra idle poll: nothing left to withdraw
    EXPECT_EQ(agent.table().size(), 0u);
    EXPECT_EQ(agent.stats().routes_expired, static_cast<std::uint64_t>(cycle));
    EXPECT_EQ(programmer->clears, cycle);
  }
}

TEST(RiptideAgentTest, PrefixGranularityAggregatesHosts) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.granularity = Granularity::kPrefix;
  config.prefix_length = 24;
  RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 200'000);
  agent.poll_once();

  const auto key = net::Prefix(net.b.address(), 24);
  EXPECT_NE(agent.learned(key), nullptr);
  // Any host within the /24 now resolves to the learned window.
  EXPECT_GT(net.a.routing_table().effective_initcwnd(
                net::Ipv4Address(10, 0, 0, 200), 10),
            10u);
}

TEST(RiptideAgentTest, DestinationKeyRespectsGranularity) {
  TwoHostNet net(Time::milliseconds(20));
  auto host_cfg = test_config();
  RiptideAgent host_agent(net.sim, net.a, host_cfg);
  EXPECT_EQ(host_agent.destination_key(net::Ipv4Address(10, 3, 2, 1)),
            net::Prefix::host(net::Ipv4Address(10, 3, 2, 1)));

  auto prefix_cfg = test_config();
  prefix_cfg.granularity = Granularity::kPrefix;
  prefix_cfg.prefix_length = 16;
  RiptideAgent prefix_agent(net.sim, net.a, prefix_cfg);
  EXPECT_EQ(prefix_agent.destination_key(net::Ipv4Address(10, 3, 2, 1)),
            net::Prefix::parse("10.3.0.0/16"));
}

TEST(RiptideAgentTest, MinSamplesGate) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.min_samples = 2;  // one connection is not enough
  RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 200'000);
  agent.poll_once();
  EXPECT_EQ(agent.table().size(), 0u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
}

TEST(RiptideAgentTest, IgnoresNonEstablishedConnections) {
  TwoHostNet net(Time::milliseconds(20));
  // SYN to a filtered path: connection stays in SYN-SENT.
  net.filter_ab.set_drop_predicate([](const net::Packet&) { return true; });
  tcp::TcpConnection::Callbacks cbs;
  net.a.connect(net.b.address(), 80, std::move(cbs));
  RiptideAgent agent(net.sim, net.a, test_config());
  agent.poll_once();
  EXPECT_EQ(agent.table().size(), 0u);
}

TEST(RiptideAgentTest, PeriodicPollingViaStart) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.update_interval = Time::seconds(1);
  RiptideAgent agent(net.sim, net.a, config);
  agent.start();
  EXPECT_TRUE(agent.running());
  push_data(net, 200'000);  // runs the sim ~5 s: several polls happen
  EXPECT_GE(agent.stats().polls, 4u);
  agent.stop();
  const auto polls = agent.stats().polls;
  net.sim.run_until(net.sim.now() + Time::seconds(5));
  EXPECT_EQ(agent.stats().polls, polls);
}

TEST(RiptideAgentTest, CustomProgrammerReceivesDecisions) {
  TwoHostNet net(Time::milliseconds(20));
  auto programmer = std::make_unique<RecordingProgrammer>();
  auto* raw = programmer.get();
  RiptideAgent agent(net.sim, net.a, test_config(), std::move(programmer));
  push_data(net, 500'000);
  agent.poll_once();
  ASSERT_EQ(raw->programmed.size(), 1u);
  const auto& [initcwnd, initrwnd] =
      raw->programmed.at(net::Prefix::host(net.b.address()));
  EXPECT_GT(initcwnd, 10u);
  EXPECT_EQ(initrwnd, 100u);
}

TEST(RiptideAgentTest, RejectsInvalidConfig) {
  TwoHostNet net(Time::milliseconds(20));
  auto bad_alpha = test_config();
  bad_alpha.alpha = 1.5;
  EXPECT_THROW(RiptideAgent(net.sim, net.a, bad_alpha),
               std::invalid_argument);

  auto bad_clamp = test_config();
  bad_clamp.c_min = 200;
  bad_clamp.c_max = 100;
  EXPECT_THROW(RiptideAgent(net.sim, net.a, bad_clamp),
               std::invalid_argument);

  auto bad_prefix = test_config();
  bad_prefix.granularity = Granularity::kPrefix;
  bad_prefix.prefix_length = 0;
  EXPECT_THROW(RiptideAgent(net.sim, net.a, bad_prefix),
               std::invalid_argument);
}

// ------------------------------------------------- §V extension features

TEST(RiptideAgentTest, WindowCapBoundsProgrammedWindows) {
  TwoHostNet net(Time::milliseconds(20));
  RiptideAgent agent(net.sim, net.a, test_config());
  push_data(net, 500'000);

  agent.set_window_cap(20);  // load balancer asks for conservative windows
  agent.poll_once();
  EXPECT_LE(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            20u);

  agent.set_window_cap(0);  // cleared: next poll restores learned behavior
  agent.poll_once();
  EXPECT_GT(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            20u);
}

TEST(RiptideAgentTest, TrendGuardResetsOnCliffDrop) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.alpha = 0.9;  // slow EWMA: a glide-down would take many polls
  config.trend_guard = true;
  config.trend_drop_fraction = 0.5;
  RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  ASSERT_GT(agent.learned(key)->final_window_segments, 25.0);

  // Simulate an incident: all connections collapse to tiny windows. Abort
  // the grown ones and leave a fresh low-window connection.
  for (const auto& info : net.a.socket_stats()) {
    net.a.find_connection(info.tuple)->abort();
  }
  net.a.routing_table().remove(key);  // forget boost for the new conn
  tcp::TcpConnection::Callbacks cbs;
  net.a.connect(net.b.address(), 9900, std::move(cbs));
  net.sim.run_until(net.sim.now() + Time::milliseconds(200));

  agent.poll_once();
  // Without the guard, alpha=0.9 would keep the window high; the guard
  // slams it to c_min in one poll.
  EXPECT_DOUBLE_EQ(agent.learned(key)->final_window_segments, 10.0);
  EXPECT_EQ(agent.stats().trend_resets, 1u);
}

TEST(RiptideAgentTest, TrendGuardIgnoresMildDecline) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = test_config();
  config.trend_guard = true;
  config.trend_drop_fraction = 0.9;  // only catastrophic drops trigger
  RiptideAgent agent(net.sim, net.a, config);
  push_data(net, 500'000);
  agent.poll_once();
  agent.poll_once();  // same observations: no drop
  EXPECT_EQ(agent.stats().trend_resets, 0u);
}

// The closed-loop property at the heart of the paper: after Riptide
// observes a grown window, *new* connections to the same destination start
// with the learned initial window.
TEST(RiptideAgentTest, NewConnectionsStartAtLearnedWindow) {
  TwoHostNet net(Time::milliseconds(20));
  RiptideAgent agent(net.sim, net.a, test_config());
  push_data(net, 500'000);
  agent.poll_once();
  const auto learned =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  ASSERT_GT(learned, 10u);

  tcp::TcpConnection::Callbacks cbs;
  auto& fresh = net.a.connect(net.b.address(), 9900, std::move(cbs));
  EXPECT_EQ(fresh.cwnd_segments(), learned);
}

}  // namespace
}  // namespace riptide::core

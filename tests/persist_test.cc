// Persistence layer: CRC32 vectors, snapshot codec round-trips and
// corruption recovery (every single-bit flip and every truncation point),
// version skew, snapshot stores (memory + file-backed rotation/atomicity),
// and the agent checkpointer's checkpoint/restore cycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/observed_table.h"
#include "net/ipv4.h"
#include "persist/checkpointer.h"
#include "persist/crc32.h"
#include "persist/snapshot.h"
#include "persist/snapshot_store.h"
#include "sim/random.h"
#include "sim/time.h"
#include "test_util.h"

namespace riptide {
namespace {

using persist::decode_snapshot;
using persist::encode_snapshot;
using persist::SnapshotCounters;
using sim::Time;
using test::TwoHostNet;

// ------------------------------------------------------------------ CRC32

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE 802.3 check value every zlib-compatible CRC32 must produce.
  EXPECT_EQ(persist::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(persist::crc32(""), 0u);
  EXPECT_EQ(persist::crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const std::string text = "the quick brown fox";
  const auto whole = persist::crc32(text);
  const auto chained =
      persist::crc32(text.substr(4), persist::crc32(text.substr(0, 4)));
  EXPECT_EQ(whole, chained);
}

// --------------------------------------------------------- snapshot codec

core::ObservedTable sample_table() {
  core::ObservedTable table;
  table.put(net::Prefix::host(net::Ipv4Address(10, 0, 0, 2)),
            {42.5, Time::seconds(3), 7});
  table.put(net::Prefix::host(net::Ipv4Address(10, 0, 1, 9)),
            {10.0, Time::seconds(1), 1});
  table.put(net::Prefix(net::Ipv4Address(192, 168, 0, 0), 16),
            {33.25, Time::seconds(9), 120});
  return table;
}

SnapshotCounters sample_counters() {
  return SnapshotCounters{101, 2002, 303, 44, 5};
}

TEST(SnapshotTest, EmptyTableRoundTrips) {
  const auto bytes = encode_snapshot({}, {}, /*sequence=*/1);
  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.table.size(), 0u);
  EXPECT_EQ(decoded.counters, SnapshotCounters{});
  EXPECT_EQ(decoded.sequence, 1u);
  EXPECT_EQ(decoded.stats.records_ok, 0u);
  EXPECT_FALSE(decoded.stats.truncated_tail);
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  const auto table = sample_table();
  const auto counters = sample_counters();
  const auto bytes = encode_snapshot(table, counters, /*sequence=*/77);
  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.table, table);
  EXPECT_EQ(decoded.counters, counters);
  EXPECT_EQ(decoded.sequence, 77u);
  EXPECT_EQ(decoded.stats.version, persist::kSnapshotVersion);
  EXPECT_EQ(decoded.stats.records_ok, table.size());
  EXPECT_EQ(decoded.stats.records_corrupt, 0u);
}

TEST(SnapshotTest, EncodingIsByteStableAcrossInsertionOrder) {
  // The on-disk bytes are a pure function of the table's contents because
  // ObservedTable iterates in PrefixOrder regardless of insertion order.
  core::ObservedTable forward, reverse;
  const std::vector<std::pair<net::Prefix, core::DestinationState>> entries = {
      {net::Prefix::host(net::Ipv4Address(1, 2, 3, 4)),
       {11.0, Time::seconds(1), 2}},
      {net::Prefix::host(net::Ipv4Address(9, 9, 9, 9)),
       {22.0, Time::seconds(2), 3}},
      {net::Prefix(net::Ipv4Address(172, 16, 0, 0), 12),
       {33.0, Time::seconds(3), 4}},
  };
  for (const auto& [prefix, state] : entries) forward.put(prefix, state);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    reverse.put(it->first, it->second);
  }
  EXPECT_EQ(encode_snapshot(forward, {}, 5), encode_snapshot(reverse, {}, 5));
}

TEST(SnapshotTest, V1SnapshotDecodesWithZeroCounters) {
  const auto table = sample_table();
  const auto bytes = encode_snapshot(table, sample_counters(), /*sequence=*/3,
                                     persist::kSnapshotVersionV1);
  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.stats.version, persist::kSnapshotVersionV1);
  // v1 predates the counter block and per-record update counts.
  EXPECT_EQ(decoded.counters, SnapshotCounters{});
  ASSERT_EQ(decoded.table.size(), table.size());
  for (const auto& [prefix, state] : table.entries()) {
    const auto* got = decoded.table.find(prefix);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ(got->final_window_segments, state.final_window_segments);
    EXPECT_EQ(got->last_updated, state.last_updated);
    EXPECT_EQ(got->updates, 0u);
  }
}

TEST(SnapshotTest, EncodeRejectsUnsupportedVersion) {
  EXPECT_THROW(encode_snapshot({}, {}, 1, /*version=*/3),
               std::invalid_argument);
}

TEST(SnapshotTest, DecodeRejectsUnknownVersionWithValidCrc) {
  // Patch the version field and re-seal the header CRC so the rejection
  // exercises the version check, not the checksum.
  std::string bytes = encode_snapshot(sample_table(), {}, 1);
  bytes[4] = 9;
  const auto crc = persist::crc32(bytes.data(), 20);
  for (int i = 0; i < 4; ++i) {
    bytes[20 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  EXPECT_FALSE(decode_snapshot(bytes).valid);
}

TEST(SnapshotTest, GarbageInputsAreRejectedNotFatal) {
  EXPECT_FALSE(decode_snapshot("").valid);
  EXPECT_FALSE(decode_snapshot("RSNP").valid);
  EXPECT_FALSE(decode_snapshot(std::string(1000, '\xFF')).valid);
  EXPECT_FALSE(decode_snapshot(std::string(1000, '\0')).valid);
}

// Every accepted record must be one the encoder wrote: decode may drop
// damaged data but must never invent or alter it.
void expect_no_invented_records(const core::ObservedTable& original,
                                const persist::DecodeResult& decoded) {
  for (const auto& [prefix, state] : decoded.table.entries()) {
    const auto* want = original.find(prefix);
    ASSERT_NE(want, nullptr) << "decoded a prefix never encoded: "
                             << prefix.to_string();
    EXPECT_EQ(state, *want);
  }
}

TEST(SnapshotTest, EverySingleBitFlipRecoversOrRejectsCleanly) {
  const auto table = sample_table();
  const auto counters = sample_counters();
  const auto clean = encode_snapshot(table, counters, /*sequence=*/11);
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = clean;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      const auto decoded = decode_snapshot(damaged);
      if (!decoded.valid) continue;  // header damage: clean rejection
      expect_no_invented_records(table, decoded);
      // A flipped record is counted, never silently absorbed; a flipped
      // counter block decodes as zeros with the damage flagged.
      EXPECT_EQ(decoded.stats.records_ok + decoded.stats.records_corrupt,
                table.size())
          << "byte " << byte << " bit " << bit;
      if (decoded.stats.counters_corrupt) {
        EXPECT_EQ(decoded.counters, SnapshotCounters{});
      } else {
        EXPECT_EQ(decoded.counters, counters);
      }
    }
  }
}

TEST(SnapshotTest, OneCorruptRecordDoesNotDesyncItsNeighbors) {
  const auto table = sample_table();
  const auto bytes = encode_snapshot(table, {}, 1);
  // Smash the middle record's window field entirely (24B header + 44B
  // counter block + one 33B record puts the second record at offset 101).
  std::string damaged = bytes;
  for (std::size_t i = 0; i < 8; ++i) damaged[101 + 5 + i] = '\x5A';
  const auto decoded = decode_snapshot(damaged);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.stats.records_corrupt, 1u);
  EXPECT_EQ(decoded.stats.records_ok, table.size() - 1);
  expect_no_invented_records(table, decoded);
}

TEST(SnapshotTest, TruncationAtEveryLengthKeepsTheValidPrefix) {
  const auto table = sample_table();
  const auto counters = sample_counters();
  const auto clean = encode_snapshot(table, counters, /*sequence=*/2);
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const auto decoded = decode_snapshot(clean.substr(0, len));
    if (!decoded.valid) continue;  // cut inside the header
    expect_no_invented_records(table, decoded);
    // Anything short of the full image loses records or tears the tail.
    EXPECT_TRUE(decoded.stats.records_ok < table.size() ||
                decoded.stats.truncated_tail ||
                decoded.stats.counters_corrupt)
        << "length " << len;
  }
  // One concrete spot check: cutting mid-way through the last record
  // keeps the first two and flags the tear.
  const auto torn = decode_snapshot(clean.substr(0, clean.size() - 10));
  ASSERT_TRUE(torn.valid);
  EXPECT_EQ(torn.stats.records_ok, table.size() - 1);
  EXPECT_TRUE(torn.stats.truncated_tail);
}

TEST(SnapshotTest, RandomizedTablesRoundTripExactly) {
  sim::Rng rng(2024);
  for (int iteration = 0; iteration < 50; ++iteration) {
    core::ObservedTable table;
    const int entries = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < entries; ++i) {
      const auto addr = net::Ipv4Address(
          static_cast<std::uint32_t>(rng.uniform_int(1, 0x7FFFFFFF)));
      const int length = static_cast<int>(rng.uniform_int(8, 32));
      table.put(net::Prefix(addr, length),
                {rng.uniform(1.0, 500.0),
                 Time::nanoseconds(rng.uniform_int(0, 1'000'000'000'000)),
                 static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20))});
    }
    SnapshotCounters counters{
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)),
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)),
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)),
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)),
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30))};
    const auto sequence =
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    const auto decoded =
        decode_snapshot(encode_snapshot(table, counters, sequence));
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.table, table);
    EXPECT_EQ(decoded.counters, counters);
    EXPECT_EQ(decoded.sequence, sequence);
  }
}

#ifdef RIPTIDE_CORPUS_DIR
TEST(SnapshotTest, FuzzCorpusDecodesWithoutIncident) {
  // The committed fuzz seeds double as a regression corpus: every file
  // must decode (possibly to a rejection) without crashing or throwing.
  const std::filesystem::path dir =
      std::filesystem::path(RIPTIDE_CORPUS_DIR) / "snapshot";
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    (void)decode_snapshot(bytes);
    ++files;
  }
  EXPECT_GT(files, 0u);
}
#endif

// --------------------------------------------------------- snapshot store

TEST(MemorySnapshotStoreTest, KeepsOnlyTheNewest) {
  persist::MemorySnapshotStore store(/*keep=*/2);
  store.save("one");
  store.save("two");
  store.save("three");
  const auto loaded = store.load_newest_first();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], "three");
  EXPECT_EQ(loaded[1], "two");
  EXPECT_EQ(store.saves(), 3u);
}

TEST(MemorySnapshotStoreTest, CorruptNewestFlipsExactlyOneBit) {
  persist::MemorySnapshotStore store;
  EXPECT_FALSE(store.corrupt_newest(0));  // nothing stored yet
  store.save(std::string(8, '\0'));
  ASSERT_TRUE(store.corrupt_newest(13));  // byte 13 % 8 = 5, bit 13 % 8 = 5
  const auto loaded = store.load_newest_first();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0][5], 0x20);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i != 5) {
      EXPECT_EQ(loaded[0][i], '\0');
    }
  }
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("riptide_persist_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(FileSnapshotStoreTest, SavesRotateAndLoadNewestFirst) {
  const auto dir = fresh_dir("rotate");
  persist::FileSnapshotStore store(dir, "test.snap", /*keep=*/2);
  store.save("gen1");
  store.save("gen2");
  store.save("gen3");
  const auto loaded = store.load_newest_first();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], "gen3");
  EXPECT_EQ(loaded[1], "gen2");
  // Rotation actually pruned the oldest file, not just the listing.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().filename().string().rfind("test.snap.", 0), 0u);
  }
  EXPECT_EQ(files, 2u);
  std::filesystem::remove_all(dir);
}

TEST(FileSnapshotStoreTest, ReopenedStoreResumesTheSequence) {
  const auto dir = fresh_dir("reopen");
  {
    persist::FileSnapshotStore store(dir, "test.snap", 2);
    store.save("old-a");
    store.save("old-b");
  }
  persist::FileSnapshotStore store(dir, "test.snap", 2);
  store.save("new");  // must not collide with (or sort below) old-b
  const auto loaded = store.load_newest_first();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], "new");
  EXPECT_EQ(loaded[1], "old-b");
  std::filesystem::remove_all(dir);
}

TEST(FileSnapshotStoreTest, StrayTempFilesAreInvisibleAndSweptAway) {
  const auto dir = fresh_dir("tmp");
  persist::FileSnapshotStore store(dir, "test.snap", 2);
  store.save("good");
  {
    // A torn write from a dead process generation.
    std::ofstream torn(dir / "test.snap.99.tmp", std::ios::binary);
    torn << "part";
  }
  const auto loaded = store.load_newest_first();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], "good");
  store.save("next");  // save sweeps orphaned temp files
  EXPECT_FALSE(std::filesystem::exists(dir / "test.snap.99.tmp"));
  std::filesystem::remove_all(dir);
}

TEST(FileSnapshotStoreTest, CorruptNewestDamagesOnlyTheNewestFile) {
  const auto dir = fresh_dir("corrupt");
  persist::FileSnapshotStore store(dir, "test.snap", 2);
  store.save(std::string(4, '\0'));
  store.save(std::string(4, '\0'));
  ASSERT_TRUE(store.corrupt_newest(0));
  const auto loaded = store.load_newest_first();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0][0], 0x01);
  EXPECT_EQ(loaded[1], std::string(4, '\0'));
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------- checkpointer

core::RiptideConfig checkpoint_agent_config() {
  core::RiptideConfig config;
  config.alpha = 0.0;
  config.c_max = 100;
  config.c_min = 10;
  return config;
}

// Establishes a data-carrying connection a -> b and grows a's cwnd.
void push_data(TwoHostNet& net, std::uint64_t bytes) {
  net.b.listen(9900, [](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    conn.set_callbacks(std::move(cbs));
  });
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 9900, std::move(cbs));
  net.sim.run_until(net.sim.now() + Time::milliseconds(100));
  conn.send(bytes);
  net.sim.run_until(net.sim.now() + Time::seconds(5));
}

TEST(AgentCheckpointerTest, PeriodicTimerSkipsCrashedAgent) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, checkpoint_agent_config());
  persist::MemorySnapshotStore store;
  persist::AgentCheckpointer checkpointer(net.sim, agent, store,
                                          {Time::seconds(1)});
  agent.start();
  checkpointer.start();
  net.sim.run_until(Time::seconds(3) + Time::milliseconds(1));
  EXPECT_EQ(checkpointer.stats().checkpoints_written, 3u);
  agent.crash();
  net.sim.run_until(Time::seconds(6) + Time::milliseconds(1));
  EXPECT_EQ(checkpointer.stats().checkpoints_written, 3u);  // ticks skipped
  agent.start();
  net.sim.run_until(Time::seconds(8) + Time::milliseconds(1));
  EXPECT_GT(checkpointer.stats().checkpoints_written, 3u);  // and resumed
}

TEST(AgentCheckpointerTest, RestoreRoundTripsTableAndCounters) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, checkpoint_agent_config());
  persist::MemorySnapshotStore store;
  persist::AgentCheckpointer checkpointer(net.sim, agent, store, {});
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  ASSERT_NE(agent.learned(key), nullptr);
  const auto before = *agent.learned(key);
  const auto polls_before = agent.stats().polls;

  checkpointer.checkpoint_now();
  agent.crash();
  ASSERT_EQ(agent.table().size(), 0u);
  ASSERT_TRUE(checkpointer.restore());
  EXPECT_EQ(checkpointer.stats().restores, 1u);
  EXPECT_EQ(checkpointer.stats().records_recovered, 1u);
  ASSERT_NE(agent.learned(key), nullptr);
  EXPECT_EQ(*agent.learned(key), before);
  // Monitoring counters survive the generation change.
  EXPECT_GE(agent.stats().polls, polls_before);
}

TEST(AgentCheckpointerTest, RestoreFallsBackPastCorruptedSnapshot) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, checkpoint_agent_config());
  persist::MemorySnapshotStore store;
  persist::AgentCheckpointer checkpointer(net.sim, agent, store, {});
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const auto learned = *agent.learned(key);

  checkpointer.checkpoint_now();  // good generation
  checkpointer.checkpoint_now();  // newest generation...
  ASSERT_TRUE(store.corrupt_newest(13));  // ...header-corrupted
  agent.crash();
  ASSERT_TRUE(checkpointer.restore());
  EXPECT_EQ(checkpointer.stats().snapshots_rejected, 1u);
  EXPECT_EQ(checkpointer.stats().restores, 1u);
  ASSERT_NE(agent.learned(key), nullptr);
  EXPECT_EQ(*agent.learned(key), learned);
}

TEST(AgentCheckpointerTest, RestoreSkipsSnapshotWithNoSurvivingRecords) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, checkpoint_agent_config());
  persist::MemorySnapshotStore store;
  persist::AgentCheckpointer checkpointer(net.sim, agent, store, {});
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const auto learned = *agent.learned(key);

  checkpointer.checkpoint_now();  // good generation
  checkpointer.checkpoint_now();  // newest: header intact...
  // ...but its only record fails CRC (first record byte: past the 24-byte
  // header and 44-byte v2 counter block). The decoded table is empty, so
  // restore must fall through to the older generation instead of
  // accepting a snapshot that carries no state.
  ASSERT_TRUE(store.corrupt_newest(24 + 44));
  agent.crash();
  ASSERT_TRUE(checkpointer.restore());
  EXPECT_EQ(checkpointer.stats().snapshots_rejected, 1u);
  EXPECT_EQ(checkpointer.stats().restores, 1u);
  ASSERT_NE(agent.learned(key), nullptr);
  EXPECT_EQ(*agent.learned(key), learned);
}

TEST(AgentCheckpointerTest, RestoreWithoutSnapshotsReportsFailure) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, checkpoint_agent_config());
  persist::MemorySnapshotStore store;
  persist::AgentCheckpointer checkpointer(net.sim, agent, store, {});
  EXPECT_FALSE(checkpointer.restore());
  EXPECT_EQ(checkpointer.stats().restores, 0u);
}

TEST(AgentCheckpointerTest, ReinstallProgramsRestoredRoutesImmediately) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, checkpoint_agent_config());
  persist::MemorySnapshotStore store;
  persist::AgentCheckpointer checkpointer(net.sim, agent, store, {});
  push_data(net, 500'000);
  agent.poll_once();
  const auto installed =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  ASSERT_GT(installed, 10u);

  checkpointer.checkpoint_now();
  agent.crash();
  // The reboot took the kernel routes with it.
  for (const auto& entry : net.a.routing_table().learned_routes()) {
    net.a.routing_table().remove(entry.prefix);
  }
  ASSERT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
  ASSERT_TRUE(checkpointer.restore(/*reinstall_routes=*/true));
  // The jump-start: windows are live again before the first poll.
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            installed);
}

}  // namespace
}  // namespace riptide

// Chaos-search engine tests (src/chaos): spec codec round-trips, the
// invariant oracles against a deliberately broken governor, repro
// shrinking, campaign determinism, and the golden-fingerprint pin —
// plus the composed hostile+faults+policy scenario that exercises the
// legacy extension slot and the composable factory list together.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "chaos/engine.h"
#include "chaos/oracle.h"
#include "chaos/shrink.h"
#include "chaos/spec.h"
#include "faults/harness.h"
#include "policy/policy.h"

namespace riptide::chaos {
namespace {

bool has_oracle(const std::vector<Violation>& violations,
                const std::string& oracle) {
  for (const auto& v : violations) {
    if (v.oracle == oracle) return true;
  }
  return false;
}

// The spec every oracle-detection test leans on: governed policy with a
// tight budget, real traffic pressure, and the budget-enforcement fault
// hook armed — a governor whose enforcement silently regressed.
ChaosSpec broken_governor_spec() {
  ChaosSpec spec;
  spec.pops = 4;
  spec.hosts = 2;
  spec.duration_s = 40.0;
  spec.seed = 7;
  spec.wan_loss = 1e-3;
  spec.policy.kind = policy::PolicyKind::kAdaptive;
  spec.policy.governed = true;
  spec.hostile.kind = cdn::HostileKind::kFlashCrowd;
  spec.hostile.crowd_at = sim::Time::seconds(10);
  spec.hostile.crowd_connections = 8;
  spec.hostile.crowd_bytes = 100'000;
  spec.hostile.crowd_period = sim::Time::seconds(10);
  spec.faults.loss_burst(sim::Time::seconds(5), 0, 1, 0.05,
                         sim::Time::seconds(10));
  spec.break_hook = "budget";
  spec.budget_override = 20;
  return spec;
}

// ------------------------------------------------------- spec codec

TEST(ChaosSpecTest, GeneratedSpecsRoundTrip) {
  for (std::size_t index = 0; index < 64; ++index) {
    const ChaosSpec spec = generate_spec(/*campaign_seed=*/3, index);
    const std::string text = spec.to_string();
    const ChaosSpec reparsed = ChaosSpec::parse(text);
    EXPECT_EQ(spec, reparsed) << "index " << index << "\n" << text;
    EXPECT_EQ(text, reparsed.to_string()) << "index " << index;
  }
}

TEST(ChaosSpecTest, HandWrittenSpecRoundTrips) {
  const ChaosSpec spec = broken_governor_spec();
  EXPECT_EQ(spec, ChaosSpec::parse(spec.to_string()));
}

TEST(ChaosSpecTest, GoldenSpecIsPinned) {
  // golden=1 canonicalizes every world-shape field: a half-edited golden
  // spec cannot silently drift off the determinism suite's shape.
  ChaosSpec edited = ChaosSpec::golden_spec();
  std::string text = edited.to_string();
  const auto at = text.find("pops=4");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 6, "pops=7");
  EXPECT_EQ(ChaosSpec::parse(text), ChaosSpec::golden_spec());
}

TEST(ChaosSpecTest, ErrorsNameTokenAndByteOffset) {
  const auto expect_throw = [](const std::string& text,
                               const std::string& needle) {
    try {
      (void)ChaosSpec::parse(text);
      FAIL() << "expected invalid_argument for: " << text;
    } catch (const std::invalid_argument& err) {
      EXPECT_NE(std::string(err.what()).find("at byte"), std::string::npos)
          << err.what();
      EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
          << err.what();
    }
  };
  expect_throw("pops=1\n", "integer out of range");
  expect_throw("bogus=3\n", "unknown key");
  expect_throw("pops=2\npops=3\n", "duplicate key");
  expect_throw("policy=warp-speed\n", "unknown policy");
  expect_throw("faults=@5 down 0-9\n", "fault link PoP out of range");
  expect_throw("pops=2\nhostile=incast:victim=5\n",
               "hostile victim PoP out of range");
  expect_throw("break=governor\n", "unknown break hook");
}

#ifdef RIPTIDE_CORPUS_DIR
TEST(ChaosSpecTest, FuzzCorpusParsesWithoutIncident) {
  // The committed fuzz seeds double as a regression corpus: every file
  // must parse (possibly to a rejection) without crashing, and every
  // accepted spec must survive the canonical round-trip.
  const std::filesystem::path dir =
      std::filesystem::path(RIPTIDE_CORPUS_DIR) / "chaos_spec";
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t files = 0;
  std::size_t accepted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    try {
      const ChaosSpec spec = ChaosSpec::parse(text);
      EXPECT_EQ(spec, ChaosSpec::parse(spec.to_string())) << entry.path();
      ++accepted;
    } catch (const std::invalid_argument&) {
      // Rejection seeds (e.g. bad_key.spec) exercise the error path.
    }
    ++files;
  }
  EXPECT_GT(files, 0u);
  EXPECT_GT(accepted, 0u);
}
#endif

// ------------------------------------------------------- oracles

TEST(ChaosOracleTest, GoldenSpecMatchesPinnedFingerprint) {
  const RunResult result = run_chaos_spec(ChaosSpec::golden_spec());
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().oracle << ": "
      << result.violations.front().detail;
  EXPECT_EQ(result.fingerprint, 0x1B61F592u);
}

TEST(ChaosOracleTest, BrokenGovernorBudgetIsCaught) {
  const RunResult broken = run_chaos_spec(broken_governor_spec());
  EXPECT_TRUE(has_oracle(broken.violations, kOracleBudget));

  // The same scenario with enforcement intact must be clean — the oracle
  // detects the regression, not the workload.
  ChaosSpec fixed = broken_governor_spec();
  fixed.break_hook.clear();
  EXPECT_TRUE(run_chaos_spec(fixed).violations.empty());
}

TEST(ChaosOracleTest, RunsAreDeterministic) {
  const ChaosSpec spec = broken_governor_spec();
  const RunResult a = run_chaos_spec(spec);
  const RunResult b = run_chaos_spec(spec);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.violations, b.violations);
}

// ------------------------------------------------------- shrinking

TEST(ChaosShrinkTest, MinimizesBrokenGovernorRepro) {
  const ChaosSpec failing = broken_governor_spec();
  const ShrinkResult minimized = shrink(failing, kOracleBudget);

  // Still fails the same oracle...
  ASSERT_TRUE(has_oracle(minimized.violations, kOracleBudget));
  // ...and every scenario ingredient irrelevant to the budget regression
  // has been cut: the loss burst, the flash crowd, the WAN loss, and
  // most of the duration.
  EXPECT_TRUE(minimized.spec.faults.empty());
  EXPECT_EQ(minimized.spec.hostile.kind, cdn::HostileKind::kNone);
  EXPECT_EQ(minimized.spec.wan_loss, 0.0);
  EXPECT_LE(minimized.spec.duration_s, failing.duration_s / 2);
  EXPECT_EQ(minimized.spec.hosts, 1);
  EXPECT_GT(minimized.runs, 0u);

  // The minimized spec replays to the same violations through the codec
  // (what a .min.spec repro file does).
  const ChaosSpec reparsed = ChaosSpec::parse(minimized.spec.to_string());
  const RunResult replay = run_chaos_spec(reparsed);
  EXPECT_EQ(replay.violations, minimized.violations);
}

// ------------------------------------------------------- campaigns

TEST(ChaosCampaignTest, CampaignIsDeterministic) {
  CampaignConfig config;
  config.seed = 11;
  config.runs = 32;
  const CampaignResult a = run_campaign(config);
  const CampaignResult b = run_campaign(config);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  EXPECT_EQ(a.golden_runs, b.golden_runs);
  EXPECT_EQ(a.shrink_runs, b.shrink_runs);
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].index, b.findings[i].index);
    EXPECT_EQ(a.findings[i].spec, b.findings[i].spec);
    EXPECT_EQ(a.findings[i].violations, b.findings[i].violations);
    EXPECT_EQ(a.findings[i].minimized, b.findings[i].minimized);
    EXPECT_EQ(a.findings[i].minimized_violations,
              b.findings[i].minimized_violations);
  }
}

TEST(ChaosCampaignTest, HealthyBuildRunsClean) {
  // No oracle may fire on the shipped code: a finding here is either a
  // real bug or an unsound oracle, and both block.
  CampaignConfig config;
  config.seed = 1;
  config.runs = 32;
  config.shrink = false;
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.runs, 32u);
  EXPECT_GT(result.golden_runs, 0u);
  for (const auto& finding : result.findings) {
    ADD_FAILURE() << "spec " << finding.index << " violated "
                  << finding.violations.front().oracle << ": "
                  << finding.violations.front().detail << "\n"
                  << finding.spec.to_string();
  }
}

// ------------------------------------------- composed scenarios (s3)

TEST(ComposedScenarioTest, HostileFaultsAndGovernedPolicyTogether) {
  // Governed adaptive policy + incast + a fault plan with link and agent
  // faults, all through the spec path: the composition must run clean
  // under the full oracle registry.
  ChaosSpec spec;
  spec.pops = 3;
  spec.hosts = 2;
  spec.duration_s = 30.0;
  spec.seed = 21;
  spec.policy.kind = policy::PolicyKind::kAdaptive;
  spec.policy.governed = true;
  spec.hostile.kind = cdn::HostileKind::kIncast;
  spec.hostile.victim_pop = 1;
  spec.hostile.fanin_connections = 4;
  spec.hostile.burst_bytes = 50'000;
  spec.faults.link_down(sim::Time::seconds(8), 0, 1);
  spec.faults.link_up(sim::Time::seconds(13), 0, 1);
  spec.faults.route_drift(sim::Time::seconds(15), -1, 0.5, 0.5);
  const RunResult result = run_chaos_spec(spec);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().oracle << ": "
      << result.violations.front().detail;
}

TEST(ComposedScenarioTest, InstallerFactoriesAndFaultHarnessSlotTogether) {
  // The legacy single extension slot (claimed by FaultHarness::install)
  // and the composable extension_factories list (policy installers) must
  // ride the same experiment without stepping on each other.
  cdn::ExperimentConfig config;
  config.pop_specs.assign(cdn::default_pop_specs().begin(),
                          cdn::default_pop_specs().begin() + 3);
  config.topology.hosts_per_pop = 1;
  config.duration = sim::Time::seconds(20);
  config.seed = 5;
  policy::apply_policy(config, policy::parse_policy("static-iw32@24"));
  faults::FaultHarness::install(
      config, faults::FaultPlan{}.link_flap(sim::Time::seconds(5), 0, 1,
                                            sim::Time::seconds(2), 4));
  cdn::Experiment exp(config);
  exp.run();

  auto* harness = faults::FaultHarness::from(exp);
  ASSERT_NE(harness, nullptr);
  ASSERT_EQ(exp.extensions().size(), 1u);
  const auto installation = std::static_pointer_cast<policy::PolicyInstallation>(
      exp.extensions().front());
  ASSERT_NE(installation, nullptr);
  EXPECT_GT(installation->routes_installed, 0u);
  EXPECT_GE(exp.simulator().now(), config.duration);
}

}  // namespace
}  // namespace riptide::chaos

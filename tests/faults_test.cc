// Fault subsystem: plan parsing, link/actuator/poll injection, agent
// hardening (retry/backoff, dead letters, poll skips, staleness guard,
// crash/restart/adoption), and the end-to-end acceptance scenario of a
// flapping WAN link plus a 30%-failing actuator.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "cdn/topology.h"
#include "core/agent.h"
#include "core/route_programmer.h"
#include "core/socket_stats_source.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "faults/faulty.h"
#include "faults/harness.h"
#include "test_util.h"

namespace riptide {
namespace {

using faults::FaultKind;
using faults::FaultPlan;
using sim::Time;
using test::TwoHostNet;

core::RiptideConfig agent_config() {
  core::RiptideConfig config;
  config.alpha = 0.0;
  config.c_max = 100;
  config.c_min = 10;
  return config;
}

// Establishes a data-carrying connection a -> b and grows a's cwnd.
void push_data(TwoHostNet& net, std::uint64_t bytes) {
  net.b.listen(9900, [](tcp::TcpConnection& conn) {
    tcp::TcpConnection::Callbacks cbs;
    conn.set_callbacks(std::move(cbs));
  });
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 9900, std::move(cbs));
  net.sim.run_until(net.sim.now() + Time::milliseconds(100));
  conn.send(bytes);
  net.sim.run_until(net.sim.now() + Time::seconds(5));
}

// Snapshot source fully scripted by the test: exact control over the
// retransmit counters the staleness guard rates.
class ScriptedStatsSource : public core::SocketStatsSource {
 public:
  std::vector<host::SocketInfo> next;
  std::vector<host::SocketInfo> poll() override { return next; }
};

host::SocketInfo established(net::Ipv4Address remote, std::uint32_t cwnd,
                             std::uint64_t retrans, std::uint64_t sent) {
  host::SocketInfo info;
  info.tuple.local_addr = net::Ipv4Address(10, 0, 0, 1);
  info.tuple.local_port = 40000;
  info.tuple.remote_addr = remote;
  info.tuple.remote_port = 9900;
  info.state = tcp::TcpState::kEstablished;
  info.cwnd_segments = cwnd;
  info.bytes_acked = 100'000;
  info.retransmissions = retrans;
  info.segments_sent = sent;
  return info;
}

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, ParsesFullSpec) {
  const auto plan = FaultPlan::parse(
      "@5 flap 0-1 2 6; @10 actuator-fail 0.3 30; @20 loss 2-3 0.05 10; "
      "@1 down 0-2; @2 up 0-2; @3 rate 0-1 0.25 5; @4 delay 0-1 50 5; "
      "@6 poll-fail 0.5 10; @7 poll-partial 0.25 10; @8 crash -1 10 warm");
  ASSERT_EQ(plan.size(), 10u);
  const auto& flap = plan.events()[0];
  EXPECT_EQ(flap.kind, FaultKind::kLinkFlap);
  EXPECT_EQ(flap.at, Time::seconds(5));
  EXPECT_EQ(flap.pop_a, 0u);
  EXPECT_EQ(flap.pop_b, 1u);
  EXPECT_EQ(flap.duration, Time::seconds(2));
  EXPECT_EQ(flap.count, 6);
  const auto& act = plan.events()[1];
  EXPECT_EQ(act.kind, FaultKind::kActuatorFail);
  EXPECT_DOUBLE_EQ(act.value, 0.3);
  EXPECT_EQ(act.duration, Time::seconds(30));
  const auto& crash = plan.events()[9];
  EXPECT_EQ(crash.kind, FaultKind::kAgentCrash);
  EXPECT_EQ(crash.host_index, -1);
  EXPECT_TRUE(crash.warm);
}

TEST(FaultPlanTest, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ;  ; ").empty());
}

TEST(FaultPlanTest, FractionalTimesAndWhitespace) {
  const auto plan = FaultPlan::parse("  @2.5   down   0-1  ");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.events()[0].at, Time::from_seconds(2.5));
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("down 0-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@x down 0-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 explode 0-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 down 0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 down 1-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 down 0-1 extra"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 loss 0-1 1.5 10"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 loss 0-1 0.5 -1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 rate 0-1 0 10"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 flap 0-1 2 0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 crash 0 10 tepid"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@-1 down 0-1"), std::invalid_argument);
}

TEST(FaultPlanTest, FluentBuildersCompose) {
  FaultPlan plan;
  plan.link_down(Time::seconds(1), 0, 1)
      .loss_burst(Time::seconds(2), 0, 1, 0.1, Time::seconds(5))
      .agent_crash(Time::seconds(3), 2, Time::seconds(4), /*warm=*/false);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[2].host_index, 2);
  EXPECT_FALSE(plan.events()[2].warm);
}

// ------------------------------------------------------ link-level faults

TEST(LinkFaultTest, DownedLinkDropsAndCountsPackets) {
  TwoHostNet net(Time::milliseconds(10));
  push_data(net, 50'000);  // healthy transfer first
  const auto delivered_before = net.link_ab.stats().packets_delivered;

  net.link_ab.set_up(false);
  EXPECT_FALSE(net.link_ab.is_up());
  auto& conn = *net.a.find_connection(net.a.socket_stats().front().tuple);
  conn.send(50'000);
  net.sim.run_until(net.sim.now() + Time::seconds(3));
  EXPECT_GT(net.link_ab.stats().drops_link_down, 0u);
  EXPECT_EQ(net.link_ab.stats().packets_delivered, delivered_before);

  net.link_ab.set_up(true);
  net.sim.run_until(net.sim.now() + Time::seconds(30));
  // Retransmissions recover the stalled data once the link returns.
  EXPECT_GT(net.link_ab.stats().packets_delivered, delivered_before);
  EXPECT_GT(conn.stats().retransmissions, 0u);
}

TEST(LinkFaultTest, RuntimeLossBurstAppliesAndRestores) {
  TwoHostNet net(Time::milliseconds(10));
  push_data(net, 100'000);
  EXPECT_EQ(net.link_ab.stats().drops_random_loss, 0u);

  net.link_ab.set_loss_probability(0.4);
  auto& conn = *net.a.find_connection(net.a.socket_stats().front().tuple);
  conn.send(200'000);
  net.sim.run_until(net.sim.now() + Time::seconds(10));
  const auto burst_drops = net.link_ab.stats().drops_random_loss;
  EXPECT_GT(burst_drops, 0u);

  net.link_ab.set_loss_probability(0.0);
  conn.send(200'000);
  net.sim.run_until(net.sim.now() + Time::seconds(30));
  EXPECT_EQ(net.link_ab.stats().drops_random_loss, burst_drops);
}

TEST(LinkFaultTest, MutatorsValidate) {
  TwoHostNet net(Time::milliseconds(10));
  EXPECT_THROW(net.link_ab.set_loss_probability(1.5), std::invalid_argument);
  EXPECT_THROW(net.link_ab.set_loss_probability(-0.1), std::invalid_argument);
  EXPECT_THROW(net.link_ab.set_rate_bps(0.0), std::invalid_argument);

  // A link built without an Rng cannot have loss turned on.
  sim::Simulator sim;
  host::Host sink(sim, "sink", net::Ipv4Address(10, 9, 0, 1));
  net::Link rngless(sim, net::Link::Config{}, sink, nullptr);
  EXPECT_THROW(rngless.set_loss_probability(0.5), std::invalid_argument);
  rngless.set_loss_probability(0.0);  // zero stays allowed
}

// ------------------------------------------------------- fault decorators

TEST(FaultyProgrammerTest, FailNextThrowsThenRecovers) {
  TwoHostNet net(Time::milliseconds(10));
  faults::FaultyRouteProgrammer programmer(
      net.sim, std::make_unique<core::HostRouteProgrammer>(net.a),
      sim::Rng(1));
  const auto dst = net::Prefix::host(net.b.address());

  programmer.fail_next(1);
  EXPECT_THROW(programmer.set_initial_windows(dst, 50, 100),
               faults::ActuatorError);
  EXPECT_EQ(programmer.stats().failures_injected, 1u);

  programmer.set_initial_windows(dst, 50, 100);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            50u);
  EXPECT_EQ(programmer.stats().ops_attempted, 2u);
}

TEST(FaultyProgrammerTest, DelayDefersApplication) {
  TwoHostNet net(Time::milliseconds(10));
  faults::FaultyRouteProgrammer programmer(
      net.sim, std::make_unique<core::HostRouteProgrammer>(net.a),
      sim::Rng(1));
  programmer.set_delay(Time::milliseconds(500));
  programmer.set_initial_windows(net::Prefix::host(net.b.address()), 42, 0);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);  // not yet
  net.sim.run_until(net.sim.now() + Time::seconds(1));
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            42u);
  EXPECT_EQ(programmer.stats().ops_delayed, 1u);
}

TEST(FaultyStatsSourceTest, FailureAndPartialSnapshots) {
  TwoHostNet net(Time::milliseconds(10));
  push_data(net, 100'000);
  faults::FaultySocketStatsSource source(
      std::make_unique<core::HostSocketStatsSource>(net.a), sim::Rng(1));

  EXPECT_FALSE(source.poll().empty());

  source.fail_next(1);
  EXPECT_THROW(source.poll(), core::PollError);
  EXPECT_EQ(source.stats().failures_injected, 1u);

  source.set_partial_fraction(1.0);
  EXPECT_TRUE(source.poll().empty());
  EXPECT_GT(source.stats().entries_dropped, 0u);
}

// ----------------------------------------------- agent hardening: actuator

TEST(AgentRetryTest, RetriesWithBackoffUntilSuccess) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.actuator_backoff = Time::milliseconds(100);
  config.actuator_max_retries = 4;
  auto faulty = std::make_unique<faults::FaultyRouteProgrammer>(
      net.sim, std::make_unique<core::HostRouteProgrammer>(net.a),
      sim::Rng(1));
  auto* programmer = faulty.get();
  core::RiptideAgent agent(net.sim, net.a, config, std::move(faulty));
  push_data(net, 500'000);

  programmer->fail_next(2);
  agent.poll_once();
  EXPECT_EQ(agent.stats().actuator_failures, 1u);
  EXPECT_EQ(agent.stats().actuator_retries, 1u);
  EXPECT_EQ(agent.pending_actuator_ops(), 1u);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);

  // First retry (at +100 ms) hits the second injected failure; the second
  // retry (backoff doubled, +200 ms) succeeds and installs the route.
  net.sim.run_until(net.sim.now() + Time::seconds(1));
  EXPECT_EQ(agent.stats().actuator_failures, 2u);
  EXPECT_EQ(agent.stats().actuator_retries, 2u);
  EXPECT_EQ(agent.stats().actuator_dead_letters, 0u);
  EXPECT_EQ(agent.pending_actuator_ops(), 0u);
  EXPECT_EQ(agent.stats().routes_set, 1u);
  EXPECT_GT(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
}

TEST(AgentRetryTest, DeadLettersAfterMaxRetries) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.actuator_backoff = Time::milliseconds(50);
  config.actuator_max_retries = 2;
  auto faulty = std::make_unique<faults::FaultyRouteProgrammer>(
      net.sim, std::make_unique<core::HostRouteProgrammer>(net.a),
      sim::Rng(1));
  auto* programmer = faulty.get();
  core::RiptideAgent agent(net.sim, net.a, config, std::move(faulty));
  push_data(net, 500'000);

  programmer->set_failure_probability(1.0);
  agent.poll_once();
  net.sim.run_until(net.sim.now() + Time::seconds(5));
  EXPECT_EQ(agent.stats().actuator_dead_letters, 1u);
  EXPECT_EQ(agent.stats().actuator_retries, 2u);
  EXPECT_EQ(agent.stats().actuator_failures, 3u);  // initial + 2 retries
  EXPECT_EQ(agent.pending_actuator_ops(), 0u);
  EXPECT_EQ(agent.stats().routes_set, 0u);
}

TEST(AgentRetryTest, FreshDecisionSupersedesPendingRetry) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.actuator_backoff = Time::seconds(30);  // retry far in the future
  auto faulty = std::make_unique<faults::FaultyRouteProgrammer>(
      net.sim, std::make_unique<core::HostRouteProgrammer>(net.a),
      sim::Rng(1));
  auto* programmer = faulty.get();
  core::RiptideAgent agent(net.sim, net.a, config, std::move(faulty));
  push_data(net, 500'000);

  programmer->fail_next(1);
  agent.poll_once();
  EXPECT_EQ(agent.pending_actuator_ops(), 1u);

  // The next poll succeeds directly; the pending retry is cancelled, and
  // letting its (cancelled) timer slot pass changes nothing.
  agent.poll_once();
  EXPECT_EQ(agent.pending_actuator_ops(), 0u);
  const auto routes_set = agent.stats().routes_set;
  net.sim.run_until(net.sim.now() + Time::seconds(60));
  EXPECT_EQ(agent.stats().routes_set, routes_set);
}

// -------------------------------------------------- agent hardening: polls

TEST(AgentPollTest, FailedPollIsSkippedAndCounted) {
  TwoHostNet net(Time::milliseconds(20));
  auto faulty = std::make_unique<faults::FaultySocketStatsSource>(
      std::make_unique<core::HostSocketStatsSource>(net.a), sim::Rng(1));
  auto* source = faulty.get();
  core::RiptideAgent agent(net.sim, net.a, agent_config(), nullptr,
                           std::move(faulty));
  push_data(net, 500'000);

  source->fail_next(1);
  agent.poll_once();
  EXPECT_EQ(agent.stats().polls, 1u);
  EXPECT_EQ(agent.stats().polls_failed, 1u);
  EXPECT_EQ(agent.table().size(), 0u);

  agent.poll_once();
  EXPECT_EQ(agent.stats().polls_failed, 1u);
  EXPECT_EQ(agent.table().size(), 1u);
}

TEST(AgentPollTest, FailedPollDoesNotExpireRoutes) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.ttl = Time::seconds(30);
  auto faulty = std::make_unique<faults::FaultySocketStatsSource>(
      std::make_unique<core::HostSocketStatsSource>(net.a), sim::Rng(1));
  auto* source = faulty.get();
  core::RiptideAgent agent(net.sim, net.a, config, nullptr,
                           std::move(faulty));
  push_data(net, 500'000);
  agent.poll_once();
  ASSERT_EQ(agent.table().size(), 1u);

  // Way past the TTL, but the poll fails: "no information" must not mean
  // "no connections" — the learned route survives the observer glitch.
  net.sim.run_until(net.sim.now() + Time::seconds(60));
  source->fail_next(1);
  agent.poll_once();
  EXPECT_EQ(agent.table().size(), 1u);
  EXPECT_GT(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);

  // The next healthy poll applies the deferred expiry.
  for (const auto& info : net.a.socket_stats()) {
    net.a.find_connection(info.tuple)->abort();
  }
  agent.poll_once();
  EXPECT_EQ(agent.table().size(), 0u);
  EXPECT_EQ(agent.stats().routes_expired, 1u);
}

TEST(AgentPollTest, PartialSnapshotIsDataNotFailure) {
  TwoHostNet net(Time::milliseconds(20));
  auto faulty = std::make_unique<faults::FaultySocketStatsSource>(
      std::make_unique<core::HostSocketStatsSource>(net.a), sim::Rng(1));
  auto* source = faulty.get();
  core::RiptideAgent agent(net.sim, net.a, agent_config(), nullptr,
                           std::move(faulty));
  push_data(net, 500'000);

  source->set_partial_fraction(1.0);
  agent.poll_once();
  EXPECT_EQ(agent.stats().polls_failed, 0u);
  EXPECT_EQ(agent.stats().connections_observed, 0u);
  EXPECT_GT(source->stats().entries_dropped, 0u);
}

// ------------------------------------------------------- staleness guard

TEST(StalenessGuardTest, DecaysThenWithdrawsHurtingDestination) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.alpha = 1.0;  // history-only fold: decayed values stick
  config.staleness_guard = true;
  config.staleness_retrans_fraction = 0.2;
  config.staleness_min_segments = 10;
  config.staleness_decay = 0.5;
  auto scripted = std::make_unique<ScriptedStatsSource>();
  auto* source = scripted.get();
  auto recording = std::make_unique<core::HostRouteProgrammer>(net.a);
  core::RiptideAgent agent(net.sim, net.a, config, std::move(recording),
                           std::move(scripted));
  const auto remote = net.b.address();
  const auto key = net::Prefix::host(remote);

  // Healthy poll learns an 80-segment window.
  source->next = {established(remote, 80, /*retrans=*/0, /*sent=*/0)};
  agent.poll_once();
  ASSERT_NE(agent.learned(key), nullptr);
  EXPECT_DOUBLE_EQ(agent.learned(key)->final_window_segments, 80.0);

  // Three polls with a 30/130 retransmit delta each: 80 -> 40 -> 20 ->
  // withdrawn (20 * 0.5 = 10 <= c_min).
  source->next = {established(remote, 80, 30, 130)};
  agent.poll_once();
  EXPECT_DOUBLE_EQ(agent.learned(key)->final_window_segments, 40.0);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(remote, 10), 40u);

  source->next = {established(remote, 80, 60, 260)};
  agent.poll_once();
  EXPECT_DOUBLE_EQ(agent.learned(key)->final_window_segments, 20.0);

  source->next = {established(remote, 80, 90, 390)};
  agent.poll_once();
  EXPECT_EQ(agent.learned(key), nullptr);
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(remote, 10), 10u);
  EXPECT_EQ(agent.stats().staleness_decays, 2u);
  EXPECT_EQ(agent.stats().staleness_withdrawals, 1u);
}

TEST(StalenessGuardTest, MinSegmentsGateAndQuietPathsUntouched) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.alpha = 1.0;
  config.staleness_guard = true;
  config.staleness_min_segments = 100;
  auto scripted = std::make_unique<ScriptedStatsSource>();
  auto* source = scripted.get();
  core::RiptideAgent agent(net.sim, net.a, config, nullptr,
                           std::move(scripted));
  const auto remote = net.b.address();

  source->next = {established(remote, 80, 0, 0)};
  agent.poll_once();
  // 100% retransmit rate, but only 50 segments sent: below the gate.
  source->next = {established(remote, 80, 50, 50)};
  agent.poll_once();
  EXPECT_EQ(agent.stats().staleness_decays, 0u);
  EXPECT_DOUBLE_EQ(
      agent.learned(net::Prefix::host(remote))->final_window_segments, 80.0);
}

TEST(StalenessGuardTest, TupleReuseDoesNotInheritCounters) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.alpha = 1.0;
  config.staleness_guard = true;
  config.staleness_min_segments = 10;
  auto scripted = std::make_unique<ScriptedStatsSource>();
  auto* source = scripted.get();
  core::RiptideAgent agent(net.sim, net.a, config, nullptr,
                           std::move(scripted));
  const auto remote = net.b.address();

  source->next = {established(remote, 80, 500, 1000)};
  agent.poll_once();  // first contact: the full counters are the delta
  // A NEW connection on the same tuple starts its counters over; smaller
  // cumulative values signal the reuse, so no huge bogus delta appears.
  source->next = {established(remote, 80, 0, 50)};
  agent.poll_once();
  EXPECT_EQ(agent.stats().staleness_decays,
            1u);  // only the first poll's 500/1000 tripped the guard
}

// -------------------------------------------------- crash/restart/adoption

TEST(AgentCrashTest, ColdRestartAdoptsLeftoverRoutesUnderTtl) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.ttl = Time::seconds(30);
  core::RiptideAgent agent(net.sim, net.a, config);
  agent.start();  // first incarnation; polls are driven manually below
  agent.stop();
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const auto installed =
      net.a.routing_table().effective_initcwnd(net.b.address(), 10);
  ASSERT_GT(installed, 10u);

  agent.crash();
  EXPECT_EQ(agent.stats().crashes, 1u);
  EXPECT_FALSE(agent.running());
  EXPECT_EQ(agent.table().size(), 0u);  // in-memory state lost...
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            installed);  // ...but the programmed route is still live

  agent.start();
  agent.stop();  // adoption happens in start(); polling not needed here
  EXPECT_EQ(agent.stats().restarts, 1u);
  EXPECT_EQ(agent.stats().routes_adopted, 1u);
  ASSERT_NE(agent.learned(key), nullptr);
  EXPECT_DOUBLE_EQ(agent.learned(key)->final_window_segments,
                   static_cast<double>(installed));

  // The adopted route is back under TTL control: with the connection gone
  // and the TTL elapsed, it is withdrawn like any learned route.
  for (const auto& info : net.a.socket_stats()) {
    net.a.find_connection(info.tuple)->abort();
  }
  net.sim.run_until(net.sim.now() + Time::seconds(31));
  agent.poll_once();
  EXPECT_EQ(net.a.routing_table().effective_initcwnd(net.b.address(), 10),
            10u);
}

TEST(AgentCrashTest, WarmRestartRestoresSnapshotWithoutAdoption) {
  TwoHostNet net(Time::milliseconds(20));
  core::RiptideAgent agent(net.sim, net.a, agent_config());
  push_data(net, 500'000);
  agent.poll_once();
  const auto key = net::Prefix::host(net.b.address());
  const double learned = agent.learned(key)->final_window_segments;
  const auto updates = agent.learned(key)->updates;

  const core::ObservedTable snapshot = agent.snapshot_table();
  agent.crash();
  agent.restore_table(snapshot);
  agent.start();
  agent.stop();
  EXPECT_EQ(agent.stats().routes_adopted, 0u);  // snapshot already covers it
  ASSERT_NE(agent.learned(key), nullptr);
  EXPECT_DOUBLE_EQ(agent.learned(key)->final_window_segments, learned);
  EXPECT_EQ(agent.learned(key)->updates, updates);  // history intact
}

TEST(AgentCrashTest, CrashDropsPendingRetries) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.actuator_backoff = Time::milliseconds(100);
  auto faulty = std::make_unique<faults::FaultyRouteProgrammer>(
      net.sim, std::make_unique<core::HostRouteProgrammer>(net.a),
      sim::Rng(1));
  auto* programmer = faulty.get();
  core::RiptideAgent agent(net.sim, net.a, config, std::move(faulty));
  push_data(net, 500'000);

  programmer->fail_next(1);
  agent.poll_once();
  ASSERT_EQ(agent.pending_actuator_ops(), 1u);
  agent.crash();
  EXPECT_EQ(agent.pending_actuator_ops(), 0u);
  const auto routes_set = agent.stats().routes_set;
  net.sim.run_until(net.sim.now() + Time::seconds(2));
  EXPECT_EQ(agent.stats().routes_set, routes_set);  // no zombie retry fired
}

// -------------------------------------------------------------- poll jitter

TEST(PollJitterTest, JitterShiftsTheFirstPollDeterministically) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.update_interval = Time::seconds(1);
  config.poll_jitter_fraction = 1.0;
  sim::Rng rng(123);
  core::RiptideAgent agent(net.sim, net.a, config, nullptr, nullptr, &rng);
  agent.start();
  net.sim.run_until(Time::seconds(1));
  EXPECT_EQ(agent.stats().polls, 0u);  // phase pushed past the interval
  net.sim.run_until(Time::seconds(2) + Time::milliseconds(1));
  EXPECT_GE(agent.stats().polls, 1u);
}

TEST(PollJitterTest, DefaultOffKeepsExactSchedule) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.update_interval = Time::seconds(1);
  core::RiptideAgent agent(net.sim, net.a, config);
  agent.start();
  net.sim.run_until(Time::seconds(1));
  EXPECT_EQ(agent.stats().polls, 1u);
}

TEST(PollJitterTest, JitterWithoutRngIsRejected) {
  TwoHostNet net(Time::milliseconds(20));
  auto config = agent_config();
  config.poll_jitter_fraction = 0.5;
  EXPECT_THROW(core::RiptideAgent(net.sim, net.a, config),
               std::invalid_argument);
}

// ----------------------------------------------------------- FaultInjector

cdn::TopologyConfig small_topology_config() {
  cdn::TopologyConfig config;
  config.hosts_per_pop = 1;
  return config;
}

std::vector<cdn::PopSpec> small_pops(std::size_t n) {
  auto specs = cdn::default_pop_specs();
  specs.resize(n);
  return specs;
}

TEST(FaultInjectorTest, FlapTogglesBothDirectionsOnSchedule) {
  sim::Simulator sim;
  cdn::Topology topo(sim, small_topology_config(), small_pops(3));
  FaultPlan plan;
  plan.link_flap(Time::seconds(1), 0, 1, Time::seconds(2), 3);
  faults::FaultInjector injector(sim, topo, plan);
  injector.arm();

  sim.run_until(Time::milliseconds(500));
  EXPECT_TRUE(topo.wan_link(0, 1).is_up());
  sim.run_until(Time::seconds(2));  // down leg at t=1
  EXPECT_FALSE(topo.wan_link(0, 1).is_up());
  EXPECT_FALSE(topo.wan_link(1, 0).is_up());
  sim.run_until(Time::seconds(4));  // up leg at t=3
  EXPECT_TRUE(topo.wan_link(0, 1).is_up());
  sim.run_until(Time::seconds(6));  // final down leg at t=5
  EXPECT_FALSE(topo.wan_link(0, 1).is_up());
  EXPECT_EQ(injector.stats().link_transitions, 3u);
  EXPECT_EQ(injector.stats().events_fired, 3u);
}

TEST(FaultInjectorTest, BurstsRestorePreviousParameters) {
  sim::Simulator sim;
  cdn::Topology topo(sim, small_topology_config(), small_pops(2));
  const double base_loss = topo.wan_link(0, 1).config().loss_probability;
  const double base_rate = topo.wan_link(0, 1).config().rate_bps;
  const Time base_delay = topo.wan_link(0, 1).config().propagation_delay;

  FaultPlan plan;
  plan.loss_burst(Time::seconds(1), 0, 1, 0.25, Time::seconds(2))
      .rate_factor(Time::seconds(1), 0, 1, 0.5, Time::seconds(2))
      .extra_delay(Time::seconds(1), 0, 1, 40.0, Time::seconds(2));
  faults::FaultInjector injector(sim, topo, plan);
  injector.arm();

  sim.run_until(Time::seconds(2));
  EXPECT_DOUBLE_EQ(topo.wan_link(0, 1).config().loss_probability, 0.25);
  EXPECT_DOUBLE_EQ(topo.wan_link(0, 1).config().rate_bps, base_rate * 0.5);
  EXPECT_EQ(topo.wan_link(0, 1).config().propagation_delay,
            base_delay + Time::milliseconds(40));

  sim.run_until(Time::seconds(4));
  EXPECT_DOUBLE_EQ(topo.wan_link(0, 1).config().loss_probability, base_loss);
  EXPECT_DOUBLE_EQ(topo.wan_link(0, 1).config().rate_bps, base_rate);
  EXPECT_EQ(topo.wan_link(0, 1).config().propagation_delay, base_delay);
  EXPECT_EQ(injector.stats().bursts_applied, 3u);
  EXPECT_EQ(injector.stats().bursts_restored, 3u);
}

TEST(FaultInjectorTest, ValidatesAgainstTopologyAndAgents) {
  sim::Simulator sim;
  cdn::Topology topo(sim, small_topology_config(), small_pops(2));
  {
    FaultPlan plan;
    plan.link_down(Time::seconds(1), 0, 5);  // PoP 5 does not exist
    faults::FaultInjector injector(sim, topo, plan);
    EXPECT_THROW(injector.arm(), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.agent_crash(Time::seconds(1), 3, Time::seconds(1), false);
    faults::FaultInjector injector(sim, topo, plan);  // no agents registered
    EXPECT_THROW(injector.arm(), std::invalid_argument);
  }
}

// -------------------------------------------- harness + acceptance scenario

cdn::ExperimentConfig harness_world(std::uint64_t seed) {
  cdn::ExperimentConfig config;
  config.pop_specs = small_pops(3);
  config.topology.hosts_per_pop = 1;
  config.riptide_enabled = true;
  config.riptide.update_interval = Time::seconds(1);
  config.probe.interval = Time::seconds(2);
  config.duration = Time::seconds(60);
  config.seed = seed;
  return config;
}

TEST(FaultHarnessTest, InstallWiresDecoratorsOntoEveryAgent) {
  auto config = harness_world(1);
  faults::FaultHarness::install(config, FaultPlan{});
  cdn::Experiment experiment(config);
  auto* harness = faults::FaultHarness::from(experiment);
  ASSERT_NE(harness, nullptr);
  ASSERT_EQ(harness->injector().hooks().size(), experiment.agents().size());
  for (const auto& hooks : harness->injector().hooks()) {
    EXPECT_NE(hooks.agent, nullptr);
    EXPECT_NE(hooks.actuator, nullptr);
    EXPECT_NE(hooks.stats_source, nullptr);
  }
}

TEST(FaultHarnessTest, ExperimentWithoutHarnessHasNoExtension) {
  auto config = harness_world(1);
  cdn::Experiment experiment(config);
  EXPECT_EQ(faults::FaultHarness::from(experiment), nullptr);
}

// The acceptance scenario: a flapping WAN link plus an actuator failing
// 30% of route programs. The run must complete (no crash, no unhandled
// exception), retry/backoff must have engaged, and the staleness guard
// must have decayed or withdrawn windows on the flapping path.
TEST(FaultHarnessTest, AcceptanceFlappingLinkWithFailingActuator) {
  auto config = harness_world(7);
  config.duration = Time::seconds(90);
  config.riptide.staleness_guard = true;
  // The flap outages are short; judge the retransmit rate aggressively so
  // the guard reacts within them.
  config.riptide.staleness_min_segments = 1;
  config.riptide.staleness_retrans_fraction = 0.05;
  faults::FaultHarness::install(
      config,
      FaultPlan::parse("@10 flap 0-1 5 8; @5 actuator-fail 0.3 70"));

  cdn::Experiment experiment(config);
  experiment.run();
  EXPECT_EQ(experiment.simulator().now(), Time::seconds(90));

  auto* harness = faults::FaultHarness::from(experiment);
  ASSERT_NE(harness, nullptr);
  EXPECT_EQ(harness->injector().stats().link_transitions, 8u);
  EXPECT_GT(harness->actuator_totals().failures_injected, 0u);

  core::AgentStats totals;
  for (const auto& agent : experiment.agents()) {
    const auto& s = agent->stats();
    totals.actuator_failures += s.actuator_failures;
    totals.actuator_retries += s.actuator_retries;
    totals.staleness_decays += s.staleness_decays;
    totals.staleness_withdrawals += s.staleness_withdrawals;
    totals.routes_set += s.routes_set;
  }
  EXPECT_GT(totals.actuator_failures, 0u);
  EXPECT_GT(totals.actuator_retries, 0u);  // retry/backoff engaged
  EXPECT_GT(totals.routes_set, 0u);        // and the agent still made progress
  EXPECT_GT(totals.staleness_decays + totals.staleness_withdrawals, 0u);
  EXPECT_GT(experiment.topology().drop_totals().link_down, 0u);
}

TEST(FaultHarnessTest, CrashPlanRestartsAgentsInsideExperiment) {
  auto config = harness_world(3);
  config.duration = Time::seconds(40);
  FaultPlan plan;
  plan.agent_crash(Time::seconds(10), -1, Time::seconds(5), /*warm=*/true);
  faults::FaultHarness::install(config, plan);
  cdn::Experiment experiment(config);
  experiment.run();

  for (const auto& agent : experiment.agents()) {
    EXPECT_EQ(agent->stats().crashes, 1u);
    EXPECT_EQ(agent->stats().restarts, 1u);
    EXPECT_TRUE(agent->running());
  }
  auto* harness = faults::FaultHarness::from(experiment);
  EXPECT_EQ(harness->injector().stats().crashes_injected,
            experiment.agents().size());
}

// ------------------------------------- durable-state faults (PR: persist)

TEST(FaultPlanTest, ParsesDurableStateEvents) {
  const auto plan = FaultPlan::parse(
      "@10 crash -1 5 reboot-warm; @11 crash 0 5 reboot-cold; "
      "@12 snap-corrupt -1 13; @13 route-drift 0 0.5 0.25");
  ASSERT_EQ(plan.size(), 4u);
  const auto& warm = plan.events()[0];
  EXPECT_EQ(warm.kind, FaultKind::kAgentCrash);
  EXPECT_TRUE(warm.warm);
  EXPECT_TRUE(warm.flush_routes);
  const auto& cold = plan.events()[1];
  EXPECT_FALSE(cold.warm);
  EXPECT_TRUE(cold.flush_routes);
  EXPECT_EQ(cold.host_index, 0);
  const auto& corrupt = plan.events()[2];
  EXPECT_EQ(corrupt.kind, FaultKind::kSnapshotCorrupt);
  EXPECT_EQ(corrupt.host_index, -1);
  EXPECT_DOUBLE_EQ(corrupt.value, 13.0);
  const auto& drift = plan.events()[3];
  EXPECT_EQ(drift.kind, FaultKind::kRouteDrift);
  EXPECT_DOUBLE_EQ(drift.value, 0.5);
  EXPECT_DOUBLE_EQ(drift.value2, 0.25);
}

TEST(FaultPlanTest, RejectsMalformedDurableStateSpecs) {
  EXPECT_THROW(FaultPlan::parse("@5 crash -1 5 tepid"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 snap-corrupt -1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 snap-corrupt -1 -3"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 route-drift -1 0.5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("@5 route-drift -1 1.5 0.2"),
               std::invalid_argument);
}

TEST(FaultInjectorTest, RouteDriftFractionsValidatedAtArmTime) {
  sim::Simulator sim;
  cdn::Topology topo(sim, small_topology_config(), small_pops(2));
  FaultPlan plan;
  // The builder is not the only producer of events; arm() re-validates.
  plan.route_drift(Time::seconds(1), -1, 0.5, 2.0);
  faults::FaultInjector injector(sim, topo, plan);
  EXPECT_THROW(injector.arm(), std::invalid_argument);
}

// Reboot-warm: the crash flushes learned routes (host reboot, not process
// death), and the restart restores the checkpointed table AND reprograms
// the routes before the first poll — the jump-start the paper is about.
TEST(FaultHarnessTest, RebootWarmRestoresRoutesFromCheckpoints) {
  auto config = harness_world(5);
  config.duration = Time::seconds(40);
  config.riptide.checkpoint_interval = Time::seconds(2);
  faults::FaultHarness::install(config,
                                FaultPlan::parse("@20 crash -1 5 reboot-warm"));
  cdn::Experiment experiment(config);
  experiment.run();

  auto* harness = faults::FaultHarness::from(experiment);
  ASSERT_NE(harness, nullptr);
  EXPECT_GT(harness->injector().stats().routes_flushed, 0u);
  const auto persist = harness->checkpointer_totals();
  EXPECT_GT(persist.checkpoints_written, 0u);
  EXPECT_EQ(persist.restores, experiment.agents().size());
  EXPECT_GT(persist.records_recovered, 0u);
  for (const auto& agent : experiment.agents()) {
    EXPECT_TRUE(agent->running());
    EXPECT_EQ(agent->stats().crashes, 1u);
    // The restored table is live, not just in memory: routes exist again.
    EXPECT_GT(agent->host().routing_table().learned_routes().size(), 0u);
  }
}

// Reboot-cold inside the same world: no checkpointer, so the flush leaves
// the restarted agent to re-learn from scratch (adoption finds nothing).
TEST(FaultHarnessTest, RebootColdRelearnsWithoutAdoption) {
  auto config = harness_world(5);
  config.duration = Time::seconds(40);
  faults::FaultHarness::install(config,
                                FaultPlan::parse("@20 crash -1 5 reboot-cold"));
  cdn::Experiment experiment(config);
  experiment.run();

  auto* harness = faults::FaultHarness::from(experiment);
  EXPECT_GT(harness->injector().stats().routes_flushed, 0u);
  EXPECT_EQ(harness->checkpointer_totals().checkpoints_written, 0u);
  for (const auto& agent : experiment.agents()) {
    EXPECT_TRUE(agent->running());
    EXPECT_EQ(agent->stats().routes_adopted, 0u);  // flush left nothing
  }
}

// Corrupting the newest snapshot before a reboot-warm restart must fall
// back to the previous generation — never crash, hang, or restore wrong
// bytes.
TEST(FaultHarnessTest, SnapshotCorruptionFallsBackToOlderGeneration) {
  auto config = harness_world(5);
  config.duration = Time::seconds(40);
  config.riptide.checkpoint_interval = Time::seconds(2);
  faults::FaultHarness::install(
      config,
      FaultPlan::parse("@19 snap-corrupt -1 13; @20 crash -1 5 reboot-warm"));
  cdn::Experiment experiment(config);
  experiment.run();

  auto* harness = faults::FaultHarness::from(experiment);
  EXPECT_EQ(harness->injector().stats().snapshots_corrupted,
            experiment.agents().size());
  const auto persist = harness->checkpointer_totals();
  EXPECT_EQ(persist.snapshots_rejected, experiment.agents().size());
  EXPECT_EQ(persist.restores, experiment.agents().size());
  for (const auto& agent : experiment.agents()) {
    EXPECT_TRUE(agent->running());
  }
}

}  // namespace
}  // namespace riptide

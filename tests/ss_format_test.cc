// Tests for the textual `ss` surface: formatting, parsing, robustness to
// garbage, and the agent's text-interface equivalence.

#include <gtest/gtest.h>

#include <sstream>

#include "cdn/metrics.h"
#include "core/agent.h"
#include "host/ss_format.h"
#include "test_util.h"

namespace riptide::host {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

SocketInfo sample_info() {
  SocketInfo info;
  info.tuple = {net::Ipv4Address(10, 0, 0, 1), 42'000,
                net::Ipv4Address(10, 1, 0, 1), 9000};
  info.state = tcp::TcpState::kEstablished;
  info.cwnd_segments = 34;
  info.bytes_acked = 123'456;
  info.bytes_in_flight = 2920;
  info.srtt = Time::from_milliseconds(120.5);
  return info;
}

TEST(SsFormatTest, FormatsOneLinePerConnection) {
  const std::string text = format_socket_stats({sample_info(), sample_info()});
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("ESTAB 10.0.0.1:42000 10.1.0.1:9000"),
            std::string::npos);
  EXPECT_NE(text.find("cwnd:34"), std::string::npos);
  EXPECT_NE(text.find("bytes_acked:123456"), std::string::npos);
  EXPECT_NE(text.find("rtt:120.5"), std::string::npos);
  EXPECT_NE(text.find("unacked:2920"), std::string::npos);
}

TEST(SsFormatTest, RoundTripPreservesFields) {
  const auto parsed = parse_socket_stats(format_socket_stats({sample_info()}));
  ASSERT_EQ(parsed.size(), 1u);
  const auto& p = parsed[0];
  EXPECT_EQ(p.state, tcp::TcpState::kEstablished);
  EXPECT_EQ(p.local_addr, net::Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(p.local_port, 42'000);
  EXPECT_EQ(p.remote_addr, net::Ipv4Address(10, 1, 0, 1));
  EXPECT_EQ(p.remote_port, 9000);
  EXPECT_EQ(p.cwnd_segments, 34u);
  EXPECT_EQ(p.bytes_acked, 123'456u);
  EXPECT_NEAR(p.rtt_ms, 120.5, 0.01);
  EXPECT_EQ(p.bytes_in_flight, 2920u);
}

TEST(SsFormatTest, UnsampledRttRendersAsDash) {
  auto info = sample_info();
  info.srtt.reset();
  const auto parsed = parse_socket_stats(format_socket_stats({info}));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed[0].rtt_ms, -1.0);
}

TEST(SsFormatTest, AllStatesRoundTrip) {
  for (auto state :
       {tcp::TcpState::kSynSent, tcp::TcpState::kSynReceived,
        tcp::TcpState::kEstablished, tcp::TcpState::kFinWait1,
        tcp::TcpState::kFinWait2, tcp::TcpState::kCloseWait,
        tcp::TcpState::kClosing, tcp::TcpState::kLastAck,
        tcp::TcpState::kTimeWait, tcp::TcpState::kClosed}) {
    auto info = sample_info();
    info.state = state;
    const auto parsed = parse_socket_stats(format_socket_stats({info}));
    ASSERT_EQ(parsed.size(), 1u) << to_string(state);
    EXPECT_EQ(parsed[0].state, state);
  }
}

TEST(SsFormatTest, MalformedLinesSkippedNotFatal) {
  const std::string text =
      "this is not an ss line\n"
      "ESTAB 10.0.0.1:1 10.0.0.2:2 cwnd:10 bytes_acked:5 rtt:1.0 unacked:0\n"
      "ESTAB garbage_endpoint 10.0.0.2:2 cwnd:10\n"
      "WEIRD-STATE 10.0.0.1:1 10.0.0.2:2 cwnd:10\n"
      "ESTAB 10.0.0.1:1 10.0.0.2:2 bytes_acked:5\n"  // missing cwnd
      "ESTAB 10.0.0.1:1 10.0.0.2:2 cwnd:notanumber\n"
      "\n";
  const auto parsed = parse_socket_stats(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].cwnd_segments, 10u);
}

TEST(SsFormatTest, UnknownKeysIgnored) {
  const std::string text =
      "ESTAB 10.0.0.1:1 10.0.0.2:2 cwnd:22 ssthresh:7 pacing_rate:99 "
      "bytes_acked:13 rtt:2.5 unacked:0 newfield:x\n";
  const auto parsed = parse_socket_stats(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].cwnd_segments, 22u);
  EXPECT_EQ(parsed[0].bytes_acked, 13u);
}

TEST(SsFormatTest, EmptyInputEmptyOutput) {
  EXPECT_TRUE(parse_socket_stats("").empty());
  EXPECT_TRUE(format_socket_stats({}).empty());
}

TEST(SsFormatTest, LiveHostRoundTrip) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.listen(80, [](tcp::TcpConnection&) {});
  tcp::TcpConnection::Callbacks cbs;
  net.a.connect(net.b.address(), 80, std::move(cbs));
  net.sim.run_until(Time::milliseconds(100));
  const auto parsed =
      parse_socket_stats(format_socket_stats(net.a.socket_stats()));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].remote_addr, net.b.address());
  EXPECT_EQ(parsed[0].cwnd_segments, 10u);
}

// The agent learns identical windows whether it reads memory or text.
TEST(SsFormatTest, AgentViaTextInterfaceMatchesDirect) {
  auto run = [](bool via_text) {
    TwoHostNet net(Time::milliseconds(20));
    net.b.listen(9900, [](tcp::TcpConnection& conn) {
      tcp::TcpConnection::Callbacks cbs;
      conn.set_callbacks(std::move(cbs));
    });
    core::RiptideConfig config;
    config.alpha = 0.0;
    config.via_text_interface = via_text;
    core::RiptideAgent agent(net.sim, net.a, config);
    tcp::TcpConnection::Callbacks cbs;
    auto& conn = net.a.connect(net.b.address(), 9900, std::move(cbs));
    net.sim.run_until(Time::milliseconds(100));
    conn.send(400'000);
    net.sim.run_until(Time::seconds(5));
    agent.poll_once();
    const auto* learned =
        agent.learned(net::Prefix::host(net.b.address()));
    return learned == nullptr ? -1.0 : learned->final_window_segments;
  };
  const double direct = run(false);
  const double text = run(true);
  ASSERT_GT(direct, 0.0);
  EXPECT_DOUBLE_EQ(direct, text);
}

}  // namespace
}  // namespace riptide::host

namespace riptide::cdn {
namespace {

TEST(MetricsCsvTest, FlowsCsvHasHeaderAndRows) {
  MetricsCollector metrics;
  metrics.record_flow({0, 1, 50'000, sim::Time::seconds(1),
                       sim::Time::milliseconds(250), true, 80.0});
  std::ostringstream os;
  metrics.write_flows_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("started_ms,duration_ms,src_pop"), std::string::npos);
  EXPECT_NE(csv.find("1000,250,0,1,50000,1,80"), std::string::npos);
}

TEST(MetricsCsvTest, CwndCsvHasHeaderAndRows) {
  MetricsCollector metrics;
  metrics.record_cwnd({3, 42, sim::Time::seconds(2)});
  std::ostringstream os;
  metrics.write_cwnd_csv(os);
  EXPECT_NE(os.str().find("at_ms,pop,cwnd_segments"), std::string::npos);
  EXPECT_NE(os.str().find("2000,3,42"), std::string::npos);
}

TEST(MetricsCsvTest, EmptyCollectorOnlyHeaders) {
  MetricsCollector metrics;
  std::ostringstream flows, cwnds;
  metrics.write_flows_csv(flows);
  metrics.write_cwnd_csv(cwnds);
  const std::string flows_csv = flows.str();
  const std::string cwnds_csv = cwnds.str();
  EXPECT_EQ(std::count(flows_csv.begin(), flows_csv.end(), '\n'), 1);
  EXPECT_EQ(std::count(cwnds_csv.begin(), cwnds_csv.end(), '\n'), 1);
}

}  // namespace
}  // namespace riptide::cdn

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "host/host.h"
#include "test_util.h"

namespace riptide::tcp {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

constexpr std::uint16_t kPort = 80;

// Sets host `b` up as an object server: after every `request_bytes`
// received it sends `object_bytes` back.
void serve_objects(host::Host& server, std::uint64_t object_bytes,
                   std::uint32_t request_bytes = 200,
                   std::uint16_t port = kPort) {
  server.listen(port, [object_bytes, request_bytes](TcpConnection& conn) {
    auto pending = std::make_shared<std::uint64_t>(0);
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&conn, pending, object_bytes,
                   request_bytes](std::uint64_t bytes) {
      *pending += bytes;
      while (*pending >= request_bytes) {
        *pending -= request_bytes;
        conn.send(object_bytes);
      }
    };
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });
}

struct FetchResult {
  std::optional<Time> completed_at;
  TcpConnection* conn = nullptr;
  std::uint64_t received = 0;
  bool closed = false;
  bool reset = false;
};

// Opens a connection a->b, requests one object, records completion time.
// Results are parked in a process-lifetime arena: the callbacks capture
// the pointer, and the connection can outlive the calling scope.
FetchResult* fetch_object(TwoHostNet& net, std::uint64_t object_bytes,
                          std::uint16_t port = kPort) {
  static std::vector<std::unique_ptr<FetchResult>> arena;
  auto* result = arena.emplace_back(std::make_unique<FetchResult>()).get();
  TcpConnection::Callbacks cbs;
  cbs.on_established = [result] { result->conn->send(200); };
  cbs.on_data = [result, object_bytes, &net](std::uint64_t bytes) {
    result->received += bytes;
    if (result->received >= object_bytes && !result->completed_at) {
      result->completed_at = net.sim.now();
    }
  };
  cbs.on_closed = [result](bool reset) {
    result->closed = true;
    result->reset = reset;
  };
  result->conn = &net.a.connect(net.b.address(), port, std::move(cbs));
  return result;
}

// ---------------------------------------------------------- basic lifecycle

TEST(TcpConnectionTest, HandshakeEstablishesBothEnds) {
  TwoHostNet net(Time::milliseconds(50));
  bool server_established = false;
  net.b.listen(kPort, [&](TcpConnection& conn) {
    TcpConnection::Callbacks cbs;
    cbs.on_established = [&] { server_established = true; };
    conn.set_callbacks(std::move(cbs));
  });

  bool client_established = false;
  TcpConnection::Callbacks cbs;
  cbs.on_established = [&] { client_established = true; };
  auto& conn = net.a.connect(net.b.address(), kPort, std::move(cbs));

  net.sim.run_until(Time::milliseconds(99));
  EXPECT_FALSE(client_established);  // SYN-ACK arrives at t = 100 ms
  net.sim.run_until(Time::milliseconds(101));
  EXPECT_TRUE(client_established);
  EXPECT_EQ(conn.state(), TcpState::kEstablished);
  net.sim.run_until(Time::milliseconds(200));
  EXPECT_TRUE(server_established);
}

TEST(TcpConnectionTest, HandshakeSeedsRttEstimate) {
  TwoHostNet net(Time::milliseconds(50));
  serve_objects(net.b, 1000);
  auto* fetch = fetch_object(net, 1000);
  net.sim.run_until(Time::milliseconds(500));
  ASSERT_TRUE(fetch->conn->srtt().has_value());
  EXPECT_NEAR(fetch->conn->srtt()->to_milliseconds(), 100.0, 5.0);
}

TEST(TcpConnectionTest, SmallObjectFetchCompletesInTwoRtts) {
  // Handshake (1 RTT) + request/response (1 RTT): ~200 ms end to end.
  TwoHostNet net(Time::milliseconds(50));
  serve_objects(net.b, 10'000);
  auto* fetch = fetch_object(net, 10'000);
  net.sim.run_until(Time::seconds(2));
  ASSERT_TRUE(fetch->completed_at.has_value());
  EXPECT_NEAR(fetch->completed_at->to_milliseconds(), 200.0, 20.0);
}

TEST(TcpConnectionTest, ByteAccountingMatches) {
  TwoHostNet net(Time::milliseconds(10));
  serve_objects(net.b, 5'000);
  auto* fetch = fetch_object(net, 5'000);
  net.sim.run_until(Time::seconds(2));
  ASSERT_TRUE(fetch->completed_at.has_value());
  EXPECT_EQ(fetch->conn->bytes_received(), 5'000u);
  EXPECT_EQ(fetch->conn->bytes_acked(), 200u);  // the request
}

TEST(TcpConnectionTest, ConnectionReuseServesSecondRequest) {
  TwoHostNet net(Time::milliseconds(50));
  serve_objects(net.b, 10'000);
  auto* fetch = fetch_object(net, 10'000);
  net.sim.run_until(Time::seconds(2));
  ASSERT_TRUE(fetch->completed_at.has_value());

  // Second request on the same (idle) connection: no handshake this time.
  fetch->received = 0;
  fetch->completed_at.reset();
  const Time start = net.sim.now();
  fetch->conn->send(200);
  net.sim.run_until(start + Time::seconds(2));
  ASSERT_TRUE(fetch->completed_at.has_value());
  EXPECT_NEAR((*fetch->completed_at - start).to_milliseconds(), 100.0, 20.0);
}

// ------------------------------------------------------------- initcwnd

TEST(TcpConnectionTest, LargerInitcwndSavesRoundTrips) {
  // 50 KB = 35 segments. IW10 needs 3 data round trips (10/20/5), IW50
  // needs 1. Both sides must allow the burst (initrwnd raised on server).
  const std::uint64_t object = 50'000;

  TwoHostNet slow(Time::milliseconds(50));
  serve_objects(slow.b, object);
  auto* f1 = fetch_object(slow, object);
  slow.sim.run_until(Time::seconds(5));
  ASSERT_TRUE(f1->completed_at.has_value());

  TwoHostNet fast(Time::milliseconds(50));
  // Riptide-style route programming on the data sender (b), plus a big
  // enough advertised receive window on the requester (a).
  fast.b.routing_table().add_or_replace(
      net::Prefix::host(fast.a.address()),
      *fast.b.routing_table().lookup(fast.a.address())->device,
      host::RouteMetrics{50, 100});
  fast.a.default_config().initial_rwnd_segments = 100;
  serve_objects(fast.b, object);
  auto* f2 = fetch_object(fast, object);
  fast.sim.run_until(Time::seconds(5));
  ASSERT_TRUE(f2->completed_at.has_value());

  // IW10: handshake + ~3 RTT = ~400 ms. IW50: handshake + 1 RTT = ~200 ms.
  EXPECT_GT(f1->completed_at->to_milliseconds(), 350.0);
  EXPECT_LT(f2->completed_at->to_milliseconds(), 250.0);
}

TEST(TcpConnectionTest, SmallPeerInitrwndLimitsFirstBurst) {
  // The §III-C hazard: a big initcwnd is useless if the peer's initial
  // receive window can't absorb the burst.
  const std::uint64_t object = 50'000;
  TwoHostNet net(Time::milliseconds(50));
  net.b.routing_table().add_or_replace(
      net::Prefix::host(net.a.address()),
      *net.b.routing_table().lookup(net.a.address())->device,
      host::RouteMetrics{50, 100});
  net.a.default_config().initial_rwnd_segments = 10;  // tiny receive window
  serve_objects(net.b, object);
  auto* fetch = fetch_object(net, object);
  net.sim.run_until(Time::seconds(5));
  ASSERT_TRUE(fetch->completed_at.has_value());
  // Flow control forces extra round trips despite initcwnd 50.
  EXPECT_GT(fetch->completed_at->to_milliseconds(), 280.0);
}

TEST(TcpConnectionTest, AcceptedConnectionUsesRouteInitcwnd) {
  TwoHostNet net(Time::milliseconds(10));
  net.b.routing_table().add_or_replace(
      net::Prefix::host(net.a.address()),
      *net.b.routing_table().lookup(net.a.address())->device,
      host::RouteMetrics{42, 0});
  TcpConnection* accepted = nullptr;
  net.b.listen(kPort, [&](TcpConnection& conn) { accepted = &conn; });
  fetch_object(net, 1000);
  net.sim.run_until(Time::milliseconds(100));
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->config().initial_cwnd_segments, 42u);
  EXPECT_EQ(accepted->cwnd_segments(), 42u);
}

// ----------------------------------------------------------- loss recovery

TEST(TcpConnectionTest, FastRetransmitRecoversSingleLoss) {
  TwoHostNet net(Time::milliseconds(50));
  serve_objects(net.b, 100'000);
  net.filter_ba.drop_next_data_packets(1);  // first data segment b -> a
  auto* fetch = fetch_object(net, 100'000);
  net.sim.run_until(Time::seconds(10));
  ASSERT_TRUE(fetch->completed_at.has_value());
  EXPECT_EQ(fetch->received, 100'000u);

  // The server-side connection performed a fast retransmit, not an RTO.
  const auto infos = net.b.socket_stats();
  ASSERT_EQ(infos.size(), 1u);
  auto* server_conn = net.b.find_connection(infos[0].tuple);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_GE(server_conn->stats().fast_retransmits, 1u);
  EXPECT_EQ(server_conn->stats().timeouts, 0u);
}

TEST(TcpConnectionTest, RtoRecoversFullFlightLoss) {
  TwoHostNet net(Time::milliseconds(50));
  serve_objects(net.b, 30'000);
  net.filter_ba.drop_next_data_packets(10);  // entire first window
  auto* fetch = fetch_object(net, 30'000);
  net.sim.run_until(Time::seconds(20));
  ASSERT_TRUE(fetch->completed_at.has_value());
  EXPECT_EQ(fetch->received, 30'000u);
}

TEST(TcpConnectionTest, SynLossRetriesAndConnects) {
  TwoHostNet net(Time::milliseconds(10));
  int syns_dropped = 0;
  net.filter_ab.set_drop_predicate([&](const net::Packet& p) {
    const auto* seg = dynamic_cast<const Segment*>(p.payload.get());
    if (seg != nullptr && seg->syn && syns_dropped < 1) {
      ++syns_dropped;
      return true;
    }
    return false;
  });
  serve_objects(net.b, 1000);
  auto* fetch = fetch_object(net, 1000);
  net.sim.run_until(Time::seconds(5));
  ASSERT_TRUE(fetch->completed_at.has_value());
  EXPECT_EQ(syns_dropped, 1);
  // Retried after the 1 s initial RTO.
  EXPECT_GT(fetch->completed_at->to_milliseconds(), 1000.0);
}

TEST(TcpConnectionTest, SynAckLossHandledByClientSynRetry) {
  TwoHostNet net(Time::milliseconds(10));
  int dropped = 0;
  net.filter_ba.set_drop_predicate([&](const net::Packet& p) {
    const auto* seg = dynamic_cast<const Segment*>(p.payload.get());
    if (seg != nullptr && seg->syn && seg->ack_flag && dropped < 1) {
      ++dropped;
      return true;
    }
    return false;
  });
  serve_objects(net.b, 1000);
  auto* fetch = fetch_object(net, 1000);
  net.sim.run_until(Time::seconds(5));
  ASSERT_TRUE(fetch->completed_at.has_value());
  EXPECT_EQ(dropped, 1);
}

TEST(TcpConnectionTest, UnreachableServiceGetsReset) {
  TwoHostNet net(Time::milliseconds(10));
  auto* fetch = fetch_object(net, 1000, /*port=*/12345);  // nobody listens
  net.sim.run_until(Time::seconds(1));
  EXPECT_TRUE(fetch->closed);
  EXPECT_TRUE(fetch->reset);
  EXPECT_EQ(net.b.stats().rst_sent, 1u);
}

TEST(TcpConnectionTest, GivesUpAfterMaxSynRetries) {
  tcp::TcpConfig config;
  config.max_syn_retries = 2;
  TwoHostNet net(Time::milliseconds(10), 1e9, config);
  net.filter_ab.set_drop_predicate([](const net::Packet&) { return true; });
  auto* fetch = fetch_object(net, 1000);
  net.sim.run_until(Time::seconds(60));
  EXPECT_TRUE(fetch->closed);
  EXPECT_TRUE(fetch->reset);
}

// ------------------------------------------------------------------ close

TEST(TcpConnectionTest, GracefulCloseReachesClosedOnBothSides) {
  TwoHostNet net(Time::milliseconds(10));
  serve_objects(net.b, 1000);
  auto* fetch = fetch_object(net, 1000);
  net.sim.run_until(Time::seconds(1));
  ASSERT_TRUE(fetch->completed_at.has_value());

  fetch->conn->close();
  net.sim.run_until(net.sim.now() + Time::seconds(10));  // past TIME_WAIT
  EXPECT_TRUE(fetch->closed);
  EXPECT_FALSE(fetch->reset);
  EXPECT_EQ(net.a.connection_count(), 0u);
  EXPECT_EQ(net.b.connection_count(), 0u);
}

TEST(TcpConnectionTest, CloseWithPendingDataDrainsFirst) {
  TwoHostNet net(Time::milliseconds(50));
  std::uint64_t server_received = 0;
  net.b.listen(kPort, [&](TcpConnection& conn) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::uint64_t bytes) { server_received += bytes; };
    cbs.on_peer_closed = [&conn] { conn.close(); };
    conn.set_callbacks(std::move(cbs));
  });

  TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), kPort, std::move(cbs));
  net.sim.run_until(Time::milliseconds(150));
  conn.send(100'000);
  conn.close();  // FIN must wait for 100 KB to drain
  net.sim.run_until(Time::seconds(20));
  EXPECT_EQ(server_received, 100'000u);
  EXPECT_EQ(net.a.connection_count(), 0u);
}

TEST(TcpConnectionTest, SendAfterCloseThrows) {
  TwoHostNet net(Time::milliseconds(10));
  serve_objects(net.b, 1000);
  auto* fetch = fetch_object(net, 1000);
  net.sim.run_until(Time::seconds(1));
  fetch->conn->close();
  EXPECT_THROW(fetch->conn->send(100), std::logic_error);
}

TEST(TcpConnectionTest, AbortSendsRstAndTearsDownPeer) {
  TwoHostNet net(Time::milliseconds(10));
  serve_objects(net.b, 1000);
  auto* fetch = fetch_object(net, 1000);
  net.sim.run_until(Time::seconds(1));
  ASSERT_TRUE(fetch->completed_at.has_value());
  fetch->conn->abort();
  net.sim.run_until(net.sim.now() + Time::seconds(1));
  EXPECT_TRUE(fetch->closed);
  EXPECT_TRUE(fetch->reset);
  EXPECT_EQ(net.b.connection_count(), 0u);
}

TEST(TcpConnectionTest, TimeWaitStateEntered) {
  tcp::TcpConfig config;
  config.time_wait_duration = sim::Time::seconds(30);
  TwoHostNet net(Time::milliseconds(10), 1e9, config);
  serve_objects(net.b, 1000);
  auto* fetch = fetch_object(net, 1000);
  net.sim.run_until(Time::seconds(1));
  fetch->conn->close();
  net.sim.run_until(Time::seconds(2));
  // Active closer should be parked in TIME_WAIT until the timer fires.
  EXPECT_EQ(fetch->conn->state(), TcpState::kTimeWait);
  net.sim.run_until(Time::seconds(40));
  EXPECT_TRUE(fetch->closed);
}

// ------------------------------------------------------------ idle restart

TEST(TcpConnectionTest, IdleRestartCollapsesWindowToInitial) {
  TwoHostNet net(Time::milliseconds(50));
  serve_objects(net.b, 200'000);
  auto* fetch = fetch_object(net, 200'000);
  net.sim.run_until(Time::seconds(5));
  ASSERT_TRUE(fetch->completed_at.has_value());

  const auto infos = net.b.socket_stats();
  ASSERT_EQ(infos.size(), 1u);
  auto* server_conn = net.b.find_connection(infos[0].tuple);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_GT(server_conn->cwnd_segments(), 20u);  // grew during transfer

  // Idle for far longer than the RTO, then transfer again: RFC 2861.
  net.sim.run_until(net.sim.now() + Time::seconds(30));
  fetch->received = 0;
  fetch->completed_at.reset();
  fetch->conn->send(200);
  net.sim.run_until(net.sim.now() + Time::milliseconds(120));
  // Mid-transfer the server window restarted from its initial value.
  EXPECT_LE(server_conn->cwnd_segments(), 20u);
}

TEST(TcpConnectionTest, IdleRestartDisabledKeepsWindow) {
  tcp::TcpConfig config;
  config.slow_start_after_idle = false;
  TwoHostNet net(Time::milliseconds(50), 1e9, config);
  serve_objects(net.b, 200'000);
  auto* fetch = fetch_object(net, 200'000);
  net.sim.run_until(Time::seconds(5));
  ASSERT_TRUE(fetch->completed_at.has_value());

  const auto infos = net.b.socket_stats();
  auto* server_conn = net.b.find_connection(infos.at(0).tuple);
  const auto grown = server_conn->cwnd_segments();
  net.sim.run_until(net.sim.now() + Time::seconds(30));
  fetch->conn->send(200);
  net.sim.run_until(net.sim.now() + Time::milliseconds(60));
  EXPECT_EQ(server_conn->cwnd_segments(), grown);
}

// ------------------------------------------------------------ throughput

TEST(TcpConnectionTest, LargeTransferDeliversExactly) {
  TwoHostNet net(Time::milliseconds(20));
  serve_objects(net.b, 2'000'000);
  auto* fetch = fetch_object(net, 2'000'000);
  net.sim.run_until(Time::seconds(30));
  ASSERT_TRUE(fetch->completed_at.has_value());
  EXPECT_EQ(fetch->received, 2'000'000u);
}

TEST(TcpConnectionTest, BidirectionalTransfersCoexist) {
  TwoHostNet net(Time::milliseconds(20));
  std::uint64_t b_received = 0;
  net.b.listen(kPort, [&](TcpConnection& conn) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::uint64_t bytes) { b_received += bytes; };
    conn.set_callbacks(std::move(cbs));
  });
  std::uint64_t a_received = 0;
  net.a.listen(kPort, [&](TcpConnection& conn) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::uint64_t bytes) { a_received += bytes; };
    conn.set_callbacks(std::move(cbs));
  });

  TcpConnection::Callbacks cbs1;
  auto& c1 = net.a.connect(net.b.address(), kPort, std::move(cbs1));
  TcpConnection::Callbacks cbs2;
  auto& c2 = net.b.connect(net.a.address(), kPort, std::move(cbs2));
  net.sim.run_until(Time::milliseconds(100));
  c1.send(100'000);
  c2.send(70'000);
  net.sim.run_until(Time::seconds(10));
  EXPECT_EQ(b_received, 100'000u);
  EXPECT_EQ(a_received, 70'000u);
}

TEST(TcpConnectionTest, ManyParallelConnectionsBetweenSameHosts) {
  TwoHostNet net(Time::milliseconds(10));
  std::uint64_t total = 0;
  net.b.listen(kPort, [&](TcpConnection& conn) {
    TcpConnection::Callbacks cbs;
    cbs.on_data = [&](std::uint64_t bytes) { total += bytes; };
    conn.set_callbacks(std::move(cbs));
  });
  std::vector<TcpConnection*> conns;
  for (int i = 0; i < 10; ++i) {
    TcpConnection::Callbacks cbs;
    conns.push_back(&net.a.connect(net.b.address(), kPort, std::move(cbs)));
  }
  net.sim.run_until(Time::milliseconds(100));
  for (auto* conn : conns) conn->send(10'000);
  net.sim.run_until(Time::seconds(5));
  EXPECT_EQ(total, 100'000u);
  EXPECT_EQ(net.a.connection_count(), 10u);
}

TEST(TcpConnectionTest, SegmentsSentCountedAndNoSpuriousRetransmits) {
  TwoHostNet net(Time::milliseconds(10));
  serve_objects(net.b, 50'000);
  auto* fetch = fetch_object(net, 50'000);
  net.sim.run_until(Time::seconds(5));
  ASSERT_TRUE(fetch->completed_at.has_value());
  const auto infos = net.b.socket_stats();
  auto* server_conn = net.b.find_connection(infos.at(0).tuple);
  EXPECT_EQ(server_conn->stats().retransmissions, 0u);
  EXPECT_EQ(server_conn->stats().timeouts, 0u);
  // 50 KB = 35 full segments plus handshake/ACK traffic.
  EXPECT_GE(server_conn->stats().segments_sent, 35u);
}

}  // namespace
}  // namespace riptide::tcp

#include <gtest/gtest.h>

#include "cdn/cache_fill.h"
#include "cdn/lru_cache.h"
#include "cdn/probe.h"
#include "cdn/zipf.h"
#include "core/agent.h"
#include "test_util.h"

namespace riptide::cdn {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

// ------------------------------------------------------------------- Zipf

TEST(ZipfTest, ProbabilitiesDecreaseWithRank) {
  ZipfDistribution zipf(100, 1.0);
  double prev = 1.0;
  for (std::size_t rank = 1; rank <= 100; ++rank) {
    const double p = zipf.probability(rank);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfDistribution zipf(500, 0.8);
  double sum = 0.0;
  for (std::size_t rank = 1; rank <= 500; ++rank) {
    sum += zipf.probability(rank);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (std::size_t rank = 1; rank <= 10; ++rank) {
    EXPECT_NEAR(zipf.probability(rank), 0.1, 1e-12);
  }
}

TEST(ZipfTest, SamplesMatchAnalyticHead) {
  ZipfDistribution zipf(1000, 1.0);
  sim::Rng rng(5);
  const int n = 100'000;
  int rank1 = 0;
  for (int i = 0; i < n; ++i) {
    const auto rank = zipf.sample(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 1000u);
    if (rank == 1) ++rank1;
  }
  EXPECT_NEAR(static_cast<double>(rank1) / n, zipf.probability(1), 0.01);
}

TEST(ZipfTest, SingleElementAlwaysSampled) {
  ZipfDistribution zipf(1, 1.2);
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(ZipfTest, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.5), std::invalid_argument);
}

TEST(ZipfTest, OutOfRangeProbabilityIsZero) {
  ZipfDistribution zipf(10, 1.0);
  EXPECT_DOUBLE_EQ(zipf.probability(0), 0.0);
  EXPECT_DOUBLE_EQ(zipf.probability(11), 0.0);
}

// --------------------------------------------------------------- LruCache

TEST(LruCacheTest, MissThenHit) {
  LruCache cache(1000);
  EXPECT_FALSE(cache.lookup(1));
  cache.insert(1, 100);
  EXPECT_TRUE(cache.lookup(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size_bytes(), 100u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(300);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.insert(3, 100);
  cache.insert(4, 100);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size_bytes(), 300u);
}

TEST(LruCacheTest, LookupPromotes) {
  LruCache cache(300);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.insert(3, 100);
  EXPECT_TRUE(cache.lookup(1));  // 1 becomes MRU; 2 is now LRU
  cache.insert(4, 100);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCacheTest, ReinsertUpdatesSize) {
  LruCache cache(1000);
  cache.insert(1, 100);
  cache.insert(1, 300);
  EXPECT_EQ(cache.size_bytes(), 300u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(LruCacheTest, OversizedObjectRejected) {
  LruCache cache(100);
  EXPECT_FALSE(cache.insert(1, 500));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(LruCacheTest, LargeInsertEvictsMany) {
  LruCache cache(300);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.insert(3, 100);
  cache.insert(4, 250);  // evicts 1, 2, 3 (250 + 100 > 300 twice)
  EXPECT_TRUE(cache.contains(4));
  EXPECT_LE(cache.size_bytes(), 300u);
  EXPECT_GE(cache.evictions(), 2u);
}

TEST(LruCacheTest, HitRatio) {
  LruCache cache(1000);
  cache.insert(1, 10);
  cache.lookup(1);
  cache.lookup(1);
  cache.lookup(2);
  EXPECT_NEAR(cache.hit_ratio(), 2.0 / 3.0, 1e-12);
  LruCache empty(10);
  EXPECT_DOUBLE_EQ(empty.hit_ratio(), 0.0);
}

// -------------------------------------------------------- CacheFillWorkload

CacheFillConfig small_workload() {
  CacheFillConfig config;
  config.mean_interarrival_seconds = 0.05;
  config.catalog_size = 200;
  config.zipf_exponent = 1.0;
  config.cache_capacity_bytes = 4ull * 1024 * 1024;
  return config;
}

TEST(CacheFillTest, ServesHitsAndFetchesMisses) {
  TwoHostNet net(Time::milliseconds(40));
  ProbeServer origin(net.b);
  origin.start();
  MetricsCollector metrics;
  CacheFillWorkload workload(net.sim, net.a, 0, net.b, 1, 80.0,
                             small_workload(), metrics, net.rng);
  workload.start();
  net.sim.run_until(Time::seconds(60));

  EXPECT_GT(workload.requests(), 800u);
  EXPECT_GT(workload.fetches_completed(), 20u);
  // Zipf head + LRU: a meaningful share of requests must hit.
  EXPECT_GT(workload.cache().hit_ratio(), 0.3);
  EXPECT_LT(workload.cache().hit_ratio(), 0.99);
  // Every completed fetch produced a flow record toward the origin.
  EXPECT_EQ(metrics.flows().size(), workload.fetches_completed());
  for (const auto& flow : metrics.flows()) {
    EXPECT_EQ(flow.dst_pop, 1);
    EXPECT_GT(flow.object_bytes, 0u);
  }
}

TEST(CacheFillTest, ObjectSizesDeterministicPerId) {
  TwoHostNet net(Time::milliseconds(40));
  MetricsCollector metrics;
  CacheFillWorkload w1(net.sim, net.a, 0, net.b, 1, 80.0, small_workload(),
                       metrics, net.rng);
  for (std::uint64_t id : {1ull, 7ull, 199ull}) {
    EXPECT_EQ(w1.object_bytes(id), w1.object_bytes(id));
    EXPECT_EQ(w1.object_bytes(id) % 1000, 0u);  // protocol granularity
    EXPECT_GE(w1.object_bytes(id), 1000u);
  }
}

TEST(CacheFillTest, CacheBoundedByCapacity) {
  TwoHostNet net(Time::milliseconds(10));
  ProbeServer origin(net.b);
  origin.start();
  MetricsCollector metrics;
  auto config = small_workload();
  config.cache_capacity_bytes = 1024 * 1024;
  CacheFillWorkload workload(net.sim, net.a, 0, net.b, 1, 20.0, config,
                             metrics, net.rng);
  workload.start();
  net.sim.run_until(Time::seconds(60));
  EXPECT_LE(workload.cache().size_bytes(), config.cache_capacity_bytes);
  EXPECT_GT(workload.cache().evictions(), 0u);
}

TEST(CacheFillTest, RiptideAcceleratesMissFetches) {
  // Two identical cache-fill worlds, one with a Riptide agent pair. Misses
  // are mostly fresh-connection fetches, so the learned windows shorten
  // the miss path tail.
  auto run = [](bool riptide) {
    TwoHostNet net(Time::milliseconds(60));
    ProbeServer origin(net.b);
    origin.start();
    MetricsCollector metrics;
    auto config = small_workload();
    config.mean_interarrival_seconds = 0.1;
    CacheFillWorkload workload(net.sim, net.a, 0, net.b, 1, 120.0, config,
                               metrics, net.rng);
    std::unique_ptr<core::RiptideAgent> a1, a2;
    if (riptide) {
      a1 = std::make_unique<core::RiptideAgent>(net.sim, net.a,
                                                core::RiptideConfig{});
      a2 = std::make_unique<core::RiptideAgent>(net.sim, net.b,
                                                core::RiptideConfig{});
      a1->start();
      a2->start();
    }
    workload.start();
    net.sim.run_until(Time::minutes(3));
    stats::Cdf big_fetches;
    for (const auto& flow : metrics.flows()) {
      if (flow.object_bytes >= 50'000) {
        big_fetches.add(flow.duration.to_milliseconds());
      }
    }
    return big_fetches;
  };

  const auto baseline = run(false);
  const auto treated = run(true);
  ASSERT_GT(baseline.count(), 10u);
  ASSERT_GT(treated.count(), 10u);
  EXPECT_LT(treated.percentile(75), baseline.percentile(75));
}

}  // namespace
}  // namespace riptide::cdn

// The initcwnd policy zoo (src/policy): spec grammar round-trips, the
// static/oracle installers program the routes they claim, apply_policy
// rewrites experiment configs correctly, and the recommended governed
// pack is pinned.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "policy/policy.h"
#include "sim/time.h"

namespace riptide {
namespace {

using policy::parse_policy;
using policy::PolicyKind;
using policy::PolicySpec;
using sim::Time;

TEST(PolicyParseTest, CanonicalNamesRoundTrip) {
  for (const char* name :
       {"default", "static-iw10", "static-iw50@24", "static-iw1",
        "adaptive", "adaptive-governed", "adaptive@20",
        "adaptive-governed@24", "oracle", "oracle@8"}) {
    EXPECT_EQ(policy::to_string(parse_policy(name)), name) << name;
  }
}

TEST(PolicyParseTest, FieldsAreDecodedNotJustEchoed) {
  const PolicySpec iw = parse_policy("static-iw50@24");
  EXPECT_EQ(iw.kind, PolicyKind::kStaticIw);
  EXPECT_EQ(iw.static_iw, 50u);
  EXPECT_EQ(iw.prefix_length, 24);
  EXPECT_FALSE(iw.governed);

  const PolicySpec governed = parse_policy("adaptive-governed");
  EXPECT_EQ(governed.kind, PolicyKind::kAdaptive);
  EXPECT_TRUE(governed.governed);
  EXPECT_EQ(governed.prefix_length, 32);

  EXPECT_EQ(parse_policy("oracle@20").kind, PolicyKind::kOracle);
  EXPECT_EQ(parse_policy("default").kind, PolicyKind::kDefault);
}

TEST(PolicyParseTest, GarbageThrows) {
  for (const char* bad :
       {"", "bogus", "static-iw", "static-iw0", "static-iw1001",
        "static-iwXL", "adaptive@7", "adaptive@33", "adaptive@",
        "adaptive@-24", "default@24", "oracle@24@24", "ADAPTIVE",
        "static-iw50 ", "adaptive-governed-extra"}) {
    EXPECT_THROW(parse_policy(bad), std::invalid_argument) << bad;
  }
}

cdn::ExperimentConfig small_world() {
  cdn::ExperimentConfig config;
  auto pops = cdn::default_pop_specs();
  pops.resize(3);
  config.pop_specs = std::move(pops);
  config.topology.hosts_per_pop = 1;
  config.duration = Time::seconds(5);
  config.seed = 7;
  return config;
}

TEST(PolicyApplyTest, DefaultDisablesTheAgent) {
  auto config = small_world();
  policy::apply_policy(config, parse_policy("default"));
  EXPECT_FALSE(config.riptide_enabled);
  EXPECT_TRUE(config.extension_factories.empty());
}

TEST(PolicyApplyTest, AdaptiveSetsGranularityAndOptionallyTheGovernor) {
  auto config = small_world();
  policy::apply_policy(config, parse_policy("adaptive@20"));
  EXPECT_TRUE(config.riptide_enabled);
  EXPECT_EQ(config.riptide.granularity, core::Granularity::kPrefix);
  EXPECT_EQ(config.riptide.prefix_length, 20);
  EXPECT_EQ(config.riptide.governor_rollback_retrans_fraction, 0.0);

  auto governed = small_world();
  policy::apply_policy(governed, parse_policy("adaptive-governed"));
  EXPECT_EQ(governed.riptide.granularity, core::Granularity::kHost);
  // The recommended pack: staged ladder, shed-newest budget, storm
  // backoff. Pinned so docs and BENCH_policy.json stay honest.
  EXPECT_DOUBLE_EQ(governed.riptide.governor_rollback_retrans_fraction,
                   0.05);
  EXPECT_TRUE(governed.riptide.governor_staged_response);
  EXPECT_EQ(governed.riptide.governor_budget_fairness,
            core::BudgetFairness::kShedNewest);
  EXPECT_EQ(governed.riptide.governor_budget_segments, 300u);
  EXPECT_DOUBLE_EQ(governed.riptide.governor_storm_backoff_factor, 2.0);
  EXPECT_EQ(governed.riptide.governor_max_cooldown, Time::seconds(160));
}

TEST(PolicyInstallTest, StaticInstallerProgramsEveryRemoteGroup) {
  auto config = small_world();
  policy::apply_policy(config, parse_policy("static-iw50@24"));
  EXPECT_FALSE(config.riptide_enabled);
  ASSERT_EQ(config.extension_factories.size(), 1u);

  cdn::Experiment experiment(std::move(config));
  ASSERT_EQ(experiment.extensions().size(), 1u);
  const auto installation =
      std::static_pointer_cast<policy::PolicyInstallation>(
          experiment.extensions().front());
  // 3 hosts x 2 remote /24 PoP groups each.
  EXPECT_EQ(installation->routes_installed, 6u);

  // Host 0 (PoP 0) reaches PoP 1's and PoP 2's hosts at initcwnd 50.
  const auto& host = experiment.topology().host(0, 0);
  EXPECT_EQ(host.routing_table().effective_initcwnd(
                experiment.topology().host(1, 0).address(), 10),
            50u);
  EXPECT_EQ(host.routing_table().effective_initcwnd(
                experiment.topology().host(2, 0).address(), 10),
            50u);
  // Its own address is untouched (group containing self is skipped).
  EXPECT_EQ(host.routing_table().effective_initcwnd(host.address(), 10),
            10u);
}

TEST(PolicyInstallTest, OracleWindowsTrackThePathBdp) {
  auto config = small_world();
  policy::apply_policy(config, parse_policy("oracle"));
  cdn::Experiment experiment(std::move(config));
  ASSERT_EQ(experiment.extensions().size(), 1u);

  const auto& topo = experiment.topology();
  const auto& host = topo.host(0, 0);
  const auto window = host.routing_table().effective_initcwnd(
      topo.host(1, 0).address(), 10);
  // BDP plus half the bottleneck queue, clamped to [10, 256]; on the
  // default 10 Gbps WAN with tens-of-ms RTTs the clamp saturates.
  EXPECT_GE(window, 10u);
  EXPECT_LE(window, 256u);
  const auto& tconfig = topo.config();
  const double rtt_s = topo.base_rtt(0, 1).to_seconds();
  const double safe = tconfig.wan_rate_bps * rtt_s / 8.0 / tconfig.host_tcp.mss +
                      tconfig.wan_queue_packets / 2.0;
  if (safe >= 256.0) {
    EXPECT_EQ(window, 256u);
  }
}

TEST(PolicyInstallTest, InstallersComposeWithTheLegacyExtensionSlot) {
  // extension_factories must not fight over the single extension_factory
  // slot that faults::FaultHarness claims: both results are retained.
  auto config = small_world();
  policy::apply_policy(config, parse_policy("static-iw20"));
  config.extension_factory = [](cdn::Experiment&) -> std::shared_ptr<void> {
    return std::make_shared<int>(42);
  };
  cdn::Experiment experiment(std::move(config));
  ASSERT_NE(experiment.extension(), nullptr);
  EXPECT_EQ(*std::static_pointer_cast<int>(experiment.extension()), 42);
  ASSERT_EQ(experiment.extensions().size(), 1u);
  EXPECT_GT(std::static_pointer_cast<policy::PolicyInstallation>(
                experiment.extensions().front())
                ->routes_installed,
            0u);
}

TEST(PolicyInstallTest, InstalledPoliciesRefuseShardedMode) {
  auto config = small_world();
  policy::apply_policy(config, parse_policy("static-iw50"));
  config.sharding.enabled = true;
  config.sharding.shards = 1;
  EXPECT_THROW(cdn::Experiment{std::move(config)}, std::invalid_argument);
}

}  // namespace
}  // namespace riptide

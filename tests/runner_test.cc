// Tests for the parallel experiment runner: determinism across thread
// counts (the property every figure reproduction leans on), spec-order
// result delivery, sweep materialization, and exception propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "runner/parallel_runner.h"
#include "runner/sweep.h"
#include "runner/task_pool.h"

namespace riptide::runner {
namespace {

// A deliberately tiny scenario so the full determinism matrix stays fast:
// 3 PoPs, 20 simulated seconds.
cdn::ExperimentConfig small_config(std::uint64_t seed) {
  cdn::ExperimentConfig config;
  const auto& all = cdn::default_pop_specs();
  config.pop_specs.assign(all.begin(), all.begin() + 3);
  config.duration = sim::Time::seconds(20);
  config.seed = seed;
  return config;
}

// Everything observable about a finished run, for bitwise comparison.
struct Fingerprint {
  std::vector<double> completion_ms;
  std::vector<double> cwnd;
  std::vector<double> probe_samples;
  std::uint64_t events = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const cdn::Experiment& exp) {
  Fingerprint fp;
  for (const auto& flow : exp.metrics().flows()) {
    fp.completion_ms.push_back(flow.duration.to_milliseconds());
  }
  fp.cwnd = exp.metrics().cwnd_cdf().sorted_samples();
  fp.probe_samples = exp.probe_cdf(0, 100'000).sorted_samples();
  fp.events = exp.simulator().events_executed();
  return fp;
}

// ------------------------------------------------------------- task_pool

TEST(TaskPoolTest, EffectiveThreadsClamped) {
  EXPECT_EQ(effective_threads(4, 2), 2u);
  EXPECT_EQ(effective_threads(2, 100), 2u);
  EXPECT_EQ(effective_threads(1, 0), 1u);
  EXPECT_GE(effective_threads(0, 100), 1u);
}

TEST(TaskPoolTest, ParallelForVisitsEveryIndexOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(4, kN, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(TaskPoolTest, ParallelMapPreservesIndexOrder) {
  const auto out = parallel_map<std::size_t>(4, 100,
                                             [](std::size_t i) { return i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(TaskPoolTest, LowestIndexExceptionWins) {
  try {
    parallel_for(4, 8, [](std::size_t i) {
      if (i == 2 || i == 5) {
        throw std::runtime_error("fail " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail 2");
  }
}

TEST(TaskPoolTest, InlineWhenSingleThreaded) {
  // threads=1 must not spawn workers: verify by observing side effects in
  // strict order (a worker race could interleave).
  std::vector<std::size_t> order;
  parallel_for(1, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ------------------------------------------------------------ SweepSpec

TEST(SweepSpecTest, BaseConfigIsSingleSpec) {
  const auto specs = SweepSpec(small_config(7)).materialize();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].config.seed, 7u);
  EXPECT_TRUE(specs[0].config.riptide_enabled);
}

TEST(SweepSpecTest, SeedsByTreatmentControlExpansion) {
  auto sweep = SweepSpec(small_config(1))
                   .seeds({10, 20})
                   .treatment_control();
  EXPECT_EQ(sweep.size(), 4u);
  const auto specs = sweep.materialize();
  ASSERT_EQ(specs.size(), 4u);
  // seed-major, treatment before control
  EXPECT_EQ(specs[0].config.seed, 10u);
  EXPECT_TRUE(specs[0].config.riptide_enabled);
  EXPECT_EQ(specs[1].config.seed, 10u);
  EXPECT_FALSE(specs[1].config.riptide_enabled);
  EXPECT_EQ(specs[2].config.seed, 20u);
  EXPECT_TRUE(specs[2].config.riptide_enabled);
  EXPECT_EQ(specs[3].config.seed, 20u);
  EXPECT_FALSE(specs[3].config.riptide_enabled);
  for (const auto& spec : specs) {
    EXPECT_NE(spec.label.find("seed="), std::string::npos) << spec.label;
  }
}

TEST(SweepSpecTest, VariantsApplyInOrder) {
  auto sweep = SweepSpec(small_config(1))
                   .variant("cmax=50",
                            [](cdn::ExperimentConfig& c) {
                              c.riptide.c_max = 50;
                            })
                   .variant("cmax=100", [](cdn::ExperimentConfig& c) {
                     c.riptide.c_max = 100;
                   });
  const auto specs = sweep.materialize();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].config.riptide.c_max, 50u);
  EXPECT_EQ(specs[0].label, "cmax=50");
  EXPECT_EQ(specs[1].config.riptide.c_max, 100u);
  EXPECT_EQ(specs[1].label, "cmax=100");
}

// ------------------------------------------------------- ParallelRunner

TEST(ParallelRunnerTest, ResultsArriveInSpecOrder) {
  std::vector<RunSpec> specs;
  for (std::uint64_t seed : {5, 6, 7, 8}) {
    specs.push_back(RunSpec{"seed=" + std::to_string(seed),
                            small_config(seed), nullptr});
  }
  const auto results = ParallelRunner(4).run(std::move(specs));
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].label, "seed=" + std::to_string(5 + i));
    ASSERT_NE(results[i].experiment, nullptr);
    EXPECT_EQ(results[i].experiment->config().seed, 5 + i);
    EXPECT_GE(results[i].wall_seconds, 0.0);
  }
}

// The tentpole guarantee: N-threaded execution is bit-identical to
// sequential execution of the same specs. Flows, cwnd samples, probe
// CDFs, and event counts must all match exactly.
TEST(ParallelRunnerTest, ParallelMatchesSequentialBitIdentical) {
  auto make_specs = [] {
    std::vector<RunSpec> specs;
    for (std::uint64_t seed : {1, 2, 3, 4}) {
      specs.push_back(RunSpec{"", small_config(seed), nullptr});
    }
    return specs;
  };

  const auto sequential = ParallelRunner(1).run(make_specs());
  const auto parallel = ParallelRunner(4).run(make_specs());

  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(fingerprint(*sequential[i].experiment),
              fingerprint(*parallel[i].experiment))
        << "run " << i << " diverged between thread counts";
  }
  // And the runs themselves are genuinely different scenarios.
  EXPECT_NE(fingerprint(*sequential[0].experiment),
            fingerprint(*sequential[1].experiment));
}

TEST(ParallelRunnerTest, RunPairLayout) {
  auto treatment = small_config(3);
  auto control = small_config(3);
  control.riptide_enabled = false;
  const auto results =
      ParallelRunner(2).run_pair(treatment, control);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].label, "treatment");
  EXPECT_TRUE(results[0].experiment->config().riptide_enabled);
  EXPECT_EQ(results[1].label, "control");
  EXPECT_FALSE(results[1].experiment->config().riptide_enabled);
}

TEST(ParallelRunnerTest, SetupHookRunsBeforeRun) {
  std::atomic<int> sampled{0};
  RunSpec spec;
  spec.label = "hooked";
  spec.config = small_config(1);
  spec.setup = [&sampled](cdn::Experiment& exp) {
    exp.simulator().schedule_periodic(sim::Time::seconds(5),
                                      sim::Time::seconds(5),
                                      [&sampled] { ++sampled; });
  };
  std::vector<RunSpec> specs;
  specs.push_back(std::move(spec));
  const auto results = ParallelRunner(2).run(std::move(specs));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(sampled.load(), 4);  // 20 s duration / 5 s period
}

TEST(ParallelRunnerTest, ExceptionFromLowestFailingRunPropagates) {
  std::vector<RunSpec> specs;
  specs.push_back(RunSpec{"ok", small_config(1), nullptr});
  specs.push_back(RunSpec{"bad", small_config(2),
                          [](cdn::Experiment&) {
                            throw std::runtime_error("setup failed");
                          }});
  EXPECT_THROW(ParallelRunner(2).run(std::move(specs)), std::runtime_error);
}

}  // namespace
}  // namespace riptide::runner

// Decision-audit tracing tests (src/trace). Four contracts:
//
//   1. off means OFF: the golden-determinism fingerprint is untouched
//      (shared capture with determinism_test), and turning tracing *on*
//      still leaves the metrics fingerprint untouched — the sink observes
//      the simulation, it never feeds back into it;
//   2. traces are deterministic: byte-identical JSONL across repeat runs
//      and across ParallelRunner thread counts;
//   3. the ring drops the OLDEST events on overflow and reports the drop
//      count honestly;
//   4. the agent's audit trail is coherent: every programmed route has a
//      same-poll decision record whose pipeline values round-trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cdn/experiment.h"
#include "cdn/pops.h"
#include "persist/crc32.h"
#include "runner/parallel_runner.h"
#include "trace/sink.h"

namespace riptide::cdn {
namespace {

using sim::Time;

// Golden capture shared with determinism_test.cc (same config, same
// serialization, same CRC). Duplicated deliberately: each suite must fail
// on its own if the contract breaks.
constexpr std::uint32_t kGoldenCrc = 0x1B61F592;

ExperimentConfig golden_config(std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.pop_specs = {{"lon", Continent::kEurope, {51.51, -0.13}},
                      {"fra", Continent::kEurope, {50.11, 8.68}},
                      {"nyc", Continent::kNorthAmerica, {40.71, -74.01}},
                      {"tyo", Continent::kAsia, {35.68, 139.69}}};
  config.topology.hosts_per_pop = 1;
  config.topology.wan_loss_probability = 2e-4;
  config.topology.seed = seed;
  config.riptide_enabled = true;
  config.riptide.update_interval = Time::seconds(1);
  config.riptide.c_max = 100;
  config.probe.interval = Time::seconds(5);
  config.probe.idle_close = Time::seconds(10);
  config.duration = Time::seconds(60);
  config.cwnd_sample_interval = Time::seconds(10);
  config.seed = seed;
  return config;
}

std::string serialize_metrics(const Experiment& exp) {
  std::string out;
  out.reserve(1 << 16);
  char line[256];
  for (const auto& f : exp.metrics().flows()) {
    std::snprintf(line, sizeof line,
                  "F,%d,%d,%" PRIu64 ",%" PRId64 ",%" PRId64 ",%d,%.17g\n",
                  f.src_pop, f.dst_pop, f.object_bytes, f.started.ns(),
                  f.duration.ns(), f.fresh ? 1 : 0, f.base_rtt_ms);
    out += line;
  }
  for (const auto& s : exp.metrics().cwnd_samples()) {
    std::snprintf(line, sizeof line, "W,%d,%u,%" PRId64 "\n", s.pop,
                  s.cwnd_segments, s.at.ns());
    out += line;
  }
  for (const auto& agent : exp.agents()) {
    const auto& st = agent->stats();
    std::snprintf(line, sizeof line,
                  "A,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                  st.polls, st.connections_observed, st.routes_set,
                  st.routes_expired);
    out += line;
  }
  std::snprintf(line, sizeof line, "S,%" PRId64 "\n",
                exp.simulator().now().ns());
  out += line;
  return out;
}

ExperimentConfig traced_config(std::uint64_t seed = 42) {
  ExperimentConfig config = golden_config(seed);
  config.trace.enabled = true;
  return config;
}

TEST(TraceTest, OffByDefaultAndGoldenUnchanged) {
  ExperimentConfig config = golden_config();
  ASSERT_FALSE(config.trace.enabled);
  Experiment exp(config);
  exp.run();
  EXPECT_EQ(exp.trace_sink(), nullptr);
  EXPECT_EQ(persist::crc32(serialize_metrics(exp)), kGoldenCrc);
}

TEST(TraceTest, TracingOnDoesNotPerturbMetrics) {
  // The sink observes; it must never feed back. Same golden CRC with the
  // full event stream being recorded.
  Experiment exp(traced_config());
  exp.run();
  ASSERT_NE(exp.trace_sink(), nullptr);
  EXPECT_GT(exp.trace_sink()->emitted(), 0u);
  EXPECT_EQ(persist::crc32(serialize_metrics(exp)), kGoldenCrc);
}

TEST(TraceTest, RepeatRunsProduceIdenticalTraces) {
  Experiment first(traced_config());
  first.run();
  Experiment second(traced_config());
  second.run();
  ASSERT_NE(first.trace_sink(), nullptr);
  ASSERT_NE(second.trace_sink(), nullptr);
  EXPECT_EQ(first.trace_sink()->to_jsonl(), second.trace_sink()->to_jsonl());
  EXPECT_EQ(first.trace_sink()->to_csv(), second.trace_sink()->to_csv());
}

TEST(TraceTest, ThreadCountInvariantTraces) {
  // The per-run event stream must be identical no matter which worker
  // thread the run landed on: the sink is installed thread-locally around
  // run(), so trace order is the simulator's dispatch order, not the
  // pool's interleaving.
  std::vector<std::string> per_thread_jsonl[2];
  for (int t = 0; t < 2; ++t) {
    runner::ParallelRunner runner(t == 0 ? 1u : 2u);
    std::vector<runner::RunSpec> specs;
    specs.push_back({"a", traced_config(42), nullptr});
    specs.push_back({"b", traced_config(43), nullptr});
    auto results = runner.run(std::move(specs));
    ASSERT_EQ(results.size(), 2u);
    for (const auto& r : results) {
      ASSERT_NE(r.experiment->trace_sink(), nullptr);
      per_thread_jsonl[t].push_back(r.experiment->trace_sink()->to_jsonl());
    }
  }
  EXPECT_EQ(per_thread_jsonl[0][0], per_thread_jsonl[1][0]);
  EXPECT_EQ(per_thread_jsonl[0][1], per_thread_jsonl[1][1]);
  // Sanity: different seeds trace differently.
  EXPECT_NE(per_thread_jsonl[0][0], per_thread_jsonl[0][1]);
}

TEST(TraceTest, RingOverflowDropsOldest) {
  trace::TraceConfig config;
  config.enabled = true;
  config.ring_capacity = 4;
  trace::TraceSink sink(config);
  for (int i = 0; i < 10; ++i) {
    trace::TraceEvent ev;
    ev.at_ns = i;
    ev.kind = trace::EventKind::kTcpRto;
    ev.tcp_rto = {{1, 2, 3, 4}, i, static_cast<std::uint32_t>(i)};
    sink.emit(ev);
  }
  EXPECT_EQ(sink.emitted(), 10u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest-first, and the survivors are the NEWEST four (seq 6..9).
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].at_ns, static_cast<std::int64_t>(6 + i));
  }
  // The meta line confesses the truncation.
  const std::string jsonl = sink.to_jsonl();
  EXPECT_NE(jsonl.find("\"emitted\":10,\"dropped\":6"), std::string::npos);
}

TEST(TraceTest, DecisionAuditRoundTrip) {
  Experiment exp(traced_config());
  exp.run();
  ASSERT_NE(exp.trace_sink(), nullptr);
  const auto events = exp.trace_sink()->events();

  // Every `programmed` verdict must be explainable: a decision record for
  // the same (host, route) in the same poll (same timestamp), whose final
  // window round-trips into the programmed initcwnd.
  std::size_t programmed = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const trace::TraceEvent& ev = events[i];
    if (ev.kind != trace::EventKind::kAgentProgram ||
        ev.program.verdict != trace::ProgramVerdict::kProgrammed) {
      continue;
    }
    ++programmed;
    bool found = false;
    for (std::size_t j = i; j-- > 0;) {
      const trace::TraceEvent& prev = events[j];
      if (prev.at_ns != ev.at_ns) break;  // left this dispatch instant
      if (prev.kind != trace::EventKind::kAgentDecision) continue;
      if (prev.decision.host != ev.program.host ||
          prev.decision.route_addr != ev.program.route_addr ||
          prev.decision.route_len != ev.program.route_len) {
        continue;
      }
      found = true;
      // The decision's final window is what the programmer asked for
      // (modulo the governor's scale, which this knobs-off run pins at 1).
      EXPECT_DOUBLE_EQ(ev.program.scale, 1.0);
      EXPECT_EQ(ev.program.initcwnd,
                std::max<std::uint32_t>(
                    1, static_cast<std::uint32_t>(
                           std::lround(prev.decision.final_window))));
      EXPECT_GE(prev.decision.final_window, 1.0);
      EXPECT_LE(prev.decision.final_window, 100.0);  // c_max
      break;
    }
    EXPECT_TRUE(found) << "agent-program at " << ev.at_ns
                       << " ns has no same-poll agent-decision";
  }
  EXPECT_GT(programmed, 0u);

  // The jump-start moment is visible: connections created after the first
  // poll carry initcwnd-seeded cwnd events.
  bool seeded = false;
  for (const trace::TraceEvent& ev : events) {
    if (ev.kind == trace::EventKind::kTcpCwnd &&
        ev.tcp_cwnd.cause == trace::CwndCause::kInitcwndSeeded) {
      seeded = true;
      break;
    }
  }
  EXPECT_TRUE(seeded);
}

TEST(TraceTest, EventsAreTotallyOrdered) {
  Experiment exp(traced_config());
  exp.run();
  const auto events = exp.trace_sink()->events();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    // (at_ns, seq) strictly increasing — seq alone increases by
    // construction, and time never goes backwards.
    EXPECT_LT(events[i - 1].seq, events[i].seq);
    EXPECT_LE(events[i - 1].at_ns, events[i].at_ns);
  }
}

TEST(TraceTest, JsonlExportShape) {
  Experiment exp(traced_config());
  exp.run();
  const std::string jsonl = exp.trace_sink()->to_jsonl();
  // Meta header first, then one line per retained event.
  ASSERT_EQ(jsonl.rfind("{\"kind\":\"trace-meta\"", 0), 0u);
  std::size_t lines = 0;
  for (char c : jsonl) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, exp.trace_sink()->size() + 1);
}

}  // namespace
}  // namespace riptide::cdn

#include <gtest/gtest.h>

#include "cdn/metrics.h"
#include "cdn/probe.h"
#include "cdn/traffic.h"
#include "test_util.h"

namespace riptide::cdn {
namespace {

using riptide::test::TwoHostNet;
using sim::Time;

ProbeTarget target_for(TwoHostNet& net) {
  return ProbeTarget{net.b.address(), 1, 20.0};
}

ProbeClientConfig fast_config() {
  ProbeClientConfig config;
  config.interval = Time::seconds(2);
  config.idle_close = Time::seconds(6);
  config.extra_linger = Time::seconds(3);
  return config;
}

struct ProbeWorld {
  ProbeWorld(ProbeClientConfig config = fast_config())
      : net(Time::milliseconds(10)),
        server(net.b),
        client(net.sim, net.a, 0, {target_for(net)}, config, metrics,
               net.rng) {
    server.start();
    client.start();
  }

  TwoHostNet net;
  MetricsCollector metrics;
  ProbeServer server;
  ProbeClient client;
};

TEST(ProbeServerTest, ServesObjectSizedByRequest) {
  TwoHostNet net(Time::milliseconds(10));
  ProbeServer server(net.b);
  server.start();

  std::uint64_t received = 0;
  tcp::TcpConnection* conn = nullptr;
  tcp::TcpConnection::Callbacks cbs;
  cbs.on_established = [&] { conn->send(50); };  // 50 B -> 50 KB object
  cbs.on_data = [&](std::uint64_t bytes) { received += bytes; };
  conn = &net.a.connect(net.b.address(), ProbeServer::kDefaultPort,
                        std::move(cbs));
  net.sim.run_until(Time::seconds(3));
  EXPECT_EQ(received, 50'000u);
  EXPECT_EQ(server.objects_served(), 1u);
  EXPECT_EQ(server.bytes_served(), 50'000u);
}

TEST(ProbeServerTest, SequentialRequestsOnOneConnection) {
  TwoHostNet net(Time::milliseconds(10));
  ProbeServer server(net.b);
  server.start();

  std::uint64_t received = 0;
  tcp::TcpConnection* conn = nullptr;
  tcp::TcpConnection::Callbacks cbs;
  cbs.on_established = [&] { conn->send(10); };
  cbs.on_data = [&](std::uint64_t bytes) { received += bytes; };
  conn = &net.a.connect(net.b.address(), ProbeServer::kDefaultPort,
                        std::move(cbs));
  net.sim.run_until(Time::seconds(2));
  ASSERT_EQ(received, 10'000u);
  conn->send(100);
  net.sim.run_until(Time::seconds(5));
  EXPECT_EQ(received, 110'000u);
  EXPECT_EQ(server.objects_served(), 2u);
}

TEST(ProbeServerTest, RejectsZeroScale) {
  TwoHostNet net(Time::milliseconds(10));
  EXPECT_THROW(ProbeServer(net.b, 9000, 0), std::invalid_argument);
}

TEST(ProbeClientTest, CompletesAllThreeSizesEachRound) {
  ProbeWorld world;
  world.net.sim.run_until(Time::seconds(11));
  // ~5 rounds x 3 flavours, minus in-flight stragglers.
  EXPECT_GE(world.client.probes_completed(), 12u);
  for (std::uint64_t size : {10'000u, 50'000u, 100'000u}) {
    const auto cdf = world.metrics.completion_cdf(
        [=](const FlowRecord& f) { return f.object_bytes == size; });
    EXPECT_GE(cdf.count(), 4u) << size;
  }
}

TEST(ProbeClientTest, MixesFreshAndReusedConnections) {
  ProbeWorld world;
  world.net.sim.run_until(Time::seconds(30));
  // Per round: one flavour reuses the pooled connection, two open fresh.
  EXPECT_GT(world.client.reuses(), 5u);
  EXPECT_GT(world.client.fresh_connections_opened(), 10u);
  EXPECT_GT(world.client.fresh_connections_opened(), world.client.reuses());

  std::size_t fresh = 0, reused = 0;
  for (const auto& flow : world.metrics.flows()) {
    (flow.fresh ? fresh : reused)++;
  }
  EXPECT_GT(fresh, 0u);
  EXPECT_GT(reused, 0u);
}

TEST(ProbeClientTest, ReusedProbesSkipHandshake) {
  ProbeWorld world;
  world.net.sim.run_until(Time::seconds(30));
  const auto fresh_cdf = world.metrics.completion_cdf(
      [](const FlowRecord& f) { return f.fresh && f.object_bytes == 10'000; });
  const auto reused_cdf = world.metrics.completion_cdf(
      [](const FlowRecord& f) { return !f.fresh && f.object_bytes == 10'000; });
  ASSERT_FALSE(fresh_cdf.empty());
  ASSERT_FALSE(reused_cdf.empty());
  // Fresh 10 KB: handshake + 1 RTT ~= 40 ms; reused: 1 RTT ~= 20 ms.
  EXPECT_GT(fresh_cdf.percentile(50), reused_cdf.percentile(50) + 15.0);
}

TEST(ProbeClientTest, ConnectionCountBounded) {
  ProbeWorld world;
  world.net.sim.run_until(Time::seconds(40));
  // Pool (1) + up to 2 fresh per round lingering 3 s over 2 s rounds, plus
  // TIME-WAIT residue: must stay small, not grow linearly with rounds.
  EXPECT_LE(world.net.a.connection_count(), 16u);
}

TEST(ProbeClientTest, FlowRecordsCarryMetadata) {
  ProbeWorld world;
  world.net.sim.run_until(Time::seconds(10));
  ASSERT_FALSE(world.metrics.flows().empty());
  for (const auto& flow : world.metrics.flows()) {
    EXPECT_EQ(flow.src_pop, 0);
    EXPECT_EQ(flow.dst_pop, 1);
    EXPECT_DOUBLE_EQ(flow.base_rtt_ms, 20.0);
    EXPECT_GT(flow.duration, Time::zero());
  }
}

TEST(ProbeClientTest, SkipsRoundWhenPreviousProbeInFlight) {
  auto config = fast_config();
  config.interval = Time::milliseconds(50);  // faster than one RTT
  ProbeWorld world(config);
  world.net.sim.run_until(Time::seconds(2));
  EXPECT_GT(world.client.probes_skipped_busy(), 0u);
}

TEST(ProbeClientTest, FailedProbesCountedOnReset) {
  ProbeWorld world;
  world.net.sim.run_until(Time::seconds(3));
  // Kill every live connection mid-flight from the server side.
  world.net.filter_ab.set_drop_predicate(
      [](const net::Packet&) { return true; });
  // In-flight probes eventually exhaust retries and report failure; give
  // the RTO backoff plenty of time.
  world.net.sim.run_until(Time::seconds(400));
  EXPECT_GT(world.client.probes_failed(), 0u);
}

TEST(ProbeClientTest, RejectsBadJitter) {
  TwoHostNet net(Time::milliseconds(10));
  MetricsCollector metrics;
  auto config = fast_config();
  config.interval_jitter = 1.5;
  EXPECT_THROW(ProbeClient(net.sim, net.a, 0, {target_for(net)}, config,
                           metrics, net.rng),
               std::invalid_argument);
}

TEST(ProbeClientTest, UnencodableObjectSizeThrows) {
  TwoHostNet net(Time::milliseconds(10));
  MetricsCollector metrics;
  auto config = fast_config();
  config.specs = {ProbeSpec{500}};  // 500 / 1000 = 0 request bytes
  ProbeServer server(net.b);
  server.start();
  ProbeClient client(net.sim, net.a, 0, {target_for(net)}, config, metrics,
                     net.rng);
  client.start();
  EXPECT_THROW(net.sim.run_until(Time::seconds(5)), std::logic_error);
}

// ------------------------------------------------------------ SinkServer

TEST(SinkServerTest, ConsumesBytes) {
  TwoHostNet net(Time::milliseconds(10));
  SinkServer sink(net.b, 9900);
  sink.start();
  tcp::TcpConnection::Callbacks cbs;
  auto& conn = net.a.connect(net.b.address(), 9900, std::move(cbs));
  net.sim.run_until(Time::milliseconds(100));
  conn.send(123'456);
  net.sim.run_until(Time::seconds(5));
  EXPECT_EQ(sink.bytes_received(), 123'456u);
  EXPECT_EQ(sink.connections_accepted(), 1u);
}

// ---------------------------------------------------------- OrganicSource

TEST(OrganicSourceTest, GeneratesTrafficToSink) {
  TwoHostNet net(Time::milliseconds(10));
  SinkServer sink(net.b, 9900);
  sink.start();
  OrganicSourceConfig config;
  config.mean_interarrival_seconds = 0.05;
  OrganicSource source(net.sim, net.a, {net.b.address()}, config, net.rng);
  source.start();
  net.sim.run_until(Time::seconds(10));
  EXPECT_GT(source.transfers_started(), 100u);
  EXPECT_GT(sink.bytes_received(), 100'000u);
}

TEST(OrganicSourceTest, CloseProbabilityForcesNewConnections) {
  TwoHostNet net(Time::milliseconds(10));
  SinkServer sink(net.b, 9900);
  sink.start();
  OrganicSourceConfig config;
  config.mean_interarrival_seconds = 0.05;
  config.close_probability = 1.0;  // every transfer closes afterwards
  OrganicSource source(net.sim, net.a, {net.b.address()}, config, net.rng);
  source.start();
  net.sim.run_until(Time::seconds(10));
  EXPECT_GT(net.a.stats().connections_opened, 10u);
  EXPECT_GT(sink.bytes_received(), 0u);
}

TEST(OrganicSourceTest, NoTargetsIsANoop) {
  TwoHostNet net(Time::milliseconds(10));
  OrganicSource source(net.sim, net.a, {}, OrganicSourceConfig{}, net.rng);
  source.start();
  net.sim.run_until(Time::seconds(2));
  EXPECT_EQ(source.transfers_started(), 0u);
}

}  // namespace
}  // namespace riptide::cdn
